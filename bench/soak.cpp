// Detection soak — the nightly CI gauntlet.  Loops three scenario families
// until the wall-clock budget runs out, each with a hard scorecard:
//
//   multi     wl::run_multi_load with injected per-monitor faults and the
//             lock-order prediction checkpoint on: a missed detection, a
//             clean monitor with a report, or any kPotentialDeadlock
//             (no client spans monitors) fails.
//   dining    wl::run_dining_load, injected hold-and-wait rings: a missed
//             structural GlobalDeadlock or a cycle naming a clean ring
//             fails.
//   gate      wl::run_gate_crossing both ways: the rotated order must be
//             warned about (kPotentialDeadlock >= 1, kGlobalDeadlock == 0),
//             the consistent control must stay silent.
//   recovery  (--recovery=true, the nightly matrix's recovery mode)
//             wl::run_dining_load with a deterministically deadlocking ring
//             under each remedy — poison-victim, deliver-fault,
//             impose-order — plus the consistent-order gate-crossing
//             control with recovery attached: every deadlocked ring must
//             COMPLETE with exactly one recovery action, the control must
//             draw zero actions, and clean rings must never be touched.
//   budget    (--budget=true, the nightly matrix's budget mode)
//             wl::run_budget_spike: a calm baseline, a 10× load spike, and
//             a subsided post-phase under the pool's overhead budget.  Any
//             shed-order violation (prediction must be shed before
//             detection periods widen; confirmed-cycle detection is never
//             shed — wait-for passes must continue through the spike),
//             post-spike non-recovery, missed injected-fault detection at
//             any degradation level, or report against a clean monitor
//             fails.  Spend magnitudes are NOT gated here — TSan skews
//             them — only the controller's ordering and liveness contract.
//
// Exits non-zero on any scorecard failure, so the nightly job needs no
// output parsing; under TSan, a data race aborts the binary (halt_on_error)
// and fails the job the same way.  Writes a machine-readable summary to
// --out for the artifact upload.
#include <chrono>
#include <cstdio>
#include <string>

#include "util/flags.hpp"
#include "workloads/dining.hpp"
#include "workloads/gate_crossing.hpp"
#include "workloads/loadgen.hpp"

#if defined(__SANITIZE_THREAD__)
#define ROBMON_SOAK_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ROBMON_SOAK_TSAN 1
#endif
#endif

using namespace robmon;

namespace {

struct Scorecard {
  std::uint64_t iterations = 0;
  std::uint64_t missed = 0;           // expected detections that never came
  std::uint64_t false_positives = 0;  // reports against clean subjects
  std::uint64_t operations = 0;

  bool clean() const { return missed == 0 && false_positives == 0; }
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("seconds", "60", "wall-clock soak budget");
  flags.define("monitors", "12", "monitors per multi-load iteration");
  flags.define("ops-per-thread", "120", "multi-load calls per client");
  flags.define("rings", "2", "dining rings per iteration");
  flags.define("recovery", "false",
               "also soak the recovery engine (poison / fault / order "
               "remedies + zero-action control)");
  flags.define("budget", "false",
               "also soak the overhead-budget controller (spike scenario: "
               "shed order, post-spike recovery, detection liveness)");
  flags.define("out", "soak_report.json", "machine-readable summary");
  if (!flags.parse(argc, argv)) return 1;

  const double budget = static_cast<double>(flags.i64("seconds"));
  const bool soak_recovery = flags.boolean("recovery");
  const bool soak_budget = flags.boolean("budget");
  const auto started = std::chrono::steady_clock::now();
  Scorecard multi, dining, gate, recovery, spike;

  // Every family runs at least once, budget notwithstanding: a "soak" that
  // can pass while skipping a scenario gates nothing.
  while (multi.iterations == 0 || seconds_since(started) < budget) {
    // --- multi-monitor load with injected faults + prediction on. ----------
    {
      wl::MultiLoadOptions options;
      options.monitors = static_cast<std::size_t>(flags.i64("monitors"));
      options.ops_per_thread = flags.i64("ops-per-thread");
      options.faulty_monitors = std::max<std::size_t>(1, options.monitors / 8);
      options.lockorder_checkpoint_period = 5 * util::kMillisecond;
      const wl::MultiLoadResult result = wl::run_multi_load(options);
      ++multi.iterations;
      multi.missed += result.missed_detections;
      multi.false_positives +=
          result.false_positive_monitors + result.potential_deadlocks;
      multi.operations += result.operations;
    }
    if (seconds_since(started) >= budget && dining.iterations > 0) break;

    // --- dining rings with injected hold-and-wait cycles. ------------------
    {
      wl::DiningLoadOptions options;
      options.rings = static_cast<std::size_t>(flags.i64("rings"));
      options.philosophers = 4;
      options.deadlock_rings = 1;
      options.rounds = 10;
      const wl::DiningLoadResult result = wl::run_dining_load(options);
      ++dining.iterations;
      dining.missed += result.missed_detections;
      dining.false_positives += result.false_positive_rings;
      if (!result.clean_rings_completed) ++dining.missed;
    }
    if (seconds_since(started) >= budget && gate.iterations > 0) break;

    // --- gate crossing: rotated must warn, consistent must not. ------------
    {
      wl::GateCrossingOptions options;
      const wl::GateCrossingResult rotated = wl::run_gate_crossing(options);
      options.consistent_order = true;
      const wl::GateCrossingResult control = wl::run_gate_crossing(options);
      ++gate.iterations;
      if (!rotated.completed || rotated.potential_deadlocks == 0) {
        ++gate.missed;
      }
      // Both runs are fault-free by construction: any report beyond the
      // expected prediction warnings (a global-deadlock verdict, a
      // per-monitor ST verdict on a clean lane, or any warning at all in
      // the consistent control) is a false positive.
      const auto unexpected = [](const wl::GateCrossingResult& r,
                                 bool warnings_expected) {
        std::size_t n = r.fault_reports - r.potential_deadlocks;
        if (!warnings_expected) n += r.potential_deadlocks;
        return n;
      };
      gate.false_positives += unexpected(rotated, true) +
                              unexpected(control, false) +
                              (control.completed ? 0 : 1);
    }

    // --- recovery: every remedy must break (or pre-empt) the deadlock. -----
    if (soak_recovery) {
      for (const wl::DiningRecovery remedy :
           {wl::DiningRecovery::kPoisonVictim,
            wl::DiningRecovery::kDeliverFault,
            wl::DiningRecovery::kImposeOrder}) {
        wl::DiningLoadOptions options;
        options.rings = static_cast<std::size_t>(flags.i64("rings"));
        options.philosophers = 4;
        options.deadlock_rings = 1;
        options.rounds = 10;
        options.recovery = remedy;
        options.run_timeout = 20 * util::kSecond;
        const wl::DiningLoadResult result = wl::run_dining_load(options);
        ++recovery.iterations;
        if (!result.recovered_rings_completed) ++recovery.missed;
        if (!result.clean_rings_completed) ++recovery.missed;
        recovery.missed += result.missed_detections;
        // More than one action per cycle is an over-reaction; any report
        // against a clean ring is a false positive — and so is ANY report
        // outside {WF verdict, LO warning, RC action}: a recovery
        // intervention must never surface as a per-monitor ST or
        // call-order violation.
        if (result.recovery_actions > 1) ++recovery.false_positives;
        recovery.false_positives += result.false_positive_rings;
        for (const auto& report : result.reports) {
          if (report.rule != core::RuleId::kWfCycleDetected &&
              report.rule != core::RuleId::kLockOrderCycle &&
              report.rule != core::RuleId::kRecoveryAction) {
            ++recovery.false_positives;
          }
        }
      }
      // Zero-action control: consistent order with recovery attached.
      wl::GateCrossingOptions options;
      options.consistent_order = true;
      options.recovery = true;
      const wl::GateCrossingResult control = wl::run_gate_crossing(options);
      ++recovery.iterations;
      if (!control.completed) ++recovery.missed;
      recovery.false_positives +=
          static_cast<std::uint64_t>(control.recovery_actions) +
          control.potential_deadlocks;
    }

    // --- budget: degrade in shed order under a 10× spike, then recover. ----
    if (soak_budget) {
      wl::BudgetSpikeOptions options;
#ifdef ROBMON_SOAK_TSAN
      // TSan inflates absolute detection spend ~6×, which would park the
      // controller above the default calibration's recovery threshold
      // forever.  The ordering/recovery contract being gated here is
      // threshold-independent, so scale the budget to TSan's cost level:
      // the calm phases still sit clearly below it and the spike clearly
      // above, and the full ladder is still exercised.
      options.budget.fraction = 0.025;
#endif
      const wl::BudgetSpikeResult result = wl::run_budget_spike(options);
      ++spike.iterations;
      // "Missed" here covers the whole controller contract, not just fault
      // detections: a shed-order violation, a controller stuck degraded
      // after load subsides, or a spike window with zero wait-for passes is
      // expected behaviour that never came.
      spike.missed += result.missed_detections;
      if (!result.shed_order_ok) ++spike.missed;
      if (!result.recovered) ++spike.missed;
      if (result.waitfor_passes_during_spike == 0) ++spike.missed;
      spike.false_positives += result.false_positive_monitors;
      spike.operations += result.operations;
    }

    std::printf(
        "soak %6.1fs: multi x%llu dining x%llu gate x%llu recovery x%llu "
        "budget x%llu — missed %llu, false positives %llu\n",
        seconds_since(started),
        static_cast<unsigned long long>(multi.iterations),
        static_cast<unsigned long long>(dining.iterations),
        static_cast<unsigned long long>(gate.iterations),
        static_cast<unsigned long long>(recovery.iterations),
        static_cast<unsigned long long>(spike.iterations),
        static_cast<unsigned long long>(multi.missed + dining.missed +
                                        gate.missed + recovery.missed +
                                        spike.missed),
        static_cast<unsigned long long>(multi.false_positives +
                                        dining.false_positives +
                                        gate.false_positives +
                                        recovery.false_positives +
                                        spike.false_positives));
    std::fflush(stdout);
  }

  const bool passed = multi.clean() && dining.clean() && gate.clean() &&
                      recovery.clean() && spike.clean();
  const std::string out_path = flags.str("out");
  if (std::FILE* out = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(out, "{\n  \"schema\": \"robmon-soak-v2\",\n");
    std::fprintf(out, "  \"seconds\": %.1f,\n", seconds_since(started));
    const auto emit = [out](const char* name, const Scorecard& card,
                            const char* trailing) {
      std::fprintf(out,
                   "  \"%s\": {\"iterations\": %llu, \"missed\": %llu, "
                   "\"false_positives\": %llu}%s\n",
                   name, static_cast<unsigned long long>(card.iterations),
                   static_cast<unsigned long long>(card.missed),
                   static_cast<unsigned long long>(card.false_positives),
                   trailing);
    };
    emit("multi", multi, ",");
    emit("dining", dining, ",");
    emit("gate", gate, ",");
    emit("recovery", recovery, ",");
    emit("budget", spike, ",");
    std::fprintf(out, "  \"passed\": %s\n}\n", passed ? "true" : "false");
    std::fclose(out);
  }

  if (!passed) {
    std::printf("soak: FAILED (missed detections or false positives above)\n");
    return 1;
  }
  std::printf("soak: all scenario families clean\n");
  return 0;
}
