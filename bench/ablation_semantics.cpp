// Ablation: the detection model is tuned to the paper's signalling
// discipline (Hoare with combined Signal-Exit: the signalled waiter
// receives the monitor directly).
//
// We run the *same correct bounded-buffer workload* — written defensively
// with while-loop condition re-checks so that it is correct under either
// discipline — on (a) the paper's Hoare monitor and (b) a Mesa
// signal-and-continue monitor, where a signalled waiter merely re-contends
// through the entry queue.  The FD/ST rules encode the Hoare hand-off
// (FD-Rule 1c: a flag=1 Signal-Exit makes the condition-queue head the
// running process), so the Hoare run is clean while the *correct* Mesa run
// is flagged at every signal: run-time detection of this kind is
// inseparable from the monitor semantics it was specified against.
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/robust_monitor.hpp"
#include "util/flags.hpp"

using namespace robmon;

namespace {

/// Defensive (Mesa-safe) bounded buffer written directly over the
/// primitives, with while-loop re-checks.
struct DefensiveBuffer {
  rt::RobustMonitor& monitor;
  std::size_t capacity;
  std::deque<std::int64_t> items;
  std::mutex mu;

  bool full() {
    std::lock_guard<std::mutex> lock(mu);
    return items.size() >= capacity;
  }
  bool empty() {
    std::lock_guard<std::mutex> lock(mu);
    return items.empty();
  }

  rt::Status send(trace::Pid pid, std::int64_t item) {
    if (auto s = monitor.enter(pid, "Send"); s != rt::Status::kOk) return s;
    while (full()) {
      if (auto s = monitor.wait(pid, "full"); s != rt::Status::kOk) return s;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      items.push_back(item);
    }
    monitor.signal_exit(pid, "empty", -1);
    return rt::Status::kOk;
  }

  rt::Status receive(trace::Pid pid, std::int64_t* out) {
    if (auto s = monitor.enter(pid, "Receive"); s != rt::Status::kOk) {
      return s;
    }
    while (empty()) {
      if (auto s = monitor.wait(pid, "empty"); s != rt::Status::kOk) {
        return s;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      *out = items.front();
      items.pop_front();
    }
    monitor.signal_exit(pid, "full", +1);
    return rt::Status::kOk;
  }
};

struct Outcome {
  std::size_t reports = 0;
  std::uint64_t events = 0;
  bool completed = false;
};

Outcome run_variant(rt::Semantics semantics, std::int64_t items) {
  core::CollectingSink sink;
  core::MonitorSpec spec = core::MonitorSpec::coordinator("sem", 4);
  spec.t_max = spec.t_io = spec.t_limit = 30 * util::kSecond;
  spec.check_period = 20 * util::kMillisecond;
  rt::RobustMonitor::Options options;
  options.semantics = semantics;
  rt::RobustMonitor monitor(spec, sink, options);
  DefensiveBuffer buffer{monitor, 4, {}, {}};
  monitor.start_checking();
  // Mesa only diverges from Hoare when the entry queue is contended at
  // signal time (otherwise the re-contending waiter is admitted at once,
  // which is indistinguishable from a hand-off) -> several of each role.
  constexpr int kProducers = 3;
  constexpr int kConsumers = 3;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (std::int64_t i = 0; i < items; ++i) buffer.send(p, i);
    });
  }
  const std::int64_t per_consumer = items * kProducers / kConsumers;
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      std::int64_t item = 0;
      for (std::int64_t i = 0; i < per_consumer; ++i) {
        buffer.receive(100 + c, &item);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  monitor.stop_checking();
  monitor.check_now();
  Outcome outcome;
  outcome.reports = sink.count();
  outcome.events = monitor.monitor().log().total_appended();
  outcome.completed = true;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("items", "800", "items through the buffer per variant");
  if (!flags.parse(argc, argv)) return 2;
  const std::int64_t items = flags.i64("items");

  std::printf("Semantics ablation: identical correct workload, two "
              "signalling disciplines\n\n");
  const Outcome hoare = run_variant(rt::Semantics::kHoareSignalExit, items);
  std::printf("  Hoare signal-exit (paper): %6zu reports over %llu events "
              "-> %s\n",
              hoare.reports,
              static_cast<unsigned long long>(hoare.events),
              hoare.reports == 0 ? "clean, as specified" : "UNEXPECTED");
  const Outcome mesa = run_variant(rt::Semantics::kMesaSignalContinue,
                                   items);
  std::printf("  Mesa signal-continue:      %6zu reports over %llu events "
              "-> %s\n",
              mesa.reports, static_cast<unsigned long long>(mesa.events),
              mesa.reports > 0
                  ? "flagged: the rules encode the Hoare hand-off"
                  : "UNEXPECTED");
  std::printf("\n(the Mesa run is *correct* — the workload re-checks its "
              "conditions — yet FD-Rule 1c's hand-off obligation is "
              "violated at every signal; a detector for Mesa monitors "
              "would need different ST rules)\n");
  return hoare.reports == 0 && mesa.reports > 0 ? 0 : 1;
}
