// Robustness evaluation (Section 4): "Faults of different kinds as
// classified in Section 3.2 are injected randomly for evaluating the
// coverage of the fault detection algorithms.  The results show that all
// injected faults are detected."
//
// Prints a 21-row matrix: one taxonomy class per row, detection rate over
// seeded trials, the checking period at which detection landed, and the
// rules that fired.  The expected bottom line, as in the paper, is 21/21
// classes detected on every exercised trial.
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "inject/catalog.hpp"
#include "util/stats.hpp"
#include "util/flags.hpp"
#include "workloads/sim_scenarios.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("trials", "5", "seeded trials per fault class");
  if (!flags.parse(argc, argv)) return 2;
  const auto trials = static_cast<std::uint64_t>(flags.i64("trials"));

  std::printf("Fault-injection coverage matrix (%llu seeded trials per "
              "class, deterministic simulator)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-7s %-42s %-9s %-10s %s\n", "class", "fault", "detected",
              "at check", "rules observed");

  std::size_t detected_classes = 0;
  std::size_t exercised_classes = 0;
  for (const core::FaultKind kind : core::all_fault_kinds()) {
    std::size_t injected = 0;
    std::size_t detected = 0;
    util::RunningStats latency;
    std::map<core::RuleId, int> rules_seen;
    const auto& entry = inject::catalog_entry(kind);
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      const wl::CoverageOutcome outcome = wl::run_coverage_trial(kind, seed);
      if (!outcome.injected) continue;
      ++injected;
      if (outcome.detected) {
        ++detected;
        latency.add(static_cast<double>(outcome.detection_check));
        for (const auto& report : outcome.reports) {
          if (std::find(entry.detecting_rules.begin(),
                        entry.detecting_rules.end(),
                        report.rule) != entry.detecting_rules.end()) {
            rules_seen[report.rule]++;
          }
        }
      }
    }
    if (injected > 0) {
      ++exercised_classes;
      if (detected == injected) ++detected_classes;
    }

    std::string rules;
    int listed = 0;
    for (const auto& [rule, count] : rules_seen) {
      if (listed++ == 3) {
        rules += ", ...";
        break;
      }
      if (!rules.empty()) rules += ", ";
      const std::string name(core::to_string(rule));
      rules += name.substr(0, name.find(' '));
    }
    std::printf("%-7s %-42s %zu/%zu%s     ~%.1f      %s\n",
                std::string(core::paper_designation(kind)).c_str(),
                std::string(core::to_string(kind)).c_str(), detected,
                injected, detected == injected ? " " : "!",
                latency.count() ? latency.mean() : 0.0, rules.c_str());
  }

  std::printf("\nclasses fully detected: %zu / %zu exercised "
              "(paper: all injected faults are detected)\n",
              detected_classes, exercised_classes);
  return detected_classes == exercised_classes ? 0 : 1;
}
