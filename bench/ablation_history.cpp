// Ablation: the paper's history-truncation design (Section 3.3) — "Only the
// states at the last checking time and the current checking time are
// recorded ... most of the information can be removed after being used" —
// against the alternative of keeping the full history and validating the
// declarative FD-Rules over it (the T=1 / offline mode).
//
// For growing event counts we compare (a) interval checking over segments
// between checkpoints, and (b) full FD-Rule validation over the complete
// history with a state per event, reporting wall time and retained bytes.
#include <chrono>
#include <cstdio>
#include <vector>

#include "core/detector.hpp"
#include "core/fd_rules.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"
#include "util/flags.hpp"

using namespace robmon;

namespace {

class DiscardSink final : public core::ReportSink {
 public:
  void report(const core::FaultReport&) override {}
};

/// Synthetic consistent history: one process entering and exiting, with a
/// state snapshot after every event (what T=1 recording would retain).
struct History {
  std::vector<trace::EventRecord> events;
  std::vector<trace::SchedulingState> states;
};

History make_history(std::size_t pairs, trace::SymbolId op) {
  History history;
  history.events.reserve(pairs * 2);
  history.states.reserve(pairs * 2 + 1);
  history.states.push_back({});  // initial state
  util::TimeNs t = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    ++t;
    history.events.push_back(trace::EventRecord::enter(1, op, true, t));
    trace::SchedulingState inside;
    inside.running = 1;
    inside.running_proc = op;
    inside.running_since = t;
    history.states.push_back(inside);
    ++t;
    history.events.push_back(
        trace::EventRecord::signal_exit(1, op, trace::kNoSymbol, false, t));
    history.states.push_back({});
  }
  return history;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("checkpoint-every", "512", "events per interval check");
  if (!flags.parse(argc, argv)) return 2;
  const auto stride =
      static_cast<std::size_t>(flags.i64("checkpoint-every"));

  core::MonitorSpec spec = core::MonitorSpec::manager("h");
  spec.t_max = spec.t_io = 3600 * util::kSecond;
  trace::SymbolTable symbols;
  const trace::SymbolId op = symbols.intern("Op");
  DiscardSink sink;

  std::printf("History-retention ablation (checkpoint every %zu events)\n\n",
              stride);
  std::printf("%-10s %-22s %-22s %-14s %-14s\n", "events",
              "interval checking", "full FD validation", "segment bytes",
              "history bytes");

  for (const std::size_t pairs : {500u, 2000u, 8000u, 32000u}) {
    const History history = make_history(pairs, op);
    const std::size_t n = history.events.size();

    // (a) Interval checking: detector over checkpointed segments; only the
    // current segment is ever held.
    core::Detector detector(spec, symbols, sink);
    detector.initialize(history.states.front());
    const auto interval_start = std::chrono::steady_clock::now();
    std::size_t cursor = 0;
    while (cursor < n) {
      const std::size_t end = std::min(cursor + stride, n);
      const std::vector<trace::EventRecord> segment(
          history.events.begin() + static_cast<std::ptrdiff_t>(cursor),
          history.events.begin() + static_cast<std::ptrdiff_t>(end));
      detector.check(segment, history.states[end],
                     history.events[end - 1].time + 1);
      cursor = end;
    }
    const double interval_seconds = seconds_since(interval_start);

    // (b) Full-history FD validation (T=1 retention).
    const auto fd_start = std::chrono::steady_clock::now();
    const auto reports = core::validate_fd_rules(
        spec, symbols, history.events, history.states,
        history.events.back().time + 1);
    const double fd_seconds = seconds_since(fd_start);

    const std::size_t segment_bytes =
        stride * sizeof(trace::EventRecord);
    const std::size_t history_bytes =
        n * sizeof(trace::EventRecord) +
        history.states.size() * sizeof(trace::SchedulingState);

    std::printf("%-10zu %14.3f ms %17.3f ms %11zu KB %11zu KB  %s\n", n,
                interval_seconds * 1e3, fd_seconds * 1e3,
                segment_bytes / 1024, history_bytes / 1024,
                reports.empty() ? "" : "(!unexpected reports)");
  }

  std::printf("\n(interval checking touches each event once and retains one "
              "segment; full validation retains every event and state — the "
              "paper's truncation design is what makes run-time use "
              "feasible)\n");
  return 0;
}
