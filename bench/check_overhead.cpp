// Checking-engine overhead bench — the machine-readable perf baseline for
// the batched, adaptive-cadence CheckerPool and the block-allocating
// EventLog.  Two sections:
//
//   appender  EventLog::append throughput, T concurrent appender threads,
//             lock-free ring ingestion vs the spinlocked double-buffer
//             baseline (Backend::kRing vs kLocked), rings sized to the row
//             so throughput rows finish with events_lost == 0, plus one
//             deliberately undersized single-ring row that exercises the
//             overflow/loss contract (spill, then exact drop accounting).
//             Rows where threads > hardware_concurrency are flagged
//             `contended`: the committed baseline may come from a smaller
//             machine, so CI skips throughput comparisons on such rows
//             (but still gates losses and detections).
//   pool      wl::run_multi_load at M ∈ --monitors for three engine
//             shapes — per-item (max_batch = 1, the pre-batching loop),
//             batched (default), batched+adaptive (--max-stretch) — with
//             injected faults; reports per-check time, dispatches (worker
//             wake-ups) per 1k checks, batch sizes, coalesced deadlines,
//             and the detection scorecard.
//   recovery  wl::run_dining_load with a deterministically deadlocking
//             ring under each recovery remedy (poison / fault / order);
//             reports the detection-to-action latency and enforces the
//             liveness contract (completion, exactly one action, zero
//             false positives).
//   budget    wl::run_budget_spike: a closed-loop three-phase scenario
//             (calm baseline, 10× load spike, subsided post phase) against
//             a pool with a global detection budget.  Gates: measured
//             spike-phase detection spend ≤ 1.5× the configured budget,
//             the ladder reached at least kShedPrediction (prediction was
//             shed, detection never), every logged transition chains ±1
//             (shed order structural), wait-for detection kept running
//             through the spike, post-spike recovery to kNominal, and the
//             usual zero missed detections / false positives / lost events.
//
// Emits --out (default BENCH_check_overhead.json); exits non-zero if any
// injected fault is missed or any clean monitor reports one, so CI can use
// the run itself as a detection smoke and the JSON as a regression
// baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "trace/event_log.hpp"
#include "util/flags.hpp"
#include "workloads/dining.hpp"
#include "workloads/loadgen.hpp"

using namespace robmon;

namespace {

bool parse_size_list(const std::string& csv, std::vector<std::size_t>* out) {
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != token.size() || value == 0) return false;
    out->push_back(value);
  }
  return !out->empty();
}

struct AppenderRow {
  std::string impl;  ///< "ring" | "locked".
  std::size_t threads = 0;
  std::size_t shards = 0;
  std::uint64_t events = 0;  ///< append() calls issued.
  double events_per_sec = 0.0;
  std::uint64_t events_lost = 0;
  bool contended = false;    ///< threads > hardware_concurrency.
  bool expect_loss = false;  ///< Deliberately undersized overflow row.
  bool accounting_ok = true; ///< accepted + lost == issued, drain == accepted.
};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// One appender row.  ring_capacity == 0 sizes the ring to hold the whole
/// row (throughput measurement, zero losses expected); a nonzero capacity
/// deliberately undersizes it to exercise the spill/loss contract.
AppenderRow bench_appenders(const char* impl, std::size_t threads,
                            std::size_t shards,
                            std::uint64_t events_per_thread,
                            std::size_t ring_capacity,
                            std::size_t overflow_capacity, unsigned hardware) {
  const bool ring = std::string(impl) == "ring";
  trace::EventLog::Options options;
  options.shards = shards;
  options.backend = ring ? trace::EventLog::Backend::kRing
                         : trace::EventLog::Backend::kLocked;
  const std::uint64_t per_shard =
      events_per_thread * ((threads + shards - 1) / shards);
  options.ring_capacity = ring_capacity != 0
                              ? ring_capacity
                              : round_up_pow2(static_cast<std::size_t>(
                                    per_shard + per_shard / 4 + 1));
  options.overflow_capacity = overflow_capacity;
  trace::EventLog log(options);

  std::vector<std::thread> workers;
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&log, t, events_per_thread] {
      const trace::EventRecord event = trace::EventRecord::enter(
          static_cast<trace::Pid>(t), 0, true, 0);
      for (std::uint64_t i = 0; i < events_per_thread; ++i) {
        log.append(event);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto finished = std::chrono::steady_clock::now();

  AppenderRow row;
  row.impl = impl;
  row.threads = threads;
  row.shards = shards;
  row.events = static_cast<std::uint64_t>(threads) * events_per_thread;
  const double seconds =
      std::chrono::duration<double>(finished - started).count();
  row.events_per_sec =
      seconds > 0 ? static_cast<double>(row.events) / seconds : 0.0;
  row.events_lost = log.events_lost();
  row.contended = hardware != 0 && threads > hardware;
  row.expect_loss = ring_capacity != 0;
  // The loss contract is exact: every issued append was either accepted
  // (and drains exactly once) or counted lost — no silent drops, no dupes.
  const std::uint64_t drained = log.drain().size();
  row.accounting_ok = log.total_appended() + row.events_lost == row.events &&
                      drained == log.total_appended() && log.pending() == 0;
  return row;
}

struct PoolRow {
  std::size_t monitors = 0;
  std::string mode;
  wl::MultiLoadResult result;
  double per_check_ns = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("monitors", "1,8,64,256", "comma-separated sweep of M");
  flags.define("threads-per-monitor", "2", "client threads per monitor");
  flags.define("ops-per-thread", "60", "monitor calls per client thread");
  flags.define("faulty-fraction", "0.125",
               "fraction of monitors given one injected fault (min 1)");
  flags.define("pool-threads", "0",
               "K for the shared pool; 0 = hardware concurrency");
  flags.define("check-period-ms", "2", "checking cadence per monitor");
  flags.define("max-stretch", "4",
               "adaptive-cadence ceiling for the adaptive engine shape");
  flags.define("predict-period-ms", "4",
               "lock-order prediction checkpoint cadence (predict shape)");
  flags.define("appender-threads", "1,8",
               "comma-separated appender thread counts");
  flags.define("appender-events", "200000", "events per appender thread");
  flags.define("budget-fraction", "0.0035",
               "global detection budget for the spike scenario "
               "(fraction of wall-clock; calibrated defaults in "
               "wl::BudgetSpikeOptions)");
  flags.define("budget-phases-ms", "700,1500,1200",
               "baseline,spike,post phase durations for the budget "
               "scenario");
  flags.define("out", "BENCH_check_overhead.json",
               "machine-readable results file");
  if (!flags.parse(argc, argv)) return 1;

  std::vector<std::size_t> monitor_sweep, appender_sweep;
  if (!parse_size_list(flags.str("monitors"), &monitor_sweep) ||
      !parse_size_list(flags.str("appender-threads"), &appender_sweep)) {
    std::fprintf(stderr,
                 "--monitors/--appender-threads must be comma-separated "
                 "positive integers\n");
    return 1;
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("check_overhead: hardware concurrency = %u\n", hardware);

  // --- Appender throughput: lock-free ring vs spinlocked baseline. -----------
  const auto appender_events =
      static_cast<std::uint64_t>(flags.i64("appender-events"));
  std::vector<AppenderRow> appender_rows;
  bool appender_failed = false;
  std::printf("\n%10s %8s %7s %14s %14s %12s %10s\n", "appenders", "impl",
              "shards", "events", "events/s", "events-lost", "flags");
  const auto run_appender_row = [&](const char* impl, std::size_t threads,
                                    std::size_t shards,
                                    std::size_t ring_capacity,
                                    std::size_t overflow_capacity) {
    AppenderRow row =
        bench_appenders(impl, threads, shards, appender_events, ring_capacity,
                        overflow_capacity, hardware);
    std::printf("%10zu %8s %7zu %14llu %14.0f %12llu %10s%s\n", row.threads,
                row.impl.c_str(), row.shards,
                static_cast<unsigned long long>(row.events),
                row.events_per_sec,
                static_cast<unsigned long long>(row.events_lost),
                row.expect_loss ? "overflow" : (row.contended ? "contended"
                                                              : "-"),
                row.accounting_ok ? "" : "  ^ FAILED: loss accounting");
    if (!row.accounting_ok ||
        (!row.expect_loss && row.events_lost > 0)) {
      appender_failed = true;
    }
    appender_rows.push_back(std::move(row));
  };
  for (const std::size_t threads : appender_sweep) {
    const std::size_t shards =
        std::min(threads, trace::EventLog::kDefaultShards);
    run_appender_row("locked", threads, shards, 0, 0);
    run_appender_row("ring", threads, shards, 0, 0);
  }
  // The overflow/loss-contract stress row: every appender contends on one
  // deliberately undersized ring with a stalled drain, so the run must
  // spill to the bounded overflow list and then drop *with accounting*.
  const std::size_t stress_threads =
      *std::max_element(appender_sweep.begin(), appender_sweep.end());
  run_appender_row("ring", stress_threads, /*shards=*/1,
                   /*ring_capacity=*/1 << 12, /*overflow_capacity=*/1 << 15);

  // Headline ratio: ring vs locked at the widest thread count.
  for (const std::size_t threads : appender_sweep) {
    double locked = 0.0, ring_rate = 0.0;
    for (const AppenderRow& row : appender_rows) {
      if (row.threads != threads || row.expect_loss) continue;
      (row.impl == "ring" ? ring_rate : locked) = row.events_per_sec;
    }
    if (locked > 0 && ring_rate > 0) {
      std::printf("  ring/locked @ %zu threads: %.2fx%s\n", threads,
                  ring_rate / locked,
                  hardware != 0 && threads > hardware
                      ? " (contended: threads > hardware concurrency)"
                      : "");
    }
  }

  // --- Pool sweep: per-item vs batched vs batched+adaptive vs batched
  // with the lock-order prediction checkpoint on (the "predict" column
  // isolates the per-check fold overhead of the order relation; detection
  // scorecard must stay perfect and zero kPotentialDeadlock may fire).
  struct Shape {
    const char* name;
    std::size_t max_batch;
    double max_stretch;
    bool lockorder;
  };
  const double stretch = flags.f64("max-stretch");
  const Shape shapes[] = {
      {"per-item", 1, 1.0, false},
      {"batched", 0, 1.0, false},
      {"adaptive", 0, stretch, false},
      {"predict", 0, 1.0, true},
  };

  std::vector<PoolRow> pool_rows;
  bool detection_failed = false;
  std::printf(
      "\n%8s %10s %10s %12s %12s %9s %12s %10s %8s\n", "monitors", "mode",
      "checks", "per-chk-us", "disp/1kchk", "avg-batch", "coalesced",
      "faults", "missed");
  for (const std::size_t monitors : monitor_sweep) {
    for (const Shape& shape : shapes) {
      wl::MultiLoadOptions options;
      options.monitors = monitors;
      options.threads_per_monitor =
          static_cast<int>(flags.i64("threads-per-monitor"));
      options.ops_per_thread = flags.i64("ops-per-thread");
      options.faulty_monitors = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(monitors) *
                                      flags.f64("faulty-fraction")));
      options.mode = wl::CheckerMode::kSharedPool;
      options.pool_threads =
          static_cast<std::size_t>(flags.i64("pool-threads"));
      options.check_period = flags.i64("check-period-ms") * util::kMillisecond;
      options.max_batch = shape.max_batch;
      options.max_stretch = shape.max_stretch;
      if (shape.lockorder) {
        options.lockorder_checkpoint_period =
            flags.i64("predict-period-ms") * util::kMillisecond;
      }

      PoolRow row;
      row.monitors = monitors;
      row.mode = shape.name;
      row.result = wl::run_multi_load(options);
      row.per_check_ns = row.result.avg_check_us * 1000.0;
      pool_rows.push_back(row);

      std::printf("%8zu %10s %10llu %12.2f %12.1f %9.1f %12llu %7zu/%zu %8zu\n",
                  monitors, shape.name,
                  static_cast<unsigned long long>(row.result.checks_run),
                  row.result.avg_check_us,
                  row.result.dispatches_per_1k_checks, row.result.avg_batch,
                  static_cast<unsigned long long>(row.result.checks_coalesced),
                  row.result.faulty_detected, row.result.faults_expected,
                  row.result.missed_detections);
      if (row.result.missed_detections > 0 ||
          row.result.false_positive_monitors > 0 ||
          row.result.potential_deadlocks > 0) {
        std::printf(
            "  ^ FAILED: %zu missed, %zu false-positive monitors, "
            "%zu spurious potential-deadlock warnings\n",
            row.result.missed_detections,
            row.result.false_positive_monitors,
            row.result.potential_deadlocks);
        detection_failed = true;
      }
    }
  }

  // --- Recovery latency: deadlock-closed (or prediction-ready) to first
  // recovery action, per remedy, on a deterministically deadlocking ring.
  struct RecoveryRow {
    const char* mode;
    wl::DiningLoadResult result;
    bool ok = false;
  };
  const std::pair<const char*, wl::DiningRecovery> remedies[] = {
      {"poison", wl::DiningRecovery::kPoisonVictim},
      {"fault", wl::DiningRecovery::kDeliverFault},
      {"order", wl::DiningRecovery::kImposeOrder},
  };
  std::vector<RecoveryRow> recovery_rows;
  bool recovery_failed = false;
  std::printf("\n%8s %12s %9s %10s %10s\n", "recovery", "latency-ms",
              "actions", "completed", "unpoison");
  for (const auto& [name, remedy] : remedies) {
    wl::DiningLoadOptions options;
    options.rings = 1;
    options.philosophers = 4;
    options.deadlock_rings = 1;
    options.recovery = remedy;
    options.run_timeout = 20 * util::kSecond;
    RecoveryRow row{name, wl::run_dining_load(options), false};
    row.ok = row.result.recovered_rings_completed &&
             row.result.recovery_actions == 1 &&
             row.result.false_positive_rings == 0 &&
             row.result.missed_detections == 0;
    std::printf("%8s %12.2f %9llu %10s %10llu%s\n", row.mode,
                static_cast<double>(row.result.recovery_latency_ns) / 1e6,
                static_cast<unsigned long long>(row.result.recovery_actions),
                row.result.recovered_rings_completed ? "yes" : "NO",
                static_cast<unsigned long long>(
                    row.result.monitors_unpoisoned),
                row.ok ? "" : "  ^ FAILED");
    if (!row.ok) recovery_failed = true;
    recovery_rows.push_back(std::move(row));
  }

  // --- Budget spike: global detection budget under a 10× load spike. ---------
  std::vector<std::size_t> budget_phases;
  if (!parse_size_list(flags.str("budget-phases-ms"), &budget_phases) ||
      budget_phases.size() != 3) {
    std::fprintf(stderr,
                 "--budget-phases-ms must be baseline,spike,post (ms)\n");
    return 1;
  }
  wl::BudgetSpikeOptions budget_options;
  budget_options.budget.fraction = flags.f64("budget-fraction");
  budget_options.baseline_ns =
      static_cast<util::TimeNs>(budget_phases[0]) * util::kMillisecond;
  budget_options.spike_ns =
      static_cast<util::TimeNs>(budget_phases[1]) * util::kMillisecond;
  budget_options.post_ns =
      static_cast<util::TimeNs>(budget_phases[2]) * util::kMillisecond;
  const wl::BudgetSpikeResult budget = wl::run_budget_spike(budget_options);

  // The spike-phase contract: measured detection spend within 1.5× of the
  // configured budget while degraded, prediction shed before any detection
  // widening (±1 ladder steps only), confirmed-cycle detection alive
  // throughout, and a symmetric descent to nominal once load subsides.
  const double spike_limit = 1.5 * budget.budget_fraction;
  std::size_t budget_failures = 0;
  const auto budget_gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::printf("  ^ budget FAILED: %s\n", what);
      ++budget_failures;
    }
  };
  std::printf("\n%8s %10s %10s %10s %6s %6s %7s %7s\n", "budget", "baseline",
              "spike", "post", "max", "final", "trans", "sheds");
  std::printf("%7.2f%% %9.3f%% %9.3f%% %9.3f%% %6d %6d %7llu %7llu\n",
              budget.budget_fraction * 100.0, budget.baseline_spend * 100.0,
              budget.spike_spend * 100.0, budget.post_spend * 100.0,
              budget.max_level, budget.final_level,
              static_cast<unsigned long long>(budget.transitions),
              static_cast<unsigned long long>(budget.prediction_sheds));
  budget_gate(budget.spike_spend <= spike_limit,
              "spike-phase spend exceeds 1.5x the configured budget");
  budget_gate(budget.max_level >=
                  static_cast<int>(rt::BudgetLevel::kShedPrediction),
              "spike never drove the ladder to the prediction shed");
  budget_gate(budget.shed_order_ok,
              "transition log violates the fixed shed/recovery order");
  budget_gate(budget.recovered,
              "controller did not return to nominal after the spike");
  budget_gate(budget.waitfor_passes_during_spike > 0,
              "wait-for detection stalled during the spike");
  budget_gate(budget.missed_detections == 0,
              "injected fault missed under budget degradation");
  budget_gate(budget.false_positive_monitors == 0,
              "clean monitor reported a fault");
  budget_gate(budget.events_lost == 0, "events lost during the spike");

  // --- Machine-readable artifact. --------------------------------------------
  std::size_t missed_total = 0, false_positive_total = 0;
  std::size_t potential_total = 0;
  std::uint64_t pool_events_lost = 0;
  // The regression-gate summary only considers warm rows (enough checks to
  // amortize cold caches); a one-check M=1 row is a cold-start sample that
  // would inflate the baseline and de-fang the CI gate.
  constexpr std::uint64_t kWarmChecks = 16;
  double max_per_check_ns = 0.0, max_cold_per_check_ns = 0.0;
  for (const PoolRow& row : pool_rows) {
    missed_total += row.result.missed_detections;
    false_positive_total += row.result.false_positive_monitors;
    potential_total += row.result.potential_deadlocks;
    pool_events_lost += row.result.events_lost;
    if (row.result.checks_run >= kWarmChecks) {
      max_per_check_ns = std::max(max_per_check_ns, row.per_check_ns);
    } else {
      max_cold_per_check_ns =
          std::max(max_cold_per_check_ns, row.per_check_ns);
    }
  }
  if (max_per_check_ns == 0.0) max_per_check_ns = max_cold_per_check_ns;

  const std::string out_path = flags.str("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "check_overhead: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"robmon-check-overhead-v3\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(out, "  \"appender\": [\n");
  for (std::size_t i = 0; i < appender_rows.size(); ++i) {
    const AppenderRow& row = appender_rows[i];
    std::fprintf(out,
                 "    {\"impl\": \"%s\", \"threads\": %zu, \"shards\": %zu, "
                 "\"events\": %llu, \"events_per_sec\": %.0f, "
                 "\"events_lost\": %llu, \"contended\": %s, "
                 "\"expect_loss\": %s}%s\n",
                 row.impl.c_str(), row.threads, row.shards,
                 static_cast<unsigned long long>(row.events),
                 row.events_per_sec,
                 static_cast<unsigned long long>(row.events_lost),
                 row.contended ? "true" : "false",
                 row.expect_loss ? "true" : "false",
                 i + 1 < appender_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"pool\": [\n");
  for (std::size_t i = 0; i < pool_rows.size(); ++i) {
    const PoolRow& row = pool_rows[i];
    const wl::MultiLoadResult& r = row.result;
    std::fprintf(
        out,
        "    {\"monitors\": %zu, \"mode\": \"%s\", \"checks\": %llu, "
        "\"per_check_ns\": %.0f, \"quiesce_us\": %.2f, "
        "\"dispatches\": %llu, \"dispatches_per_1k_checks\": %.1f, "
        "\"avg_batch\": %.2f, \"checks_coalesced\": %llu, "
        "\"idle_checks\": %llu, \"events_lost\": %llu, "
        "\"ops_per_sec\": %.0f, "
        "\"faults_expected\": %zu, \"faults_detected\": %zu, "
        "\"missed_detections\": %zu, \"false_positive_monitors\": %zu, "
        "\"lockorder_checkpoints\": %llu, "
        "\"potential_deadlocks\": %zu}%s\n",
        row.monitors, row.mode.c_str(),
        static_cast<unsigned long long>(r.checks_run), row.per_check_ns,
        r.avg_quiesce_us, static_cast<unsigned long long>(r.dispatches),
        r.dispatches_per_1k_checks, r.avg_batch,
        static_cast<unsigned long long>(r.checks_coalesced),
        static_cast<unsigned long long>(r.idle_checks),
        static_cast<unsigned long long>(r.events_lost), r.ops_per_second,
        r.faults_expected, r.faulty_detected, r.missed_detections,
        r.false_positive_monitors,
        static_cast<unsigned long long>(r.lockorder_checkpoints),
        r.potential_deadlocks, i + 1 < pool_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"recovery\": [\n");
  for (std::size_t i = 0; i < recovery_rows.size(); ++i) {
    const RecoveryRow& row = recovery_rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"latency_ms\": %.2f, "
                 "\"actions\": %llu, \"completed\": %s}%s\n",
                 row.mode,
                 static_cast<double>(row.result.recovery_latency_ns) / 1e6,
                 static_cast<unsigned long long>(row.result.recovery_actions),
                 row.result.recovered_rings_completed ? "true" : "false",
                 i + 1 < recovery_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"budget\": {\n");
  std::fprintf(out, "    \"fraction\": %.6f,\n", budget.budget_fraction);
  std::fprintf(out, "    \"baseline_spend\": %.6f,\n", budget.baseline_spend);
  std::fprintf(out, "    \"spike_spend\": %.6f,\n", budget.spike_spend);
  std::fprintf(out, "    \"post_spend\": %.6f,\n", budget.post_spend);
  std::fprintf(out, "    \"spike_limit\": %.6f,\n", spike_limit);
  std::fprintf(out, "    \"max_level\": %d,\n", budget.max_level);
  std::fprintf(out, "    \"final_level\": %d,\n", budget.final_level);
  std::fprintf(out, "    \"transitions\": %llu,\n",
               static_cast<unsigned long long>(budget.transitions));
  std::fprintf(out, "    \"prediction_sheds\": %llu,\n",
               static_cast<unsigned long long>(budget.prediction_sheds));
  std::fprintf(out, "    \"inline_checks\": %llu,\n",
               static_cast<unsigned long long>(budget.inline_checks));
  std::fprintf(out, "    \"inline_flips\": %llu,\n",
               static_cast<unsigned long long>(budget.inline_flips));
  std::fprintf(out, "    \"shed_order_ok\": %s,\n",
               budget.shed_order_ok ? "true" : "false");
  std::fprintf(out, "    \"recovered\": %s,\n",
               budget.recovered ? "true" : "false");
  std::fprintf(out, "    \"waitfor_passes_during_spike\": %llu,\n",
               static_cast<unsigned long long>(
                   budget.waitfor_passes_during_spike));
  std::fprintf(out, "    \"missed_detections\": %zu,\n",
               budget.missed_detections);
  std::fprintf(out, "    \"false_positive_monitors\": %zu,\n",
               budget.false_positive_monitors);
  std::fprintf(out, "    \"events_lost\": %llu\n",
               static_cast<unsigned long long>(budget.events_lost));
  std::fprintf(out, "  },\n");
  std::fprintf(out, "  \"summary\": {\n");
  std::fprintf(out, "    \"missed_detections\": %zu,\n", missed_total);
  std::fprintf(out, "    \"false_positive_monitors\": %zu,\n",
               false_positive_total);
  std::fprintf(out, "    \"potential_deadlocks\": %zu,\n", potential_total);
  std::fprintf(out, "    \"pool_events_lost\": %llu,\n",
               static_cast<unsigned long long>(pool_events_lost));
  std::fprintf(out, "    \"appender_failures\": %zu,\n",
               static_cast<std::size_t>(appender_failed ? 1 : 0));
  std::fprintf(out, "    \"recovery_failures\": %zu,\n",
               static_cast<std::size_t>(recovery_failed ? 1 : 0));
  std::fprintf(out, "    \"budget_failures\": %zu,\n", budget_failures);
  std::fprintf(out, "    \"max_per_check_ns\": %.0f\n", max_per_check_ns);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\ncheck_overhead: wrote %s\n", out_path.c_str());

  if (appender_failed) {
    std::printf("check_overhead: appender loss-contract FAILURES above\n");
    return 1;
  }
  if (detection_failed) {
    std::printf("check_overhead: detection FAILURES above\n");
    return 1;
  }
  if (pool_events_lost > 0) {
    std::printf("check_overhead: FAILED: %llu events lost across pool rows "
                "(drain cadence must keep up; expected 0)\n",
                static_cast<unsigned long long>(pool_events_lost));
    return 1;
  }
  if (recovery_failed) {
    std::printf("check_overhead: recovery contract FAILURES above\n");
    return 1;
  }
  if (budget_failures > 0) {
    std::printf("check_overhead: %zu budget contract FAILURES above\n",
                budget_failures);
    return 1;
  }
  std::printf("check_overhead: zero missed detections, zero events lost\n");
  return 0;
}
