// Checking-engine overhead bench — the machine-readable perf baseline for
// the batched, adaptive-cadence CheckerPool and the block-allocating
// EventLog.  Two sections:
//
//   appender  EventLog::append throughput, T concurrent appender threads,
//             seq_block = 1 (the per-event fetch_add baseline) vs the
//             default block allocation.
//   pool      wl::run_multi_load at M ∈ --monitors for three engine
//             shapes — per-item (max_batch = 1, the pre-batching loop),
//             batched (default), batched+adaptive (--max-stretch) — with
//             injected faults; reports per-check time, dispatches (worker
//             wake-ups) per 1k checks, batch sizes, coalesced deadlines,
//             and the detection scorecard.
//   recovery  wl::run_dining_load with a deterministically deadlocking
//             ring under each recovery remedy (poison / fault / order);
//             reports the detection-to-action latency and enforces the
//             liveness contract (completion, exactly one action, zero
//             false positives).
//
// Emits --out (default BENCH_check_overhead.json); exits non-zero if any
// injected fault is missed or any clean monitor reports one, so CI can use
// the run itself as a detection smoke and the JSON as a regression
// baseline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "trace/event_log.hpp"
#include "util/flags.hpp"
#include "workloads/dining.hpp"
#include "workloads/loadgen.hpp"

using namespace robmon;

namespace {

bool parse_size_list(const std::string& csv, std::vector<std::size_t>* out) {
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != token.size() || value == 0) return false;
    out->push_back(value);
  }
  return !out->empty();
}

struct AppenderRow {
  std::size_t threads = 0;
  std::uint64_t seq_block = 1;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
};

AppenderRow bench_appenders(std::size_t threads, std::uint64_t seq_block,
                            std::uint64_t events_per_thread) {
  trace::EventLog log(/*retain_history=*/false, trace::EventLog::kDefaultShards,
                      seq_block);
  std::vector<std::thread> workers;
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&log, t, events_per_thread] {
      const trace::EventRecord event = trace::EventRecord::enter(
          static_cast<trace::Pid>(t), 0, true, 0);
      for (std::uint64_t i = 0; i < events_per_thread; ++i) {
        log.append(event);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto finished = std::chrono::steady_clock::now();
  (void)log.drain();

  AppenderRow row;
  row.threads = threads;
  row.seq_block = seq_block;
  row.events = static_cast<std::uint64_t>(threads) * events_per_thread;
  const double seconds =
      std::chrono::duration<double>(finished - started).count();
  row.events_per_sec =
      seconds > 0 ? static_cast<double>(row.events) / seconds : 0.0;
  return row;
}

struct PoolRow {
  std::size_t monitors = 0;
  std::string mode;
  wl::MultiLoadResult result;
  double per_check_ns = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("monitors", "1,8,64,256", "comma-separated sweep of M");
  flags.define("threads-per-monitor", "2", "client threads per monitor");
  flags.define("ops-per-thread", "60", "monitor calls per client thread");
  flags.define("faulty-fraction", "0.125",
               "fraction of monitors given one injected fault (min 1)");
  flags.define("pool-threads", "0",
               "K for the shared pool; 0 = hardware concurrency");
  flags.define("check-period-ms", "2", "checking cadence per monitor");
  flags.define("max-stretch", "4",
               "adaptive-cadence ceiling for the adaptive engine shape");
  flags.define("predict-period-ms", "4",
               "lock-order prediction checkpoint cadence (predict shape)");
  flags.define("appender-threads", "1,8",
               "comma-separated appender thread counts");
  flags.define("appender-events", "200000", "events per appender thread");
  flags.define("out", "BENCH_check_overhead.json",
               "machine-readable results file");
  if (!flags.parse(argc, argv)) return 1;

  std::vector<std::size_t> monitor_sweep, appender_sweep;
  if (!parse_size_list(flags.str("monitors"), &monitor_sweep) ||
      !parse_size_list(flags.str("appender-threads"), &appender_sweep)) {
    std::fprintf(stderr,
                 "--monitors/--appender-threads must be comma-separated "
                 "positive integers\n");
    return 1;
  }

  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("check_overhead: hardware concurrency = %u\n", hardware);

  // --- Appender throughput. --------------------------------------------------
  const auto appender_events =
      static_cast<std::uint64_t>(flags.i64("appender-events"));
  std::vector<AppenderRow> appender_rows;
  std::printf("\n%10s %10s %14s %14s\n", "appenders", "seq-block",
              "events", "events/s");
  for (const std::size_t threads : appender_sweep) {
    for (const std::uint64_t block :
         {std::uint64_t{1}, trace::EventLog::kDefaultSeqBlock}) {
      const AppenderRow row = bench_appenders(threads, block, appender_events);
      appender_rows.push_back(row);
      std::printf("%10zu %10llu %14llu %14.0f\n", row.threads,
                  static_cast<unsigned long long>(row.seq_block),
                  static_cast<unsigned long long>(row.events),
                  row.events_per_sec);
    }
  }

  // --- Pool sweep: per-item vs batched vs batched+adaptive vs batched
  // with the lock-order prediction checkpoint on (the "predict" column
  // isolates the per-check fold overhead of the order relation; detection
  // scorecard must stay perfect and zero kPotentialDeadlock may fire).
  struct Shape {
    const char* name;
    std::size_t max_batch;
    double max_stretch;
    bool lockorder;
  };
  const double stretch = flags.f64("max-stretch");
  const Shape shapes[] = {
      {"per-item", 1, 1.0, false},
      {"batched", 0, 1.0, false},
      {"adaptive", 0, stretch, false},
      {"predict", 0, 1.0, true},
  };

  std::vector<PoolRow> pool_rows;
  bool detection_failed = false;
  std::printf(
      "\n%8s %10s %10s %12s %12s %9s %12s %10s %8s\n", "monitors", "mode",
      "checks", "per-chk-us", "disp/1kchk", "avg-batch", "coalesced",
      "faults", "missed");
  for (const std::size_t monitors : monitor_sweep) {
    for (const Shape& shape : shapes) {
      wl::MultiLoadOptions options;
      options.monitors = monitors;
      options.threads_per_monitor =
          static_cast<int>(flags.i64("threads-per-monitor"));
      options.ops_per_thread = flags.i64("ops-per-thread");
      options.faulty_monitors = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(monitors) *
                                      flags.f64("faulty-fraction")));
      options.mode = wl::CheckerMode::kSharedPool;
      options.pool_threads =
          static_cast<std::size_t>(flags.i64("pool-threads"));
      options.check_period = flags.i64("check-period-ms") * util::kMillisecond;
      options.max_batch = shape.max_batch;
      options.max_stretch = shape.max_stretch;
      if (shape.lockorder) {
        options.lockorder_checkpoint_period =
            flags.i64("predict-period-ms") * util::kMillisecond;
      }

      PoolRow row;
      row.monitors = monitors;
      row.mode = shape.name;
      row.result = wl::run_multi_load(options);
      row.per_check_ns = row.result.avg_check_us * 1000.0;
      pool_rows.push_back(row);

      std::printf("%8zu %10s %10llu %12.2f %12.1f %9.1f %12llu %7zu/%zu %8zu\n",
                  monitors, shape.name,
                  static_cast<unsigned long long>(row.result.checks_run),
                  row.result.avg_check_us,
                  row.result.dispatches_per_1k_checks, row.result.avg_batch,
                  static_cast<unsigned long long>(row.result.checks_coalesced),
                  row.result.faulty_detected, row.result.faults_expected,
                  row.result.missed_detections);
      if (row.result.missed_detections > 0 ||
          row.result.false_positive_monitors > 0 ||
          row.result.potential_deadlocks > 0) {
        std::printf(
            "  ^ FAILED: %zu missed, %zu false-positive monitors, "
            "%zu spurious potential-deadlock warnings\n",
            row.result.missed_detections,
            row.result.false_positive_monitors,
            row.result.potential_deadlocks);
        detection_failed = true;
      }
    }
  }

  // --- Recovery latency: deadlock-closed (or prediction-ready) to first
  // recovery action, per remedy, on a deterministically deadlocking ring.
  struct RecoveryRow {
    const char* mode;
    wl::DiningLoadResult result;
    bool ok = false;
  };
  const std::pair<const char*, wl::DiningRecovery> remedies[] = {
      {"poison", wl::DiningRecovery::kPoisonVictim},
      {"fault", wl::DiningRecovery::kDeliverFault},
      {"order", wl::DiningRecovery::kImposeOrder},
  };
  std::vector<RecoveryRow> recovery_rows;
  bool recovery_failed = false;
  std::printf("\n%8s %12s %9s %10s %10s\n", "recovery", "latency-ms",
              "actions", "completed", "unpoison");
  for (const auto& [name, remedy] : remedies) {
    wl::DiningLoadOptions options;
    options.rings = 1;
    options.philosophers = 4;
    options.deadlock_rings = 1;
    options.recovery = remedy;
    options.run_timeout = 20 * util::kSecond;
    RecoveryRow row{name, wl::run_dining_load(options), false};
    row.ok = row.result.recovered_rings_completed &&
             row.result.recovery_actions == 1 &&
             row.result.false_positive_rings == 0 &&
             row.result.missed_detections == 0;
    std::printf("%8s %12.2f %9llu %10s %10llu%s\n", row.mode,
                static_cast<double>(row.result.recovery_latency_ns) / 1e6,
                static_cast<unsigned long long>(row.result.recovery_actions),
                row.result.recovered_rings_completed ? "yes" : "NO",
                static_cast<unsigned long long>(
                    row.result.monitors_unpoisoned),
                row.ok ? "" : "  ^ FAILED");
    if (!row.ok) recovery_failed = true;
    recovery_rows.push_back(std::move(row));
  }

  // --- Machine-readable artifact. --------------------------------------------
  std::size_t missed_total = 0, false_positive_total = 0;
  std::size_t potential_total = 0;
  // The regression-gate summary only considers warm rows (enough checks to
  // amortize cold caches); a one-check M=1 row is a cold-start sample that
  // would inflate the baseline and de-fang the CI gate.
  constexpr std::uint64_t kWarmChecks = 16;
  double max_per_check_ns = 0.0, max_cold_per_check_ns = 0.0;
  for (const PoolRow& row : pool_rows) {
    missed_total += row.result.missed_detections;
    false_positive_total += row.result.false_positive_monitors;
    potential_total += row.result.potential_deadlocks;
    if (row.result.checks_run >= kWarmChecks) {
      max_per_check_ns = std::max(max_per_check_ns, row.per_check_ns);
    } else {
      max_cold_per_check_ns =
          std::max(max_cold_per_check_ns, row.per_check_ns);
    }
  }
  if (max_per_check_ns == 0.0) max_per_check_ns = max_cold_per_check_ns;

  const std::string out_path = flags.str("out");
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "check_overhead: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"robmon-check-overhead-v1\",\n");
  std::fprintf(out, "  \"hardware_concurrency\": %u,\n", hardware);
  std::fprintf(out, "  \"appender\": [\n");
  for (std::size_t i = 0; i < appender_rows.size(); ++i) {
    const AppenderRow& row = appender_rows[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"seq_block\": %llu, "
                 "\"events\": %llu, \"events_per_sec\": %.0f}%s\n",
                 row.threads, static_cast<unsigned long long>(row.seq_block),
                 static_cast<unsigned long long>(row.events),
                 row.events_per_sec,
                 i + 1 < appender_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"pool\": [\n");
  for (std::size_t i = 0; i < pool_rows.size(); ++i) {
    const PoolRow& row = pool_rows[i];
    const wl::MultiLoadResult& r = row.result;
    std::fprintf(
        out,
        "    {\"monitors\": %zu, \"mode\": \"%s\", \"checks\": %llu, "
        "\"per_check_ns\": %.0f, \"quiesce_us\": %.2f, "
        "\"dispatches\": %llu, \"dispatches_per_1k_checks\": %.1f, "
        "\"avg_batch\": %.2f, \"checks_coalesced\": %llu, "
        "\"idle_checks\": %llu, \"ops_per_sec\": %.0f, "
        "\"faults_expected\": %zu, \"faults_detected\": %zu, "
        "\"missed_detections\": %zu, \"false_positive_monitors\": %zu, "
        "\"lockorder_checkpoints\": %llu, "
        "\"potential_deadlocks\": %zu}%s\n",
        row.monitors, row.mode.c_str(),
        static_cast<unsigned long long>(r.checks_run), row.per_check_ns,
        r.avg_quiesce_us, static_cast<unsigned long long>(r.dispatches),
        r.dispatches_per_1k_checks, r.avg_batch,
        static_cast<unsigned long long>(r.checks_coalesced),
        static_cast<unsigned long long>(r.idle_checks), r.ops_per_second,
        r.faults_expected, r.faulty_detected, r.missed_detections,
        r.false_positive_monitors,
        static_cast<unsigned long long>(r.lockorder_checkpoints),
        r.potential_deadlocks, i + 1 < pool_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"recovery\": [\n");
  for (std::size_t i = 0; i < recovery_rows.size(); ++i) {
    const RecoveryRow& row = recovery_rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"latency_ms\": %.2f, "
                 "\"actions\": %llu, \"completed\": %s}%s\n",
                 row.mode,
                 static_cast<double>(row.result.recovery_latency_ns) / 1e6,
                 static_cast<unsigned long long>(row.result.recovery_actions),
                 row.result.recovered_rings_completed ? "true" : "false",
                 i + 1 < recovery_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"summary\": {\n");
  std::fprintf(out, "    \"missed_detections\": %zu,\n", missed_total);
  std::fprintf(out, "    \"false_positive_monitors\": %zu,\n",
               false_positive_total);
  std::fprintf(out, "    \"potential_deadlocks\": %zu,\n", potential_total);
  std::fprintf(out, "    \"recovery_failures\": %zu,\n",
               static_cast<std::size_t>(recovery_failed ? 1 : 0));
  std::fprintf(out, "    \"max_per_check_ns\": %.0f\n", max_per_check_ns);
  std::fprintf(out, "  }\n");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\ncheck_overhead: wrote %s\n", out_path.c_str());

  if (detection_failed) {
    std::printf("check_overhead: detection FAILURES above\n");
    return 1;
  }
  if (recovery_failed) {
    std::printf("check_overhead: recovery contract FAILURES above\n");
    return 1;
  }
  std::printf("check_overhead: zero missed detections in every shape\n");
  return 0;
}
