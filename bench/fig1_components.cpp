// Figure 1, quantified: per-component microbenchmarks of the augmented
// monitor construct's functional units — the monitor primitives, the
// data-gathering routine, the history database, the scheduling-state
// snapshot, and the three checking routines (Algorithms 1-3).
//
// Uses google-benchmark; one benchmark per architectural box.
#include <benchmark/benchmark.h>

#include "core/algorithms.hpp"
#include "core/detector.hpp"
#include "pathexpr/matcher.hpp"
#include "runtime/hoare_monitor.hpp"
#include "trace/event_log.hpp"

namespace {

using namespace robmon;

/// Discards reports (benchmarks measure rule evaluation, not sinks).
class DiscardSink final : public core::ReportSink {
 public:
  void report(const core::FaultReport&) override {}
};

// --- Monitor primitives: bare vs instrumented. ------------------------------

void BM_MonitorOp_Bare(benchmark::State& state) {
  const util::SteadyClock& clock = util::SteadyClock::instance();
  rt::HoareMonitor monitor(core::MonitorSpec::manager("bare"), clock,
                           inject::NullInjection::instance(),
                           rt::Instrumentation::kOff);
  const trace::SymbolId op = monitor.symbols().intern("Op");
  for (auto _ : state) {
    monitor.enter(1, op);
    monitor.exit(1);
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MonitorOp_Bare);

void BM_MonitorOp_Instrumented(benchmark::State& state) {
  const util::SteadyClock& clock = util::SteadyClock::instance();
  rt::HoareMonitor monitor(core::MonitorSpec::manager("instr"), clock,
                           inject::NullInjection::instance(),
                           rt::Instrumentation::kFull);
  const trace::SymbolId op = monitor.symbols().intern("Op");
  for (auto _ : state) {
    monitor.enter(1, op);
    monitor.exit(1);
    if (monitor.log().pending() > 65536) monitor.log().drain();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MonitorOp_Instrumented);

// --- History database. -------------------------------------------------------

void BM_EventLogAppend(benchmark::State& state) {
  trace::EventLog log;
  const auto event = trace::EventRecord::enter(1, 0, true, 42);
  for (auto _ : state) {
    log.append(event);
    if (log.pending() > 65536) log.drain();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventLogAppend);

void BM_EventLogSegmentCycle(benchmark::State& state) {
  // One gathering period: append a segment, then the checker drains it.
  trace::EventLog log;
  const auto event = trace::EventRecord::enter(1, 0, true, 42);
  const auto segment = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    for (std::size_t i = 0; i < segment; ++i) log.append(event);
    benchmark::DoNotOptimize(log.drain());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(segment));
}
BENCHMARK(BM_EventLogSegmentCycle)->Arg(256)->Arg(4096);

// --- Scheduling-state snapshot. ----------------------------------------------

void BM_Snapshot(benchmark::State& state) {
  const util::SteadyClock& clock = util::SteadyClock::instance();
  rt::HoareMonitor monitor(core::MonitorSpec::coordinator("snap", 8), clock);
  monitor.symbols().intern("Send");
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.snapshot());
  }
}
BENCHMARK(BM_Snapshot);

// --- Checking routines vs segment length. ------------------------------------

/// A consistent enter/exit event segment for one process.
std::vector<trace::EventRecord> make_segment(std::size_t pairs,
                                             trace::SymbolId proc) {
  std::vector<trace::EventRecord> events;
  events.reserve(pairs * 2);
  util::TimeNs t = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    events.push_back(trace::EventRecord::enter(1, proc, true, ++t));
    events.push_back(trace::EventRecord::signal_exit(
        1, proc, trace::kNoSymbol, false, ++t));
  }
  return events;
}

void BM_Algorithm1(benchmark::State& state) {
  core::MonitorSpec spec = core::MonitorSpec::manager("a1");
  spec.t_max = spec.t_io = 3600 * util::kSecond;
  trace::SymbolTable symbols;
  const trace::SymbolId op = symbols.intern("Op");
  DiscardSink sink;
  const auto events =
      make_segment(static_cast<std::size_t>(state.range(0)) / 2, op);
  const trace::SchedulingState empty;
  for (auto _ : state) {
    const auto ctx = core::CheckContext::make(spec, symbols, 1000, sink);
    benchmark::DoNotOptimize(
        core::run_algorithm1(ctx, empty, empty, events));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Algorithm1)->Arg(64)->Arg(1024)->Arg(8192);

void BM_Algorithm2(benchmark::State& state) {
  core::MonitorSpec spec = core::MonitorSpec::coordinator("a2", 8);
  trace::SymbolTable symbols;
  const trace::SymbolId send = symbols.intern(spec.send_procedure);
  const trace::SymbolId receive = symbols.intern(spec.receive_procedure);
  const trace::SymbolId empty_c = symbols.intern(spec.empty_condition);
  const trace::SymbolId full_c = symbols.intern(spec.full_condition);
  DiscardSink sink;
  std::vector<trace::EventRecord> events;
  util::TimeNs t = 0;
  for (std::int64_t i = 0; i < state.range(0) / 2; ++i) {
    events.push_back(
        trace::EventRecord::signal_exit(1, send, empty_c, false, ++t));
    events.push_back(
        trace::EventRecord::signal_exit(2, receive, full_c, false, ++t));
  }
  trace::SchedulingState prev;
  prev.resources = 8;
  trace::SchedulingState cur = prev;
  for (auto _ : state) {
    core::ResourceCounters counters;
    const auto ctx = core::CheckContext::make(spec, symbols, 1000, sink);
    benchmark::DoNotOptimize(
        core::run_algorithm2(ctx, prev, cur, events, counters));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Algorithm2)->Arg(64)->Arg(1024)->Arg(8192);

void BM_Algorithm3(benchmark::State& state) {
  core::MonitorSpec spec = core::MonitorSpec::allocator("a3");
  spec.t_limit = 3600 * util::kSecond;
  trace::SymbolTable symbols;
  const trace::SymbolId acquire = symbols.intern(spec.acquire_procedure);
  const trace::SymbolId release = symbols.intern(spec.release_procedure);
  DiscardSink sink;
  std::vector<trace::EventRecord> events;
  util::TimeNs t = 0;
  for (std::int64_t i = 0; i < state.range(0) / 4; ++i) {
    events.push_back(trace::EventRecord::enter(1, acquire, true, ++t));
    events.push_back(trace::EventRecord::signal_exit(
        1, acquire, trace::kNoSymbol, false, ++t));
    events.push_back(trace::EventRecord::enter(1, release, true, ++t));
    events.push_back(trace::EventRecord::signal_exit(
        1, release, trace::kNoSymbol, false, ++t));
  }
  for (auto _ : state) {
    core::RequestList requests;
    const auto ctx = core::CheckContext::make(spec, symbols, 1000, sink);
    benchmark::DoNotOptimize(core::run_algorithm3(ctx, events, requests));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Algorithm3)->Arg(64)->Arg(1024)->Arg(8192);

// --- Real-time phase. ----------------------------------------------------------

void BM_PathExprAdvance(benchmark::State& state) {
  const pathexpr::CallOrderSpec spec("(Acquire ; Release)*");
  pathexpr::Matcher matcher = spec.matcher();
  const std::string acquire = "Acquire";
  const std::string release = "Release";
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.advance(acquire));
    benchmark::DoNotOptimize(matcher.advance(release));
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_PathExprAdvance);

}  // namespace

BENCHMARK_MAIN();
