// Ablation: the checking-interval trade-off of Section 3.3 — "When T = 1,
// the checking becomes real-time" but costs more; larger T amortizes the
// checking routine at the price of detection latency and of post-checking
// accuracy.
//
// Part A (deterministic simulator): detection latency, in virtual
// milliseconds, of a representative non-timer fault under decreasing T.
// Part B (real threads): throughput overhead of the same interval sweep,
// plus the effect of the paper's "suspend everything while checking" design
// against the release-after-snapshot variant.
#include <cstdio>
#include <vector>

#include "util/flags.hpp"
#include "util/stats.hpp"
#include "workloads/loadgen.hpp"
#include "workloads/sim_scenarios.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("trials", "5", "seeds per latency cell");
  flags.define("ops", "3000", "operations per worker (part B)");
  if (!flags.parse(argc, argv)) return 2;
  const auto trials = static_cast<std::uint64_t>(flags.i64("trials"));

  // --- Part A: detection latency vs T (virtual time). -----------------------
  std::printf("Part A: detection latency vs checking interval "
              "(fault II.a send-delay-wrong, %llu seeds, simulator)\n\n",
              static_cast<unsigned long long>(trials));
  std::printf("%-14s %-18s %-14s\n", "T (virtual)", "mean latency",
              "checks to detect");
  const std::vector<util::TimeNs> intervals = {
      2 * util::kMillisecond, 5 * util::kMillisecond,
      15 * util::kMillisecond, 30 * util::kMillisecond,
      60 * util::kMillisecond};
  for (const util::TimeNs interval : intervals) {
    util::RunningStats latency_ms;
    util::RunningStats checks;
    for (std::uint64_t seed = 1; seed <= trials; ++seed) {
      wl::CoverageConfig config;
      config.check_period = interval;
      // Keep T > Tmax only when it fits the paper's constraint; for the
      // small-T arms this deliberately enters the near-real-time regime.
      const wl::CoverageOutcome outcome = wl::run_coverage_trial(
          core::FaultKind::kSendDelayWrong, seed, config);
      if (outcome.injected && outcome.detected) {
        latency_ms.add(static_cast<double>(outcome.detection_check) *
                       static_cast<double>(interval) / 1e6);
        checks.add(static_cast<double>(outcome.detection_check));
      }
    }
    std::printf("%10.0f ms  %12.1f ms  %10.1f\n",
                static_cast<double>(interval) / 1e6, latency_ms.mean(),
                checks.mean());
  }

  // --- Part B: overhead vs T and the gate-holding ablation. ------------------
  std::printf("\nPart B: throughput vs checking interval "
              "(coordinator, 4 threads, real time)\n\n");
  std::printf("%-14s %-16s %-16s %-16s\n", "T", "hold-gate (paper)",
              "release-early", "no checking");
  const std::vector<util::TimeNs> wall_intervals = {
      25 * util::kMillisecond, 50 * util::kMillisecond,
      100 * util::kMillisecond, 200 * util::kMillisecond};
  for (const util::TimeNs interval : wall_intervals) {
    double results[3] = {0, 0, 0};
    for (int variant = 0; variant < 3; ++variant) {
      wl::LoadOptions options;
      options.type = core::MonitorType::kCommunicationCoordinator;
      options.workers = 4;
      options.ops_per_worker = flags.i64("ops");
      options.check_period = interval;
      options.periodic_checking = variant != 2;
      options.hold_gate_during_check = variant == 0;
      results[variant] = wl::run_load(options).ops_per_second;
    }
    std::printf("%10.0fms  %11.0f op/s %11.0f op/s %11.0f op/s\n",
                static_cast<double>(interval) / 1e6, results[0], results[1],
                results[2]);
  }
  std::printf("\n(smaller T -> more checking-routine invocations -> lower "
              "throughput; the paper's full suspension costs more than "
              "releasing the gate after the snapshot)\n");
  return 0;
}
