// Table 1 reproduction: run-time overhead of the augmented monitor
// construct as a function of the checking interval T.
//
// The paper reports, per monitor type, the "average ratio between the time
// spent on executing monitor operations with the extension and that without
// the extension" for T in 0.5s..3.0s, observing ~7.4x at T=0.5s falling to
// ~4.0-4.6x at T=3.0s.
//
// The overhead decomposes as  ratio(T) = 1 + g*r + c*r + f/T  where g is
// the per-event gathering cost, c the per-event checking cost, r the event
// rate, and f the fixed per-check cost (quiescing every process, taking the
// snapshot).  The *decreasing-in-T* shape comes from f/T.  On the paper's
// 2001 JVM both f (Thread.suspend on every process) and g,c were enormous,
// giving ratios of 4-7.5x; on modern C++ the same mechanism costs far less,
// so we scale the interval axis by 1/500 (T = 1..6 ms) to keep f/T in the
// observable regime, and we verify the paper's two qualitative claims:
// the extension always costs throughput, and the cost falls as T grows.
#include <cstdio>
#include <vector>

#include "util/flags.hpp"
#include "util/stats.hpp"
#include "workloads/loadgen.hpp"

using namespace robmon;

namespace {

wl::LoadOptions base_options(core::MonitorType type,
                             std::int64_t ops_per_worker) {
  wl::LoadOptions options;
  options.type = type;
  options.workers = 4;
  options.ops_per_worker = ops_per_worker;
  options.instrumentation = rt::Instrumentation::kOff;
  options.periodic_checking = false;
  return options;
}

/// Ops per worker so one run lasts roughly `target_seconds`.
std::int64_t calibrate(core::MonitorType type, double target_seconds) {
  const wl::LoadResult probe = wl::run_load(base_options(type, 4000));
  const double rate = probe.ops_per_second;           // total ops/s
  const double total = rate * target_seconds;
  return std::max<std::int64_t>(2000, static_cast<std::int64_t>(total / 4));
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("duration", "1.2", "target seconds per measured run");
  flags.define("reps", "2", "repetitions per cell");
  if (!flags.parse(argc, argv)) return 2;
  const double duration = flags.f64("duration");
  const int reps = static_cast<int>(flags.i64("reps"));

  const std::vector<double> paper_axis = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0};
  constexpr double kScale = 1.0 / 500.0;  // paper seconds -> our seconds
  const std::vector<core::MonitorType> types = {
      core::MonitorType::kCommunicationCoordinator,
      core::MonitorType::kResourceAllocator,
      core::MonitorType::kOperationManager};

  std::printf("Table 1: overhead ratio (with extension / without) vs "
              "checking interval T\n");
  std::printf("(T axis = paper axis x 1/500, i.e. 1..6 ms; 4 workers; "
              "~%.1fs per run; %d reps)\n\n",
              duration, reps);
  std::printf("%-22s %-20s %-20s %-20s\n", "T (paper -> ours)",
              "coordinator", "allocator", "manager");

  // Baselines are T-independent: one per type (averaged over reps).
  std::vector<double> baseline(types.size(), 0.0);
  std::vector<std::int64_t> ops(types.size(), 0);
  for (std::size_t t = 0; t < types.size(); ++t) {
    ops[t] = calibrate(types[t], duration);
    util::RunningStats stats;
    for (int rep = 0; rep < reps; ++rep) {
      stats.add(wl::run_load(base_options(types[t], ops[t])).ops_per_second);
    }
    baseline[t] = stats.mean();
  }

  std::vector<std::vector<double>> grid;
  for (const double paper_seconds : paper_axis) {
    const auto interval =
        static_cast<util::TimeNs>(paper_seconds * kScale * 1e9);
    std::printf("%5.1fs -> %4.0fms      ", paper_seconds,
                static_cast<double>(interval) / 1e6);
    std::vector<double> row;
    for (std::size_t t = 0; t < types.size(); ++t) {
      util::RunningStats ratios;
      for (int rep = 0; rep < reps; ++rep) {
        wl::LoadOptions options = base_options(types[t], ops[t]);
        options.instrumentation = rt::Instrumentation::kFull;
        options.periodic_checking = true;
        options.check_period = interval;
        const wl::LoadResult run = wl::run_load(options);
        if (run.ops_per_second > 0) {
          ratios.add(baseline[t] / run.ops_per_second);
        }
      }
      row.push_back(ratios.mean());
      std::printf("%8.3fx            ", ratios.mean());
      std::fflush(stdout);
    }
    grid.push_back(row);
    std::printf("\n");
  }

  // The paper's qualitative claims, with a noise allowance on monotonicity.
  bool always_overhead = true;
  for (const auto& row : grid) {
    for (const double r : row) always_overhead = always_overhead && r > 1.0;
  }
  int decreasing_types = 0;
  for (std::size_t t = 0; t < types.size(); ++t) {
    // Average of the two smallest T vs the two largest T.
    const double small = (grid[0][t] + grid[1][t]) / 2.0;
    const double large =
        (grid[grid.size() - 1][t] + grid[grid.size() - 2][t]) / 2.0;
    if (large <= small * 1.02) ++decreasing_types;
  }
  std::printf("\nshape checks (paper's qualitative claims):\n");
  std::printf("  extension always costs something (ratio > 1):       %s\n",
              always_overhead ? "PASS" : "FAIL");
  std::printf("  overhead falls (or is flat) as T grows, per type:   %d/3\n",
              decreasing_types);
  std::printf("\n(absolute ratios are substrate-bound: the paper's JVM-2001 "
              "prototype paid 4-7.5x; modern C++ gathering costs ~1.1-1.5x. "
              "See EXPERIMENTS.md.)\n");
  return always_overhead && decreasing_types >= 2 ? 0 : 1;
}
