// Interposition-adapter overhead bench — the cost the LD_PRELOAD shim adds
// to an application's mutex traffic, measured at the SyntheticMonitor
// producer surface (one lock-free ring push per adapted operation).  Rows:
//
//   pthread_baseline   an uncontended pthread_mutex lock/unlock pair with
//                      no adaptation — what the host paid before the shim
//   adapter_push       the lock_acquired + unlocked push pair alone (ring
//                      drained concurrently, steady state: the pure
//                      per-operation adapter cost)
//   adapter_backpressure  the same pair against a deliberately tiny ring
//                      with no drainer: every push folds the backlog
//                      inline — the documented worst case, bounded and
//                      loss-free (asserted: events_lost == 0)
//   adapter_mt(T)      T producer threads pushing through one monitor
//                      concurrently (the MPSC contention shape)
//
// Human-readable table only — the shim's end-to-end acceptance runs live
// in CI (the vanilla dining clean/deadlock legs); this bench is for sizing
// the per-operation cost, not for gating.
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "interpose/synthetic_monitor.hpp"
#include "util/clock.hpp"
#include "util/flags.hpp"

namespace {

using robmon::interpose::SyntheticMonitor;

double ns_per_op(std::chrono::steady_clock::time_point start,
                 std::chrono::steady_clock::time_point stop,
                 std::int64_t operations) {
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start);
  return static_cast<double>(elapsed.count()) /
         static_cast<double>(operations);
}

SyntheticMonitor::Config config_with_ring(std::size_t capacity) {
  SyntheticMonitor::Config config;
  config.ring_capacity = capacity;
  return config;
}

double bench_pthread_baseline(std::int64_t iters) {
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) {
    pthread_mutex_lock(&mutex);
    pthread_mutex_unlock(&mutex);
  }
  const auto stop = std::chrono::steady_clock::now();
  pthread_mutex_destroy(&mutex);
  return ns_per_op(start, stop, 2 * iters);
}

double bench_adapter_push(std::int64_t iters) {
  SyntheticMonitor monitor("bench", SyntheticMonitor::Kind::kMutex,
                           robmon::util::SteadyClock::instance(),
                           config_with_ring(1 << 16));
  // A steady-state drainer stands in for the pool's periodic drain: the
  // producer should almost never find the ring full.
  std::atomic<bool> stop_drain{false};
  std::thread drainer([&] {
    while (!stop_drain.load(std::memory_order_acquire)) {
      (void)monitor.drain_segment();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) {
    monitor.lock_acquired(1);
    monitor.unlocked(1);
  }
  const auto stop = std::chrono::steady_clock::now();
  stop_drain.store(true, std::memory_order_release);
  drainer.join();
  return ns_per_op(start, stop, 2 * iters);
}

double bench_adapter_backpressure(std::int64_t iters) {
  SyntheticMonitor monitor("bench", SyntheticMonitor::Kind::kMutex,
                           robmon::util::SteadyClock::instance(),
                           config_with_ring(2));
  const auto start = std::chrono::steady_clock::now();
  for (std::int64_t i = 0; i < iters; ++i) {
    monitor.lock_acquired(1);
    monitor.unlocked(1);
  }
  const auto stop = std::chrono::steady_clock::now();
  if (monitor.events_lost() != 0) {
    std::fprintf(stderr, "backpressure dropped events: %llu\n",
                 static_cast<unsigned long long>(monitor.events_lost()));
    std::exit(1);
  }
  return ns_per_op(start, stop, 2 * iters);
}

double bench_adapter_mt(std::int64_t iters, int threads) {
  SyntheticMonitor monitor("bench", SyntheticMonitor::Kind::kMutex,
                           robmon::util::SteadyClock::instance(),
                           config_with_ring(1 << 16));
  std::atomic<bool> stop_drain{false};
  std::thread drainer([&] {
    while (!stop_drain.load(std::memory_order_acquire)) {
      (void)monitor.drain_segment();
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  const std::int64_t per_thread = iters / threads;
  std::vector<std::thread> producers;
  const auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < threads; ++t) {
    producers.emplace_back([&, t] {
      const robmon::Tid tid = static_cast<robmon::Tid>(t + 1);
      for (std::int64_t i = 0; i < per_thread; ++i) {
        monitor.lock_blocked(tid);
        monitor.lock_cancelled(tid);
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  const auto stop = std::chrono::steady_clock::now();
  stop_drain.store(true, std::memory_order_release);
  drainer.join();
  return ns_per_op(start, stop, 2 * per_thread * threads);
}

}  // namespace

int main(int argc, char** argv) {
  robmon::util::Flags flags;
  flags.define("iters", "200000", "operations pairs per row");
  flags.define("threads", "4", "producer threads for the contended row");
  if (!flags.parse(argc, argv)) return 2;
  const std::int64_t iters = flags.i64("iters");
  const int threads = static_cast<int>(flags.i64("threads"));

  const double baseline = bench_pthread_baseline(iters);
  const double push = bench_adapter_push(iters);
  const double backpressure = bench_adapter_backpressure(iters);
  const double contended = bench_adapter_mt(iters, threads);

  std::printf("%-24s %10s %12s\n", "row", "ns/op", "vs baseline");
  std::printf("%-24s %10.1f %12s\n", "pthread_baseline", baseline, "1.00x");
  std::printf("%-24s %10.1f %11.2fx\n", "adapter_push", push,
              push / baseline);
  std::printf("%-24s %10.1f %11.2fx\n", "adapter_backpressure", backpressure,
              backpressure / baseline);
  std::printf("adapter_mt(%-2d)           %10.1f %11.2fx\n", threads,
              contended, contended / baseline);
  return 0;
}
