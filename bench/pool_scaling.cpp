// CheckerPool scaling sweep: M monitors under concurrent client traffic,
// comparing the original one-detection-thread-per-monitor architecture
// against the shared deadline-scheduled CheckerPool (K ≤ hardware
// concurrency workers).
//
// For each M in --monitors the bench runs both modes over the same
// injected-fault workload (a subset of monitors gets one deterministic
// fault) and reports client throughput, checking throughput, the
// gate-exclusive quiesce window, and — the point of the refactor — the
// number of detection threads provisioned.  The run fails (non-zero exit)
// if any injected fault goes undetected or a clean monitor reports one.
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/flags.hpp"
#include "workloads/loadgen.hpp"

using namespace robmon;

namespace {

/// Parses "1,8,64"; returns false on any token that is not a positive
/// integer.
bool parse_monitor_list(const std::string& csv, std::vector<std::size_t>* out) {
  std::stringstream stream(csv);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (token.empty()) continue;
    std::size_t consumed = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &consumed);
    } catch (const std::exception&) {
      return false;
    }
    if (consumed != token.size() || value == 0) return false;
    out->push_back(value);
  }
  return !out->empty();
}

const char* mode_name(wl::CheckerMode mode) {
  return mode == wl::CheckerMode::kSharedPool ? "shared-pool" : "per-monitor";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("monitors", "1,8,64,256", "comma-separated sweep of M");
  flags.define("threads-per-monitor", "2", "client threads per monitor");
  flags.define("ops-per-thread", "60", "monitor calls per client thread");
  flags.define("faulty-fraction", "0.125",
               "fraction of monitors given one injected fault (min 1)");
  flags.define("pool-threads", "0",
               "K for the shared pool; 0 = hardware concurrency");
  flags.define("check-period-ms", "2", "checking cadence per monitor");
  if (!flags.parse(argc, argv)) return 1;

  std::vector<std::size_t> sweep;
  if (!parse_monitor_list(flags.str("monitors"), &sweep)) {
    std::fprintf(stderr,
                 "--monitors must be a comma-separated list of positive "
                 "integers, got '%s'\n",
                 flags.str("monitors").c_str());
    return 1;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  std::printf("pool_scaling: hardware concurrency = %u\n", hardware);
  std::printf(
      "%8s %12s %9s %12s %10s %12s %12s %10s\n", "monitors", "mode",
      "chk-thrd", "client-ops/s", "checks/s", "quiesce-us", "faults",
      "missed");

  bool detection_failed = false;
  for (const std::size_t monitors : sweep) {
    for (const wl::CheckerMode mode :
         {wl::CheckerMode::kThreadPerMonitor, wl::CheckerMode::kSharedPool}) {
      wl::MultiLoadOptions options;
      options.monitors = monitors;
      options.threads_per_monitor =
          static_cast<int>(flags.i64("threads-per-monitor"));
      options.ops_per_thread = flags.i64("ops-per-thread");
      options.faulty_monitors = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(monitors) * flags.f64("faulty-fraction")));
      options.mode = mode;
      options.pool_threads =
          static_cast<std::size_t>(flags.i64("pool-threads"));
      options.check_period =
          flags.i64("check-period-ms") * util::kMillisecond;

      const wl::MultiLoadResult result = wl::run_multi_load(options);
      std::printf("%8zu %12s %9zu %12.0f %10.0f %12.2f %7zu/%zu %10zu\n",
                  monitors, mode_name(mode), result.checker_threads,
                  result.ops_per_second, result.checks_per_second,
                  result.avg_quiesce_us, result.faulty_detected,
                  result.faults_expected, result.missed_detections);
      if (result.missed_detections > 0 ||
          result.false_positive_monitors > 0) {
        std::printf("  ^ FAILED: %zu missed, %zu false-positive monitors\n",
                    result.missed_detections,
                    result.false_positive_monitors);
        detection_failed = true;
      }
    }
  }
  if (detection_failed) {
    std::printf("pool_scaling: detection FAILURES above\n");
    return 1;
  }
  std::printf("pool_scaling: zero missed detections in every configuration\n");
  return 0;
}
