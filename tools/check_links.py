#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked *.md file for inline links and reference-style link
targets, and verifies that each RELATIVE target (no URL scheme, not a bare
#anchor) resolves to an existing file or directory, after stripping any
#fragment.  External http(s)/mailto links are ignored — CI must not flake
on the network.

Usage: python3 tools/check_links.py [root]
Exit status: 0 = all links resolve, 1 = broken links (listed on stderr).
"""

import os
import re
import subprocess
import sys

# Inline [text](target) links; images ![alt](target) match too via the
# optional leading "!".  Angle-bracketed targets <...> are unwrapped.
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^()\s]+(?:\([^()]*\))?)\)")
SCHEME = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def tracked_markdown(root):
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=root, capture_output=True, text=True, check=True)
    return sorted(set(line for line in out.stdout.splitlines() if line))


def check_file(root, path):
    broken = []
    text = open(os.path.join(root, path), encoding="utf-8").read()
    # Skip fenced code blocks: ``` samples often contain [x](y) shapes that
    # are code, not links.  Replace each block with its own newlines so the
    # reported line numbers stay correct after the removal.
    text = re.sub(r"```.*?```", lambda m: "\n" * m.group(0).count("\n"),
                  text, flags=re.DOTALL)
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in INLINE_LINK.finditer(line):
            target = match.group(1).strip("<>")
            if SCHEME.match(target) or target.startswith("#"):
                continue
            resolved = os.path.normpath(
                os.path.join(root, os.path.dirname(path),
                             target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                broken.append((lineno, target))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    failures = 0
    files = tracked_markdown(root)
    for path in files:
        for lineno, target in check_file(root, path):
            print(f"{path}:{lineno}: broken link -> {target}",
                  file=sys.stderr)
            failures += 1
    print(f"check_links: {len(files)} markdown files scanned, "
          f"{failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
