#include "core/checking_lists.hpp"

#include <algorithm>

namespace robmon::core {

CheckingLists CheckingLists::from_state(const trace::SchedulingState& prev) {
  CheckingLists lists;
  for (const auto& entry : prev.entry_queue) {
    lists.enter_zero.push_back({entry.pid, entry.proc, entry.enqueued_at});
  }
  for (const auto& queue : prev.cond_queues) {
    auto& rebuilt = lists.wait_cond[queue.cond];
    for (const auto& entry : queue.entries) {
      rebuilt.push_back({entry.pid, entry.proc, entry.enqueued_at});
    }
  }
  if (prev.has_running()) {
    lists.running.push_back(
        {prev.running, prev.running_proc, prev.running_since});
  }
  lists.resource_no = prev.resources;
  return lists;
}

bool CheckingLists::pid_blocked(trace::Pid pid) const {
  for (const auto& entry : enter_zero) {
    if (entry.pid == pid) return true;
  }
  for (const auto& [cond, queue] : wait_cond) {
    for (const auto& entry : queue) {
      if (entry.pid == pid) return true;
    }
  }
  return false;
}

bool CheckingLists::pid_running(trace::Pid pid) const {
  return std::any_of(running.begin(), running.end(),
                     [pid](const ListEntry& e) { return e.pid == pid; });
}

bool CheckingLists::remove_running(trace::Pid pid) {
  const auto it =
      std::find_if(running.begin(), running.end(),
                   [pid](const ListEntry& e) { return e.pid == pid; });
  if (it == running.end()) return false;
  running.erase(it);
  return true;
}

bool lists_match(const std::deque<ListEntry>& rebuilt,
                 const std::vector<trace::QueueEntry>& actual) {
  if (rebuilt.size() != actual.size()) return false;
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    if (rebuilt[i].pid != actual[i].pid) return false;
    if (rebuilt[i].proc != actual[i].proc) return false;
  }
  return true;
}

}  // namespace robmon::core
