#include "core/fd_rules.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "core/lockorder.hpp"
#include "core/waitfor.hpp"

namespace robmon::core {

namespace {

using trace::EventKind;
using trace::EventRecord;
using trace::kNoPid;
using trace::kNoSymbol;
using trace::Pid;
using trace::QueueEntry;
using trace::SchedulingState;
using trace::SymbolId;

bool in_queue(const std::vector<QueueEntry>& queue, Pid pid) {
  for (const auto& entry : queue) {
    if (entry.pid == pid) return true;
  }
  return false;
}

/// True if pid is "inside" the monitor in state s: running or waiting on a
/// condition queue (Hoare's notion; a condition waiter has not left).
bool inside(const SchedulingState& s, Pid pid) {
  if (s.running == pid) return true;
  for (const auto& queue : s.cond_queues) {
    if (in_queue(queue.entries, pid)) return true;
  }
  return false;
}

class FdValidator {
 public:
  FdValidator(const MonitorSpec& spec, trace::SymbolTable& symbols,
              const std::vector<EventRecord>& events,
              const std::vector<SchedulingState>& states,
              util::TimeNs final_time)
      : spec_(spec),
        events_(events),
        states_(states),
        final_time_(final_time) {
    send_proc_ = symbols.intern(spec.send_procedure);
    receive_proc_ = symbols.intern(spec.receive_procedure);
    full_cond_ = symbols.intern(spec.full_condition);
    empty_cond_ = symbols.intern(spec.empty_condition);
    acquire_proc_ = symbols.intern(spec.acquire_procedure);
    release_proc_ = symbols.intern(spec.release_procedure);
  }

  std::vector<FaultReport> run() {
    rule1();
    rule2();
    rule3();
    rule4();
    rule5();
    if (spec_.type == MonitorType::kCommunicationCoordinator) rule6();
    if (spec_.type == MonitorType::kResourceAllocator) rule7();
    return std::move(reports_);
  }

 private:
  void report(RuleId rule, const EventRecord* ev, Pid pid,
              const std::string& message) {
    FaultReport fault;
    fault.rule = rule;
    if (ev != nullptr) {
      fault.pid = ev->pid;
      fault.proc = ev->proc;
      fault.cond = ev->cond;
      fault.event_seq = ev->seq;
    }
    if (pid != kNoPid) fault.pid = pid;
    fault.detected_at = final_time_;
    fault.message = message;
    reports_.push_back(fault);
  }

  const SchedulingState& before(std::size_t i) const { return states_[i]; }
  const SchedulingState& after(std::size_t i) const { return states_[i + 1]; }

  // --- FD-Rule 1: mutually exclusive access. ------------------------------
  void rule1() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      // 1.a) Immediate entry requires a vacant monitor.
      if (ev.kind == EventKind::kEnter && ev.flag &&
          before(i).has_running()) {
        report(RuleId::kFd1aMutualExclusion, &ev, kNoPid,
               "Enter(flag=1) while the monitor was occupied by p" +
                   std::to_string(before(i).running));
      }
      // 1.b) Wait / plain Signal-Exit serves the entry-queue head.
      if (ev.kind == EventKind::kWait ||
          (ev.kind == EventKind::kSignalExit && !ev.flag)) {
        const auto& eq_before = before(i).entry_queue;
        const auto& eq_after = after(i).entry_queue;
        if (!eq_before.empty()) {
          const bool shrank = eq_after.size() == eq_before.size() - 1;
          const bool head_admitted =
              after(i).running == eq_before.front().pid;
          if (!shrank || !head_admitted) {
            report(RuleId::kFd1bEntryQueueService, &ev, kNoPid,
                   "entry queue not served head-first on release");
          }
        }
      }
      // 1.c) Signal-Exit(flag=1) serves the condition-queue head.
      if (ev.kind == EventKind::kSignalExit && ev.flag) {
        const auto& cq_before = before(i).cond_entries(ev.cond);
        const auto& cq_after = after(i).cond_entries(ev.cond);
        if (cq_before.empty()) {
          report(RuleId::kFd1cCondQueueService, &ev, kNoPid,
                 "Signal-Exit(flag=1) with an empty condition queue");
        } else {
          const bool shrank = cq_after.size() == cq_before.size() - 1;
          const bool head_resumed =
              after(i).running == cq_before.front().pid;
          if (!shrank || !head_resumed) {
            report(RuleId::kFd1cCondQueueService, &ev, kNoPid,
                   "condition queue not served head-first on signal");
          }
        }
      }
      // 1.d) Every process operating inside the monitor must have entered:
      // the issuer of Wait/Signal-Exit must be the running process.
      if (ev.kind == EventKind::kWait || ev.kind == EventKind::kSignalExit) {
        if (before(i).running != ev.pid) {
          report(RuleId::kFd1dOperateWithoutEnter, &ev, kNoPid,
                 "operation issued by a process that is not inside the "
                 "monitor");
        }
      }
    }
  }

  // --- FD-Rule 2: nontermination inside a monitor. -------------------------
  // Track, per process, the start of its continuous residence inside the
  // monitor (running or condition-waiting); any residence longer than Tmax
  // is a violation.
  void rule2() {
    std::map<Pid, util::TimeNs> inside_since;
    auto step_time = [&](std::size_t i) {
      return i < events_.size() ? events_[i].time : final_time_;
    };
    // Seed with the initial state.
    seed_inside(states_.front(), 0, inside_since);
    for (std::size_t i = 0; i <= events_.size(); ++i) {
      const SchedulingState& s = states_[i];
      const util::TimeNs t = i == 0 ? 0 : events_[i - 1].time;
      // Processes newly inside.
      if (s.has_running() && !inside_since.count(s.running)) {
        inside_since[s.running] = t;
      }
      for (const auto& queue : s.cond_queues) {
        for (const auto& entry : queue.entries) {
          if (!inside_since.count(entry.pid)) inside_since[entry.pid] = t;
        }
      }
      // Processes that left.
      const util::TimeNs now = step_time(i);
      for (auto it = inside_since.begin(); it != inside_since.end();) {
        if (!inside(s, it->first)) {
          it = inside_since.erase(it);
        } else {
          if (now - it->second > spec_.t_max) {
            report(RuleId::kFd2NonTermination, nullptr, it->first,
                   "process resident inside the monitor beyond Tmax");
            it->second = now;  // suppress duplicate reports for this stay
          }
          ++it;
        }
      }
    }
  }

  static void seed_inside(const SchedulingState& s, util::TimeNs t,
                          std::map<Pid, util::TimeNs>& inside_since) {
    if (s.has_running()) inside_since[s.running] = t;
    for (const auto& queue : s.cond_queues) {
      for (const auto& entry : queue.entries) inside_since[entry.pid] = t;
    }
  }

  // --- FD-Rule 3: fair response. -------------------------------------------
  void rule3() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      if (ev.kind == EventKind::kEnter && !ev.flag &&
          !before(i).has_running()) {
        report(RuleId::kFd3UnfairResponse, &ev, kNoPid,
               "entry request delayed while the monitor was free");
      }
    }
  }

  // --- FD-Rule 4: free of starvation and losing processes. -----------------
  void rule4() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      if (ev.kind == EventKind::kEnter && !ev.flag) {
        const auto& eq_before = before(i).entry_queue;
        const auto& eq_after = after(i).entry_queue;
        const bool queued = eq_after.size() == eq_before.size() + 1 &&
                            in_queue(eq_after, ev.pid);
        if (!queued) {
          report(RuleId::kFd4StarvationOrLoss, &ev, kNoPid,
                 "blocked entry request was not appended to the entry queue "
                 "(lost process)");
        }
      }
      if (ev.kind == EventKind::kWait) {
        const auto& cq_before = before(i).cond_entries(ev.cond);
        const auto& cq_after = after(i).cond_entries(ev.cond);
        const bool queued = cq_after.size() == cq_before.size() + 1 &&
                            in_queue(cq_after, ev.pid);
        if (!queued) {
          report(RuleId::kFd4StarvationOrLoss, &ev, kNoPid,
                 "waiting process was not appended to the condition queue "
                 "(lost process)");
        }
      }
    }
    // Starvation: still on the entry queue Tio after enqueueing.
    for (const auto& entry : states_.back().entry_queue) {
      if (final_time_ - entry.enqueued_at >= spec_.t_io) {
        report(RuleId::kFd4StarvationOrLoss, nullptr, entry.pid,
               "entry request outstanding beyond Tio (starvation)");
      }
    }
  }

  // --- FD-Rule 5: correct synchronization. ---------------------------------
  // Any process removed from a queue must have been removed by the right
  // kind of event, head-first.
  void rule5() {
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      // Condition queues: removal only by Signal-Exit(cond, flag=1).
      for (const auto& queue : before(i).cond_queues) {
        for (const auto& entry : queue.entries) {
          if (!in_queue(after(i).cond_entries(queue.cond), entry.pid)) {
            const bool proper = ev.kind == EventKind::kSignalExit &&
                                ev.flag && ev.cond == queue.cond &&
                                queue.entries.front().pid == entry.pid;
            if (!proper) {
              report(RuleId::kFd5aWrongWaitResume, &ev, entry.pid,
                     "process left a condition queue without a proper "
                     "Signal-Exit");
            }
          }
        }
      }
      // Entry queue: removal only by Wait or non-signalling Signal-Exit.
      for (const auto& entry : before(i).entry_queue) {
        if (!in_queue(after(i).entry_queue, entry.pid)) {
          const bool proper =
              (ev.kind == EventKind::kWait ||
               (ev.kind == EventKind::kSignalExit && !ev.flag)) &&
              before(i).entry_queue.front().pid == entry.pid;
          if (!proper) {
            report(RuleId::kFd5bWrongEntryResume, &ev, entry.pid,
                   "process left the entry queue without a proper release");
          }
        }
      }
    }
  }

  // --- FD-Rule 6: consistency of resource states (coordinator). ------------
  void rule6() {
    std::int64_t sends = 0;
    std::int64_t receives = 0;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      if (ev.kind == EventKind::kSignalExit) {
        if (ev.proc == send_proc_) ++sends;
        if (ev.proc == receive_proc_) ++receives;
        // 6.a) 0 <= r <= s <= r + Rmax at every prefix.
        if (receives > sends) {
          report(RuleId::kFd6aResourceCountInvariant, &ev, kNoPid,
                 "successful receives exceed successful sends");
        }
        if (sends > receives + spec_.rmax) {
          report(RuleId::kFd6aResourceCountInvariant, &ev, kNoPid,
                 "successful sends exceed receives + Rmax");
        }
      }
      if (ev.kind == EventKind::kWait) {
        // 6.b) Send delayed only on a full buffer (R# == 0).
        if (ev.proc == send_proc_ && ev.cond == full_cond_ &&
            before(i).resources != 0) {
          report(RuleId::kFd6bSendDelayInvariant, &ev, kNoPid,
                 "Send delayed while the buffer was not full");
        }
        // 6.c) Receive delayed only on an empty buffer (R# == Rmax).
        if (ev.proc == receive_proc_ && ev.cond == empty_cond_ &&
            before(i).resources != spec_.rmax) {
          report(RuleId::kFd6cReceiveDelayInvariant, &ev, kNoPid,
                 "Receive delayed while the buffer was not empty");
        }
      }
    }
  }

  // --- FD-Rule 7: correct ordering of procedure calls (allocator). ---------
  void rule7() {
    std::map<Pid, std::int64_t> held;        // outstanding acquisitions
    std::map<Pid, util::TimeNs> acquired_at;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const EventRecord& ev = events_[i];
      if (ev.kind != EventKind::kEnter) continue;
      if (ev.proc == acquire_proc_) {
        if (held[ev.pid] > 0) {
          report(RuleId::kFd7aAcquireNeverReleased, &ev, kNoPid,
                 "re-acquire without an intervening Release (self-deadlock)");
        }
        ++held[ev.pid];
        acquired_at[ev.pid] = ev.time;
      } else if (ev.proc == release_proc_) {
        if (held[ev.pid] <= 0) {
          report(RuleId::kFd7bReleaseWithoutAcquire, &ev, kNoPid,
                 "Release without a prior Acquire");
        } else {
          --held[ev.pid];
        }
      }
    }
    for (const auto& [pid, count] : held) {
      if (count > 0 && final_time_ - acquired_at[pid] > spec_.t_limit) {
        report(RuleId::kFd7aAcquireNeverReleased, nullptr, pid,
               "resource still held beyond Tlimit at end of history");
      }
    }
  }

  const MonitorSpec& spec_;
  const std::vector<EventRecord>& events_;
  const std::vector<SchedulingState>& states_;
  util::TimeNs final_time_;
  SymbolId send_proc_;
  SymbolId receive_proc_;
  SymbolId full_cond_;
  SymbolId empty_cond_;
  SymbolId acquire_proc_;
  SymbolId release_proc_;
  std::vector<FaultReport> reports_;
};

}  // namespace

std::vector<FaultReport> validate_fd_rules(
    const MonitorSpec& spec, trace::SymbolTable& symbols,
    const std::vector<trace::EventRecord>& events,
    const std::vector<trace::SchedulingState>& states,
    util::TimeNs final_time) {
  if (states.size() != events.size() + 1) {
    throw std::invalid_argument(
        "validate_fd_rules: need exactly one state per event plus the "
        "initial state");
  }
  return FdValidator(spec, symbols, events, states, final_time).run();
}

std::vector<FaultReport> validate_wait_for(
    const std::vector<WaitForInput>& monitors, util::TimeNs final_time) {
  WaitForGraph graph;
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    const WaitForInput& input = monitors[i];
    if (input.state == nullptr || input.symbols == nullptr) {
      throw std::invalid_argument(
          "validate_wait_for: null state or symbol table");
    }
    graph.update(make_wait_contribution(static_cast<WaitMonitorId>(i + 1),
                                        input.name, 0, *input.state,
                                        *input.symbols));
  }
  std::vector<FaultReport> reports;
  for (const DeadlockCycle& cycle : graph.find_cycles()) {
    reports.push_back(make_cycle_report(cycle, final_time));
  }
  return reports;
}

std::vector<FaultReport> validate_lock_order(
    const std::vector<LockOrderInput>& monitors, util::TimeNs final_time) {
  // Interleave every monitor's checkpoints by capture time so the relation
  // accumulates exactly as the live pool's per-check folds would have.
  struct Fold {
    util::TimeNs at;
    OrderMonitorId monitor;
    const LockOrderInput* input;
    const trace::SchedulingState* state;
  };
  std::vector<Fold> folds;
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    for (const trace::SchedulingState* state : monitors[i].states) {
      if (state == nullptr) {
        throw std::invalid_argument("validate_lock_order: null state");
      }
      folds.push_back({state->captured_at,
                       static_cast<OrderMonitorId>(i + 1), &monitors[i],
                       state});
    }
  }
  std::stable_sort(folds.begin(), folds.end(),
                   [](const Fold& a, const Fold& b) { return a.at < b.at; });
  LockOrderGraph graph;
  for (const Fold& fold : folds) {
    graph.observe(fold.monitor, fold.input->name, 0, *fold.state);
  }
  std::vector<FaultReport> reports;
  for (const OrderCycle& cycle : graph.find_cycles()) {
    reports.push_back(make_order_report(cycle, final_time));
  }
  return reports;
}

}  // namespace robmon::core
