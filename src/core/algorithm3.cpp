// Algorithm-3: Calling-Orders Checking (Section 3.3.2), for
// resource-access-right-allocator monitors.
//
// Maintains the persistent Request-List and evaluates ST-Rule 8:
//   8a  no pid may appear twice on the Request-List (re-acquiring a held
//       resource: self-deadlock, fault III.c)
//   8b  a Release requires the pid to be on the Request-List (fault III.a)
//   8c  no pid may stay on the Request-List longer than Tlimit
//       (resource never released, fault III.b)
#include <sstream>

#include "core/algorithms.hpp"

namespace robmon::core {

bool RequestList::contains(trace::Pid pid) const {
  for (const auto& entry : entries) {
    if (entry.pid == pid) return true;
  }
  return false;
}

bool RequestList::remove_first(trace::Pid pid) {
  for (auto it = entries.begin(); it != entries.end(); ++it) {
    if (it->pid == pid) {
      entries.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t run_algorithm3(const CheckContext& ctx,
                           const std::vector<trace::EventRecord>& events,
                           RequestList& requests) {
  std::size_t violations = 0;

  auto report_event = [&](RuleId rule, FaultKind suspected,
                          const trace::EventRecord& ev,
                          const std::string& message) {
    FaultReport fault;
    fault.rule = rule;
    fault.suspected = suspected;
    fault.pid = ev.pid;
    fault.proc = ev.proc;
    fault.event_seq = ev.seq;
    fault.detected_at = ctx.now;
    fault.message = message;
    ctx.sink->report(fault);
  };

  for (const auto& ev : events) {
    if (ev.kind == trace::EventKind::kEnter) {
      if (ev.proc == ctx.acquire_proc) {
        // ST-8a: duplicate acquisition is a self-deadlock.
        if (requests.contains(ev.pid)) {
          ++violations;
          report_event(RuleId::kSt8aDuplicateAcquire,
                       FaultKind::kDoubleAcquireDeadlock, ev,
                       "process re-acquires a resource it already holds");
        }
        requests.entries.push_back({ev.pid, ev.proc, ev.time});
      } else if (ev.proc == ctx.release_proc) {
        // ST-8b: releasing requires a prior acquisition.
        if (!requests.contains(ev.pid)) {
          ++violations;
          report_event(RuleId::kSt8bReleaseWithoutAcquire,
                       FaultKind::kReleaseBeforeAcquire, ev,
                       "Release invoked without a matching Acquire");
        }
      }
    } else if (ev.kind == trace::EventKind::kSignalExit &&
               ev.proc == ctx.release_proc) {
      // Successful Release completion removes the first matching entry.
      requests.remove_first(ev.pid);
    }
  }

  // ST-8c: nothing may be held past Tlimit.
  for (const auto& entry : requests.entries) {
    if (ctx.now - entry.since >= ctx.spec->t_limit) {
      ++violations;
      FaultReport fault;
      fault.rule = RuleId::kSt8cHoldExceedsTlimit;
      fault.suspected = FaultKind::kResourceNeverReleased;
      fault.pid = entry.pid;
      fault.proc = entry.proc;
      fault.detected_at = ctx.now;
      std::ostringstream msg;
      msg << "resource held for " << (ctx.now - entry.since) / 1000000
          << "ms, Tlimit=" << ctx.spec->t_limit / 1000000 << "ms";
      fault.message = msg.str();
      ctx.sink->report(fault);
    }
  }

  return violations;
}

}  // namespace robmon::core
