// Detector: orchestrates the periodic checking phase (Section 3.3).
//
// At each checking point the caller supplies the event segment recorded
// since the previous point and the current scheduling state; the detector
// runs Algorithm-1 (all monitor types), Algorithm-2 (communication
// coordinators) and Algorithm-3 (resource allocators), persists the state
// needed for the next point (s_p, cumulative r/s counters, Request-List)
// and forwards violations to the ReportSink.
//
// Backends call this from their checker thread / checker task; the offline
// replayer calls it once per recorded checkpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/algorithms.hpp"
#include "core/assertions.hpp"
#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::core {

class Detector {
 public:
  /// `symbols` and `sink` must outlive the detector.
  Detector(MonitorSpec spec, trace::SymbolTable& symbols, ReportSink& sink);

  /// Establish the scheduling state at detector start (s_p for the first
  /// check).  Typically the empty state captured before any process runs.
  void initialize(const trace::SchedulingState& initial);

  /// Re-baseline after an *out-of-band* transition — a recovery action
  /// (victim monitor poisoned, designated fault delivered) wakes parked
  /// threads without recording the resume events the ST-Rules expect, so
  /// the detector must restart from the post-action state as if freshly
  /// initialized: previous state replaced, Request-List and cumulative
  /// resource counters cleared.  The caller must drain (discard) the event
  /// segment spanning the action; rt::CheckerPool does both under the
  /// monitor's checker gate.  Lifetime counters (checks_run, ...) persist.
  void rebaseline(const trace::SchedulingState& state);

  struct CheckStats {
    std::size_t events = 0;      ///< Segment length |L|.
    std::size_t violations = 0;  ///< Violations reported this check.
    bool idle = false;           ///< Empty segment and nothing to report —
                                 ///  the check found nothing to do (feeds
                                 ///  the pool's adaptive-cadence EWMA and
                                 ///  the batch-overhead bench).
  };

  /// One checking-routine invocation at time `now`.
  CheckStats check(const std::vector<trace::EventRecord>& segment,
                   const trace::SchedulingState& current, util::TimeNs now);

  /// Register a predefined or user-supplied assertion (Section 5
  /// extension); evaluated against the current scheduling state at every
  /// checking point, after Algorithms 1-3.
  void add_assertion(MonitorAssertion assertion);
  std::size_t assertion_count() const { return assertions_.size(); }

  const MonitorSpec& spec() const { return spec_; }
  const trace::SchedulingState& previous_state() const { return prev_; }
  const RequestList& request_list() const { return requests_; }
  const ResourceCounters& counters() const { return counters_; }

  /// Totals over the detector's lifetime.  Atomic: tests and benches poll
  /// them while a pool worker runs check().
  std::uint64_t checks_run() const {
    return checks_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t events_processed() const {
    return events_processed_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_violations() const {
    return total_violations_.load(std::memory_order_relaxed);
  }
  /// Checks that drained nothing and reported nothing — the idle fraction a
  /// batched/adaptive engine should be amortizing away.
  std::uint64_t idle_checks() const {
    return idle_checks_.load(std::memory_order_relaxed);
  }

 private:
  MonitorSpec spec_;
  trace::SymbolTable* symbols_;
  ReportSink* sink_;
  trace::SchedulingState prev_;
  bool initialized_ = false;
  ResourceCounters counters_;
  RequestList requests_;
  std::vector<MonitorAssertion> assertions_;
  std::atomic<std::uint64_t> checks_run_{0};
  std::atomic<std::uint64_t> events_processed_{0};
  std::atomic<std::uint64_t> total_violations_{0};
  std::atomic<std::uint64_t> idle_checks_{0};
};

}  // namespace robmon::core
