#include "core/waitfor.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "core/scc.hpp"

namespace robmon::core {

WaitContribution make_wait_contribution(WaitMonitorId monitor,
                                        std::string name, std::uint64_t epoch,
                                        const trace::SchedulingState& state,
                                        const trace::SymbolTable& symbols) {
  WaitContribution contribution;
  contribution.monitor = monitor;
  contribution.name = std::move(name);
  contribution.epoch = epoch;
  contribution.captured_at = state.captured_at;
  for (const auto& entry : state.entry_queue) {
    contribution.waits.push_back(
        {entry.pid, std::string(), entry.enqueued_at, entry.ticket});
  }
  for (const auto& queue : state.cond_queues) {
    const std::string cond = symbols.name(queue.cond);
    for (const auto& entry : queue.entries) {
      contribution.waits.push_back(
          {entry.pid, cond, entry.enqueued_at, entry.ticket});
    }
  }
  if (state.has_running()) {
    contribution.holds.push_back(
        {state.running, true, state.running_since, state.running_ticket});
  }
  for (const auto& hold : state.holders) {
    contribution.holds.push_back(
        {hold.pid, false, hold.held_since, hold.ticket});
  }
  return contribution;
}

std::string DeadlockCycle::key() const {
  std::ostringstream out;
  for (const auto& link : links) {
    out << link.pid << ">" << link.monitor << "[" << link.cond << "]>"
        << link.holder << ";";
  }
  return out.str();
}

std::string describe(const DeadlockCycle& cycle) {
  std::ostringstream out;
  out << "global deadlock cycle (" << cycle.links.size() << " links): ";
  for (std::size_t i = 0; i < cycle.links.size(); ++i) {
    const auto& link = cycle.links[i];
    if (i) out << " -> ";
    out << "p" << link.pid << " waits on " << link.monitor_name;
    if (link.cond.empty()) {
      out << "[entry]";
    } else {
      out << "[" << link.cond << "]";
    }
    out << " held by p" << link.holder;
  }
  return out.str();
}

FaultReport make_cycle_report(const DeadlockCycle& cycle,
                              util::TimeNs detected_at) {
  FaultReport fault;
  fault.rule = RuleId::kWfCycleDetected;
  fault.suspected = FaultKind::kGlobalDeadlock;
  fault.pid = cycle.links.front().pid;
  fault.detected_at = detected_at;
  fault.message = describe(cycle);
  return fault;
}

bool link_holds_in(const DeadlockCycle::Link& link,
                   const trace::SchedulingState& state,
                   const trace::SymbolTable& symbols) {
  // Episode identity: the monitor's monotonic ticket when the link carries
  // one (clock-independent), the enqueue/hold timestamp otherwise
  // (pre-ticket traces).
  const auto same_wait_episode = [&](const trace::QueueEntry& entry) {
    if (entry.pid != link.pid) return false;
    if (link.blocked_ticket != 0) return entry.ticket == link.blocked_ticket;
    return entry.enqueued_at == link.blocked_since;
  };

  // Blocked side: same thread parked on the same queue in the same
  // blocking episode.
  bool still_blocked = false;
  if (link.cond.empty()) {
    for (const auto& entry : state.entry_queue) {
      if (same_wait_episode(entry)) {
        still_blocked = true;
        break;
      }
    }
  } else {
    const trace::SymbolId cond = symbols.find(link.cond);
    if (cond == trace::kNoSymbol) return false;
    for (const auto& entry : state.cond_entries(cond)) {
      if (same_wait_episode(entry)) {
        still_blocked = true;
        break;
      }
    }
  }
  if (!still_blocked) return false;

  // Holder side: an entry waiter is behind the mutex holder; a condition
  // waiter is behind the monitor's *sole* resource holder.  If another
  // holder appeared since the contribution, the wait has become an OR
  // (any holder releasing unblocks it) and the edge no longer stands.
  if (link.cond.empty()) {
    if (state.running != link.holder) return false;
    if (link.holder_ticket != 0) {
      return state.running_ticket == link.holder_ticket;
    }
    return state.running_since == link.held_since;
  }
  if (state.holders.size() != 1) return false;
  const trace::HoldEntry* hold = state.hold_of(link.holder);
  if (hold == nullptr) return false;
  if (link.holder_ticket != 0) return hold->ticket == link.holder_ticket;
  return hold->held_since == link.held_since;
}

void WaitForGraph::update(WaitContribution contribution) {
  contributions_[contribution.monitor] = std::move(contribution);
}

void WaitForGraph::erase(WaitMonitorId monitor) {
  contributions_.erase(monitor);
}

const WaitContribution* WaitForGraph::contribution(
    WaitMonitorId monitor) const {
  const auto it = contributions_.find(monitor);
  return it == contributions_.end() ? nullptr : &it->second;
}

namespace {

/// Thread-level view: each edge is a full candidate link (the monitor the
/// tail waits on and the head's hold on it).
struct ThreadGraph {
  // std::map keeps pid iteration deterministic across runs.
  std::map<trace::Pid, std::vector<DeadlockCycle::Link>> adjacency;
};

ThreadGraph build_thread_graph(
    const std::unordered_map<WaitMonitorId, WaitContribution>& contributions) {
  ThreadGraph graph;
  // Iterate monitors in id order so edge order (and thus the representative
  // cycle picked per SCC) is deterministic.
  std::vector<const WaitContribution*> ordered;
  ordered.reserve(contributions.size());
  for (const auto& [id, contribution] : contributions) {
    ordered.push_back(&contribution);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const WaitContribution* a, const WaitContribution* b) {
              return a->monitor < b->monitor;
            });
  for (const WaitContribution* contribution : ordered) {
    // A condition waiter is only *deterministically* blocked behind a
    // holder when that holder is the monitor's sole resource holder (the
    // single-unit model: forks, one-permit allocators).  With several
    // distinct holders the wait is an OR — any one of them releasing
    // unblocks the waiter — which a cycle edge cannot soundly encode, so
    // no resource edges are emitted (conservative: can only miss, never
    // fabricate).
    std::size_t resource_holders = 0;
    for (const auto& hold : contribution->holds) {
      if (!hold.mutex) ++resource_holders;
    }
    for (const auto& wait : contribution->waits) {
      for (const auto& hold : contribution->holds) {
        // An entry waiter is blocked behind the mutex holder; a condition
        // waiter is blocked behind the sole resource holder.
        if (wait.cond.empty() != hold.mutex) continue;
        if (!hold.mutex && resource_holders != 1) continue;
        graph.adjacency[wait.pid].push_back(
            {wait.pid, contribution->monitor, contribution->name, wait.cond,
             wait.since, hold.pid, hold.since, wait.ticket, hold.ticket});
      }
    }
  }
  for (auto& [pid, links] : graph.adjacency) {
    std::sort(links.begin(), links.end(),
              [](const DeadlockCycle::Link& a, const DeadlockCycle::Link& b) {
                return a.holder != b.holder ? a.holder < b.holder
                                            : a.monitor < b.monitor;
              });
  }
  return graph;
}

/// Rotate so the smallest (pid, monitor) link comes first.
void canonicalize(DeadlockCycle& cycle) {
  if (cycle.links.empty()) return;
  std::size_t best = 0;
  for (std::size_t i = 1; i < cycle.links.size(); ++i) {
    const auto& a = cycle.links[i];
    const auto& b = cycle.links[best];
    if (a.pid < b.pid || (a.pid == b.pid && a.monitor < b.monitor)) best = i;
  }
  std::rotate(cycle.links.begin(),
              cycle.links.begin() + static_cast<std::ptrdiff_t>(best),
              cycle.links.end());
}

}  // namespace

std::vector<DeadlockCycle> WaitForGraph::find_cycles() const {
  const ThreadGraph graph = build_thread_graph(contributions_);

  std::vector<trace::Pid> roots;
  roots.reserve(graph.adjacency.size());
  for (const auto& [pid, links] : graph.adjacency) roots.push_back(pid);
  const auto components = strongly_connected_components(
      roots, [&graph](trace::Pid v) {
        std::vector<trace::Pid> out;
        const auto it = graph.adjacency.find(v);
        if (it != graph.adjacency.end()) {
          out.reserve(it->second.size());
          for (const auto& link : it->second) out.push_back(link.holder);
        }
        return out;
      });

  std::vector<DeadlockCycle> cycles;
  for (const auto& component : components) {
    std::map<trace::Pid, bool> in_component;
    for (const trace::Pid pid : component) in_component[pid] = true;

    if (component.size() == 1) {
      // Self-loop: a thread waiting on a monitor it itself holds (the
      // cross-monitor manifestation of III.c double-acquire).
      const trace::Pid pid = component.front();
      const auto it = graph.adjacency.find(pid);
      if (it == graph.adjacency.end()) continue;
      for (const auto& link : it->second) {
        if (link.holder == pid) {
          cycles.push_back(DeadlockCycle{{link}});
          break;
        }
      }
      continue;
    }

    // Walk within the SCC until a node repeats; the suffix from its first
    // occurrence is one representative elementary cycle of this component.
    const trace::Pid start = *std::min_element(component.begin(),
                                               component.end());
    std::vector<DeadlockCycle::Link> path;
    std::map<trace::Pid, std::size_t> position;
    trace::Pid current = start;
    DeadlockCycle cycle;
    while (true) {
      const auto pos = position.find(current);
      if (pos != position.end()) {
        cycle.links.assign(path.begin() +
                               static_cast<std::ptrdiff_t>(pos->second),
                           path.end());
        break;
      }
      position[current] = path.size();
      const auto it = graph.adjacency.find(current);
      const DeadlockCycle::Link* next = nullptr;
      if (it != graph.adjacency.end()) {
        for (const auto& link : it->second) {
          if (in_component.count(link.holder)) {
            next = &link;
            break;
          }
        }
      }
      if (next == nullptr) break;  // cannot happen in a true SCC; be safe
      path.push_back(*next);
      current = next->holder;
    }
    if (cycle.links.empty()) continue;
    canonicalize(cycle);
    cycles.push_back(std::move(cycle));
  }
  return cycles;
}

}  // namespace robmon::core
