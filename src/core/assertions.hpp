// User-supplied and predefined assertions — the extension the paper names
// as future work in Section 5: "Extensions can be made to allow predefined
// and user-supplied assertions to be specified as part of monitor
// declarations and used for checking the functional operations and external
// use of the monitors."
//
// An assertion is a named predicate over the scheduling state, evaluated by
// the detector at every checking point (after the ST-Rule algorithms).  A
// failing assertion produces a FaultReport with RuleId::kUserAssertion.
//
// Predefined assertion factories cover the common invariants of the three
// monitor types; arbitrary user predicates can capture application state
// (e.g. "balance never negative").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/snapshot.hpp"

namespace robmon::core {

/// Predicate over the scheduling state at a checking point.  Must be pure
/// and fast; it runs with the monitor quiesced.
using AssertionFn = std::function<bool(const trace::SchedulingState&)>;

struct MonitorAssertion {
  std::string name;
  AssertionFn predicate;
};

// --- Predefined assertions (Section 5's "predefined" family). ---------------

/// R# stays within [lo, hi] — the coordinator integrity envelope.
MonitorAssertion resources_within(std::int64_t lo, std::int64_t hi);

/// No more than `limit` processes blocked on the entry queue (a coarse
/// admission-backlog bound).
MonitorAssertion entry_queue_at_most(std::size_t limit);

/// No more than `limit` processes blocked across all condition queues.
MonitorAssertion blocked_at_most(std::size_t limit);

/// The monitor is idle (no runner, nothing queued) — useful as a
/// quiescence postcondition at teardown checking points.
MonitorAssertion monitor_idle();

}  // namespace robmon::core
