// Algorithm-2: Consistency-Of-Resource-States Checking (Section 3.3.2),
// for communication-coordinator monitors.
//
// Replays the segment maintaining Resource-No (free buffer slots) and the
// cumulative successful-call counters r (Receive) and s (Send), evaluating
// ST-Rule 7:
//   7a  0 <= r <= s <= r + Rmax          (violations split into the
//       receive-exceeds-send and send-exceeds-capacity directions)
//   7b  s_t.R# == s_p.R# + r_seg - s_seg (balance at the checking point)
//   7c  Wait(Pid, Send, full)   requires Resource-No == 0
//   7d  Wait(Pid, Receive, empty) requires Resource-No == Rmax
#include <sstream>

#include "core/algorithms.hpp"

namespace robmon::core {

namespace {

void report_event(const CheckContext& ctx, RuleId rule, FaultKind suspected,
                  const trace::EventRecord& ev, const std::string& message) {
  FaultReport fault;
  fault.rule = rule;
  fault.suspected = suspected;
  fault.pid = ev.pid;
  fault.proc = ev.proc;
  fault.cond = ev.cond;
  fault.event_seq = ev.seq;
  fault.detected_at = ctx.now;
  fault.message = message;
  ctx.sink->report(fault);
}

}  // namespace

std::size_t run_algorithm2(const CheckContext& ctx,
                           const trace::SchedulingState& prev,
                           const trace::SchedulingState& current,
                           const std::vector<trace::EventRecord>& events,
                           ResourceCounters& cumulative) {
  std::size_t violations = 0;
  const std::int64_t rmax = ctx.spec->rmax;

  std::int64_t resource_no = prev.resources;
  std::int64_t segment_sends = 0;
  std::int64_t segment_receives = 0;

  for (const auto& ev : events) {
    switch (ev.kind) {
      case trace::EventKind::kWait: {
        // ST-7c: a Send may be delayed only when the buffer is full.
        if (ev.proc == ctx.send_proc && ev.cond == ctx.full_cond &&
            resource_no != 0) {
          ++violations;
          std::ostringstream msg;
          msg << "Send delayed with " << resource_no
              << " free slots (must be 0)";
          report_event(ctx, RuleId::kSt7cSendDelayedWhenNotFull,
                       FaultKind::kSendDelayWrong, ev, msg.str());
        }
        // ST-7d: a Receive may be delayed only when the buffer is empty.
        if (ev.proc == ctx.receive_proc && ev.cond == ctx.empty_cond &&
            resource_no != rmax) {
          ++violations;
          std::ostringstream msg;
          msg << "Receive delayed with " << resource_no
              << " free slots (must be Rmax=" << rmax << ")";
          report_event(ctx, RuleId::kSt7dReceiveDelayedWhenNotEmpty,
                       FaultKind::kReceiveDelayWrong, ev, msg.str());
        }
        break;
      }
      case trace::EventKind::kSignalExit: {
        // A Signal-Exit by Send/Receive marks a *successful* call.
        if (ev.proc == ctx.send_proc) {
          ++segment_sends;
          --resource_no;
          if (resource_no < 0) {
            ++violations;
            report_event(
                ctx, RuleId::kSt7aSendExceedsCapacity,
                FaultKind::kSendExceedsCapacity, ev,
                "successful Sends exceed Rmax plus successful Receives");
          }
        } else if (ev.proc == ctx.receive_proc) {
          ++segment_receives;
          ++resource_no;
          if (resource_no > rmax) {
            ++violations;
            report_event(ctx, RuleId::kSt7aReceiveExceedsSend,
                         FaultKind::kReceiveExceedsSend, ev,
                         "successful Receives exceed successful Sends");
          }
        }
        break;
      }
      case trace::EventKind::kEnter:
        break;
    }
  }

  cumulative.sends += segment_sends;
  cumulative.receives += segment_receives;

  // Cumulative form of ST-7a (0 <= r <= s is implied by resource_no bounds
  // when starting from an empty buffer; re-checked here explicitly).
  if (cumulative.receives > cumulative.sends) {
    ++violations;
    FaultReport fault;
    fault.rule = RuleId::kSt7aReceiveExceedsSend;
    fault.suspected = FaultKind::kReceiveExceedsSend;
    fault.detected_at = ctx.now;
    std::ostringstream msg;
    msg << "cumulative receives r=" << cumulative.receives << " exceed sends s="
        << cumulative.sends;
    fault.message = msg.str();
    ctx.sink->report(fault);
  }
  if (cumulative.sends > cumulative.receives + rmax) {
    ++violations;
    FaultReport fault;
    fault.rule = RuleId::kSt7aSendExceedsCapacity;
    fault.suspected = FaultKind::kSendExceedsCapacity;
    fault.detected_at = ctx.now;
    std::ostringstream msg;
    msg << "cumulative sends s=" << cumulative.sends << " exceed r+Rmax="
        << cumulative.receives + rmax;
    fault.message = msg.str();
    ctx.sink->report(fault);
  }

  // ST-7b: replayed Resource-No must equal the R# observed at s_t.
  if (current.resources != resource_no) {
    ++violations;
    FaultReport fault;
    fault.rule = RuleId::kSt7bResourceBalanceMismatch;
    fault.detected_at = ctx.now;
    std::ostringstream msg;
    msg << "R# at checking point is " << current.resources
        << " but replay yields " << resource_no << " (s_p.R#=" << prev.resources
        << ", segment sends=" << segment_sends
        << ", receives=" << segment_receives << ")";
    fault.message = msg.str();
    ctx.sink->report(fault);
  }

  return violations;
}

}  // namespace robmon::core
