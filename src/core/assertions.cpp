#include "core/assertions.hpp"

namespace robmon::core {

MonitorAssertion resources_within(std::int64_t lo, std::int64_t hi) {
  return {"resources within [" + std::to_string(lo) + ", " +
              std::to_string(hi) + "]",
          [lo, hi](const trace::SchedulingState& state) {
            return state.resources >= lo && state.resources <= hi;
          }};
}

MonitorAssertion entry_queue_at_most(std::size_t limit) {
  return {"entry queue length <= " + std::to_string(limit),
          [limit](const trace::SchedulingState& state) {
            return state.entry_queue.size() <= limit;
          }};
}

MonitorAssertion blocked_at_most(std::size_t limit) {
  return {"blocked processes <= " + std::to_string(limit),
          [limit](const trace::SchedulingState& state) {
            return state.blocked_count() <= limit;
          }};
}

MonitorAssertion monitor_idle() {
  return {"monitor idle",
          [](const trace::SchedulingState& state) {
            return !state.has_running() && state.blocked_count() == 0;
          }};
}

}  // namespace robmon::core
