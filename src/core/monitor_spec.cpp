#include "core/monitor_spec.hpp"

#include <stdexcept>

namespace robmon::core {

std::string_view to_string(MonitorType type) {
  switch (type) {
    case MonitorType::kCommunicationCoordinator:
      return "coordinator";
    case MonitorType::kResourceAllocator:
      return "allocator";
    case MonitorType::kOperationManager:
      return "manager";
  }
  return "?";
}

MonitorType monitor_type_from_string(std::string_view text) {
  if (text == "coordinator") return MonitorType::kCommunicationCoordinator;
  if (text == "allocator") return MonitorType::kResourceAllocator;
  if (text == "manager") return MonitorType::kOperationManager;
  throw std::invalid_argument("unknown monitor type: " + std::string(text));
}

std::string MonitorSpec::effective_path_expression() const {
  if (!path_expression.empty()) return path_expression;
  if (type == MonitorType::kResourceAllocator) {
    return "(" + acquire_procedure + " ; " + release_procedure + ")*";
  }
  return {};
}

MonitorSpec MonitorSpec::coordinator(std::string monitor_name,
                                     std::int64_t capacity) {
  MonitorSpec spec;
  spec.name = std::move(monitor_name);
  spec.type = MonitorType::kCommunicationCoordinator;
  spec.rmax = capacity;
  return spec;
}

MonitorSpec MonitorSpec::allocator(std::string monitor_name) {
  MonitorSpec spec;
  spec.name = std::move(monitor_name);
  spec.type = MonitorType::kResourceAllocator;
  return spec;
}

MonitorSpec MonitorSpec::manager(std::string monitor_name) {
  MonitorSpec spec;
  spec.name = std::move(monitor_name);
  spec.type = MonitorType::kOperationManager;
  return spec;
}

}  // namespace robmon::core
