// Recovery policy — turns cycle verdicts into corrective actions.
//
// The detection layers stop at reporting: a confirmed GlobalDeadlock names
// every thread and monitor on the circular wait, and a PotentialDeadlock
// warning names every edge of an acquisition-order cycle before any thread
// is stuck.  Both are exactly the input a recovery engine needs, and this
// module supplies its decision half:
//
//   * Confirmed cycle  -> choose a VICTIM among the blocked participants
//     (pluggable comparator; the default prefers the youngest blocking
//     episode, then the thread holding the fewest cycle monitors, then the
//     lowest user priority) and a REMEDY: poison the monitor the victim
//     waits on (every waiter wakes with rt::Status::kRecoveryFault instead
//     of blocking forever; sticky until recovery completes) or deliver a
//     designated RecoveryFault to the victim thread alone.
//   * Predicted cycle  -> act pre-emptively: the witness counts of the
//     accumulated order relation name the DOMINANT acquisition order, and
//     the decision fences the minority edge — the edge with the fewest
//     witnesses — so that call sites crossing it serialize through a
//     sync::Gate (or re-order onto the imposed order) and the cycle never
//     closes.
//
// This module is pure decision logic over core types; the actuation (who
// pokes which HoareMonitor, who engages which Gate) lives in
// rt::CheckerPool, which invokes the policy from both of its pool-level
// checkpoints.  Every decision converts to a FaultReport (rule RC, suspected
// kRecoveryIntervention) for the sink and to a trace::RecoveryRecord
// (codec v4 `rcov` line) so offline replay can re-derive what the policy
// did and why.  See docs/recovery-policies.md for the policy cookbook.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/fault.hpp"
#include "core/lockorder.hpp"
#include "core/waitfor.hpp"
#include "trace/codec.hpp"

namespace robmon::core {

/// Remedy applied to the victim of a confirmed cycle.
enum class RecoveryRemedy {
  kPoisonVictim,  ///< Poison the monitor the victim waits on (wake-all,
                  ///  sticky until the cycle dissolves).
  kDeliverFault,  ///< Wake only the victim thread with a RecoveryFault.
};

std::string_view to_string(RecoveryRemedy remedy);

/// One confirmed-cycle participant, as scored by the victim comparator.
struct VictimCandidate {
  Tid pid = kNoTid;
  WaitMonitorId monitor = 0;  ///< Monitor the thread is blocked on.
  std::string monitor_name;
  std::string cond;  ///< Condition queue; empty = entry queue.
  util::TimeNs blocked_since = 0;
  std::uint64_t blocked_ticket = 0;  ///< Episode ticket of the wait.
  std::size_t held_monitors = 0;     ///< Distinct cycle monitors it holds.
  int priority = 0;                  ///< User priority (higher = protect).
};

/// Returns true when `a` is a *better* victim than `b`.
using VictimComparator =
    std::function<bool(const VictimCandidate&, const VictimCandidate&)>;

/// The default scoring: youngest blocking episode first (largest ticket,
/// then largest blocked_since — tickets are per-monitor counters, so the
/// comparison is a heuristic across monitors and exact within one), then
/// fewest held cycle monitors (least work lost), then lowest user priority,
/// then smallest pid (full determinism).
VictimComparator default_victim_comparator();

/// A confirmed-cycle decision: which thread/monitor pays, and how.
struct RecoveryDecision {
  RecoveryRemedy remedy = RecoveryRemedy::kPoisonVictim;
  VictimCandidate victim;
  std::string rationale;  ///< Comparator verdict + the triggering cycle.
};

/// A predicted-cycle decision: the minority edge to fence and the dominant
/// linear order that the remaining edges already agree on.
struct OrderDecision {
  /// Fenced (minority) edge: the cycle step with the fewest witnesses.
  std::string minority_from;
  std::string minority_to;
  /// Witnesses of the minority edge — the threads whose call sites must be
  /// fenced (serialized or re-ordered).
  std::vector<Tid> fenced;
  /// The imposed acquisition order: the cycle's monitors linearized so that
  /// every majority edge points forward (acquire left-to-right).
  std::vector<std::string> imposed_order;
  std::string rationale;
};

class RecoveryPolicy {
 public:
  struct Options {
    /// Remedy for confirmed cycles.
    RecoveryRemedy confirmed_remedy = RecoveryRemedy::kPoisonVictim;
    /// Act on PotentialDeadlock warnings (order imposition); false = only
    /// break confirmed cycles.
    bool preempt_predicted = true;
    /// Victim scoring; default_victim_comparator() when empty.
    VictimComparator comparator;
    /// User priority of a thread (higher = protect); 0 for all when empty.
    std::function<int(Tid)> priority;
  };

  RecoveryPolicy() : RecoveryPolicy(Options{}) {}
  explicit RecoveryPolicy(Options options);

  RecoveryRemedy confirmed_remedy() const { return options_.confirmed_remedy; }
  bool preempt_predicted() const { return options_.preempt_predicted; }

  /// The scored participants of a confirmed cycle (one per blocked thread,
  /// deduplicated; held_monitors counts the cycle links the pid holds).
  std::vector<VictimCandidate> candidates(const DeadlockCycle& cycle) const;

  /// Choose the victim and remedy for a confirmed cycle.
  RecoveryDecision decide(const DeadlockCycle& cycle) const;

  /// Choose the minority edge and imposed order for a predicted cycle;
  /// `edges` supplies the witness totals (the pool's accumulated relation).
  OrderDecision decide(const OrderCycle& cycle,
                       const std::vector<OrderEdge>& edges) const;

 private:
  Options options_;
};

/// The ext.RC report for an applied action — one shape for both checkpoint
/// paths, mirroring make_cycle_report / make_order_report.
FaultReport make_recovery_report(const RecoveryDecision& decision,
                                 util::TimeNs detected_at);
FaultReport make_recovery_report(const OrderDecision& decision,
                                 util::TimeNs detected_at);

/// The codec v4 `rcov` line for an applied action ('P' or 'F' per remedy;
/// 'O' for an order imposition).  Unpoison completions are recorded by the
/// pool directly with action 'C'.
trace::RecoveryRecord make_recovery_record(const RecoveryDecision& decision,
                                           util::TimeNs at);
trace::RecoveryRecord make_recovery_record(const OrderDecision& decision,
                                           util::TimeNs at);

}  // namespace robmon::core
