// Monitor classification (Section 2.1) and the augmented monitor declaration
// (Section 4): name, type, integrity parameters (buffer capacity Rmax),
// procedure-call partial order (path expression), and the timing parameters
// of the detection model (Tmax, Tio, Tlimit, checking period T).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.hpp"

namespace robmon::core {

/// The three functional monitor types of Section 2.1.
enum class MonitorType {
  kCommunicationCoordinator,  ///< Send/Receive over a bounded buffer.
  kResourceAllocator,         ///< Acquire/Release of access rights.
  kOperationManager,          ///< Implicit synchronization of operations.
};

std::string_view to_string(MonitorType type);

/// Parse "coordinator" | "allocator" | "manager" (codec round-trip).
MonitorType monitor_type_from_string(std::string_view text);

/// Augmented monitor declaration.  Timing fields follow Section 3.3:
///   Tmax   — maximum time any process may be inside the monitor (running or
///            waiting on a condition queue); exceeding it indicates internal
///            termination or lost signals (ST-Rule 5).
///   Tio    — timeout for interpreting deadlock/starvation on the entry
///            queue (ST-Rule 6).
///   Tlimit — maximum resource-holding time for allocator monitors
///            (ST-Rule 8c).
///   check_period (T) — periodic checking interval; the paper requires
///            Tmax < T for post-checking mode; T equal to 0 requests
///            per-event ("real-time", T=1 in the paper's terms) checking.
struct MonitorSpec {
  std::string name = "monitor";
  MonitorType type = MonitorType::kOperationManager;

  /// Rmax: buffer capacity (coordinator type only).
  std::int64_t rmax = 0;

  /// Procedure / condition names carrying special meaning per type.
  std::string send_procedure = "Send";
  std::string receive_procedure = "Receive";
  std::string full_condition = "full";
  std::string empty_condition = "empty";
  std::string acquire_procedure = "Acquire";
  std::string release_procedure = "Release";

  /// Partial order of procedure calls (allocator type), path-expression
  /// notation.  Empty means "use the canonical allocator order
  /// (Acquire ; Release)*" for allocator monitors, or no constraint.
  std::string path_expression;

  util::TimeNs t_max = 50 * util::kMillisecond;
  util::TimeNs t_io = 200 * util::kMillisecond;
  util::TimeNs t_limit = 200 * util::kMillisecond;
  util::TimeNs check_period = 500 * util::kMillisecond;

  /// Effective path expression (defaulting rule above).
  std::string effective_path_expression() const;

  /// Factory helpers for the three types.
  static MonitorSpec coordinator(std::string name, std::int64_t capacity);
  static MonitorSpec allocator(std::string name);
  static MonitorSpec manager(std::string name);
};

}  // namespace robmon::core
