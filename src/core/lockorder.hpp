// Lock-order prediction (Goodlock-style) — the first detector that warns
// about faults that have not happened yet.
//
// The wait-for checkpoint (core/waitfor.hpp) reports a deadlock only once a
// circular wait actually closes.  But the pool sees every (thread, monitor)
// acquisition even when no cycle forms: a snapshot of monitor A showing p
// holding a unit since t1, and a snapshot of monitor B showing the same p
// holding (or blocked acquiring) since t2, certify that p touched both — and
// when the two presence intervals provably overlap, that p acquired one
// *while still holding* the other.  Accumulating those (monitor -> monitor)
// acquisition-order facts across checkpoints yields the lock-order graph; a
// cycle in it means two schedules exist that deadlock each other, even if
// this run's timing (or an external gate) kept the real cycle from ever
// materializing.  Cycles are reported as kPotentialDeadlock — distinct from
// kGlobalDeadlock, which stays reserved for confirmed circular waits.
//
// Soundness of the join.  Contributions are snapshots taken at different
// times, so naive joining could fabricate orders (p held A in an old
// snapshot, released it, and only then took B).  Every access therefore
// carries its *certified interval*: a snapshot captured at tc showing a hold
// with held_since ts proves continuous possession over [ts, tc] (the hold
// registry keeps held_since as the start of the oldest outstanding hold, and
// a parked thread cannot leave its queue unobserved).  An order edge A -> B
// is recorded only when the two intervals overlap — then there is an instant
// at which p held A and held/requested B simultaneously:
//   * hold(A) x wait(B): p is parked acquiring B while holding A; the edge
//     direction is forced by the kinds (a parked thread cannot acquire).
//   * hold(A) x hold(B): direction follows the earlier acquisition start;
//     identical starts (frozen ManualClock) are skipped as unordered.
// Mutex occupancy (Running) and waits by a pid that already holds the same
// monitor are excluded: entering a monitor to *release* a unit is not an
// acquisition, and including it would flag deadlock-free release orders.
// All joined timestamps must come from one clock (every workload in this
// repo drives its monitors off a single clock).
//
// False-positive control (Goodlock): a cycle is only a plausible deadlock
// when its edges can be attributed to pairwise-distinct threads — one thread
// that takes A->B in one episode and B->A in another cannot deadlock with
// itself.  find_cycles() requires such an assignment over the recorded
// witnesses and suppresses single-thread cycles.
//
// The graph is a plain value type and NOT thread-safe; rt::CheckerPool
// serializes access through its own mutex.  The edge set is bounded:
// at most one edge per ordered monitor pair, each keeping up to
// kMaxWitnessesPerEdge distinct witnesses (plus a total count).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fault.hpp"
#include "trace/codec.hpp"
#include "trace/snapshot.hpp"

namespace robmon::core {

/// Identifies a monitor in the pool-level order graph (CheckerPool id).
using OrderMonitorId = std::uint64_t;

/// One thread's evidence for an order edge: it held `from` (episode
/// `from_ticket`) while holding or requesting `to` (episode `to_ticket`).
struct OrderWitness {
  trace::Pid pid = trace::kNoPid;
  std::uint64_t from_ticket = 0;  ///< Episode ticket of the hold on `from`.
  std::uint64_t to_ticket = 0;    ///< Episode ticket on `to` (0 = unknown).
  /// true: the `to` side was a blocked acquisition (parked on a queue);
  /// false: both sides were granted holds, ordered by acquisition start.
  bool to_wait = false;
};

/// Accumulated (from -> to) acquisition-order relation for one monitor pair.
struct OrderEdge {
  OrderMonitorId from = 0;
  OrderMonitorId to = 0;
  std::string from_name;
  std::string to_name;
  /// Distinct witnesses, capped at LockOrderGraph::kMaxWitnessesPerEdge.
  std::vector<OrderWitness> witnesses;
  std::uint64_t witness_total = 0;  ///< Including witnesses beyond the cap.
  std::uint64_t first_epoch = 0;    ///< Checkpoint epoch of first witness.
  std::uint64_t last_epoch = 0;     ///< Checkpoint epoch of latest witness.
};

/// One cycle in the order graph.  steps[i].witness held steps[i].monitor
/// while requesting steps[(i+1) % n].monitor; witnesses are pairwise
/// distinct threads (the Goodlock plausibility requirement).
struct OrderCycle {
  struct Step {
    OrderMonitorId monitor = 0;
    std::string name;
    OrderWitness witness;
  };
  std::vector<Step> steps;

  /// Canonical signature (rotation-invariant), for dedup across checkpoints.
  std::string key() const;
  /// Monitor ids on the cycle (reported-key pruning on unregister).
  std::vector<OrderMonitorId> monitors() const;
};

/// "potential deadlock (lock-order cycle, 2 monitors): lane-0 -> lane-1
///  [p0 held lane-0 (t#3) then requested lane-1 (t#5)] -> lane-0 [...]".
std::string describe(const OrderCycle& cycle);

/// The kPotentialDeadlock fault for an order cycle — one report shape shared
/// by the online (CheckerPool checkpoint) and offline (validate_lock_order /
/// trace replay) paths.
FaultReport make_order_report(const OrderCycle& cycle,
                              util::TimeNs detected_at);

class LockOrderGraph {
 public:
  /// Distinct witnesses retained per edge (witness_total keeps counting).
  static constexpr std::size_t kMaxWitnessesPerEdge = 8;

  /// Fold one monitor snapshot into the graph: replace `monitor`'s current
  /// access set (granted holds from state.holders; blocked acquisitions
  /// from EQ/CQ entries whose pid holds nothing of this monitor) and join
  /// it against every other monitor's current accesses, recording an order
  /// edge per certified overlap.  `epoch` stamps new witnesses.
  void observe(OrderMonitorId monitor, const std::string& name,
               std::uint64_t epoch, const trace::SchedulingState& state);

  /// Drop a monitor's accesses and every edge touching it (unregistered
  /// from the pool).  Recorded edges between other monitors survive.
  void erase(OrderMonitorId monitor);

  /// Enumerate order cycles over the accumulated relation: one
  /// representative cycle per non-trivial SCC of the monitor graph, plus
  /// every two-monitor cycle inside it, each in canonical rotation and each
  /// carrying a pairwise-distinct witness assignment.  Cycles with no such
  /// assignment (single-thread orderings) are suppressed.
  std::vector<OrderCycle> find_cycles() const;

  std::size_t monitor_count() const { return accesses_.size(); }
  std::size_t edge_count() const { return edge_total_; }
  /// Witnesses recorded across all edges (including beyond the cap).
  std::uint64_t witness_total() const;

  /// Flattened copy of the relation (introspection / trace persistence).
  std::vector<OrderEdge> edges() const;

  /// Replace the relation with a previously persisted one (offline replay).
  /// Accumulated accesses are cleared; find_cycles() works on edges alone.
  void restore(std::vector<OrderEdge> edges);

 private:
  /// One certified presence interval of `pid` at a monitor.
  struct Access {
    trace::Pid pid = trace::kNoPid;
    std::uint64_t ticket = 0;
    bool wait = false;           ///< Parked acquiring (vs granted hold).
    util::TimeNs since = 0;      ///< Acquisition / enqueue start.
    util::TimeNs last_seen = 0;  ///< Snapshot capture time.
  };
  struct Observation {
    std::string name;
    std::vector<Access> accesses;
  };

  void add_witness(OrderMonitorId from, OrderMonitorId to,
                   const std::string& from_name, const std::string& to_name,
                   std::uint64_t epoch, const OrderWitness& witness);

  std::unordered_map<OrderMonitorId, Observation> accesses_;
  /// Keyed by (from << 32 | ...)-free pair map; kept sorted for
  /// deterministic cycle extraction.
  std::unordered_map<OrderMonitorId,
                     std::unordered_map<OrderMonitorId, OrderEdge>>
      edges_;
  std::size_t edge_total_ = 0;
};

/// Convert the relation to / from its trace-codec form (robmon-trace v3
/// `lord` lines; one record per retained witness).  Restoring assigns
/// synthetic monitor ids by first appearance of each name.
std::vector<trace::LockOrderRecord> to_order_records(
    const std::vector<OrderEdge>& edges);
std::vector<OrderEdge> order_edges_from_records(
    const std::vector<trace::LockOrderRecord>& records);

}  // namespace robmon::core
