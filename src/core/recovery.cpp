#include "core/recovery.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace robmon::core {

std::string_view to_string(RecoveryRemedy remedy) {
  switch (remedy) {
    case RecoveryRemedy::kPoisonVictim:
      return "poison-victim";
    case RecoveryRemedy::kDeliverFault:
      return "deliver-fault";
  }
  return "?";
}

VictimComparator default_victim_comparator() {
  return [](const VictimCandidate& a, const VictimCandidate& b) {
    if (a.blocked_ticket != b.blocked_ticket) {
      return a.blocked_ticket > b.blocked_ticket;  // youngest episode
    }
    if (a.blocked_since != b.blocked_since) {
      return a.blocked_since > b.blocked_since;
    }
    if (a.held_monitors != b.held_monitors) {
      return a.held_monitors < b.held_monitors;  // least work lost
    }
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.pid < b.pid;
  };
}

RecoveryPolicy::RecoveryPolicy(Options options)
    : options_(std::move(options)) {
  if (!options_.comparator) options_.comparator = default_victim_comparator();
}

std::vector<VictimCandidate> RecoveryPolicy::candidates(
    const DeadlockCycle& cycle) const {
  std::vector<VictimCandidate> scored;
  scored.reserve(cycle.links.size());
  for (const auto& link : cycle.links) {
    // A cycle may traverse one thread more than once (it waits on one
    // monitor but holds several); one candidate per blocked thread.
    const bool seen = std::any_of(
        scored.begin(), scored.end(),
        [&](const VictimCandidate& c) { return c.pid == link.pid; });
    if (seen) continue;
    VictimCandidate candidate;
    candidate.pid = link.pid;
    candidate.monitor = link.monitor;
    candidate.monitor_name = link.monitor_name;
    candidate.cond = link.cond;
    candidate.blocked_since = link.blocked_since;
    candidate.blocked_ticket = link.blocked_ticket;
    for (const auto& held : cycle.links) {
      if (held.holder == link.pid) ++candidate.held_monitors;
    }
    if (options_.priority) candidate.priority = options_.priority(link.pid);
    scored.push_back(std::move(candidate));
  }
  return scored;
}

RecoveryDecision RecoveryPolicy::decide(const DeadlockCycle& cycle) const {
  RecoveryDecision decision;
  decision.remedy = options_.confirmed_remedy;
  const std::vector<VictimCandidate> scored = candidates(cycle);
  if (scored.empty()) return decision;  // degenerate cycle: nothing to do
  decision.victim = *std::min_element(scored.begin(), scored.end(),
                                      options_.comparator);
  std::ostringstream why;
  why << "victim p" << decision.victim.pid << " blocked on "
      << decision.victim.monitor_name << "["
      << (decision.victim.cond.empty() ? "entry" : decision.victim.cond)
      << "] (t#" << decision.victim.blocked_ticket << ", holds "
      << decision.victim.held_monitors << ", prio "
      << decision.victim.priority << ") of " << scored.size()
      << " candidate(s); remedy " << to_string(decision.remedy)
      << "; " << describe(cycle);
  decision.rationale = why.str();
  return decision;
}

OrderDecision RecoveryPolicy::decide(
    const OrderCycle& cycle, const std::vector<OrderEdge>& edges) const {
  OrderDecision decision;
  if (cycle.steps.empty()) return decision;

  // Witness totals per cycle step: step i is the edge
  // steps[i].monitor -> steps[(i+1) % n].monitor.
  const auto witness_total = [&](std::size_t i) -> std::uint64_t {
    const auto& from = cycle.steps[i];
    const auto& to = cycle.steps[(i + 1) % cycle.steps.size()];
    for (const auto& edge : edges) {
      if (edge.from == from.monitor && edge.to == to.monitor) {
        return edge.witness_total;
      }
    }
    return 1;  // the cycle itself proves at least one witness
  };

  // The minority edge: fewest witnesses; ties break on the smaller
  // (from, to) name pair so the decision is deterministic.
  std::size_t minority = 0;
  std::uint64_t minority_witnesses = witness_total(0);
  for (std::size_t i = 1; i < cycle.steps.size(); ++i) {
    const std::uint64_t witnesses = witness_total(i);
    const auto name_pair = [&](std::size_t j) {
      return std::make_pair(cycle.steps[j].name,
                            cycle.steps[(j + 1) % cycle.steps.size()].name);
    };
    if (witnesses < minority_witnesses ||
        (witnesses == minority_witnesses &&
         name_pair(i) < name_pair(minority))) {
      minority = i;
      minority_witnesses = witnesses;
    }
  }
  const std::size_t n = cycle.steps.size();
  decision.minority_from = cycle.steps[minority].name;
  decision.minority_to = cycle.steps[(minority + 1) % n].name;

  // Fence every recorded witness of the minority edge (capped at the
  // relation's retained-witness bound); the cycle's own witness at minimum.
  for (const auto& edge : edges) {
    if (edge.from_name != decision.minority_from ||
        edge.to_name != decision.minority_to) {
      continue;
    }
    for (const auto& witness : edge.witnesses) {
      decision.fenced.push_back(witness.pid);
    }
  }
  if (decision.fenced.empty()) {
    decision.fenced.push_back(cycle.steps[minority].witness.pid);
  }
  std::sort(decision.fenced.begin(), decision.fenced.end());
  decision.fenced.erase(
      std::unique(decision.fenced.begin(), decision.fenced.end()),
      decision.fenced.end());

  // Linearize the cycle starting just past the minority edge: every
  // majority edge then points forward, so acquiring left-to-right can never
  // close this cycle.
  for (std::size_t k = 0; k < n; ++k) {
    decision.imposed_order.push_back(cycle.steps[(minority + 1 + k) % n].name);
  }

  std::ostringstream why;
  why << "imposed order";
  for (const auto& name : decision.imposed_order) why << " " << name;
  why << "; fenced minority edge " << decision.minority_from << " -> "
      << decision.minority_to << " (" << minority_witnesses
      << " witness(es) vs the dominant direction) fencing pid(s)";
  for (const trace::Pid pid : decision.fenced) why << " p" << pid;
  why << "; " << describe(cycle);
  decision.rationale = why.str();
  return decision;
}

FaultReport make_recovery_report(const RecoveryDecision& decision,
                                 util::TimeNs detected_at) {
  FaultReport fault;
  fault.rule = RuleId::kRecoveryAction;
  fault.suspected = FaultKind::kRecoveryIntervention;
  fault.pid = decision.victim.pid;
  fault.detected_at = detected_at;
  fault.message = decision.rationale;
  return fault;
}

FaultReport make_recovery_report(const OrderDecision& decision,
                                 util::TimeNs detected_at) {
  FaultReport fault;
  fault.rule = RuleId::kRecoveryAction;
  fault.suspected = FaultKind::kRecoveryIntervention;
  fault.pid =
      decision.fenced.empty() ? trace::kNoPid : decision.fenced.front();
  fault.detected_at = detected_at;
  fault.message = decision.rationale;
  return fault;
}

trace::RecoveryRecord make_recovery_record(const RecoveryDecision& decision,
                                           util::TimeNs at) {
  trace::RecoveryRecord record;
  record.action =
      decision.remedy == RecoveryRemedy::kPoisonVictim ? 'P' : 'F';
  record.victim = decision.victim.pid;
  record.monitor = decision.victim.monitor_name;
  record.ticket = decision.victim.blocked_ticket;
  record.at = at;
  record.detail = decision.rationale;
  return record;
}

trace::RecoveryRecord make_recovery_record(const OrderDecision& decision,
                                           util::TimeNs at) {
  trace::RecoveryRecord record;
  record.action = 'O';
  record.victim =
      decision.fenced.empty() ? trace::kNoPid : decision.fenced.front();
  record.monitor = decision.minority_from;
  record.at = at;
  record.detail = decision.rationale;
  return record;
}

}  // namespace robmon::core
