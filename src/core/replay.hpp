// Offline replay: run the periodic detection algorithms over a recorded
// trace (codec.hpp format).  Convention: checkpoints[0] is the scheduling
// state at detector start; each subsequent checkpoint is one checking point,
// whose segment is every event with time greater than the previous
// checkpoint's capture time and at most its own.
#pragma once

#include <cstddef>
#include <vector>

#include "core/detector.hpp"
#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "trace/codec.hpp"

namespace robmon::core {

struct ReplayResult {
  std::vector<FaultReport> reports;
  std::size_t checkpoints_processed = 0;
  std::size_t events_processed = 0;
  /// Events recorded after the final checkpoint (never checked).
  std::size_t events_unchecked = 0;
};

/// Replay with an explicit spec (timing parameters matter for Timer rules).
ReplayResult replay_trace(const trace::TraceFile& file,
                          const MonitorSpec& spec);

/// Replay with a spec derived from the trace header (default timing).
ReplayResult replay_trace(const trace::TraceFile& file);

}  // namespace robmon::core
