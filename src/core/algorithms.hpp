// The three fault-detection algorithms of Section 3.3.2.
//
//   Algorithm-1  General concurrency-control checking (ST-Rules 1-6):
//                replays the event segment over the checking lists, then
//                compares the final lists against the current scheduling
//                state and evaluates the Timer rules.
//   Algorithm-2  Consistency-of-resource-states checking (ST-Rule 7),
//                communication-coordinator monitors only.
//   Algorithm-3  Calling-orders checking (ST-Rule 8),
//                resource-access-right-allocator monitors only.
//
// All three take the state s_p recorded at the previous checking time, the
// state s_t at the current checking time and the event segment L generated
// in between; violations are delivered to the ReportSink.  Algorithms 2 and
// 3 additionally thread persistent state (cumulative send/receive counters,
// the Request-List) owned by the Detector.
#pragma once

#include <deque>
#include <vector>

#include "core/checking_lists.hpp"
#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::core {

/// Resolved symbols and environment shared by the algorithms for one
/// checking-routine invocation.
struct CheckContext {
  const MonitorSpec* spec = nullptr;
  const trace::SymbolTable* symbols = nullptr;
  /// Interned ids of the distinguished names (kNoSymbol when absent).
  trace::SymbolId send_proc = trace::kNoSymbol;
  trace::SymbolId receive_proc = trace::kNoSymbol;
  trace::SymbolId full_cond = trace::kNoSymbol;
  trace::SymbolId empty_cond = trace::kNoSymbol;
  trace::SymbolId acquire_proc = trace::kNoSymbol;
  trace::SymbolId release_proc = trace::kNoSymbol;
  util::TimeNs now = 0;          ///< Current checking time t.
  ReportSink* sink = nullptr;

  /// Build a context, interning the spec's distinguished names.
  static CheckContext make(const MonitorSpec& spec,
                           trace::SymbolTable& symbols, util::TimeNs now,
                           ReportSink& sink);
};

/// Algorithm-1.  Returns the number of violations reported.
std::size_t run_algorithm1(const CheckContext& ctx,
                           const trace::SchedulingState& prev,
                           const trace::SchedulingState& current,
                           const std::vector<trace::EventRecord>& events);

/// Cumulative successful-call counters (r and s of ST-Rule 7), persistent
/// across checking points.
struct ResourceCounters {
  std::int64_t sends = 0;     ///< s: successful Send completions.
  std::int64_t receives = 0;  ///< r: successful Receive completions.
};

/// Algorithm-2.  Returns the number of violations reported.
std::size_t run_algorithm2(const CheckContext& ctx,
                           const trace::SchedulingState& prev,
                           const trace::SchedulingState& current,
                           const std::vector<trace::EventRecord>& events,
                           ResourceCounters& cumulative);

/// Request-List: outstanding acquisitions, persistent across checking
/// points ("initialized once to empty", Section 3.3.1).
struct RequestList {
  std::deque<ListEntry> entries;

  bool contains(trace::Pid pid) const;
  /// Remove first occurrence; returns whether one was removed.
  bool remove_first(trace::Pid pid);
};

/// Algorithm-3.  Returns the number of violations reported.
std::size_t run_algorithm3(const CheckContext& ctx,
                           const std::vector<trace::EventRecord>& events,
                           RequestList& requests);

}  // namespace robmon::core
