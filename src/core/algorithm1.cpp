// Algorithm-1: General Concurrency-Control Checking (Section 3.3.2).
//
// Step 1 replays the event segment L over the checking lists initialized
// from s_p, evaluating ST-Rules 3 and 4 at every event.  Step 2 compares the
// final lists against the current state s_t (ST-Rules 1, 2 and the Running
// comparison) and applies the Timer rules (ST-5 with Tmax, ST-6 with Tio) to
// the processes found in s_t.
#include <sstream>

#include "core/algorithms.hpp"

namespace robmon::core {

namespace {

void report(const CheckContext& ctx, RuleId rule,
            std::optional<FaultKind> suspected, const trace::EventRecord* ev,
            const std::string& message) {
  FaultReport fault;
  fault.rule = rule;
  fault.suspected = suspected;
  if (ev != nullptr) {
    fault.pid = ev->pid;
    fault.proc = ev->proc;
    fault.cond = ev->cond;
    fault.event_seq = ev->seq;
  }
  fault.detected_at = ctx.now;
  fault.message = message;
  ctx.sink->report(fault);
}

void report_pid(const CheckContext& ctx, RuleId rule,
                std::optional<FaultKind> suspected, trace::Pid pid,
                trace::SymbolId proc, const std::string& message) {
  FaultReport fault;
  fault.rule = rule;
  fault.suspected = suspected;
  fault.pid = pid;
  fault.proc = proc;
  fault.detected_at = ctx.now;
  fault.message = message;
  ctx.sink->report(fault);
}

std::string render_queue(const std::deque<ListEntry>& rebuilt,
                         const std::vector<trace::QueueEntry>& actual,
                         const trace::SymbolTable& symbols) {
  std::ostringstream out;
  out << "rebuilt=[";
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    if (i) out << ",";
    out << "p" << rebuilt[i].pid << "(" << symbols.name(rebuilt[i].proc)
        << ")";
  }
  out << "] actual=[";
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (i) out << ",";
    out << "p" << actual[i].pid << "(" << symbols.name(actual[i].proc) << ")";
  }
  out << "]";
  return out.str();
}

}  // namespace

CheckContext CheckContext::make(const MonitorSpec& spec,
                                trace::SymbolTable& symbols, util::TimeNs now,
                                ReportSink& sink) {
  CheckContext ctx;
  ctx.spec = &spec;
  ctx.symbols = &symbols;
  ctx.now = now;
  ctx.sink = &sink;
  if (spec.type == MonitorType::kCommunicationCoordinator) {
    ctx.send_proc = symbols.intern(spec.send_procedure);
    ctx.receive_proc = symbols.intern(spec.receive_procedure);
    ctx.full_cond = symbols.intern(spec.full_condition);
    ctx.empty_cond = symbols.intern(spec.empty_condition);
  }
  if (spec.type == MonitorType::kResourceAllocator) {
    ctx.acquire_proc = symbols.intern(spec.acquire_procedure);
    ctx.release_proc = symbols.intern(spec.release_procedure);
  }
  return ctx;
}

std::size_t run_algorithm1(const CheckContext& ctx,
                           const trace::SchedulingState& prev,
                           const trace::SchedulingState& current,
                           const std::vector<trace::EventRecord>& events) {
  std::size_t violations = 0;
  auto note = [&violations](auto&&...) {};
  (void)note;

  CheckingLists lists = CheckingLists::from_state(prev);

  // --- Step 1: replay L over the checking lists. ---------------------------
  for (const auto& ev : events) {
    // ST-Rule 4: an event cannot come from a process currently parked on
    // the entry queue or a condition queue.
    if (lists.pid_blocked(ev.pid)) {
      ++violations;
      report(ctx, RuleId::kSt4EventFromBlockedProcess, std::nullopt, &ev,
             "event issued by a process recorded as blocked");
    }

    switch (ev.kind) {
      case trace::EventKind::kEnter: {
        if (ev.flag) {
          // Immediate entry.  ST-3c: the monitor must have been vacant.
          if (!lists.running.empty()) {
            ++violations;
            report(ctx, RuleId::kSt3cEnterWhileOccupied,
                   FaultKind::kEnterMutualExclusionViolation, &ev,
                   "entry granted while another process was inside");
          }
          lists.running.push_back({ev.pid, ev.proc, ev.time});
          if (lists.running.size() > 1) {
            ++violations;
            report(ctx, RuleId::kSt3aMultipleRunning,
                   FaultKind::kEnterMutualExclusionViolation, &ev,
                   "more than one process on Running-List");
          }
        } else {
          // Queued on EQ.  ST-3d: blocking is only legitimate if the
          // monitor is occupied.
          if (lists.running.size() != 1) {
            ++violations;
            report(ctx, RuleId::kSt3dBlockedWhileFree,
                   FaultKind::kEnterNoResponse, &ev,
                   "entry blocked while the monitor was free");
          }
          lists.enter_zero.push_back({ev.pid, ev.proc, ev.time});
        }
        break;
      }
      case trace::EventKind::kWait: {
        // ST-3b: the caller must be the sole runner.
        if (!(lists.running.size() == 1 && lists.running[0].pid == ev.pid)) {
          ++violations;
          report(ctx, RuleId::kSt3bRunnerNotSole, std::nullopt, &ev,
                 "Wait issued by a process that is not the sole runner");
        }
        lists.remove_running(ev.pid);
        lists.wait_cond[ev.cond].push_back({ev.pid, ev.proc, ev.time});
        // The monitor is released: the head of Enter-0-List (if any) is
        // admitted (FD-Rule 1.b).
        if (!lists.enter_zero.empty()) {
          ListEntry admitted = lists.enter_zero.front();
          lists.enter_zero.pop_front();
          admitted.since = ev.time;
          lists.running.push_back(admitted);
        }
        if (lists.running.size() > 1) {
          ++violations;
          report(ctx, RuleId::kSt3aMultipleRunning, std::nullopt, &ev,
                 "more than one process on Running-List after Wait");
        }
        break;
      }
      case trace::EventKind::kSignalExit: {
        if (!(lists.running.size() == 1 && lists.running[0].pid == ev.pid)) {
          ++violations;
          report(ctx, RuleId::kSt3bRunnerNotSole, std::nullopt, &ev,
                 "Signal-Exit issued by a process that is not the sole "
                 "runner");
        }
        lists.remove_running(ev.pid);
        if (ev.flag) {
          // Hand-off to a condition waiter (FD-Rule 1.c).
          auto queue_it = lists.wait_cond.find(ev.cond);
          if (queue_it == lists.wait_cond.end() || queue_it->second.empty()) {
            ++violations;
            report(ctx, RuleId::kSt2CondQueueMismatch, std::nullopt, &ev,
                   "Signal-Exit claims to resume a condition waiter but the "
                   "rebuilt condition queue is empty");
          } else {
            ListEntry resumed = queue_it->second.front();
            queue_it->second.pop_front();
            resumed.since = ev.time;
            lists.running.push_back(resumed);
          }
        } else {
          // Plain exit: the head of Enter-0-List (if any) is admitted
          // (FD-Rule 1.b).
          if (!lists.enter_zero.empty()) {
            ListEntry admitted = lists.enter_zero.front();
            lists.enter_zero.pop_front();
            admitted.since = ev.time;
            lists.running.push_back(admitted);
          }
        }
        if (lists.running.size() > 1) {
          ++violations;
          report(ctx, RuleId::kSt3aMultipleRunning,
                 FaultKind::kSignalExitMutualExclusionViolation, &ev,
                 "more than one process on Running-List after Signal-Exit");
        }
        break;
      }
    }
  }

  // --- Step 2: compare final lists against s_t. ----------------------------
  if (!lists_match(lists.enter_zero, current.entry_queue)) {
    ++violations;
    report(ctx, RuleId::kSt1EntryQueueMismatch, std::nullopt, nullptr,
           "Enter-0-List does not match the entry queue: " +
               render_queue(lists.enter_zero, current.entry_queue,
                            *ctx.symbols));
  }

  // Union of rebuilt and actual condition ids.
  {
    std::vector<trace::SymbolId> conds;
    for (const auto& [cond, queue] : lists.wait_cond) conds.push_back(cond);
    for (const auto& queue : current.cond_queues) {
      bool known = false;
      for (trace::SymbolId c : conds) known = known || c == queue.cond;
      if (!known) conds.push_back(queue.cond);
    }
    for (trace::SymbolId cond : conds) {
      static const std::deque<ListEntry> kEmptyRebuilt;
      const auto it = lists.wait_cond.find(cond);
      const auto& rebuilt = it == lists.wait_cond.end() ? kEmptyRebuilt
                                                        : it->second;
      const auto& actual = current.cond_entries(cond);
      if (!lists_match(rebuilt, actual)) {
        ++violations;
        FaultReport fault;
        fault.rule = RuleId::kSt2CondQueueMismatch;
        fault.cond = cond;
        fault.detected_at = ctx.now;
        fault.message =
            "Wait-Cond-List does not match CQ[" + ctx.symbols->name(cond) +
            "]: " + render_queue(rebuilt, actual, *ctx.symbols);
        ctx.sink->report(fault);
      }
    }
  }

  {
    const bool rebuilt_running = lists.running.size() == 1;
    const bool match =
        (lists.running.empty() && !current.has_running()) ||
        (rebuilt_running && current.has_running() &&
         lists.running[0].pid == current.running);
    if (!match) {
      ++violations;
      std::ostringstream msg;
      msg << "Running-List ";
      if (lists.running.empty()) {
        msg << "(empty)";
      } else {
        msg << "{p" << lists.running[0].pid << "}";
      }
      msg << " does not match snapshot running ";
      if (current.has_running()) {
        msg << "p" << current.running;
      } else {
        msg << "(none)";
      }
      report_pid(ctx, RuleId::kStRunningMismatch, std::nullopt,
                 current.running, current.running_proc, msg.str());
    }
  }

  // --- Timer rules over the current state. ---------------------------------
  // ST-5: processes inside the monitor (running or on a condition queue)
  // must not exceed Tmax.
  if (current.has_running() &&
      ctx.now - current.running_since >= ctx.spec->t_max) {
    ++violations;
    report_pid(ctx, RuleId::kSt5ResidenceExceedsTmax,
               FaultKind::kTerminationInsideMonitor, current.running,
               current.running_proc,
               "running process exceeded Tmax inside the monitor");
  }
  for (const auto& queue : current.cond_queues) {
    for (const auto& entry : queue.entries) {
      if (ctx.now - entry.enqueued_at >= ctx.spec->t_max) {
        ++violations;
        FaultReport fault;
        fault.rule = RuleId::kSt5ResidenceExceedsTmax;
        fault.suspected = FaultKind::kSignalExitNoResume;
        fault.pid = entry.pid;
        fault.proc = entry.proc;
        fault.cond = queue.cond;
        fault.detected_at = ctx.now;
        fault.message = "condition wait exceeded Tmax";
        ctx.sink->report(fault);
      }
    }
  }
  // ST-6: entry-queue residence bounded by Tio.
  for (const auto& entry : current.entry_queue) {
    if (ctx.now - entry.enqueued_at >= ctx.spec->t_io) {
      ++violations;
      report_pid(ctx, RuleId::kSt6EntryWaitExceedsTio,
                 FaultKind::kWaitEntryStarved, entry.pid, entry.proc,
                 "entry wait exceeded Tio (starvation or deadlock)");
    }
  }

  return violations;
}

}  // namespace robmon::core
