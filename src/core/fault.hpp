// The paper's taxonomy of monitor concurrency-control faults (Section 2.2):
// twenty-one faults over three levels, plus the rule identifiers (FD-Rules of
// Section 3.2, ST-Rules of Section 3.3.2) whose violation detects them, and
// the FaultReport/ReportSink types used to deliver detections.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "trace/event.hpp"
#include "util/clock.hpp"

namespace robmon::core {

/// The three levels of Section 2.2.
enum class FaultLevel {
  kImplementation,    ///< Level I: Enter/Wait/Signal-Exit procedure faults.
  kMonitorProcedure,  ///< Level II: resource-state integrity violations.
  kUserProcess,       ///< Level III: partial-ordering violations.
};

std::string_view to_string(FaultLevel level);

/// The twenty-one fault classes, numbered per Section 2.2.
enum class FaultKind : std::uint8_t {
  // Level I(a): Enter procedure faults.
  kEnterMutualExclusionViolation = 0,  ///< I.a.1 two processes entered.
  kEnterRequestLost,                   ///< I.a.2 request neither queued nor admitted.
  kEnterNoResponse,                    ///< I.a.3 queued indefinitely / blocked while free.
  kEnterNotObserved,                   ///< I.a.4 runs inside without calling Enter.
  // Level I(b): Wait procedure faults.
  kWaitNoBlock,                    ///< I.b.1 caller not blocked, keeps running.
  kWaitProcessLost,                ///< I.b.2 caller neither queued nor running.
  kWaitEntryNotResumed,            ///< I.b.3 no entry waiter resumed on wait.
  kWaitEntryStarved,               ///< I.b.4 entry waiter never resumed.
  kWaitMutualExclusionViolation,   ///< I.b.5 more than one entry waiter resumed.
  kWaitMonitorNotReleased,         ///< I.b.6 caller blocked but monitor kept.
  // Level I(c): Signal-Exit procedure faults (+ internal termination).
  kSignalExitNoResume,                  ///< I.c.1 nobody resumed on exit.
  kSignalExitMonitorNotReleased,        ///< I.c.2 exit but monitor kept.
  kSignalExitMutualExclusionViolation,  ///< I.c.3 more than one resumed.
  kTerminationInsideMonitor,            ///< I.c.4 process terminated inside.
  // Level II: monitor procedure faults (communication coordinator).
  kSendDelayWrong,        ///< II.a Send delayed iff buffer full violated.
  kReceiveDelayWrong,     ///< II.b Receive delayed iff buffer empty violated.
  kReceiveExceedsSend,    ///< II.c successful receives exceed sends.
  kSendExceedsCapacity,   ///< II.d sends exceed receives + capacity.
  // Level III: user process faults (resource-access-right allocator).
  kReleaseBeforeAcquire,    ///< III.a release without prior acquire.
  kResourceNeverReleased,   ///< III.b acquired but never released.
  kDoubleAcquireDeadlock,   ///< III.c re-acquire without release (deadlock).
  // Extensions beyond the paper's 21 classes (pool-level analysis): a
  // circular wait spanning several monitors, invisible to the per-monitor
  // Algorithms 1-3 and detected by the CheckerPool's wait-for checkpoint —
  // and its predictive counterpart, a cycle in the observed acquisition-
  // order relation that never materialized as a real wait cycle
  // (Goodlock-style lock-order prediction).
  kGlobalDeadlock,          ///< ext.WF cross-monitor circular wait.
  kPotentialDeadlock,       ///< ext.LO lock-order cycle; fault not yet real.
  // Recovery extension: not a detected fault but an *applied remedy* — the
  // recovery engine broke (or pre-empted) a deadlock by poisoning a victim
  // monitor, delivering a RecoveryFault to one thread, or imposing the
  // dominant acquisition order.  Reported through the same sink machinery
  // so recovery actions are observable exactly like detections.
  kRecoveryIntervention,    ///< ext.RC recovery action applied.
};

/// The paper's taxonomy size; kGlobalDeadlock, kPotentialDeadlock and
/// kRecoveryIntervention are extensions on top and are deliberately
/// excluded (they are detected — or applied — structurally at the pool
/// level, not injected through the per-monitor catalog).
constexpr std::size_t kFaultKindCount = 21;

FaultLevel level_of(FaultKind kind);
std::string_view to_string(FaultKind kind);
std::string_view paper_designation(FaultKind kind);  ///< e.g. "I.a.1".
std::string_view description(FaultKind kind);

/// The paper's 21 kinds in taxonomy order (for sweeps and the coverage
/// matrix); excludes the kGlobalDeadlock extension.
const std::vector<FaultKind>& all_fault_kinds();

/// Identifiers of the rules whose violation the detector reports.
/// kSt* are the state-transition rules of Section 3.3.2 (checked by
/// Algorithms 1-3); kFd* are the declarative rules of Section 3.2 (checked
/// by the offline validator); kRealTimeOrder is the real-time path-expression
/// phase of Section 3.3.
enum class RuleId : std::uint8_t {
  // ST-Rules (interval checking).
  kSt1EntryQueueMismatch,
  kSt2CondQueueMismatch,
  kSt3aMultipleRunning,
  kSt3bRunnerNotSole,
  kSt3cEnterWhileOccupied,
  kSt3dBlockedWhileFree,
  kSt4EventFromBlockedProcess,
  kSt5ResidenceExceedsTmax,
  kSt6EntryWaitExceedsTio,
  kSt7aReceiveExceedsSend,
  kSt7aSendExceedsCapacity,
  kSt7bResourceBalanceMismatch,
  kSt7cSendDelayedWhenNotFull,
  kSt7dReceiveDelayedWhenNotEmpty,
  kSt8aDuplicateAcquire,
  kSt8bReleaseWithoutAcquire,
  kSt8cHoldExceedsTlimit,
  kStRunningMismatch,  ///< Running-List vs snapshot Running disagreement.
  // FD-Rules (offline / T=1 validation).
  kFd1aMutualExclusion,
  kFd1bEntryQueueService,
  kFd1cCondQueueService,
  kFd1dOperateWithoutEnter,
  kFd2NonTermination,
  kFd3UnfairResponse,
  kFd4StarvationOrLoss,
  kFd5aWrongWaitResume,
  kFd5bWrongEntryResume,
  kFd6aResourceCountInvariant,
  kFd6bSendDelayInvariant,
  kFd6cReceiveDelayInvariant,
  kFd7aAcquireNeverReleased,
  kFd7bReleaseWithoutAcquire,
  // Real-time phase.
  kRealTimeOrder,
  // Section 5 extension: predefined / user-supplied assertion failed.
  kUserAssertion,
  // Pool-level extensions: wait-for cycle across monitors confirmed at a
  // CheckerPool checkpoint (suspected fault kGlobalDeadlock), and an
  // acquisition-order cycle found by the lock-order prediction checkpoint
  // (suspected fault kPotentialDeadlock — a warning, not a failure).
  kWfCycleDetected,
  kLockOrderCycle,
  // Recovery extension: a RecoveryPolicy acted on one of the two cycle
  // verdicts above (suspected fault kRecoveryIntervention — an action
  // record, not a detection).
  kRecoveryAction,
};

std::string_view to_string(RuleId rule);

/// Level implied by the violated rule (for report classification).
FaultLevel level_of(RuleId rule);

/// One detection, produced by a checking routine.
struct FaultReport {
  RuleId rule;
  std::optional<FaultKind> suspected;  ///< Best-effort taxonomy class.
  trace::Pid pid = trace::kNoPid;      ///< Offending process, if known.
  trace::SymbolId proc = trace::kNoSymbol;
  trace::SymbolId cond = trace::kNoSymbol;
  std::uint64_t event_seq = 0;   ///< Offending event, when applicable.
  util::TimeNs detected_at = 0;  ///< Checking-routine invocation time.
  std::string message;
};

std::string describe(const FaultReport& report,
                     const trace::SymbolTable& symbols);

/// Destination for detections.  Implementations must be thread-safe when
/// shared with a checker thread.
class ReportSink {
 public:
  virtual ~ReportSink() = default;
  virtual void report(const FaultReport& fault) = 0;
};

/// Thread-safe accumulating sink (default choice in tests and benches).
class CollectingSink final : public ReportSink {
 public:
  void report(const FaultReport& fault) override;

  std::vector<FaultReport> reports() const;
  std::size_t count() const;
  bool any_with_rule(RuleId rule) const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<FaultReport> reports_;
};

}  // namespace robmon::core
