#include "core/replay.hpp"

#include <stdexcept>

namespace robmon::core {

ReplayResult replay_trace(const trace::TraceFile& file,
                          const MonitorSpec& spec) {
  if (file.checkpoints.empty()) {
    throw std::invalid_argument(
        "replay_trace: trace has no checkpoints (need at least the initial "
        "state)");
  }

  // Rebuild the symbol table with the same dense ids.
  trace::SymbolTable symbols;
  for (const auto& name : file.symbols) symbols.intern(name);

  CollectingSink sink;
  Detector detector(spec, symbols, sink);
  detector.initialize(file.checkpoints.front());

  ReplayResult result;
  std::size_t cursor = 0;
  for (std::size_t k = 1; k < file.checkpoints.size(); ++k) {
    const auto& checkpoint = file.checkpoints[k];
    std::vector<trace::EventRecord> segment;
    while (cursor < file.events.size() &&
           file.events[cursor].time <= checkpoint.captured_at) {
      segment.push_back(file.events[cursor]);
      ++cursor;
    }
    detector.check(segment, checkpoint, checkpoint.captured_at);
    ++result.checkpoints_processed;
    result.events_processed += segment.size();
  }
  result.events_unchecked = file.events.size() - cursor;
  result.reports = sink.reports();
  return result;
}

ReplayResult replay_trace(const trace::TraceFile& file) {
  MonitorSpec spec;
  spec.name = file.monitor_name;
  spec.type = monitor_type_from_string(file.monitor_type);
  spec.rmax = file.rmax;
  return replay_trace(file, spec);
}

}  // namespace robmon::core
