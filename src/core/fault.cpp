#include "core/fault.hpp"

#include <sstream>

namespace robmon::core {

std::string_view to_string(FaultLevel level) {
  switch (level) {
    case FaultLevel::kImplementation:
      return "implementation";
    case FaultLevel::kMonitorProcedure:
      return "monitor-procedure";
    case FaultLevel::kUserProcess:
      return "user-process";
  }
  return "?";
}

FaultLevel level_of(FaultKind kind) {
  switch (kind) {
    case FaultKind::kSendDelayWrong:
    case FaultKind::kReceiveDelayWrong:
    case FaultKind::kReceiveExceedsSend:
    case FaultKind::kSendExceedsCapacity:
      return FaultLevel::kMonitorProcedure;
    case FaultKind::kReleaseBeforeAcquire:
    case FaultKind::kResourceNeverReleased:
    case FaultKind::kDoubleAcquireDeadlock:
    case FaultKind::kGlobalDeadlock:
    case FaultKind::kPotentialDeadlock:
    case FaultKind::kRecoveryIntervention:
      return FaultLevel::kUserProcess;
    default:
      return FaultLevel::kImplementation;
  }
}

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnterMutualExclusionViolation:
      return "enter-mutual-exclusion-violation";
    case FaultKind::kEnterRequestLost:
      return "enter-request-lost";
    case FaultKind::kEnterNoResponse:
      return "enter-no-response";
    case FaultKind::kEnterNotObserved:
      return "enter-not-observed";
    case FaultKind::kWaitNoBlock:
      return "wait-no-block";
    case FaultKind::kWaitProcessLost:
      return "wait-process-lost";
    case FaultKind::kWaitEntryNotResumed:
      return "wait-entry-not-resumed";
    case FaultKind::kWaitEntryStarved:
      return "wait-entry-starved";
    case FaultKind::kWaitMutualExclusionViolation:
      return "wait-mutual-exclusion-violation";
    case FaultKind::kWaitMonitorNotReleased:
      return "wait-monitor-not-released";
    case FaultKind::kSignalExitNoResume:
      return "signal-exit-no-resume";
    case FaultKind::kSignalExitMonitorNotReleased:
      return "signal-exit-monitor-not-released";
    case FaultKind::kSignalExitMutualExclusionViolation:
      return "signal-exit-mutual-exclusion-violation";
    case FaultKind::kTerminationInsideMonitor:
      return "termination-inside-monitor";
    case FaultKind::kSendDelayWrong:
      return "send-delay-wrong";
    case FaultKind::kReceiveDelayWrong:
      return "receive-delay-wrong";
    case FaultKind::kReceiveExceedsSend:
      return "receive-exceeds-send";
    case FaultKind::kSendExceedsCapacity:
      return "send-exceeds-capacity";
    case FaultKind::kReleaseBeforeAcquire:
      return "release-before-acquire";
    case FaultKind::kResourceNeverReleased:
      return "resource-never-released";
    case FaultKind::kDoubleAcquireDeadlock:
      return "double-acquire-deadlock";
    case FaultKind::kGlobalDeadlock:
      return "global-deadlock";
    case FaultKind::kPotentialDeadlock:
      return "potential-deadlock";
    case FaultKind::kRecoveryIntervention:
      return "recovery-intervention";
  }
  return "?";
}

std::string_view paper_designation(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnterMutualExclusionViolation:
      return "I.a.1";
    case FaultKind::kEnterRequestLost:
      return "I.a.2";
    case FaultKind::kEnterNoResponse:
      return "I.a.3";
    case FaultKind::kEnterNotObserved:
      return "I.a.4";
    case FaultKind::kWaitNoBlock:
      return "I.b.1";
    case FaultKind::kWaitProcessLost:
      return "I.b.2";
    case FaultKind::kWaitEntryNotResumed:
      return "I.b.3";
    case FaultKind::kWaitEntryStarved:
      return "I.b.4";
    case FaultKind::kWaitMutualExclusionViolation:
      return "I.b.5";
    case FaultKind::kWaitMonitorNotReleased:
      return "I.b.6";
    case FaultKind::kSignalExitNoResume:
      return "I.c.1";
    case FaultKind::kSignalExitMonitorNotReleased:
      return "I.c.2";
    case FaultKind::kSignalExitMutualExclusionViolation:
      return "I.c.3";
    case FaultKind::kTerminationInsideMonitor:
      return "I.c.4";
    case FaultKind::kSendDelayWrong:
      return "II.a";
    case FaultKind::kReceiveDelayWrong:
      return "II.b";
    case FaultKind::kReceiveExceedsSend:
      return "II.c";
    case FaultKind::kSendExceedsCapacity:
      return "II.d";
    case FaultKind::kReleaseBeforeAcquire:
      return "III.a";
    case FaultKind::kResourceNeverReleased:
      return "III.b";
    case FaultKind::kDoubleAcquireDeadlock:
      return "III.c";
    case FaultKind::kGlobalDeadlock:
      return "ext.WF";
    case FaultKind::kPotentialDeadlock:
      return "ext.LO";
    case FaultKind::kRecoveryIntervention:
      return "ext.RC";
  }
  return "?";
}

std::string_view description(FaultKind kind) {
  switch (kind) {
    case FaultKind::kEnterMutualExclusionViolation:
      return "mutual exclusion not guaranteed: two or more processes entered "
             "the monitor at the same time";
    case FaultKind::kEnterRequestLost:
      return "the requesting process is lost: neither queued for entry nor "
             "allowed to enter";
    case FaultKind::kEnterNoResponse:
      return "no response to the requesting process: queued indefinitely or "
             "blocked while the monitor is free";
    case FaultKind::kEnterNotObserved:
      return "entry not observed: a process runs inside the monitor without "
             "having invoked Enter";
    case FaultKind::kWaitNoBlock:
      return "synchronization not guaranteed: the waiting process is not "
             "blocked and continues inside the monitor";
    case FaultKind::kWaitProcessLost:
      return "the calling process is lost: neither queued on the condition "
             "nor running inside the monitor";
    case FaultKind::kWaitEntryNotResumed:
      return "entry waiting processes not resumed when the caller blocked on "
             "a condition";
    case FaultKind::kWaitEntryStarved:
      return "an entry waiting process is starved: never resumed";
    case FaultKind::kWaitMutualExclusionViolation:
      return "mutual exclusion not guaranteed: more than one entry waiter "
             "resumed when the caller blocked on a condition";
    case FaultKind::kWaitMonitorNotReleased:
      return "monitor not released: caller blocked on a condition without "
             "releasing the monitor";
    case FaultKind::kSignalExitNoResume:
      return "waiting processes not resumed when the signalling process "
             "exited the monitor";
    case FaultKind::kSignalExitMonitorNotReleased:
      return "monitor not released on exit";
    case FaultKind::kSignalExitMutualExclusionViolation:
      return "mutual exclusion not guaranteed: more than one process resumed "
             "on exit";
    case FaultKind::kTerminationInsideMonitor:
      return "internal process termination: a process terminated inside the "
             "monitor and never exits";
    case FaultKind::kSendDelayWrong:
      return "Send delayed when the buffer is not full, or not delayed when "
             "full";
    case FaultKind::kReceiveDelayWrong:
      return "Receive delayed when the buffer is not empty, or not delayed "
             "when empty";
    case FaultKind::kReceiveExceedsSend:
      return "successful Receive calls exceed successful Send calls";
    case FaultKind::kSendExceedsCapacity:
      return "successful Send calls exceed buffer capacity plus successful "
             "Receive calls";
    case FaultKind::kReleaseBeforeAcquire:
      return "incorrect ordering: a process releases a resource without "
             "first acquiring it";
    case FaultKind::kResourceNeverReleased:
      return "resource not released after acquisition";
    case FaultKind::kDoubleAcquireDeadlock:
      return "process deadlocked: re-acquires a held resource without "
             "releasing it";
    case FaultKind::kGlobalDeadlock:
      return "global deadlock: circular wait across monitors, each process "
             "blocked on a resource held by the next";
    case FaultKind::kPotentialDeadlock:
      return "potential deadlock: monitors are acquired in inconsistent "
             "orders by different processes; a schedule exists that closes "
             "the cycle even though this run never did";
    case FaultKind::kRecoveryIntervention:
      return "recovery intervention: the recovery policy broke or pre-empted "
             "a deadlock (victim monitor poisoned, designated fault "
             "delivered, or the dominant acquisition order imposed)";
  }
  return "?";
}

const std::vector<FaultKind>& all_fault_kinds() {
  static const std::vector<FaultKind> kinds = [] {
    std::vector<FaultKind> all;
    for (std::size_t i = 0; i < kFaultKindCount; ++i) {
      all.push_back(static_cast<FaultKind>(i));
    }
    return all;
  }();
  return kinds;
}

std::string_view to_string(RuleId rule) {
  switch (rule) {
    case RuleId::kSt1EntryQueueMismatch:
      return "ST-1 entry-queue mismatch";
    case RuleId::kSt2CondQueueMismatch:
      return "ST-2 condition-queue mismatch";
    case RuleId::kSt3aMultipleRunning:
      return "ST-3a multiple processes inside monitor";
    case RuleId::kSt3bRunnerNotSole:
      return "ST-3b event from process not sole runner";
    case RuleId::kSt3cEnterWhileOccupied:
      return "ST-3c entry granted while monitor occupied";
    case RuleId::kSt3dBlockedWhileFree:
      return "ST-3d entry blocked while monitor free";
    case RuleId::kSt4EventFromBlockedProcess:
      return "ST-4 event from blocked process";
    case RuleId::kSt5ResidenceExceedsTmax:
      return "ST-5 monitor residence exceeds Tmax";
    case RuleId::kSt6EntryWaitExceedsTio:
      return "ST-6 entry wait exceeds Tio";
    case RuleId::kSt7aReceiveExceedsSend:
      return "ST-7a receives exceed sends";
    case RuleId::kSt7aSendExceedsCapacity:
      return "ST-7a sends exceed capacity";
    case RuleId::kSt7bResourceBalanceMismatch:
      return "ST-7b resource balance mismatch";
    case RuleId::kSt7cSendDelayedWhenNotFull:
      return "ST-7c Send delayed when buffer not full";
    case RuleId::kSt7dReceiveDelayedWhenNotEmpty:
      return "ST-7d Receive delayed when buffer not empty";
    case RuleId::kSt8aDuplicateAcquire:
      return "ST-8a duplicate acquire";
    case RuleId::kSt8bReleaseWithoutAcquire:
      return "ST-8b release without acquire";
    case RuleId::kSt8cHoldExceedsTlimit:
      return "ST-8c resource hold exceeds Tlimit";
    case RuleId::kStRunningMismatch:
      return "ST running-process mismatch";
    case RuleId::kFd1aMutualExclusion:
      return "FD-1a mutual exclusion";
    case RuleId::kFd1bEntryQueueService:
      return "FD-1b entry-queue service";
    case RuleId::kFd1cCondQueueService:
      return "FD-1c condition-queue service";
    case RuleId::kFd1dOperateWithoutEnter:
      return "FD-1d operation without Enter";
    case RuleId::kFd2NonTermination:
      return "FD-2 nontermination inside monitor";
    case RuleId::kFd3UnfairResponse:
      return "FD-3 unfair response";
    case RuleId::kFd4StarvationOrLoss:
      return "FD-4 starvation or lost process";
    case RuleId::kFd5aWrongWaitResume:
      return "FD-5a wrong condition resume";
    case RuleId::kFd5bWrongEntryResume:
      return "FD-5b wrong entry resume";
    case RuleId::kFd6aResourceCountInvariant:
      return "FD-6a resource count invariant";
    case RuleId::kFd6bSendDelayInvariant:
      return "FD-6b send delay invariant";
    case RuleId::kFd6cReceiveDelayInvariant:
      return "FD-6c receive delay invariant";
    case RuleId::kFd7aAcquireNeverReleased:
      return "FD-7a acquire never released";
    case RuleId::kFd7bReleaseWithoutAcquire:
      return "FD-7b release without acquire";
    case RuleId::kRealTimeOrder:
      return "real-time call-order violation";
    case RuleId::kUserAssertion:
      return "monitor assertion failed";
    case RuleId::kWfCycleDetected:
      return "WF cross-monitor wait-for cycle";
    case RuleId::kLockOrderCycle:
      return "LO lock-order cycle (predicted deadlock)";
    case RuleId::kRecoveryAction:
      return "RC recovery action applied";
  }
  return "?";
}

FaultLevel level_of(RuleId rule) {
  switch (rule) {
    case RuleId::kSt7aReceiveExceedsSend:
    case RuleId::kSt7aSendExceedsCapacity:
    case RuleId::kSt7bResourceBalanceMismatch:
    case RuleId::kSt7cSendDelayedWhenNotFull:
    case RuleId::kSt7dReceiveDelayedWhenNotEmpty:
    case RuleId::kFd6aResourceCountInvariant:
    case RuleId::kFd6bSendDelayInvariant:
    case RuleId::kFd6cReceiveDelayInvariant:
      return FaultLevel::kMonitorProcedure;
    case RuleId::kSt8aDuplicateAcquire:
    case RuleId::kSt8bReleaseWithoutAcquire:
    case RuleId::kSt8cHoldExceedsTlimit:
    case RuleId::kFd7aAcquireNeverReleased:
    case RuleId::kFd7bReleaseWithoutAcquire:
    case RuleId::kRealTimeOrder:
    case RuleId::kWfCycleDetected:
    case RuleId::kLockOrderCycle:
    case RuleId::kRecoveryAction:
      return FaultLevel::kUserProcess;
    case RuleId::kUserAssertion:
      return FaultLevel::kMonitorProcedure;
    default:
      return FaultLevel::kImplementation;
  }
}

std::string describe(const FaultReport& report,
                     const trace::SymbolTable& symbols) {
  std::ostringstream out;
  out << "[" << to_string(level_of(report.rule)) << "] "
      << to_string(report.rule);
  if (report.pid != trace::kNoPid) out << " pid=p" << report.pid;
  if (report.proc != trace::kNoSymbol) {
    out << " proc=" << symbols.name(report.proc);
  }
  if (report.cond != trace::kNoSymbol) {
    out << " cond=" << symbols.name(report.cond);
  }
  if (report.suspected) {
    out << " suspected=" << paper_designation(*report.suspected) << " ("
        << to_string(*report.suspected) << ")";
  }
  if (!report.message.empty()) out << ": " << report.message;
  return out.str();
}

void CollectingSink::report(const FaultReport& fault) {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.push_back(fault);
}

std::vector<FaultReport> CollectingSink::reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

std::size_t CollectingSink::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_.size();
}

bool CollectingSink::any_with_rule(RuleId rule) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : reports_) {
    if (r.rule == rule) return true;
  }
  return false;
}

void CollectingSink::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  reports_.clear();
}

}  // namespace robmon::core
