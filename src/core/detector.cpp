#include "core/detector.hpp"

#include <cassert>

namespace robmon::core {

Detector::Detector(MonitorSpec spec, trace::SymbolTable& symbols,
                   ReportSink& sink)
    : spec_(std::move(spec)), symbols_(&symbols), sink_(&sink) {}

void Detector::add_assertion(MonitorAssertion assertion) {
  assertions_.push_back(std::move(assertion));
}

void Detector::initialize(const trace::SchedulingState& initial) {
  prev_ = initial;
  initialized_ = true;
}

void Detector::rebaseline(const trace::SchedulingState& state) {
  // Reconstruct (not just clear) the persistent rule state from the
  // post-action snapshot: a holder that survived the recovery action will
  // later Release, and ST-8b must find its acquisition on the Request-List;
  // likewise ST-7 must account for the units already out.  Only the
  // *pending* acquisitions of evicted waiters are dropped — they return
  // kRecoveryFault and re-issue a fresh Acquire on retry.
  requests_ = RequestList{};
  const trace::SymbolId acquire =
      symbols_->find(spec_.acquire_procedure);
  for (const auto& hold : state.holders) {
    for (std::int64_t unit = 0; unit < hold.units; ++unit) {
      requests_.entries.push_back({hold.pid, acquire, hold.held_since});
    }
  }
  counters_ = ResourceCounters{};
  if (spec_.type == MonitorType::kCommunicationCoordinator &&
      state.resources >= 0 && spec_.rmax > state.resources) {
    // Occupied slots read as sends that have not been received yet.
    counters_.sends = spec_.rmax - state.resources;
  }
  initialize(state);
}

Detector::CheckStats Detector::check(
    const std::vector<trace::EventRecord>& segment,
    const trace::SchedulingState& current, util::TimeNs now) {
  assert(initialized_ && "Detector::initialize must be called first");

  const CheckContext ctx = CheckContext::make(spec_, *symbols_, now, *sink_);

  CheckStats stats;
  stats.events = segment.size();

  stats.violations += run_algorithm1(ctx, prev_, current, segment);
  if (spec_.type == MonitorType::kCommunicationCoordinator) {
    stats.violations += run_algorithm2(ctx, prev_, current, segment, counters_);
  }
  if (spec_.type == MonitorType::kResourceAllocator) {
    stats.violations += run_algorithm3(ctx, segment, requests_);
  }

  for (const MonitorAssertion& assertion : assertions_) {
    if (!assertion.predicate(current)) {
      ++stats.violations;
      FaultReport report;
      report.rule = RuleId::kUserAssertion;
      report.detected_at = now;
      report.message = "assertion '" + assertion.name + "' failed";
      sink_->report(report);
    }
  }

  prev_ = current;
  stats.idle = stats.events == 0 && stats.violations == 0;
  checks_run_.fetch_add(1, std::memory_order_relaxed);
  events_processed_.fetch_add(stats.events, std::memory_order_relaxed);
  total_violations_.fetch_add(stats.violations, std::memory_order_relaxed);
  if (stats.idle) idle_checks_.fetch_add(1, std::memory_order_relaxed);
  return stats;
}

}  // namespace robmon::core
