#include "core/lockorder.hpp"

#include <algorithm>
#include <functional>
#include <iterator>
#include <map>
#include <set>
#include <sstream>

#include "core/scc.hpp"

namespace robmon::core {

std::string OrderCycle::key() const {
  std::ostringstream out;
  for (const auto& step : steps) out << step.monitor << ">";
  return out.str();
}

std::vector<OrderMonitorId> OrderCycle::monitors() const {
  std::vector<OrderMonitorId> ids;
  ids.reserve(steps.size());
  for (const auto& step : steps) ids.push_back(step.monitor);
  return ids;
}

std::string describe(const OrderCycle& cycle) {
  std::ostringstream out;
  out << "potential deadlock (lock-order cycle, " << cycle.steps.size()
      << " monitors): ";
  for (std::size_t i = 0; i < cycle.steps.size(); ++i) {
    const auto& step = cycle.steps[i];
    const auto& next = cycle.steps[(i + 1) % cycle.steps.size()];
    if (i) out << "; ";
    out << step.name << " -> " << next.name << " [p" << step.witness.pid
        << " held " << step.name << " (t#" << step.witness.from_ticket
        << ") then " << (step.witness.to_wait ? "requested" : "took") << " "
        << next.name << " (t#" << step.witness.to_ticket << ")]";
  }
  return out.str();
}

FaultReport make_order_report(const OrderCycle& cycle,
                              util::TimeNs detected_at) {
  FaultReport fault;
  fault.rule = RuleId::kLockOrderCycle;
  fault.suspected = FaultKind::kPotentialDeadlock;
  fault.pid = cycle.steps.front().witness.pid;
  fault.detected_at = detected_at;
  fault.message = describe(cycle);
  return fault;
}

void LockOrderGraph::observe(OrderMonitorId monitor, const std::string& name,
                             std::uint64_t epoch,
                             const trace::SchedulingState& state) {
  Observation fresh;
  fresh.name = name;
  for (const auto& hold : state.holders) {
    fresh.accesses.push_back(
        {hold.pid, hold.ticket, false, hold.held_since, state.captured_at});
  }
  // A queued thread that already holds a unit here is most plausibly
  // entering to *release* it (or re-acquiring, which the per-monitor ST-8a
  // rule owns); counting that as an acquisition would flag deadlock-free
  // release orders, so such waits are excluded.  Mutex occupancy (Running)
  // is excluded for the same reason.
  const auto holds_here = [&state](trace::Pid pid) {
    return state.hold_of(pid) != nullptr;
  };
  for (const auto& entry : state.entry_queue) {
    if (holds_here(entry.pid)) continue;
    fresh.accesses.push_back(
        {entry.pid, entry.ticket, true, entry.enqueued_at,
         state.captured_at});
  }
  for (const auto& queue : state.cond_queues) {
    for (const auto& entry : queue.entries) {
      if (holds_here(entry.pid)) continue;
      fresh.accesses.push_back(
          {entry.pid, entry.ticket, true, entry.enqueued_at,
           state.captured_at});
    }
  }

  // Idle snapshots (the common case on the per-check hot path) still
  // replace the stored access set — a stale hold must clear — but have
  // nothing to join, so the O(monitors) scan is skipped.
  if (fresh.accesses.empty()) {
    accesses_[monitor] = std::move(fresh);
    return;
  }

  for (const auto& [other_id, other] : accesses_) {
    if (other_id == monitor) continue;
    for (const Access& mine : fresh.accesses) {
      for (const Access& theirs : other.accesses) {
        if (mine.pid != theirs.pid) continue;
        // Two parked threads cannot witness an order (a thread is parked
        // on at most one queue; a same-pid pair of waits is aliasing or
        // staleness — conservatively skipped).
        if (mine.wait && theirs.wait) continue;
        // Certified-overlap join: each access proves continuous presence
        // over [since, last_seen]; only provably simultaneous pairs may
        // become edges (a stale hold released before the other side began
        // fails this test instead of fabricating an order).
        if (mine.since > theirs.last_seen || theirs.since > mine.last_seen) {
          continue;
        }
        if (mine.wait || theirs.wait) {
          // Hold x wait: the parked side is the acquisition — a parked
          // thread cannot have taken the hold afterwards.
          const Access& held = mine.wait ? theirs : mine;
          const Access& parked = mine.wait ? mine : theirs;
          const OrderMonitorId held_at = mine.wait ? other_id : monitor;
          const OrderMonitorId parked_at = mine.wait ? monitor : other_id;
          const std::string& held_name =
              mine.wait ? other.name : fresh.name;
          const std::string& parked_name =
              mine.wait ? fresh.name : other.name;
          add_witness(held_at, parked_at, held_name, parked_name, epoch,
                      {held.pid, held.ticket, parked.ticket, true});
        } else {
          // Hold x hold: the earlier acquisition start came first; equal
          // starts (frozen clock) are unordered and skipped.
          if (mine.since == theirs.since) continue;
          const bool mine_first = mine.since < theirs.since;
          const Access& first = mine_first ? mine : theirs;
          const Access& second = mine_first ? theirs : mine;
          add_witness(mine_first ? monitor : other_id,
                      mine_first ? other_id : monitor,
                      mine_first ? fresh.name : other.name,
                      mine_first ? other.name : fresh.name, epoch,
                      {first.pid, first.ticket, second.ticket, false});
        }
      }
    }
  }
  accesses_[monitor] = std::move(fresh);
}

void LockOrderGraph::add_witness(OrderMonitorId from, OrderMonitorId to,
                                 const std::string& from_name,
                                 const std::string& to_name,
                                 std::uint64_t epoch,
                                 const OrderWitness& witness) {
  auto& per_target = edges_[from];
  auto it = per_target.find(to);
  if (it == per_target.end()) {
    OrderEdge edge;
    edge.from = from;
    edge.to = to;
    edge.from_name = from_name;
    edge.to_name = to_name;
    edge.first_epoch = epoch;
    it = per_target.emplace(to, std::move(edge)).first;
    ++edge_total_;
  }
  OrderEdge& edge = it->second;
  for (const OrderWitness& existing : edge.witnesses) {
    if (existing.pid == witness.pid &&
        existing.from_ticket == witness.from_ticket &&
        existing.to_ticket == witness.to_ticket &&
        existing.to_wait == witness.to_wait) {
      edge.last_epoch = epoch;  // same episode pair re-observed
      return;
    }
  }
  ++edge.witness_total;
  edge.last_epoch = epoch;
  if (edge.witnesses.size() < kMaxWitnessesPerEdge) {
    edge.witnesses.push_back(witness);
  }
}

void LockOrderGraph::erase(OrderMonitorId monitor) {
  accesses_.erase(monitor);
  const auto out_it = edges_.find(monitor);
  if (out_it != edges_.end()) {
    edge_total_ -= out_it->second.size();
    edges_.erase(out_it);
  }
  for (auto it = edges_.begin(); it != edges_.end();) {
    edge_total_ -= it->second.erase(monitor);
    it = it->second.empty() ? edges_.erase(it) : std::next(it);
  }
}

std::uint64_t LockOrderGraph::witness_total() const {
  std::uint64_t total = 0;
  for (const auto& [from, per_target] : edges_) {
    for (const auto& [to, edge] : per_target) total += edge.witness_total;
  }
  return total;
}

std::vector<OrderEdge> LockOrderGraph::edges() const {
  std::vector<OrderEdge> flat;
  flat.reserve(edge_total_);
  for (const auto& [from, per_target] : edges_) {
    for (const auto& [to, edge] : per_target) flat.push_back(edge);
  }
  std::sort(flat.begin(), flat.end(),
            [](const OrderEdge& a, const OrderEdge& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  return flat;
}

void LockOrderGraph::restore(std::vector<OrderEdge> edges) {
  accesses_.clear();
  edges_.clear();
  edge_total_ = 0;
  for (OrderEdge& edge : edges) {
    const OrderMonitorId from = edge.from;
    const OrderMonitorId to = edge.to;
    if (edges_[from].emplace(to, std::move(edge)).second) ++edge_total_;
  }
}

namespace {

/// Deterministic adjacency: both node and target order are sorted.
using OrderAdjacency =
    std::map<OrderMonitorId, std::map<OrderMonitorId, const OrderEdge*>>;

/// DFS-step budget for the per-SCC simple-cycle enumeration: far above any
/// realistic monitor graph, a backstop against adversarial dense SCCs
/// (where the cycle count is exponential).  Exhausting it can only *miss*
/// warnings, never fabricate them.
constexpr std::size_t kCycleSearchBudget = 4096;

/// Goodlock plausibility: assign one witness per edge such that the
/// witnessing threads are pairwise distinct (a thread cannot deadlock with
/// itself across episodes).  Small backtracking search; edges keep at most
/// kMaxWitnessesPerEdge witnesses and real cycles are short.
bool assign_witnesses(const std::vector<const OrderEdge*>& edges,
                      std::size_t at, std::set<trace::Pid>& used,
                      std::vector<OrderWitness>& chosen) {
  if (at == edges.size()) return true;
  for (const OrderWitness& witness : edges[at]->witnesses) {
    if (used.count(witness.pid)) continue;
    used.insert(witness.pid);
    chosen.push_back(witness);
    if (assign_witnesses(edges, at + 1, used, chosen)) return true;
    chosen.pop_back();
    used.erase(witness.pid);
  }
  return false;
}

/// Rotate so the smallest monitor id comes first.
void canonicalize(std::vector<OrderMonitorId>& ids) {
  const auto smallest = std::min_element(ids.begin(), ids.end());
  std::rotate(ids.begin(), smallest, ids.end());
}

}  // namespace

std::vector<OrderCycle> LockOrderGraph::find_cycles() const {
  OrderAdjacency adjacency;
  for (const auto& [from, per_target] : edges_) {
    for (const auto& [to, edge] : per_target) {
      adjacency[from][to] = &edge;
      adjacency[to];  // ensure the target is a node even without out-edges
    }
  }

  std::vector<OrderMonitorId> roots;
  roots.reserve(adjacency.size());
  for (const auto& [node, targets] : adjacency) roots.push_back(node);
  const auto components = strongly_connected_components(
      roots, [&adjacency](OrderMonitorId v) {
        std::vector<OrderMonitorId> out;
        const auto it = adjacency.find(v);
        if (it != adjacency.end()) {
          out.reserve(it->second.size());
          for (const auto& [w, edge] : it->second) out.push_back(w);
        }
        return out;
      });

  std::vector<OrderCycle> cycles;
  std::set<std::string> seen;
  const auto try_report = [&](std::vector<OrderMonitorId> ids) {
    canonicalize(ids);
    std::vector<const OrderEdge*> edge_path;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      edge_path.push_back(
          adjacency.at(ids[i]).at(ids[(i + 1) % ids.size()]));
    }
    std::set<trace::Pid> used;
    std::vector<OrderWitness> chosen;
    if (!assign_witnesses(edge_path, 0, used, chosen)) return;
    OrderCycle cycle;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      cycle.steps.push_back(
          {ids[i], edge_path[i]->from_name, chosen[i]});
    }
    if (seen.insert(cycle.key()).second) cycles.push_back(std::move(cycle));
  };

  // Per SCC, enumerate *every* simple cycle (budgeted) and keep the ones
  // with a plausible witness assignment: one representative cycle per SCC
  // would be wrong here, because the cycle it happens to pick can be a
  // single-thread ordering (suppressed) while a different cycle through
  // the same component is independently witnessed.  Each cycle is found
  // exactly once, rooted at its smallest monitor id: the DFS from root s
  // only traverses component nodes > s and closes back on s.
  for (const auto& component : components) {
    if (component.size() < 2) continue;  // no same-monitor edges: no loops
    const std::set<OrderMonitorId> in_component(component.begin(),
                                                component.end());
    std::size_t budget = kCycleSearchBudget;
    std::vector<OrderMonitorId> path;
    std::set<OrderMonitorId> on_path;
    const std::function<void(OrderMonitorId, OrderMonitorId)> dfs =
        [&](OrderMonitorId root, OrderMonitorId v) {
          if (budget == 0) return;
          --budget;
          path.push_back(v);
          on_path.insert(v);
          for (const auto& [w, edge] : adjacency.at(v)) {
            if (w != root && (w < root || !in_component.count(w))) continue;
            if (w == root) {
              try_report(path);
            } else if (!on_path.count(w)) {
              dfs(root, w);
            }
            if (budget == 0) break;
          }
          path.pop_back();
          on_path.erase(v);
        };
    for (const OrderMonitorId root : in_component) {
      path.clear();
      on_path.clear();
      dfs(root, root);
    }
  }
  return cycles;
}

std::vector<trace::LockOrderRecord> to_order_records(
    const std::vector<OrderEdge>& edges) {
  std::vector<trace::LockOrderRecord> records;
  for (const OrderEdge& edge : edges) {
    for (const OrderWitness& witness : edge.witnesses) {
      records.push_back({edge.from_name, edge.to_name, witness.pid,
                         witness.from_ticket, witness.to_ticket,
                         witness.to_wait});
    }
  }
  return records;
}

std::vector<OrderEdge> order_edges_from_records(
    const std::vector<trace::LockOrderRecord>& records) {
  std::map<std::string, OrderMonitorId> ids;
  const auto id_of = [&ids](const std::string& name) {
    return ids.emplace(name, ids.size() + 1).first->second;
  };
  std::map<std::pair<OrderMonitorId, OrderMonitorId>, OrderEdge> edges;
  for (const trace::LockOrderRecord& record : records) {
    const OrderMonitorId from = id_of(record.from);
    const OrderMonitorId to = id_of(record.to);
    OrderEdge& edge = edges[{from, to}];
    if (edge.witnesses.empty() && edge.witness_total == 0) {
      edge.from = from;
      edge.to = to;
      edge.from_name = record.from;
      edge.to_name = record.to;
    }
    ++edge.witness_total;
    if (edge.witnesses.size() < LockOrderGraph::kMaxWitnessesPerEdge) {
      edge.witnesses.push_back({record.pid, record.from_ticket,
                                record.to_ticket, record.to_wait});
    }
  }
  std::vector<OrderEdge> flat;
  flat.reserve(edges.size());
  for (auto& [key, edge] : edges) flat.push_back(std::move(edge));
  return flat;
}

}  // namespace robmon::core
