// Tarjan strongly-connected components, shared by the pool-level graph
// analyses (core/waitfor.cpp over the thread-level wait-for graph,
// core/lockorder.cpp over the monitor-order graph).  Header-only template:
// the two call sites differ only in node type and adjacency shape.
#pragma once

#include <algorithm>
#include <map>
#include <vector>

namespace robmon::core {

/// Strongly-connected components of the directed graph spanned by `roots`
/// and everything reachable from them.  `neighbors_of(node)` returns an
/// iterable of successor nodes (unknown nodes must yield an empty range).
/// Deterministic: DFS order follows `roots` and each node's neighbor
/// order, so callers get stable components for stable inputs.
template <typename Node, typename NeighborsFn>
std::vector<std::vector<Node>> strongly_connected_components(
    const std::vector<Node>& roots, NeighborsFn&& neighbors_of) {
  struct State {
    std::map<Node, int> index;
    std::map<Node, int> lowlink;
    std::map<Node, bool> on_stack;
    std::vector<Node> stack;
    int next_index = 0;
    std::vector<std::vector<Node>> components;
  } state;

  struct Visitor {
    State& s;
    NeighborsFn& neighbors_of;
    void visit(const Node& v) {
      s.index[v] = s.lowlink[v] = s.next_index++;
      s.stack.push_back(v);
      s.on_stack[v] = true;
      for (const Node& w : neighbors_of(v)) {
        if (s.index.find(w) == s.index.end()) {
          visit(w);
          s.lowlink[v] = std::min(s.lowlink[v], s.lowlink[w]);
        } else if (s.on_stack[w]) {
          s.lowlink[v] = std::min(s.lowlink[v], s.index[w]);
        }
      }
      if (s.lowlink[v] == s.index[v]) {
        std::vector<Node> component;
        Node w;
        do {
          w = s.stack.back();
          s.stack.pop_back();
          s.on_stack[w] = false;
          component.push_back(w);
        } while (w != v);
        s.components.push_back(std::move(component));
      }
    }
  } visitor{state, neighbors_of};

  for (const Node& root : roots) {
    if (state.index.find(root) == state.index.end()) visitor.visit(root);
  }
  return state.components;
}

}  // namespace robmon::core
