// Pool-level wait-for graph — the first cross-monitor analysis layer.
//
// The paper's Algorithms 1-3 are strictly per-monitor: a circular wait that
// spans monitors (dining philosophers, nested monitor calls) is invisible to
// each monitor alone and previously surfaced only indirectly, through the
// Tlimit/Tmax timeout rules.  The CheckerPool sees every registered
// monitor's snapshot, so it can assemble a global bipartite wait-for graph
// at a pool-level checkpoint:
//
//   thread ──waits──▶ monitor    p sits on the monitor's EQ (awaiting the
//                                mutex) or on CQ[c] (awaiting a resource)
//   monitor ──held──▶ thread     p runs inside the monitor (mutex holder)
//                                or holds resource units (hold registry,
//                                HoareMonitor::note_hold)
//
// A cycle through these edges is a global deadlock; it is reported as the
// GlobalDeadlock fault with the full thread/monitor cycle as diagnostic.
//
// Resource waits use the single-unit (AND) model: a condition waiter gets
// an edge only when the monitor has exactly one distinct resource holder,
// because only then does "blocked behind that holder" hold deterministically.
// With several distinct holders the wait is an OR — any holder's release
// unblocks it — which a cycle cannot soundly encode; such monitors emit no
// resource edges (conservative: detection may be missed, never fabricated).
//
// Contributions are epoch-versioned: each monitor's edge set is replaced
// wholesale when the pool drains it, tagged with the checkpoint epoch and
// the snapshot timestamp it came from (version telemetry; candidates are
// never filtered by age, since a monitor checked slower than the checkpoint
// cadence would then be invisible).  Exactness comes from validation
// instead: candidate cycles are confirmed against live re-snapshots, so
// there are zero false positives when a cycle resolves before the
// checkpoint — see CheckerPool::run_waitfor_checkpoint.
//
// The graph itself is a plain value type and is NOT thread-safe; the
// CheckerPool serializes access through its own mutex.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/fault.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::core {

/// Identifies a monitor in the pool-level graph (CheckerPool::MonitorId).
using WaitMonitorId = std::uint64_t;

/// One monitor's edge set, derived from a single SchedulingState snapshot
/// (so all edges of one contribution are mutually consistent).
struct WaitContribution {
  WaitMonitorId monitor = 0;
  std::string name;           ///< spec().name, for diagnostics.
  std::uint64_t epoch = 0;    ///< Pool checkpoint epoch at contribution.
  util::TimeNs captured_at = 0;

  struct Wait {
    Tid pid = kNoTid;
    /// Condition queue the thread is parked on; empty = entry queue.
    std::string cond;
    util::TimeNs since = 0;      ///< Enqueue time (diagnostics, fallback).
    std::uint64_t ticket = 0;    ///< Episode ticket: identifies the episode
                                 ///  clock-independently (0 = unknown).
  };
  struct Hold {
    Tid pid = kNoTid;
    /// true: mutex holder (Running); false: resource-unit holder.
    bool mutex = false;
    util::TimeNs since = 0;
    std::uint64_t ticket = 0;    ///< Episode ticket of the hold.
  };
  std::vector<Wait> waits;
  std::vector<Hold> holds;
};

/// Build a contribution from a snapshot.  EQ entries become mutex waits,
/// CQ entries become resource waits; Running becomes the mutex hold,
/// holders become resource holds.  `symbols` resolves condition names.
WaitContribution make_wait_contribution(WaitMonitorId monitor,
                                        std::string name, std::uint64_t epoch,
                                        const trace::SchedulingState& state,
                                        const trace::SymbolTable& symbols);

/// One closed circular wait.  links[i].holder == links[(i+1) % n].pid: the
/// thread each link waits behind is the blocked thread of the next link.
struct DeadlockCycle {
  struct Link {
    Tid pid = kNoTid;                 ///< Blocked thread.
    WaitMonitorId monitor = 0;        ///< Monitor it waits on.
    std::string monitor_name;
    std::string cond;                 ///< Empty = entry queue (mutex wait).
    util::TimeNs blocked_since = 0;
    Tid holder = kNoTid;
    util::TimeNs held_since = 0;
    /// Episode tickets of the wait and the hold; 0 = unknown (pre-ticket
    /// trace), in which case validation falls back to the timestamps.
    std::uint64_t blocked_ticket = 0;
    std::uint64_t holder_ticket = 0;
  };
  std::vector<Link> links;

  /// Canonical signature (rotation-invariant), for dedup across checkpoints.
  std::string key() const;
};

/// "p0 waits on fork-1[available] held by p1 -> p1 waits on ... -> p0".
std::string describe(const DeadlockCycle& cycle);

/// The GlobalDeadlock fault for a confirmed cycle — one report shape shared
/// by the online (CheckerPool checkpoint) and offline (validate_wait_for)
/// paths.
FaultReport make_cycle_report(const DeadlockCycle& cycle,
                              util::TimeNs detected_at);

/// Does `link` still hold in a fresh snapshot of its monitor?  True iff the
/// blocked thread is still parked on the same queue in the same blocking
/// episode and the holder still holds from the same episode.  Episodes are
/// matched by their monotonic ticket when the link carries one (clock-
/// independent: correct even under a frozen ManualClock); links from
/// pre-ticket traces fall back to enqueue/hold timestamps.  The wait-for
/// edges of one link live entirely inside one monitor, so this check is
/// atomic per link.
bool link_holds_in(const DeadlockCycle::Link& link,
                   const trace::SchedulingState& state,
                   const trace::SymbolTable& symbols);

class WaitForGraph {
 public:
  /// Replace `contribution.monitor`'s edge set.
  void update(WaitContribution contribution);

  /// Drop a monitor's edges (unregistered from the pool).
  void erase(WaitMonitorId monitor);

  std::size_t monitor_count() const { return contributions_.size(); }
  const WaitContribution* contribution(WaitMonitorId monitor) const;

  /// Enumerate circular waits over the current contributions.  Cycles are
  /// found per strongly-connected component of the thread-level graph (one
  /// representative cycle per non-trivial SCC, plus self-loops), each in
  /// canonical rotation (smallest pid first).  Candidates may rest on stale
  /// contributions; callers confirm with link_holds_in against live
  /// snapshots before reporting.
  std::vector<DeadlockCycle> find_cycles() const;

 private:
  std::unordered_map<WaitMonitorId, WaitContribution> contributions_;
};

}  // namespace robmon::core
