// Declarative validator for the FD-Rules of Section 3.2.
//
// Where Algorithms 1-3 check a segment between two checking points against
// the ST-Rules, this validator takes a *complete* history — every event plus
// the scheduling state after every event (the paper's "When T = 1, the
// checking becomes real-time") — and evaluates the seven fault-detection
// rules directly, with their original quantifier structure.  It is
// deliberately implemented independently of the checking lists so that the
// paper's equivalence claim ("any violation of the FD-Rules 1-7 will lead to
// a violation of the ST-Rules") can be tested rather than assumed.
//
// Inputs: states[0] is the initial state; states[i+1] is the state
// immediately after events[i]; final_time is the time at which the history
// was closed (used by the timeout rules FD-2/FD-4/FD-7a).
#pragma once

#include <vector>

#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::core {

/// Evaluate FD-Rules 1-7.  Throws std::invalid_argument when
/// states.size() != events.size() + 1.
std::vector<FaultReport> validate_fd_rules(
    const MonitorSpec& spec, trace::SymbolTable& symbols,
    const std::vector<trace::EventRecord>& events,
    const std::vector<trace::SchedulingState>& states,
    util::TimeNs final_time);

/// One monitor's checkpoint state for the cross-monitor WF-Rule below.
struct WaitForInput {
  std::string name;  ///< Monitor name, used in the cycle diagnostic.
  const trace::SchedulingState* state = nullptr;
  const trace::SymbolTable* symbols = nullptr;
};

/// WF-Rule (pool-level extension of the declarative validator): given one
/// checkpoint state per monitor captured at the same checkpoint, report a
/// kWfCycleDetected fault per wait-for cycle spanning them.  This is the
/// offline counterpart of the CheckerPool's checkpoint pass: because all
/// states belong to one recorded instant there is no staleness, so no live
/// validation step is needed.
std::vector<FaultReport> validate_wait_for(
    const std::vector<WaitForInput>& monitors, util::TimeNs final_time);

/// One monitor's recorded checkpoint sequence for the LO-Rule below.
struct LockOrderInput {
  std::string name;  ///< Monitor name, used in the cycle diagnostic.
  std::vector<const trace::SchedulingState*> states;  ///< Time-ordered.
};

/// LO-Rule (lock-order prediction over recorded histories): replay every
/// monitor's checkpoint states — interleaved by capture time, exactly as
/// the pool's checks fed the live relation — through a core::LockOrderGraph
/// and report a kLockOrderCycle / kPotentialDeadlock warning per
/// acquisition-order cycle.  The offline counterpart of the CheckerPool's
/// prediction checkpoint.
std::vector<FaultReport> validate_lock_order(
    const std::vector<LockOrderInput>& monitors, util::TimeNs final_time);

}  // namespace robmon::core
