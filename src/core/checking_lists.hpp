// The checking lists of Section 3.3.1: Enter-0-List, Wait-Cond-Lists,
// Running-List, Resource-No and Request-List.  These are pseudo-historical
// structures rebuilt at each checking point from the previous scheduling
// state s_p and the event segment L, then compared against the current
// scheduling state s_t by Algorithms 1-3.
//
// Note an erratum in the paper's prose: Section 3.3.1 says *every*
// Signal-Exit pops the head of Enter-0-List, but the formal FD-Rules 1.b/1.c
// (Section 3.2) show that a Signal-Exit with flag=1 hands the monitor to the
// condition waiter and serves CQ[cond], not EQ.  We follow the formal rules:
//   Wait, Signal-Exit(flag=0)  -> pop Enter-0-List head (if any)
//   Signal-Exit(flag=1)        -> pop Wait-Cond-List[cond] head
// Otherwise a correct hand-off would put two processes on Running-List and
// every correct trace would violate ST-3a.
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "trace/event.hpp"
#include "trace/snapshot.hpp"
#include "util/clock.hpp"

namespace robmon::core {

/// One element of a checking list: Pid(Pr) plus the timestamp used by the
/// Timer(Pid) rules.
struct ListEntry {
  trace::Pid pid = trace::kNoPid;
  trace::SymbolId proc = trace::kNoSymbol;
  util::TimeNs since = 0;

  bool operator==(const ListEntry&) const = default;
};

/// Plain data: the lists themselves.  Rule evaluation lives in the
/// algorithms (algorithms.hpp); this type only offers mechanical queries.
struct CheckingLists {
  std::deque<ListEntry> enter_zero;                          ///< Enter-0-List.
  std::map<trace::SymbolId, std::deque<ListEntry>> wait_cond;  ///< Wait-Cond-Lists.
  std::vector<ListEntry> running;                            ///< Running-List.
  std::int64_t resource_no = -1;                             ///< Resource-No.

  /// Initialize from the scheduling state at the previous checking time s_p.
  static CheckingLists from_state(const trace::SchedulingState& prev);

  /// True if pid sits on Enter-0-List or any Wait-Cond-List (ST-Rule 4).
  bool pid_blocked(trace::Pid pid) const;

  /// True if pid is on the Running-List.
  bool pid_running(trace::Pid pid) const;

  /// Remove the first Running-List element with this pid; returns success.
  bool remove_running(trace::Pid pid);
};

/// Compare a rebuilt list against a snapshot queue: same pids, same procs,
/// same order.  Timestamps are not compared (rebuilt entries carry event
/// times, snapshot entries carry enqueue times).
bool lists_match(const std::deque<ListEntry>& rebuilt,
                 const std::vector<trace::QueueEntry>& actual);

}  // namespace robmon::core
