// Simulated Hoare monitor with combined Signal-Exit, explicit entry /
// condition queues, data-gathering instrumentation and fault-injection
// hooks — the deterministic twin of runtime::HoareMonitor.
//
// Semantics (Section 2 of the paper): at most one process is inside; Wait
// releases the monitor and blocks the caller on CQ[cond], admitting the
// entry-queue head; Signal-Exit leaves the monitor, handing ownership to the
// head of CQ[cond] when one exists (flag=1), otherwise to the entry-queue
// head (flag=0).  The data-gathering routine records each primitive as a
// scheduling event (Section 3.3.1 reduced form) before the implementation
// acts, so injected faults corrupt behaviour, never the history.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>

#include "core/detector.hpp"
#include "core/monitor_spec.hpp"
#include "inject/injection.hpp"
#include "sim/scheduler.hpp"
#include "sim/task.hpp"
#include "trace/event.hpp"
#include "trace/event_log.hpp"
#include "trace/snapshot.hpp"

namespace robmon::sim {

class SimMonitor {
 public:
  SimMonitor(core::MonitorSpec spec, Scheduler& scheduler,
             inject::InjectionController& injection =
                 inject::NullInjection::instance());

  SimMonitor(const SimMonitor&) = delete;
  SimMonitor& operator=(const SimMonitor&) = delete;

  // --- Monitor primitives (call via co_await from a Process/Op). -----------

  /// Enter the monitor to execute `procedure`.  Suspends while the monitor
  /// is occupied.
  Op<> enter(std::string procedure);

  /// Block on condition `cond`, releasing the monitor (Hoare Wait).
  Op<> wait(std::string cond);

  /// Combined signal-and-exit on `cond` (Section 2: the signaller leaves
  /// the monitor; ownership passes to the resumed waiter if any).
  void signal_exit(const std::string& cond);

  /// Plain exit: leave and admit the entry-queue head, if any.
  void exit();

  // --- Observation. ---------------------------------------------------------

  /// Scheduling state <EQ, CQ[], R#, Running> at the current virtual time.
  trace::SchedulingState snapshot() const;

  trace::EventLog& log() { return log_; }
  trace::SymbolTable& symbols() { return symbols_; }
  const core::MonitorSpec& spec() const { return spec_; }
  Scheduler& scheduler() { return *scheduler_; }

  /// R# source for coordinator monitors (e.g. free buffer slots); without a
  /// gauge the snapshot reports -1 (not applicable).
  void set_resource_gauge(std::function<std::int64_t()> gauge);

  /// Record the scheduling state after *every* event (the paper's T=1
  /// real-time mode), for FD-Rule validation.  Captures the current state
  /// as the initial element when enabled.
  void enable_state_trace();
  const std::vector<trace::SchedulingState>& state_trace() const {
    return state_trace_;
  }

  std::optional<trace::Pid> owner() const { return owner_; }
  std::size_t entry_queue_size() const { return entry_queue_.size(); }

 private:
  struct Waiter {
    trace::Pid pid;
    trace::SymbolId proc;
    util::TimeNs since;
    /// Entry whose process was resumed by an injected double-admission
    /// (notify-too-many bug): the process runs inside while its queue slot
    /// leaks here, which is what ST-Rule 4 catches.
    bool zombie = false;
  };

  util::TimeNs now() const { return scheduler_->now(); }
  trace::SymbolId proc_of(trace::Pid pid) const;
  void record(const trace::EventRecord& event);
  void trace_state();
  void take_ownership(const Waiter& waiter);
  /// Pop the first admittable entry waiter (honouring starvation /
  /// no-response victims); false when none.
  bool pop_admittable(Waiter& out);
  /// Admit the entry-queue head as owner; optionally resume a second waiter
  /// without ownership (injected mutual-exclusion violation).
  void admit_from_entry_queue(bool extra);
  void admit_ghost_from_entry_queue();
  void signal_exit_impl(trace::Pid pid, trace::SymbolId cond);

  core::MonitorSpec spec_;
  Scheduler* scheduler_;
  inject::InjectionController* injection_;

  trace::SymbolTable symbols_;
  /// Single shard: the simulator is cooperatively scheduled, so appends are
  /// already serialized and one shard preserves total append order.
  trace::EventLog log_{/*retain_history=*/false, /*shards=*/1};

  std::optional<trace::Pid> owner_;
  trace::SymbolId owner_proc_ = trace::kNoSymbol;
  util::TimeNs owner_since_ = 0;
  std::deque<Waiter> entry_queue_;
  std::map<trace::SymbolId, std::deque<Waiter>> cond_queues_;
  /// Procedure being executed by every process currently inside (the owner
  /// plus any injected "ghost" runners).
  std::map<trace::Pid, trace::SymbolId> inside_proc_;

  std::function<std::int64_t()> resource_gauge_;
  bool state_trace_enabled_ = false;
  std::vector<trace::SchedulingState> state_trace_;
};

/// Periodic checking task (Fig. 1's fault-detection routine) for the
/// simulator: every spec.check_period of virtual time it drains the event
/// log, snapshots the monitor and runs the detector.  Stops after
/// `max_checks` or when it is the only live process left.
struct CheckerOptions {
  std::uint64_t max_checks = UINT64_MAX;
  /// Keep checking at least this many times even after all user processes
  /// have finished (timer-based rules need the horizon to elapse).
  std::uint64_t min_checks = 0;
};

Process periodic_checker(Scheduler& scheduler, SimMonitor& monitor,
                         core::Detector& detector, CheckerOptions options = {});

}  // namespace robmon::sim
