#include "sim/sim_monitor.hpp"

#include <utility>

namespace robmon::sim {

using core::FaultKind;
using trace::EventRecord;

SimMonitor::SimMonitor(core::MonitorSpec spec, Scheduler& scheduler,
                       inject::InjectionController& injection)
    : spec_(std::move(spec)),
      scheduler_(&scheduler),
      injection_(&injection) {}

trace::SymbolId SimMonitor::proc_of(trace::Pid pid) const {
  const auto it = inside_proc_.find(pid);
  return it == inside_proc_.end() ? trace::kNoSymbol : it->second;
}

void SimMonitor::record(const trace::EventRecord& event) {
  log_.append(event);
}

void SimMonitor::trace_state() {
  if (state_trace_enabled_) state_trace_.push_back(snapshot());
}

void SimMonitor::set_resource_gauge(std::function<std::int64_t()> gauge) {
  resource_gauge_ = std::move(gauge);
}

void SimMonitor::enable_state_trace() {
  state_trace_enabled_ = true;
  state_trace_.clear();
  state_trace_.push_back(snapshot());
}

trace::SchedulingState SimMonitor::snapshot() const {
  trace::SchedulingState state;
  state.captured_at = now();
  for (const Waiter& waiter : entry_queue_) {
    state.entry_queue.push_back({waiter.pid, waiter.proc, waiter.since});
  }
  for (const auto& [cond, queue] : cond_queues_) {
    trace::CondQueueState cq;
    cq.cond = cond;
    for (const Waiter& waiter : queue) {
      cq.entries.push_back({waiter.pid, waiter.proc, waiter.since});
    }
    state.cond_queues.push_back(std::move(cq));
  }
  state.resources = resource_gauge_ ? resource_gauge_() : -1;
  if (owner_) {
    state.running = *owner_;
    state.running_proc = owner_proc_;
    state.running_since = owner_since_;
  }
  return state;
}

void SimMonitor::take_ownership(const Waiter& waiter) {
  owner_ = waiter.pid;
  owner_proc_ = waiter.proc;
  owner_since_ = now();
  inside_proc_[waiter.pid] = waiter.proc;
}

bool SimMonitor::pop_admittable(Waiter& out) {
  for (auto it = entry_queue_.begin(); it != entry_queue_.end(); ++it) {
    if (it->zombie) continue;  // already resumed by a double-admission
    // Starvation victims are skipped forever once struck; enter-no-response
    // victims were parked without being eligible for admission.
    if (injection_->fire(FaultKind::kWaitEntryStarved, it->pid)) continue;
    if (injection_->active(FaultKind::kEnterNoResponse, it->pid)) continue;
    out = *it;
    entry_queue_.erase(it);
    return true;
  }
  return false;
}

void SimMonitor::admit_from_entry_queue(bool extra) {
  Waiter waiter;
  if (!pop_admittable(waiter)) return;
  take_ownership(waiter);
  scheduler_->unpark(waiter.pid);
  if (extra) admit_ghost_from_entry_queue();
}

void SimMonitor::admit_ghost_from_entry_queue() {
  // Notify-too-many bug: the second waiter is resumed *without* ownership
  // and without its queue slot being removed.  It runs inside concurrently
  // with the real owner while its entry leaks on EQ.
  for (auto& entry : entry_queue_) {
    if (entry.zombie) continue;
    if (injection_->active(FaultKind::kWaitEntryStarved, entry.pid)) continue;
    if (injection_->active(FaultKind::kEnterNoResponse, entry.pid)) continue;
    entry.zombie = true;
    inside_proc_[entry.pid] = entry.proc;
    scheduler_->unpark(entry.pid);
    return;
  }
}

Op<> SimMonitor::enter(std::string procedure) {
  const trace::Pid pid = scheduler_->current_pid();
  const trace::SymbolId proc_id = symbols_.intern(procedure);

  // Fault I.a.4: run inside without Enter being observed.
  if (injection_->fire(FaultKind::kEnterNotObserved, pid)) {
    inside_proc_[pid] = proc_id;
    co_return;
  }

  const bool busy = owner_.has_value();

  // Fault I.a.1: entry granted although the monitor is occupied.
  if (busy && injection_->fire(FaultKind::kEnterMutualExclusionViolation,
                               pid)) {
    record(EventRecord::enter(pid, proc_id, true, now()));
    inside_proc_[pid] = proc_id;
    trace_state();
    co_return;
  }

  if (!busy) {
    // Fault I.a.3: blocked although the monitor is free (and, sticky,
    // never admitted afterwards).
    if (injection_->fire(FaultKind::kEnterNoResponse, pid)) {
      record(EventRecord::enter(pid, proc_id, false, now()));
      entry_queue_.push_back({pid, proc_id, now()});
      trace_state();
      co_await scheduler_->park();
      co_return;
    }
    Waiter self{pid, proc_id, now()};
    take_ownership(self);
    record(EventRecord::enter(pid, proc_id, true, now()));
    trace_state();
    co_return;
  }

  // Monitor occupied: queue on EQ.
  record(EventRecord::enter(pid, proc_id, false, now()));
  // Fault I.a.2: the request is recorded but then lost — never queued.
  if (injection_->fire(FaultKind::kEnterRequestLost, pid)) {
    trace_state();
    co_await scheduler_->park();  // never admitted
    co_return;
  }
  entry_queue_.push_back({pid, proc_id, now()});
  trace_state();
  co_await scheduler_->park();
  // Resumed with ownership already transferred by the waker; per the
  // reduced recording model (Section 3.3.1) nothing is re-recorded.
  co_return;
}

Op<> SimMonitor::wait(std::string cond) {
  const trace::Pid pid = scheduler_->current_pid();
  const trace::SymbolId cond_id = symbols_.intern(cond);
  const trace::SymbolId proc_id = proc_of(pid);

  record(EventRecord::wait(pid, proc_id, cond_id, now()));

  // Fault I.b.1: not blocked; continues to run inside without queueing or
  // releasing the monitor.
  if (injection_->fire(FaultKind::kWaitNoBlock, pid)) {
    trace_state();
    co_return;
  }

  // Fault I.b.2: neither queued nor running.
  const bool lost = injection_->fire(FaultKind::kWaitProcessLost, pid);
  if (!lost) {
    cond_queues_[cond_id].push_back({pid, proc_id, now()});
  }

  if (owner_ && *owner_ == pid) {
    // Fault I.b.6: blocked but the monitor is not released.
    if (injection_->fire(FaultKind::kWaitMonitorNotReleased, pid)) {
      // owner_ deliberately kept pointing at the now-blocked process.
    } else {
      owner_.reset();
      inside_proc_.erase(pid);
      // Fault I.b.3: entry waiters not resumed on wait.  (Arming requires
      // an actual entry waiter, else the injection would be a no-op.)
      if (entry_queue_.empty() ||
          !injection_->fire(FaultKind::kWaitEntryNotResumed, pid)) {
        // Fault I.b.5: more than one entry waiter resumed.
        const bool extra =
            entry_queue_.size() >= 2 &&
            injection_->fire(FaultKind::kWaitMutualExclusionViolation, pid);
        admit_from_entry_queue(extra);
      }
    }
  }
  trace_state();
  co_await scheduler_->park();
  co_return;
}

void SimMonitor::signal_exit(const std::string& cond) {
  signal_exit_impl(scheduler_->current_pid(), symbols_.intern(cond));
}

void SimMonitor::exit() {
  signal_exit_impl(scheduler_->current_pid(), trace::kNoSymbol);
}

void SimMonitor::signal_exit_impl(trace::Pid pid, trace::SymbolId cond) {
  // Fault I.c.4: the process terminates inside the monitor — the exit never
  // happens, no event is recorded, ownership is retained forever.
  if (injection_->fire(FaultKind::kTerminationInsideMonitor, pid)) {
    return;
  }

  const trace::SymbolId proc_id = proc_of(pid);
  const bool is_owner = owner_ && *owner_ == pid;

  auto* cond_queue = [&]() -> std::deque<Waiter>* {
    if (cond == trace::kNoSymbol) return nullptr;
    auto it = cond_queues_.find(cond);
    return it == cond_queues_.end() ? nullptr : &it->second;
  }();
  const bool someone_waiting =
      (cond_queue != nullptr && !cond_queue->empty()) ||
      !entry_queue_.empty();

  // Fault I.c.2: exits but the monitor is not released.
  const bool keep_lock =
      is_owner &&
      injection_->fire(FaultKind::kSignalExitMonitorNotReleased, pid);
  // Fault I.c.1: nobody (condition or entry waiter) is resumed.  Arming
  // requires someone to actually be waiting.
  const bool suppress_resume =
      is_owner && !keep_lock && someone_waiting &&
      injection_->fire(FaultKind::kSignalExitNoResume, pid);

  const bool resume_cond_waiter = is_owner && !keep_lock && !suppress_resume &&
                                  cond_queue != nullptr &&
                                  !cond_queue->empty();

  record(EventRecord::signal_exit(pid, proc_id, cond, resume_cond_waiter,
                                  now()));
  inside_proc_.erase(pid);

  if (!is_owner) {
    // Ghost runner (injected mutual-exclusion violation) exiting: it never
    // owned the monitor, so there is nothing to hand over.
    trace_state();
    return;
  }

  if (keep_lock) {
    // owner_ still points at pid, which has left: a stale lock.
    trace_state();
    return;
  }

  if (resume_cond_waiter) {
    Waiter waiter = cond_queue->front();
    cond_queue->pop_front();
    take_ownership(waiter);
    scheduler_->unpark(waiter.pid);
    // Fault I.c.3: additionally resume an entry waiter -> two inside.
    if (!entry_queue_.empty() &&
        injection_->fire(FaultKind::kSignalExitMutualExclusionViolation,
                         pid)) {
      admit_ghost_from_entry_queue();
    }
  } else {
    owner_.reset();
    if (!suppress_resume) {
      const bool extra =
          entry_queue_.size() >= 2 &&
          injection_->fire(FaultKind::kSignalExitMutualExclusionViolation,
                           pid);
      admit_from_entry_queue(extra);
    }
  }
  trace_state();
}

Process periodic_checker(Scheduler& scheduler, SimMonitor& monitor,
                         core::Detector& detector, CheckerOptions options) {
  for (std::uint64_t check = 0; check < options.max_checks; ++check) {
    co_await scheduler.delay(detector.spec().check_period);
    const auto segment = monitor.log().drain();
    detector.check(segment, monitor.snapshot(), scheduler.now());
    // Only the checker left: stop once the timer horizon has been covered.
    if (scheduler.live_count() <= 1 && check + 1 >= options.min_checks) {
      co_return;
    }
  }
}

}  // namespace robmon::sim
