// Coroutine types for the deterministic simulator.
//
//   Process — a top-level simulated process, owned and resumed by the
//             Scheduler.  Spawned with Scheduler::spawn.
//   Op<T>   — an awaitable sub-operation (e.g. SimMonitor::enter), usable
//             from inside a Process or another Op via co_await.  Uses
//             symmetric transfer so that blocking deep inside nested ops
//             returns control to the scheduler loop, and resumption
//             continues exactly where the process suspended.
#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "trace/event.hpp"

namespace robmon::sim {

class Scheduler;

class Process {
 public:
  struct promise_type {
    Scheduler* scheduler = nullptr;
    trace::Pid pid = trace::kNoPid;
    std::exception_ptr exception;

    Process get_return_object() {
      return Process{
          std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process() = default;
  explicit Process(Handle handle) : handle_(handle) {}
  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;
  ~Process() { destroy(); }

  Handle handle() const { return handle_; }
  /// Transfer ownership of the handle (used by Scheduler::spawn).
  Handle release() { return std::exchange(handle_, nullptr); }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

namespace detail {

template <typename T>
struct OpPromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::optional<T> value;
  std::exception_ptr exception;
  void return_value(T v) { value = std::move(v); }
};

template <>
struct OpPromiseBase<void> {
  std::coroutine_handle<> continuation = std::noop_coroutine();
  std::exception_ptr exception;
  void return_void() {}
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Op {
 public:
  struct promise_type : detail::OpPromiseBase<T> {
    Op get_return_object() {
      return Op{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void unhandled_exception() {
      this->exception = std::current_exception();
    }
  };

  using Handle = std::coroutine_handle<promise_type>;

  explicit Op(Handle handle) : handle_(handle) {}
  Op(Op&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Op(const Op&) = delete;
  Op& operator=(const Op&) = delete;
  Op& operator=(Op&&) = delete;
  ~Op() {
    if (handle_) handle_.destroy();
  }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
    handle_.promise().continuation = cont;
    return handle_;  // symmetric transfer into the operation
  }
  T await_resume() {
    auto& promise = handle_.promise();
    if (promise.exception) std::rethrow_exception(promise.exception);
    if constexpr (!std::is_void_v<T>) {
      return std::move(*promise.value);
    }
  }

 private:
  Handle handle_ = nullptr;
};

}  // namespace robmon::sim
