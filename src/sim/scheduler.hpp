// Deterministic cooperative scheduler with virtual time.
//
// This is the substitution for the paper's JVM-thread execution environment:
// every interleaving decision is made by a seeded policy, and time is a
// ManualClock advanced one tick per resume step (plus jumps to the next
// timer when every process is asleep).  It makes all 21 taxonomy fault
// classes — including the timeout-based ones (Tio starvation, Tmax
// nontermination, Tlimit leaks) — reproducible from a seed, which the
// paper's random-injection evaluation was not.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "sim/task.hpp"
#include "sync/schedule_policy.hpp"
#include "trace/event.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace robmon::sim {

/// Shared with the fiber-based sync::SimScheduler (sync/sim_backend.hpp) so
/// a seed + policy means the same thing in both deterministic worlds.
using SchedulePolicy = sync::SchedulePolicy;

class Scheduler {
 public:
  struct Options {
    util::TimeNs tick_ns = 1000;  ///< Virtual time per resume step (1 us).
    SchedulePolicy policy = SchedulePolicy::kFifo;
    std::uint64_t seed = 1;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options options);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Register a process under `pid` (must be unique and >= 0 for user
  /// processes; negative pids are conventionally harness tasks such as the
  /// periodic checker).  The process starts runnable.
  void spawn(trace::Pid pid, Process process);

  enum class StopReason {
    kAllDone,    ///< Every spawned process ran to completion.
    kQuiescent,  ///< Only parked processes remain (deadlock or starvation).
    kMaxSteps,   ///< Step budget exhausted.
  };

  /// Run until done/quiescent or `max_steps` resume steps.
  StopReason run(std::uint64_t max_steps = UINT64_MAX);

  util::ManualClock& clock() { return clock_; }
  util::TimeNs now() const { return clock_.now_ns(); }

  /// Pid of the process currently being resumed (valid inside coroutines).
  trace::Pid current_pid() const { return current_; }

  // --- Awaitables (call only from inside a spawned coroutine). -------------

  /// Reschedule the caller behind other runnable processes.
  auto yield() { return YieldAwaiter{this}; }

  /// Sleep for `delta` of virtual time.
  auto delay(util::TimeNs delta) { return DelayAwaiter{this, delta}; }

  /// Park the caller until unpark(pid).  Used by SimMonitor queues.
  auto park() { return ParkAwaiter{this}; }

  /// Make a parked process runnable again.
  void unpark(trace::Pid pid);

  // --- Introspection. -------------------------------------------------------
  bool is_parked(trace::Pid pid) const;
  std::vector<trace::Pid> parked_pids() const;
  std::size_t live_count() const;   ///< Processes not yet done.
  std::uint64_t steps() const { return steps_; }

  /// Rethrow the first exception escaping any process, if one occurred.
  void rethrow_any_failure() const;

 private:
  enum class Status { kRunnable, kSleeping, kParked, kDone };

  struct ProcState {
    Process::Handle handle;  ///< Top-level coroutine (owned).
    std::coroutine_handle<> resume_point;
    Status status = Status::kRunnable;
    util::TimeNs wake_at = 0;
    std::exception_ptr exception;
  };

  struct YieldAwaiter {
    Scheduler* scheduler;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  struct DelayAwaiter {
    Scheduler* scheduler;
    util::TimeNs delta;
    bool await_ready() const noexcept { return delta <= 0; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };
  struct ParkAwaiter {
    Scheduler* scheduler;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h);
    void await_resume() const noexcept {}
  };

  friend struct Process::promise_type::FinalAwaiter;
  void on_process_done(trace::Pid pid, std::exception_ptr exception);

  ProcState& current_state();
  trace::Pid pick_next();
  /// Move due sleepers to the runnable queue; returns earliest future wake
  /// time or -1 when no sleepers remain.
  util::TimeNs service_sleepers();

  Options options_;
  util::ManualClock clock_;
  util::Rng rng_;
  std::map<trace::Pid, ProcState> processes_;
  std::deque<trace::Pid> runnable_;
  trace::Pid current_ = trace::kNoPid;
  std::uint64_t steps_ = 0;
};

}  // namespace robmon::sim
