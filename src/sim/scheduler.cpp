#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace robmon::sim {

void Process::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept {
  auto& promise = h.promise();
  if (promise.scheduler != nullptr) {
    promise.scheduler->on_process_done(promise.pid,
                                       std::move(promise.exception));
  }
}

Scheduler::Scheduler(Options options)
    : options_(options), rng_(options.seed) {}

Scheduler::~Scheduler() {
  for (auto& [pid, state] : processes_) {
    if (state.handle) state.handle.destroy();
  }
}

void Scheduler::spawn(trace::Pid pid, Process process) {
  if (pid == trace::kNoPid) {
    throw std::invalid_argument(
        "pid -1 is reserved (kNoPid); use another id for harness tasks");
  }
  if (processes_.count(pid) != 0) {
    throw std::invalid_argument("duplicate pid " + std::to_string(pid));
  }
  Process::Handle handle = process.release();
  handle.promise().scheduler = this;
  handle.promise().pid = pid;
  ProcState state;
  state.handle = handle;
  state.resume_point = handle;
  state.status = Status::kRunnable;
  processes_.emplace(pid, state);
  runnable_.push_back(pid);
}

Scheduler::StopReason Scheduler::run(std::uint64_t max_steps) {
  for (std::uint64_t step = 0; step < max_steps; ++step) {
    if (runnable_.empty()) {
      const util::TimeNs next_wake = service_sleepers();
      if (!runnable_.empty()) continue;
      if (next_wake >= 0) {
        clock_.set(next_wake);
        service_sleepers();
        continue;
      }
      const bool all_done =
          std::all_of(processes_.begin(), processes_.end(),
                      [](const auto& kv) {
                        return kv.second.status == Status::kDone;
                      });
      return all_done ? StopReason::kAllDone : StopReason::kQuiescent;
    }

    const trace::Pid pid = pick_next();
    auto& state = processes_.at(pid);
    clock_.advance(options_.tick_ns);
    ++steps_;
    current_ = pid;
    state.resume_point.resume();
    current_ = trace::kNoPid;
  }
  return StopReason::kMaxSteps;
}

trace::Pid Scheduler::pick_next() {
  std::size_t index = 0;
  if (options_.policy == SchedulePolicy::kRandom && runnable_.size() > 1) {
    index = static_cast<std::size_t>(rng_.below(runnable_.size()));
  }
  const trace::Pid pid = runnable_[index];
  runnable_.erase(runnable_.begin() + static_cast<std::ptrdiff_t>(index));
  return pid;
}

util::TimeNs Scheduler::service_sleepers() {
  util::TimeNs earliest = -1;
  const util::TimeNs now = clock_.now_ns();
  for (auto& [pid, state] : processes_) {
    if (state.status != Status::kSleeping) continue;
    if (state.wake_at <= now) {
      state.status = Status::kRunnable;
      runnable_.push_back(pid);
    } else if (earliest < 0 || state.wake_at < earliest) {
      earliest = state.wake_at;
    }
  }
  return earliest;
}

Scheduler::ProcState& Scheduler::current_state() {
  if (current_ == trace::kNoPid) {
    throw std::logic_error("awaitable used outside a scheduled process");
  }
  return processes_.at(current_);
}

void Scheduler::YieldAwaiter::await_suspend(std::coroutine_handle<> h) {
  auto& state = scheduler->current_state();
  state.resume_point = h;
  state.status = Status::kRunnable;
  scheduler->runnable_.push_back(scheduler->current_);
}

void Scheduler::DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  auto& state = scheduler->current_state();
  state.resume_point = h;
  state.status = Status::kSleeping;
  state.wake_at = scheduler->clock_.now_ns() + delta;
}

void Scheduler::ParkAwaiter::await_suspend(std::coroutine_handle<> h) {
  auto& state = scheduler->current_state();
  state.resume_point = h;
  state.status = Status::kParked;
}

void Scheduler::unpark(trace::Pid pid) {
  auto it = processes_.find(pid);
  if (it == processes_.end()) {
    throw std::invalid_argument("unpark of unknown pid " +
                                std::to_string(pid));
  }
  if (it->second.status != Status::kParked) {
    throw std::logic_error("unpark of non-parked pid " + std::to_string(pid));
  }
  it->second.status = Status::kRunnable;
  runnable_.push_back(pid);
}

void Scheduler::on_process_done(trace::Pid pid,
                                std::exception_ptr exception) {
  auto& state = processes_.at(pid);
  state.status = Status::kDone;
  state.exception = std::move(exception);
}

bool Scheduler::is_parked(trace::Pid pid) const {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second.status == Status::kParked;
}

std::vector<trace::Pid> Scheduler::parked_pids() const {
  std::vector<trace::Pid> out;
  for (const auto& [pid, state] : processes_) {
    if (state.status == Status::kParked) out.push_back(pid);
  }
  return out;
}

std::size_t Scheduler::live_count() const {
  std::size_t n = 0;
  for (const auto& [pid, state] : processes_) {
    if (state.status != Status::kDone) ++n;
  }
  return n;
}

void Scheduler::rethrow_any_failure() const {
  for (const auto& [pid, state] : processes_) {
    if (state.exception) std::rethrow_exception(state.exception);
  }
}

}  // namespace robmon::sim
