#include "interpose/runtime.hpp"

#include <pthread.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <mutex>
#include <utility>

#include "trace/codec.hpp"
#include "util/flags.hpp"

namespace robmon::interpose {

namespace {

thread_local int t_depth = 0;
thread_local bool t_internal = false;

std::atomic<Runtime*> g_runtime{nullptr};
std::mutex g_init_mu;
std::atomic<Runtime*> g_graveyard{nullptr};
std::atomic<bool> g_handlers_registered{false};

void atexit_flush() {
  if (Runtime* runtime = Runtime::instance_if_built()) {
    runtime->flush(stderr);
  }
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Fibonacci hash of the object address (low bits of a pthread object
/// address are alignment zeros; the multiply spreads them).
std::size_t hash_key(std::uintptr_t key) {
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> 17);
}

}  // namespace

RuntimeConfig RuntimeConfig::from_env() {
  RuntimeConfig config;
  util::EnvFlags env;
  config.shards = static_cast<std::size_t>(
      env.i64("SHARDS", static_cast<std::int64_t>(config.shards), 1, 64));
  config.budget_fraction = env.f64("BUDGET", config.budget_fraction, 0.0, 0.5);
  config.lockorder = env.boolean("LOCKORDER", config.lockorder);
  config.recovery = env.boolean("RECOVERY", config.recovery);
  config.trace_path = env.str("TRACE", config.trace_path);
  config.check_period =
      env.i64("CHECK_PERIOD_MS", 100, 1, 60000) * util::kMillisecond;
  config.waitfor_period =
      env.i64("WAITFOR_MS", 250, 1, 60000) * util::kMillisecond;
  config.lockorder_period =
      env.i64("LOCKORDER_MS", 500, 1, 60000) * util::kMillisecond;
  config.ring_capacity = static_cast<std::size_t>(
      env.i64("RING", static_cast<std::int64_t>(config.ring_capacity), 2,
              1 << 20));
  config.max_monitors = static_cast<std::size_t>(
      env.i64("MAX_MONITORS", static_cast<std::int64_t>(config.max_monitors),
              1, 1 << 20));
  config.verbose = env.boolean("LOG", config.verbose);
  if (!env.ok()) config.config_error = env.error_text();
  return config;
}

ReentryGuard::ReentryGuard() { ++t_depth; }
ReentryGuard::~ReentryGuard() { --t_depth; }
bool ReentryGuard::should_adapt() { return t_depth == 0 && !t_internal; }
int ReentryGuard::depth() { return t_depth; }
bool ReentryGuard::internal() { return t_internal; }
void ReentryGuard::mark_internal() { t_internal = true; }

Tid self_tid() {
  thread_local Tid tid = 0;
  if (tid == 0) tid = static_cast<Tid>(::syscall(SYS_gettid));
  return tid;
}

void StderrSink::report(const core::FaultReport& fault) {
  total_.fetch_add(1, std::memory_order_relaxed);
  const char* label = "fault";
  if (fault.rule == core::RuleId::kWfCycleDetected) {
    deadlocks_.fetch_add(1, std::memory_order_relaxed);
    label = "deadlock detected";
  } else if (fault.rule == core::RuleId::kLockOrderCycle) {
    order_warnings_.fetch_add(1, std::memory_order_relaxed);
    label = "lock-order warning";
  } else if (fault.rule == core::RuleId::kRecoveryAction) {
    label = "recovery action";
  }
  std::fprintf(stderr, "robmon: %s: %s\n", label, fault.message.c_str());
}

Runtime::Runtime(RuntimeConfig config) : config_(std::move(config)) {
  if (!config_.config_error.empty()) {
    // The shim never aborts the host: report once, run with defaults.
    std::fprintf(stderr, "%srobmon: continuing with defaults\n",
                 config_.config_error.c_str());
  }
  rt::CheckerPool::Options options;
  options.threads = config_.shards;
  options.waitfor_checkpoint_period = config_.waitfor_period;
  options.waitfor_sink = &sink_;
  if (config_.lockorder) {
    options.lockorder_checkpoint_period = config_.lockorder_period;
    options.lockorder_sink = &sink_;
  }
  options.budget.fraction = config_.budget_fraction;
  if (config_.recovery) {
    options.recovery.policy = &recovery_policy_;
    options.recovery.sink = &sink_;
  }
  pool_ = std::make_unique<rt::CheckerPool>(options);

  const std::size_t capacity = round_up_pow2(config_.max_monitors * 2);
  table_mask_ = capacity - 1;
  table_ = std::make_unique<Slot[]>(capacity);
}

Runtime::~Runtime() = default;

Runtime& Runtime::instance() {
  Runtime* runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime != nullptr) return *runtime;
  std::lock_guard<std::mutex> lock(g_init_mu);
  runtime = g_runtime.load(std::memory_order_acquire);
  if (runtime == nullptr) {
    runtime = new Runtime(RuntimeConfig::from_env());
    // atexit/atfork registrations are inherited across fork, so they are
    // registered once per process tree, not once per runtime rebuild.
    if (!g_handlers_registered.exchange(true)) {
      std::atexit(atexit_flush);
      ::pthread_atfork(nullptr, nullptr, &Runtime::reset_after_fork);
    }
    g_runtime.store(runtime, std::memory_order_release);
  }
  return *runtime;
}

Runtime* Runtime::instance_if_built() {
  return g_runtime.load(std::memory_order_acquire);
}

void Runtime::reset_after_fork() {
  Runtime* old = g_runtime.exchange(nullptr, std::memory_order_acq_rel);
  if (old == nullptr) return;
  // Intrusive push — no allocation in the (fork-constrained) child — and
  // the chain stays reachable from the process-lifetime graveyard head,
  // so the retired runtime is "still reachable", never leaked.
  old->graveyard_next_ = g_graveyard.load(std::memory_order_relaxed);
  g_graveyard.store(old, std::memory_order_release);
}

SyntheticMonitor* Runtime::create_monitor(SyntheticMonitor::Kind kind) {
  static std::atomic<std::uint64_t> mutex_count{0};
  static std::atomic<std::uint64_t> cond_count{0};
  const bool is_mutex = kind == SyntheticMonitor::Kind::kMutex;
  auto& counter = is_mutex ? mutex_count : cond_count;
  const std::uint64_t index =
      counter.fetch_add(1, std::memory_order_relaxed);
  std::string name =
      (is_mutex ? "mutex-" : "cond-") + std::to_string(index);

  SyntheticMonitor::Config monitor_config;
  monitor_config.ring_capacity = config_.ring_capacity;
  monitor_config.check_period = config_.check_period;
  monitor_config.retain_history = !config_.trace_path.empty();
  auto* monitor =
      new SyntheticMonitor(std::move(name), kind,
                           util::SteadyClock::instance(), monitor_config);
  const rt::CheckerPool::MonitorId id = pool_->add(*monitor);
  pool_->schedule(id);
  {
    std::lock_guard<std::mutex> lock(monitors_mu_);
    monitors_.push_back(monitor);
  }
  registered_.fetch_add(1, std::memory_order_relaxed);
  if (config_.verbose) {
    std::fprintf(stderr, "robmon: observing %s\n",
                 monitor->spec().name.c_str());
  }
  return monitor;
}

SyntheticMonitor* Runtime::monitor_for(const void* addr,
                                       SyntheticMonitor::Kind kind) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (key == 0) return nullptr;
  std::size_t idx = hash_key(key) & table_mask_;
  for (std::size_t probe = 0; probe <= table_mask_; ++probe) {
    Slot& slot = table_[idx];
    std::uintptr_t current = slot.key.load(std::memory_order_acquire);
    if (current == 0) {
      if (registered_.load(std::memory_order_relaxed) >=
          config_.max_monitors) {
        break;  // Registry at capacity: pass through.
      }
      if (slot.key.compare_exchange_strong(current, key,
                                           std::memory_order_acq_rel)) {
        SyntheticMonitor* monitor = create_monitor(kind);
        slot.monitor.store(monitor, std::memory_order_release);
        return monitor;
      }
      // Lost the claim; `current` reloaded — fall through to the match
      // check (the winner may have claimed our key).
    }
    if (current == key) {
      SyntheticMonitor* monitor = slot.monitor.load(std::memory_order_acquire);
      while (monitor == nullptr) {
        // Claimed but not yet published: the claimant is constructing.
        monitor = slot.monitor.load(std::memory_order_acquire);
      }
      return monitor;
    }
    idx = (idx + 1) & table_mask_;
  }
  passthroughs_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

SyntheticMonitor* Runtime::find_monitor(const void* addr) {
  const auto key = reinterpret_cast<std::uintptr_t>(addr);
  if (key == 0) return nullptr;
  std::size_t idx = hash_key(key) & table_mask_;
  for (std::size_t probe = 0; probe <= table_mask_; ++probe) {
    const Slot& slot = table_[idx];
    const std::uintptr_t current = slot.key.load(std::memory_order_acquire);
    if (current == 0) return nullptr;
    if (current == key) return slot.monitor.load(std::memory_order_acquire);
    idx = (idx + 1) & table_mask_;
  }
  return nullptr;
}

void Runtime::flush(std::FILE* out) {
  std::vector<SyntheticMonitor*> monitors;
  {
    std::lock_guard<std::mutex> lock(monitors_mu_);
    monitors = monitors_;
  }
  std::uint64_t lost = 0;
  for (SyntheticMonitor* monitor : monitors) {
    lost += monitor->events_lost();
  }
  std::fprintf(out,
               "robmon: summary monitors=%zu faults=%llu deadlocks=%llu "
               "order_warnings=%llu passthrough=%llu events_lost=%llu\n",
               monitors.size(),
               static_cast<unsigned long long>(sink_.total()),
               static_cast<unsigned long long>(sink_.deadlocks()),
               static_cast<unsigned long long>(sink_.order_warnings()),
               static_cast<unsigned long long>(passthroughs()),
               static_cast<unsigned long long>(lost));
  if (config_.trace_path.empty()) return;
  for (SyntheticMonitor* monitor : monitors) {
    monitor->snapshot();  // Fold any still-pending ring ops into the log.
    const trace::TraceFile file = trace::make_trace_file(
        monitor->spec().name, std::string(to_string(monitor->spec().type)),
        monitor->spec().rmax, monitor->symbols(), monitor->log().history(),
        /*checkpoints=*/{}, monitor->events_lost());
    const std::string path =
        config_.trace_path + monitor->spec().name + ".trace";
    std::ofstream stream(path);
    if (!stream) {
      std::fprintf(stderr, "robmon: cannot write trace %s\n", path.c_str());
      continue;
    }
    trace::write_trace(stream, file);
  }
}

}  // namespace robmon::interpose
