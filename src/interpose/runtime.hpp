// Interposition runtime — the process-wide state behind librobmon_preload.
//
// One Runtime per process: a lock-free address→SyntheticMonitor registry
// (each observed pthread_mutex_t / pthread_cond_t lazily becomes one
// synthetic monitor), one rt::CheckerPool every monitor registers with
// (detector-less: the cross-monitor wait-for and lock-order analyses are
// what fire through the shim), a stderr ReportSink that prints detections
// live (a deadlocked host never exits, so CI greps stderr under timeout),
// and the fork/exit plumbing: an atexit flush (summary line + optional
// trace export) and a pthread_atfork child handler that retires the
// parent's runtime (its worker threads do not exist in the child) and lets
// the next intercepted operation build a fresh one.
//
// Configuration comes from ROBMON_* environment variables, parsed through
// util::EnvFlags with the shared bad-config error path: the shim prints
// the collected report and runs with defaults — it must never abort the
// host program.  See docs/interposition.md for the variable reference.
//
// No-self-deadlock argument (the shim's core obligation):
//   * application hot path: one lock-free ring push per adapted op —
//     never a robmon lock (SyntheticMonitor's contract);
//   * every robmon-internal pthread operation (registry construction,
//     pool scheduling, checker work) runs under the re-entrancy guard or
//     on an internal-marked thread, so it passes straight through to libc
//     and can never re-enter the adapter;
//   * robmon locks (apply_mu_, the pool's mutexes) are never held while
//     acquiring an application lock, so no lock-order edge from robmon
//     into the application exists.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/recovery.hpp"
#include "interpose/synthetic_monitor.hpp"
#include "runtime/checker_pool.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace robmon::interpose {

/// Shim configuration, one field per ROBMON_* variable (all optional).
struct RuntimeConfig {
  /// ROBMON_SHARDS: checker-pool worker threads.
  std::size_t shards = 1;
  /// ROBMON_BUDGET: detection budget as a fraction of wall-clock time;
  /// 0 disables the budget controller.
  double budget_fraction = 0.0;
  /// ROBMON_LOCKORDER: lock-order (potential-deadlock) prediction.
  bool lockorder = true;
  /// ROBMON_RECOVERY: opt-in recovery actions (default off: synthetic
  /// monitors cannot evict waiters, so actions degrade to reports).
  bool recovery = false;
  /// ROBMON_TRACE: per-monitor trace-file prefix; empty = no export.
  std::string trace_path;
  /// ROBMON_CHECK_PERIOD_MS: per-monitor check cadence.
  util::TimeNs check_period = 100 * util::kMillisecond;
  /// ROBMON_WAITFOR_MS: wait-for (deadlock) checkpoint cadence.
  util::TimeNs waitfor_period = 250 * util::kMillisecond;
  /// ROBMON_LOCKORDER_MS: lock-order prediction checkpoint cadence.
  util::TimeNs lockorder_period = 500 * util::kMillisecond;
  /// ROBMON_RING: per-monitor pending-op ring capacity.
  std::size_t ring_capacity = 1024;
  /// ROBMON_MAX_MONITORS: registry capacity; objects observed beyond it
  /// pass through unadapted (counted, reported in the exit summary).
  std::size_t max_monitors = 4096;
  /// ROBMON_LOG: verbose lifecycle logging to stderr.
  bool verbose = false;

  /// Non-empty when any variable failed validation: the single formatted
  /// bad-config report (util::EnvFlags::error_text()).  The parsed config
  /// keeps the defaults for every bad field.
  std::string config_error;

  static RuntimeConfig from_env();
};

/// Per-thread re-entrancy state for the interposition wrappers.  A wrapper
/// adapts an operation only at depth 0 on a non-internal thread; while it
/// runs (guard alive, depth > 0) every nested pthread call — from the
/// registry, the pool, or malloc — passes straight through to libc.
/// Threads the runtime itself creates (pool workers) are marked internal
/// for their whole lifetime by the pthread_create trampoline.
class ReentryGuard {
 public:
  ReentryGuard();
  ~ReentryGuard();
  ReentryGuard(const ReentryGuard&) = delete;
  ReentryGuard& operator=(const ReentryGuard&) = delete;

  /// True iff an adapted wrapper body may run on this thread right now.
  static bool should_adapt();
  static int depth();
  static bool internal();
  /// Mark the calling thread as robmon-internal (sticky).
  static void mark_internal();
};

/// The calling thread's kernel task id as a robmon::Tid (cached per
/// thread).
Tid self_tid();

/// ReportSink that prints every detection to stderr as it happens and
/// counts per rule — the shim's only output channel into an unmodified
/// host program.
class StderrSink final : public core::ReportSink {
 public:
  void report(const core::FaultReport& fault) override;

  std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }
  std::uint64_t deadlocks() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }
  std::uint64_t order_warnings() const {
    return order_warnings_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> deadlocks_{0};
  std::atomic<std::uint64_t> order_warnings_{0};
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Process-wide instance, built on first use (never destroyed: worker
  /// threads and monitors stay reachable through the global, which keeps
  /// exit-time teardown races and leak-checker reports out).  Callers
  /// must hold a ReentryGuard (or be robmon-internal code paths like
  /// tests) so construction's own pthread traffic passes through.
  static Runtime& instance();
  /// The instance if one was ever built, else nullptr (atexit flush).
  static Runtime* instance_if_built();

  /// pthread_atfork child handler: retire the parent's runtime — its
  /// worker threads do not exist in the child — onto a reachable
  /// graveyard (never freed: application threads may hold pointers into
  /// it) and let the next intercepted operation build a fresh one.
  static void reset_after_fork();

  /// The synthetic monitor shadowing `addr`, creating (and scheduling) it
  /// on first sight.  nullptr when the registry is full — the caller
  /// passes the operation through unadapted.
  SyntheticMonitor* monitor_for(const void* addr, SyntheticMonitor::Kind kind);
  /// Lookup without creating (destroy hooks).
  SyntheticMonitor* find_monitor(const void* addr);

  const RuntimeConfig& config() const { return config_; }
  rt::CheckerPool& pool() { return *pool_; }
  const StderrSink& sink() const { return sink_; }
  std::size_t monitor_count() const {
    return registered_.load(std::memory_order_relaxed);
  }
  std::uint64_t passthroughs() const {
    return passthroughs_.load(std::memory_order_relaxed);
  }

  /// atexit worker: one summary line, plus per-monitor trace export when
  /// ROBMON_TRACE is set.
  void flush(std::FILE* out);

 private:
  struct Slot {
    std::atomic<std::uintptr_t> key{0};
    std::atomic<SyntheticMonitor*> monitor{nullptr};
  };

  SyntheticMonitor* create_monitor(SyntheticMonitor::Kind kind);

  RuntimeConfig config_;
  StderrSink sink_;
  core::RecoveryPolicy recovery_policy_;
  std::unique_ptr<rt::CheckerPool> pool_;

  /// Open-addressed CAS-claimed table (capacity 2× max_monitors, power of
  /// two): one atomic key claim per new object, lock-free lookups.
  std::size_t table_mask_ = 0;
  std::unique_ptr<Slot[]> table_;
  std::atomic<std::size_t> registered_{0};
  std::atomic<std::uint64_t> passthroughs_{0};

  /// Monitors in creation order (flush/export); guarded by monitors_mu_.
  std::mutex monitors_mu_;
  std::vector<SyntheticMonitor*> monitors_;

  /// Retired-by-fork runtimes, intrusively chained (no allocation in the
  /// atfork child handler) and reachable forever.
  Runtime* graveyard_next_ = nullptr;
};

}  // namespace robmon::interpose
