// librobmon_preload — LD_PRELOAD interposition of the pthread mutex and
// condition-variable surface, feeding unmodified binaries into robmon's
// detection engine.
//
//   LD_PRELOAD=./librobmon_preload.so ./your_pthread_program
//
// Each wrapper resolves the real function once via dlsym(RTLD_NEXT, ...),
// adapts the operation's observable edges into the process Runtime's
// synthetic monitors (interpose/runtime.hpp), and otherwise behaves
// exactly like the function it shadows — same return values, same
// blocking behaviour.  Adaptation happens only at re-entrancy depth 0 on
// non-internal threads (ReentryGuard): the shim's own pthread traffic —
// registry construction, pool scheduling, malloc-internal locking —
// passes straight through to libc, which is what makes the shim unable
// to deadlock against itself (see the argument in interpose/runtime.hpp).
//
// Lock fast path: a successful real trylock means no blocking was ever
// observable, so only an acquire is recorded.  A failed trylock records
// the entry-queue wait BEFORE the real (blocking) lock — the wait-for
// graph must see the thread parked while it actually is — and the
// acquire (or a cancellation, e.g. EDEADLK) after it returns.  Unlock is
// recorded BEFORE the real unlock so no snapshot can observe the next
// owner while the old one still appears inside.
//
// pthread_create is interposed for one reason only: a thread created
// while the creator is inside the shim (depth > 0) or is itself internal
// belongs to robmon (checker-pool workers), and the trampoline marks it
// internal before it runs — its entire pthread lifetime passes through.
//
// Not interposed (unobserved; see docs/interposition.md): rwlocks,
// spinlocks, barriers, semaphores, pthread_mutex_timedlock, and direct
// futex users.  The adapter's guarded transitions make partial
// observation safe — an unlock of a never-observed acquisition is a
// no-op, never a corruption.
#include <dlfcn.h>
#include <pthread.h>

#include "interpose/runtime.hpp"
#include "interpose/synthetic_monitor.hpp"

namespace {

using robmon::interpose::ReentryGuard;
using robmon::interpose::Runtime;
using robmon::interpose::SyntheticMonitor;
using robmon::interpose::self_tid;

template <typename Fn>
Fn resolve(const char* name) {
  return reinterpret_cast<Fn>(dlsym(RTLD_NEXT, name));
}

using MutexFn = int (*)(pthread_mutex_t*);
using CondFn = int (*)(pthread_cond_t*);
using CondWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*);
using CondTimedWaitFn = int (*)(pthread_cond_t*, pthread_mutex_t*,
                                const struct timespec*);
using CreateFn = int (*)(pthread_t*, const pthread_attr_t*, void* (*)(void*),
                         void*);

/// Start-routine trampoline: carries the internal flag into the new
/// thread's TLS before any user (or pool) code runs there.
struct StartArg {
  void* (*fn)(void*);
  void* arg;
  bool internal;
};

void* start_trampoline(void* raw) {
  StartArg* boxed = static_cast<StartArg*>(raw);
  const StartArg arg = *boxed;
  delete boxed;
  if (arg.internal) ReentryGuard::mark_internal();
  return arg.fn(arg.arg);
}

}  // namespace

extern "C" {

int pthread_mutex_lock(pthread_mutex_t* mutex) {
  static const MutexFn real = resolve<MutexFn>("pthread_mutex_lock");
  static const MutexFn real_try = resolve<MutexFn>("pthread_mutex_trylock");
  if (!ReentryGuard::should_adapt()) return real(mutex);
  ReentryGuard guard;
  SyntheticMonitor* monitor =
      Runtime::instance().monitor_for(mutex, SyntheticMonitor::Kind::kMutex);
  if (monitor == nullptr) return real(mutex);
  const robmon::Tid tid = self_tid();
  if (real_try(mutex) == 0) {
    monitor->lock_acquired(tid);
    return 0;
  }
  monitor->lock_blocked(tid);
  const int rc = real(mutex);
  if (rc == 0) {
    monitor->lock_acquired(tid);
  } else {
    monitor->lock_cancelled(tid);
  }
  return rc;
}

int pthread_mutex_trylock(pthread_mutex_t* mutex) {
  static const MutexFn real = resolve<MutexFn>("pthread_mutex_trylock");
  if (!ReentryGuard::should_adapt()) return real(mutex);
  ReentryGuard guard;
  SyntheticMonitor* monitor =
      Runtime::instance().monitor_for(mutex, SyntheticMonitor::Kind::kMutex);
  const int rc = real(mutex);
  if (rc == 0 && monitor != nullptr) monitor->lock_acquired(self_tid());
  return rc;
}

int pthread_mutex_unlock(pthread_mutex_t* mutex) {
  static const MutexFn real = resolve<MutexFn>("pthread_mutex_unlock");
  if (!ReentryGuard::should_adapt()) return real(mutex);
  ReentryGuard guard;
  SyntheticMonitor* monitor =
      Runtime::instance().monitor_for(mutex, SyntheticMonitor::Kind::kMutex);
  if (monitor != nullptr) monitor->unlocked(self_tid());
  return real(mutex);
}

int pthread_mutex_destroy(pthread_mutex_t* mutex) {
  static const MutexFn real = resolve<MutexFn>("pthread_mutex_destroy");
  if (!ReentryGuard::should_adapt()) return real(mutex);
  ReentryGuard guard;
  if (Runtime* runtime = Runtime::instance_if_built()) {
    // Clear the shadow state: this address may be reused by a fresh
    // object that must not inherit a stale owner or queue.
    if (SyntheticMonitor* monitor = runtime->find_monitor(mutex)) {
      monitor->reset();
    }
  }
  return real(mutex);
}

int pthread_cond_wait(pthread_cond_t* cond, pthread_mutex_t* mutex) {
  static const CondWaitFn real = resolve<CondWaitFn>("pthread_cond_wait");
  if (!ReentryGuard::should_adapt()) return real(cond, mutex);
  ReentryGuard guard;
  Runtime& runtime = Runtime::instance();
  SyntheticMonitor* cond_monitor =
      runtime.monitor_for(cond, SyntheticMonitor::Kind::kCondition);
  SyntheticMonitor* mutex_monitor =
      runtime.monitor_for(mutex, SyntheticMonitor::Kind::kMutex);
  const robmon::Tid tid = self_tid();
  // The wait releases the mutex and parks: record both edges before the
  // real call so a checkpoint during the park sees the true state.  The
  // reacquisition inside the real wait is unobservable; the acquire is
  // recorded when the wait returns (limitation: a thread blocked on that
  // hidden reacquisition contributes no wait-for edge).
  if (mutex_monitor != nullptr) mutex_monitor->unlocked(tid);
  if (cond_monitor != nullptr) cond_monitor->cond_parked(tid);
  const int rc = real(cond, mutex);
  if (cond_monitor != nullptr) cond_monitor->cond_unparked(tid);
  if (mutex_monitor != nullptr) mutex_monitor->lock_acquired(tid);
  return rc;
}

int pthread_cond_timedwait(pthread_cond_t* cond, pthread_mutex_t* mutex,
                           const struct timespec* abstime) {
  static const CondTimedWaitFn real =
      resolve<CondTimedWaitFn>("pthread_cond_timedwait");
  if (!ReentryGuard::should_adapt()) return real(cond, mutex, abstime);
  ReentryGuard guard;
  Runtime& runtime = Runtime::instance();
  SyntheticMonitor* cond_monitor =
      runtime.monitor_for(cond, SyntheticMonitor::Kind::kCondition);
  SyntheticMonitor* mutex_monitor =
      runtime.monitor_for(mutex, SyntheticMonitor::Kind::kMutex);
  const robmon::Tid tid = self_tid();
  if (mutex_monitor != nullptr) mutex_monitor->unlocked(tid);
  if (cond_monitor != nullptr) cond_monitor->cond_parked(tid);
  const int rc = real(cond, mutex, abstime);
  if (cond_monitor != nullptr) cond_monitor->cond_unparked(tid);
  if (mutex_monitor != nullptr) mutex_monitor->lock_acquired(tid);
  return rc;
}

int pthread_cond_signal(pthread_cond_t* cond) {
  static const CondFn real = resolve<CondFn>("pthread_cond_signal");
  if (!ReentryGuard::should_adapt()) return real(cond);
  ReentryGuard guard;
  SyntheticMonitor* monitor = Runtime::instance().monitor_for(
      cond, SyntheticMonitor::Kind::kCondition);
  if (monitor != nullptr) {
    monitor->cond_signalled(self_tid(), /*broadcast=*/false);
  }
  return real(cond);
}

int pthread_cond_broadcast(pthread_cond_t* cond) {
  static const CondFn real = resolve<CondFn>("pthread_cond_broadcast");
  if (!ReentryGuard::should_adapt()) return real(cond);
  ReentryGuard guard;
  SyntheticMonitor* monitor = Runtime::instance().monitor_for(
      cond, SyntheticMonitor::Kind::kCondition);
  if (monitor != nullptr) {
    monitor->cond_signalled(self_tid(), /*broadcast=*/true);
  }
  return real(cond);
}

int pthread_cond_destroy(pthread_cond_t* cond) {
  static const CondFn real = resolve<CondFn>("pthread_cond_destroy");
  if (!ReentryGuard::should_adapt()) return real(cond);
  ReentryGuard guard;
  if (Runtime* runtime = Runtime::instance_if_built()) {
    if (SyntheticMonitor* monitor = runtime->find_monitor(cond)) {
      monitor->reset();
    }
  }
  return real(cond);
}

int pthread_create(pthread_t* thread, const pthread_attr_t* attr,
                   void* (*start_routine)(void*), void* arg) {
  static const CreateFn real = resolve<CreateFn>("pthread_create");
  const bool internal =
      ReentryGuard::internal() || ReentryGuard::depth() > 0;
  ReentryGuard guard;
  auto* boxed = new StartArg{start_routine, arg, internal};
  const int rc = real(thread, attr, start_trampoline, boxed);
  if (rc != 0) delete boxed;
  return rc;
}

}  // extern "C"
