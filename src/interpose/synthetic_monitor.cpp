#include "interpose/synthetic_monitor.hpp"

#include <algorithm>
#include <utility>

namespace robmon::interpose {

namespace {

trace::EventLog::Options log_options(bool retain_history) {
  trace::EventLog::Options options;
  options.retain_history = retain_history;
  options.shards = 1;  // Appends are serialized under apply_mu_.
  return options;
}

}  // namespace

SyntheticMonitor::SyntheticMonitor(std::string name, Kind kind,
                                   const util::Clock& clock,
                                   const Config& config)
    : kind_(kind),
      spec_(core::MonitorSpec::manager(std::move(name))),
      clock_(&clock),
      log_(log_options(config.retain_history)),
      ring_(config.ring_capacity) {
  spec_.check_period = config.check_period;
  proc_lock_ = symbols_.intern("lock");
  proc_wait_ = symbols_.intern("wait");
  proc_signal_ = symbols_.intern("signal");
  cond_sym_ = symbols_.intern("cond");
}

void SyntheticMonitor::lock_blocked(Tid tid) {
  push(OpKind::kLockBlocked, tid);
}

void SyntheticMonitor::lock_acquired(Tid tid) {
  push(OpKind::kLockAcquired, tid);
}

void SyntheticMonitor::lock_cancelled(Tid tid) {
  push(OpKind::kLockCancelled, tid);
}

void SyntheticMonitor::unlocked(Tid tid) { push(OpKind::kUnlocked, tid); }

void SyntheticMonitor::cond_parked(Tid tid) { push(OpKind::kCondParked, tid); }

void SyntheticMonitor::cond_unparked(Tid tid) {
  push(OpKind::kCondUnparked, tid);
}

void SyntheticMonitor::cond_signalled(Tid tid, bool broadcast) {
  push(OpKind::kCondSignalled, tid, broadcast);
}

void SyntheticMonitor::reset() { push(OpKind::kReset, kNoTid); }

void SyntheticMonitor::push(OpKind kind, Tid tid, bool flag) {
  const Op op{kind, tid, clock_->now_ns(), flag};
  if (ring_.try_push(op)) return;
  // Ring full (the pool's drain cadence fell behind a burst): apply the
  // backlog plus this op inline.  The producer pays one bounded mutex
  // acquisition — apply_mu_ is only ever held for short folds, never
  // across an application lock — and nothing is dropped.
  std::lock_guard<std::mutex> lock(apply_mu_);
  apply_pending_locked();
  apply_locked(op);
  backpressure_syncs_.fetch_add(1, std::memory_order_relaxed);
}

void SyntheticMonitor::apply_pending_locked() const {
  ring_.consume([this](const Op& op) { apply_locked(op); });
}

void SyntheticMonitor::erase_entry_wait(Tid tid) const {
  const auto it = std::find_if(
      entry_queue_.begin(), entry_queue_.end(),
      [tid](const trace::QueueEntry& entry) { return entry.pid == tid; });
  if (it != entry_queue_.end()) entry_queue_.erase(it);
}

void SyntheticMonitor::apply_locked(const Op& op) const {
  switch (op.kind) {
    case OpKind::kLockBlocked:
      entry_queue_.push_back({op.tid, proc_lock_, op.time, ++next_ticket_});
      log_.append(
          trace::EventRecord::enter(op.tid, proc_lock_, false, op.time));
      break;
    case OpKind::kLockAcquired: {
      const std::size_t queued = entry_queue_.size();
      erase_entry_wait(op.tid);
      if (owner_ == op.tid) {
        ++owner_depth_;  // Recursive re-acquisition.
      } else {
        owner_ = op.tid;
        owner_depth_ = 1;
        owner_since_ = op.time;
        owner_ticket_ = ++next_ticket_;
      }
      // Reduced recording model: a blocked request was recorded at block
      // time and its resume is implied; only a fast-path acquire records
      // a fresh (immediately admitted) Enter.
      if (entry_queue_.size() == queued) {
        log_.append(
            trace::EventRecord::enter(op.tid, proc_lock_, true, op.time));
      }
      break;
    }
    case OpKind::kLockCancelled:
      erase_entry_wait(op.tid);
      break;
    case OpKind::kUnlocked:
      // Guarded: an unlock from a thread the adapter never saw acquire
      // (pthread_mutex_timedlock is unobserved) is a no-op.
      if (owner_ == op.tid) {
        if (--owner_depth_ == 0) {
          owner_ = kNoTid;
          owner_since_ = 0;
          owner_ticket_ = 0;
          log_.append(trace::EventRecord::signal_exit(
              op.tid, proc_lock_, trace::kNoSymbol, !entry_queue_.empty(),
              op.time));
        }
      }
      break;
    case OpKind::kCondParked:
      cond_queue_.push_back({op.tid, proc_wait_, op.time, ++next_ticket_});
      log_.append(
          trace::EventRecord::wait(op.tid, proc_wait_, cond_sym_, op.time));
      break;
    case OpKind::kCondUnparked: {
      const auto it = std::find_if(
          cond_queue_.begin(), cond_queue_.end(),
          [&op](const trace::QueueEntry& entry) { return entry.pid == op.tid; });
      if (it != cond_queue_.end()) cond_queue_.erase(it);
      break;
    }
    case OpKind::kCondSignalled:
      log_.append(trace::EventRecord::signal_exit(
          op.tid, proc_signal_, cond_sym_, !cond_queue_.empty(), op.time));
      break;
    case OpKind::kReset:
      entry_queue_.clear();
      cond_queue_.clear();
      owner_ = kNoTid;
      owner_depth_ = 0;
      owner_since_ = 0;
      owner_ticket_ = 0;
      break;
  }
}

std::vector<trace::EventRecord> SyntheticMonitor::drain_segment() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  apply_pending_locked();
  return log_.drain();
}

trace::SchedulingState SyntheticMonitor::snapshot() const {
  std::lock_guard<std::mutex> lock(apply_mu_);
  apply_pending_locked();
  trace::SchedulingState state;
  state.captured_at = clock_->now_ns();
  if (kind_ == Kind::kMutex) {
    state.entry_queue = entry_queue_;
    if (owner_ != kNoTid) {
      // The owner appears twice, deliberately: Running is the mutex-hold
      // edge entry-queue waits pair with (wait-for graph), holders[] is
      // what the lock-order relation's certified-interval join reads.
      state.running = owner_;
      state.running_proc = proc_lock_;
      state.running_since = owner_since_;
      state.running_ticket = owner_ticket_;
      state.holders.push_back(
          {owner_, owner_depth_, owner_since_, owner_ticket_});
    }
  } else {
    state.cond_queues.push_back({cond_sym_, cond_queue_});
  }
  return state;
}

}  // namespace robmon::interpose
