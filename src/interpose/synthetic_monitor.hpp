// SyntheticMonitor — an rt::EventSink built from *observed* pthread
// operations instead of executed monitor primitives.
//
// The LD_PRELOAD interposition backend (src/interpose/preload.cpp) cannot
// run the paper's augmented monitor: the host program brings its own
// pthread_mutex_t / pthread_cond_t objects and blocks inside libc.  What
// the shim can observe is the *edges* of each operation — "this thread is
// about to block on that mutex", "this thread now owns it", "this thread
// parked on that condition".  SyntheticMonitor adapts those observations
// into the same ingestion surface the native HoareMonitor feeds
// (rt::EventSink): a reduced-model event segment, a <EQ, CQ[], holders,
// Running> snapshot with per-episode tickets, and a checker gate — so the
// CheckerPool's cross-monitor analyses (wait-for cycle confirmation,
// lock-order prediction) run unchanged over an unmodified binary.
//
// Each observed pthread object becomes one synthetic monitor:
//   kMutex      — EQ models threads blocked in pthread_mutex_lock; the
//                 owner appears BOTH as Running (the mutex-hold edge the
//                 wait-for graph pairs entry waiters with) and as a
//                 holders[] entry (what the lock-order relation joins on).
//   kCondition  — one CQ models threads parked in pthread_cond_wait.
//                 Condition monitors never report holders or Running, so
//                 they contribute waits (diagnostics) but can never close
//                 a wait-for edge — a cond wait is an OR-wait on a future
//                 signal, which a cycle cannot soundly encode.
//
// Hot-path contract: every producer call is one lock-free MpscRing push —
// the application thread never takes a robmon lock while adapting an
// operation, so the shim cannot deadlock against itself.  The buffered ops
// are folded into the monitor state under apply_mu_ by whoever needs the
// state next (the pool's drain/snapshot, or a producer that found the ring
// full — backpressure applies the backlog inline instead of dropping).
//
// Ordering: ops of one monitor are applied in ring claim order, which
// matches the real-time order of the pushes.  The one exception is a
// producer preempted between claim and publish: the apply pass stops at
// its slot, and a backpressure-applying producer may fold a later op
// first.  Every transition below is therefore *guarded* (an unlock by a
// non-owner, or an acquire-remove of an absent EQ entry, is a no-op), so
// a transient misorder can only under-report — never fabricate state, and
// never corrupt it.  The pool's two-pass live validation then makes
// wait-for reports exact regardless.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/monitor_spec.hpp"
#include "runtime/event_sink.hpp"
#include "sync/gate.hpp"
#include "sync/mpsc_ring.hpp"
#include "trace/event.hpp"
#include "trace/event_log.hpp"
#include "trace/snapshot.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace robmon::interpose {

class SyntheticMonitor final : public rt::EventSink {
 public:
  /// Which pthread object this monitor shadows.
  enum class Kind {
    kMutex,      ///< pthread_mutex_t: EQ + owner (Running + holders).
    kCondition,  ///< pthread_cond_t: one condition queue.
  };

  struct Config {
    /// Pending-op ring capacity (slots; rounded up to a power of two).
    std::size_t ring_capacity = 1024;
    /// Check cadence the pool reads from spec().
    util::TimeNs check_period = 100 * util::kMillisecond;
    /// Archive drained events for trace export (ROBMON_TRACE).
    bool retain_history = false;
  };

  SyntheticMonitor(std::string name, Kind kind, const util::Clock& clock,
                   const Config& config);

  SyntheticMonitor(const SyntheticMonitor&) = delete;
  SyntheticMonitor& operator=(const SyntheticMonitor&) = delete;

  // --- Producer surface (application threads; one ring push each). ----------

  /// The thread failed a trylock and is about to block in the real lock.
  void lock_blocked(Tid tid);
  /// The real lock (or trylock) returned success.
  void lock_acquired(Tid tid);
  /// The blocking lock returned an error (e.g. EDEADLK): undo the block.
  void lock_cancelled(Tid tid);
  /// The thread is about to release the mutex.
  void unlocked(Tid tid);
  /// The thread released the mutex inside pthread_cond_wait and parks.
  void cond_parked(Tid tid);
  /// pthread_cond_wait returned (signal, broadcast or timeout).
  void cond_unparked(Tid tid);
  /// The thread signalled (or broadcast) this condition.
  void cond_signalled(Tid tid, bool broadcast);
  /// pthread_{mutex,cond}_destroy: clear all state so an address reused by
  /// a fresh object does not inherit a stale owner or queue.
  void reset();

  // --- rt::EventSink (checker side). ----------------------------------------

  const core::MonitorSpec& spec() const override { return spec_; }
  const trace::SymbolTable& symbols() const override { return symbols_; }
  sync::CheckerGate& gate() override { return gate_; }
  std::vector<trace::EventRecord> drain_segment() override;
  std::uint64_t events_lost() const override { return log_.events_lost(); }
  trace::SchedulingState snapshot() const override;

  // --- Introspection / export. ----------------------------------------------

  Kind kind() const { return kind_; }
  trace::EventLog& log() { return log_; }
  /// Full-ring events applied inline by a producer (never dropped).
  std::uint64_t backpressure_syncs() const {
    return backpressure_syncs_.load(std::memory_order_relaxed);
  }

 private:
  enum class OpKind : std::uint8_t {
    kLockBlocked,
    kLockAcquired,
    kLockCancelled,
    kUnlocked,
    kCondParked,
    kCondUnparked,
    kCondSignalled,
    kReset,
  };

  struct Op {
    OpKind kind = OpKind::kLockBlocked;
    Tid tid = kNoTid;
    util::TimeNs time = 0;
    bool flag = false;  ///< kCondSignalled: broadcast.
  };

  void push(OpKind kind, Tid tid, bool flag = false);
  /// Fold every published ring op into the (mutable) state.  apply_mu_
  /// held.  const because snapshot() — logically an observation — must
  /// fold pending ops first.
  void apply_pending_locked() const;
  void apply_locked(const Op& op) const;
  void erase_entry_wait(Tid tid) const;

  const Kind kind_;
  core::MonitorSpec spec_;
  const util::Clock* clock_;
  trace::SymbolTable symbols_;
  trace::SymbolId proc_lock_ = trace::kNoSymbol;
  trace::SymbolId proc_wait_ = trace::kNoSymbol;
  trace::SymbolId proc_signal_ = trace::kNoSymbol;
  trace::SymbolId cond_sym_ = trace::kNoSymbol;

  sync::CheckerGate gate_;
  /// Single shard + appends under apply_mu_: total append order, like the
  /// native monitor's log.
  mutable trace::EventLog log_;

  /// Everything below apply_mu_ is logically part of observation:
  /// snapshot() is const for the pool but must fold pending ops first,
  /// hence the mutable consumer state (same pattern as HoareMonitor's
  /// mutable mu_).
  mutable std::mutex apply_mu_;
  mutable sync::MpscRing<Op> ring_;
  mutable std::vector<trace::QueueEntry> entry_queue_;
  mutable std::vector<trace::QueueEntry> cond_queue_;
  mutable Tid owner_ = kNoTid;
  mutable std::int64_t owner_depth_ = 0;  ///< Recursive-mutex depth.
  mutable util::TimeNs owner_since_ = 0;
  mutable std::uint64_t owner_ticket_ = 0;
  /// Monotonic episode counter (see HoareMonitor::next_ticket_): one per
  /// blocking episode and per ownership, so the pool's live validation can
  /// tell a continuous wait from a re-formed one without trusting clocks.
  mutable std::uint64_t next_ticket_ = 0;

  std::atomic<std::uint64_t> backpressure_syncs_{0};
};

}  // namespace robmon::interpose
