#include "workloads/dining.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/recovery.hpp"
#include "runtime/checker_pool.hpp"
#include "sync/gate.hpp"
#include "workloads/allocator.hpp"

namespace robmon::wl {

namespace {

util::TimeNs wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Parade timing (impose-order phase 1): each philosopher briefly holds
/// left+right under a driver-side serialization; the dwell is long enough
/// that the driver's sub-dwell check_now polling certainly snapshots the
/// double hold.
constexpr util::TimeNs kParadeStepNs = 1 * util::kMillisecond;
constexpr util::TimeNs kParadeDwellNs = 4 * util::kMillisecond;

bool is_timeout_rule(core::RuleId rule) {
  return rule == core::RuleId::kSt8cHoldExceedsTlimit ||
         rule == core::RuleId::kSt5ResidenceExceedsTmax ||
         rule == core::RuleId::kSt6EntryWaitExceedsTio;
}

core::MonitorSpec fork_spec(const std::string& name, util::TimeNs t_limit,
                            util::TimeNs t_max, util::TimeNs t_io,
                            util::TimeNs check_period) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_limit = t_limit;
  spec.t_max = t_max;
  spec.t_io = t_io;
  spec.check_period = check_period;
  return spec;
}

}  // namespace

DiningResult run_dining(const DiningOptions& options) {
  const int n = options.philosophers;

  core::CollectingSink sink;
  // The pool outlives the monitors (their destructors unregister).
  rt::CheckerPool::Options pool_options;
  pool_options.waitfor_checkpoint_period = options.checkpoint_period;
  pool_options.waitfor_sink = &sink;
  rt::CheckerPool pool(pool_options);

  std::vector<std::unique_ptr<rt::RobustMonitor>> fork_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> forks;
  fork_monitors.reserve(static_cast<std::size_t>(n));
  forks.reserve(static_cast<std::size_t>(n));
  rt::RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  for (int f = 0; f < n; ++f) {
    fork_monitors.push_back(std::make_unique<rt::RobustMonitor>(
        fork_spec("fork-" + std::to_string(f), options.t_limit, options.t_max,
                  options.t_io, options.check_period),
        sink, monitor_options));
    forks.push_back(
        std::make_unique<ResourceAllocator>(*fork_monitors.back(), 1));
    fork_monitors.back()->start_checking();
  }

  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      const trace::Pid pid = p;
      int first = p;            // left fork
      int second = (p + 1) % n;  // right fork
      if (!options.symmetric_order && p == n - 1) std::swap(first, second);
      for (int round = 0; round < options.rounds; ++round) {
        if (forks[static_cast<std::size_t>(first)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        if (options.grab_gap_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.grab_gap_ns));
        }
        if (forks[static_cast<std::size_t>(second)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.eat_ns));
        forks[static_cast<std::size_t>(second)]->release(pid);
        forks[static_cast<std::size_t>(first)]->release(pid);
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.think_ns));
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Watchdog: wait for completion, a confirmed structural deadlock, or the
  // timeout; then poison the forks so that deadlocked philosophers unwind.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  while (finished.load(std::memory_order_relaxed) < n &&
         std::chrono::steady_clock::now() < deadline) {
    if (sink.any_with_rule(core::RuleId::kWfCycleDetected)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const bool completed = finished.load(std::memory_order_relaxed) == n;
  if (!completed) {
    for (auto& monitor : fork_monitors) monitor->poison();
  }
  for (auto& thread : threads) thread.join();
  for (auto& monitor : fork_monitors) {
    monitor->stop_checking();
    if (completed) monitor->check_now();  // final segment on clean runs
  }

  DiningResult result;
  result.completed = completed;
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  for (const auto& report : result.reports) {
    if (is_timeout_rule(report.rule)) result.deadlock_reported = true;
    if (report.rule == core::RuleId::kWfCycleDetected) {
      result.global_deadlock_reported = true;
      result.cycles.push_back(report.message);
    }
  }
  return result;
}

DiningLoadResult run_dining_load(const DiningLoadOptions& options) {
  const std::size_t rings = options.rings;
  const int n = options.philosophers;
  const std::size_t forks_per_ring = static_cast<std::size_t>(n);
  const std::size_t deadlock_rings = std::min(options.deadlock_rings, rings);
  const std::size_t clean_rings = rings - deadlock_rings;

  const bool recovery_on = options.recovery != DiningRecovery::kOff;
  const bool impose = options.recovery == DiningRecovery::kImposeOrder;

  core::CollectingSink sink;
  core::RecoveryPolicy::Options policy_options;
  policy_options.confirmed_remedy =
      options.recovery == DiningRecovery::kDeliverFault
          ? core::RecoveryRemedy::kDeliverFault
          : core::RecoveryRemedy::kPoisonVictim;
  policy_options.preempt_predicted = impose;
  core::RecoveryPolicy policy(policy_options);
  sync::Gate gate;

  rt::CheckerPool::Options pool_options;
  pool_options.threads = options.pool_threads;
  pool_options.waitfor_checkpoint_period = options.checkpoint_period;
  pool_options.waitfor_sink = &sink;
  if (impose) {
    // Pre-emption needs the prediction checkpoint; the other modes leave it
    // off so the only verdicts are structural WF cycles.
    pool_options.lockorder_checkpoint_period = options.checkpoint_period;
    pool_options.lockorder_sink = &sink;
  }
  if (recovery_on) {
    pool_options.recovery.policy = &policy;
    pool_options.recovery.gate = &gate;
  }
  rt::CheckerPool pool(pool_options);

  const auto fork_name = [](std::size_t ring, int f) {
    return "r" + std::to_string(ring) + "-fork" + std::to_string(f);
  };
  std::vector<std::unique_ptr<rt::RobustMonitor>> fork_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> forks;
  std::unordered_map<std::string, std::size_t> fork_index;
  fork_monitors.reserve(rings * forks_per_ring);
  forks.reserve(rings * forks_per_ring);
  rt::RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  for (std::size_t r = 0; r < rings; ++r) {
    for (int f = 0; f < n; ++f) {
      fork_monitors.push_back(std::make_unique<rt::RobustMonitor>(
          fork_spec(fork_name(r, f), options.t_limit, options.t_max,
                    options.t_io, options.check_period),
          sink, monitor_options));
      forks.push_back(
          std::make_unique<ResourceAllocator>(*fork_monitors.back(), 1));
      fork_index.emplace(fork_name(r, f), forks.size() - 1);
      fork_monitors.back()->start_checking();
    }
  }
  const auto fork_at = [&](std::size_t ring, int f) -> ResourceAllocator& {
    return *forks[ring * forks_per_ring + static_cast<std::size_t>(f)];
  };

  // Rendezvous counters for the injected hold-and-wait cycles: a ring's
  // philosophers all take their left fork before anyone reaches for the
  // right one, making the circular wait certain, not just likely.
  std::vector<std::unique_ptr<std::atomic<int>>> left_held;
  // Impose-order mode: per-ring parade serialization (phase 1).
  std::vector<std::unique_ptr<std::mutex>> parade_mu;
  for (std::size_t r = 0; r < deadlock_rings; ++r) {
    left_held.push_back(std::make_unique<std::atomic<int>>(0));
    parade_mu.push_back(std::make_unique<std::mutex>());
  }
  const std::size_t injected_threads =
      deadlock_rings * static_cast<std::size_t>(n);
  std::atomic<std::size_t> parade_done{0};
  std::atomic<bool> phase2_go{false};
  std::atomic<std::size_t> recovered_done{0};
  /// Wall time the first injected cycle closed (recovery-latency clock).
  std::atomic<util::TimeNs> deadlock_formed_at{0};

  std::atomic<std::size_t> clean_finished{0};
  // Raised before the forks are poisoned: a ring whose rendezvous never
  // completed (e.g. the watchdog timed out first) must abandon the spin
  // wait below instead of spinning forever against ring-mates that
  // unwound with kPoisoned.
  std::atomic<bool> tearing_down{false};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < rings; ++r) {
    const bool inject_deadlock = r < deadlock_rings;
    for (int p = 0; p < n; ++p) {
      threads.emplace_back([&, r, p, inject_deadlock] {
        const trace::Pid pid =
            static_cast<trace::Pid>(r * forks_per_ring) + p;
        if (inject_deadlock) {
          const int left = p;
          const int right = (p + 1) % n;
          std::atomic<int>& held = *left_held[r];

          if (impose) {
            // Phase 1 — parade: serialized, each philosopher briefly holds
            // left+right, so the circular order relation is recorded with
            // no real deadlock possible.  The driver polls check_now at
            // sub-dwell cadence, warns, and imposes before phase 2 starts.
            {
              std::lock_guard<std::mutex> parade(*parade_mu[r]);
              if (fork_at(r, left).acquire(pid) != rt::Status::kOk) return;
              std::this_thread::sleep_for(
                  std::chrono::nanoseconds(kParadeStepNs));
              if (fork_at(r, right).acquire(pid) != rt::Status::kOk) {
                fork_at(r, left).release(pid);
                return;
              }
              std::this_thread::sleep_for(
                  std::chrono::nanoseconds(kParadeDwellNs));
              fork_at(r, right).release(pid);
              fork_at(r, left).release(pid);
            }
            parade_done.fetch_add(1, std::memory_order_acq_rel);
            while (!phase2_go.load(std::memory_order_acquire)) {
              if (tearing_down.load(std::memory_order_acquire)) return;
              std::this_thread::sleep_for(std::chrono::microseconds(200));
            }
            // Phase 2 — the rendezvous crossing that deterministically
            // deadlocks without recovery, now gate-aware: the imposed
            // order re-sorts the acquisition sequence and fenced pids
            // cross exclusively, so the cycle can no longer close.
            std::vector<std::string> crossing = {fork_name(r, left),
                                                 fork_name(r, right)};
            gate.apply_order(crossing);
            sync::Gate::Scope scope(gate, pid);
            if (forks[fork_index.at(crossing[0])]->acquire(pid) !=
                rt::Status::kOk) {
              return;
            }
            held.fetch_add(1, std::memory_order_acq_rel);
            while (held.load(std::memory_order_acquire) < n) {
              // The imposition makes the all-hold rendezvous unreachable;
              // proceeding is exactly what the imposed order licenses.
              if (gate.engaged()) break;
              if (tearing_down.load(std::memory_order_acquire)) return;
              std::this_thread::sleep_for(std::chrono::microseconds(100));
            }
            if (forks[fork_index.at(crossing[1])]->acquire(pid) !=
                rt::Status::kOk) {
              // Poisoned mid-crossing (teardown, or a confirmed-cycle
              // remedy racing the imposition): hand the first fork back
              // so the rest of the ring can still drain.
              forks[fork_index.at(crossing[0])]->release(pid);
              return;
            }
            std::this_thread::sleep_for(
                std::chrono::nanoseconds(options.eat_ns));
            forks[fork_index.at(crossing[1])]->release(pid);
            forks[fork_index.at(crossing[0])]->release(pid);
            recovered_done.fetch_add(1, std::memory_order_acq_rel);
            return;
          }

          if (fork_at(r, left).acquire(pid) != rt::Status::kOk) return;
          if (held.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
            // Last left fork taken: from here every right-fork acquire can
            // only block — the cycle is closed (latency clock starts).
            util::TimeNs expected = 0;
            deadlock_formed_at.compare_exchange_strong(
                expected, wall_now(), std::memory_order_acq_rel);
          }
          while (held.load(std::memory_order_acquire) < n) {
            if (tearing_down.load(std::memory_order_acquire)) return;
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
          if (!recovery_on) {
            // Detection-only: block forever; poison unwinds at teardown.
            (void)fork_at(r, right).acquire(pid);
            return;
          }
          // Recovery liveness path (poison-victim / deliver-fault): a
          // kRecoveryFault eviction hands the left fork back — which lets
          // the ring drain — then retries the full crossing until it
          // succeeds (on a poisoned victim monitor that also exercises
          // unpoison-restores-service).
          bool have_left = true;
          for (;;) {
            if (tearing_down.load(std::memory_order_acquire)) {
              if (have_left) fork_at(r, left).release(pid);
              return;
            }
            if (!have_left) {
              const rt::Status status = fork_at(r, left).acquire(pid);
              if (status == rt::Status::kPoisoned) return;
              if (status != rt::Status::kOk) {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                continue;
              }
              have_left = true;
            }
            const rt::Status status = fork_at(r, right).acquire(pid);
            if (status == rt::Status::kOk) break;
            if (status == rt::Status::kPoisoned) {
              fork_at(r, left).release(pid);
              return;
            }
            fork_at(r, left).release(pid);
            have_left = false;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.eat_ns));
          fork_at(r, right).release(pid);
          fork_at(r, left).release(pid);
          recovered_done.fetch_add(1, std::memory_order_acq_rel);
          return;
        }
        // Clean ring: asymmetric grab order, cannot deadlock.
        int first = p;
        int second = (p + 1) % n;
        if (p == n - 1) std::swap(first, second);
        for (int round = 0; round < options.rounds; ++round) {
          if (fork_at(r, first).acquire(pid) != rt::Status::kOk) return;
          if (fork_at(r, second).acquire(pid) != rt::Status::kOk) return;
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.eat_ns));
          fork_at(r, second).release(pid);
          fork_at(r, first).release(pid);
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.think_ns));
        }
        clean_finished.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }

  // Ring of a WF report: its pid encodes ring * philosophers + seat.
  const auto ring_of = [&](trace::Pid pid) -> std::size_t {
    return static_cast<std::size_t>(pid) / forks_per_ring;
  };
  const auto detected_rings = [&] {
    std::vector<bool> seen(rings, false);
    for (const auto& report : sink.reports()) {
      if (report.rule != core::RuleId::kWfCycleDetected) continue;
      if (report.pid == trace::kNoPid) continue;
      const std::size_t ring = ring_of(report.pid);
      if (ring < rings) seen[ring] = true;
    }
    return seen;
  };

  const std::size_t clean_threads = clean_rings * static_cast<std::size_t>(n);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  const auto expired = [&] {
    return std::chrono::steady_clock::now() >= deadline;
  };
  util::TimeNs first_action_at = 0;
  util::TimeNs impose_baseline = 0;

  if (impose) {
    // Phase-1 observation: poll every injected-ring fork at sub-dwell
    // cadence while the parades run, so each double hold is certainly
    // snapshotted into the order relation.
    while (parade_done.load(std::memory_order_acquire) < injected_threads &&
           !expired()) {
      for (std::size_t i = 0; i < deadlock_rings * forks_per_ring; ++i) {
        fork_monitors[i]->check_now();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    impose_baseline = wall_now();
    // Drive prediction passes until every injected ring has been imposed
    // on; only then may the deterministic crossing start.
    while (pool.orders_imposed() < deadlock_rings && !expired()) {
      pool.run_lockorder_checkpoint();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    if (pool.recovery_actions() > 0) first_action_at = wall_now();
    phase2_go.store(true, std::memory_order_release);
  }

  while (!expired()) {
    if (recovery_on) {
      // Liveness contract: the run is done when everything completed —
      // deterministically deadlocking rings included.
      if (first_action_at == 0 && pool.recovery_actions() > 0) {
        first_action_at = wall_now();
      }
      if (recovered_done.load(std::memory_order_acquire) ==
              injected_threads &&
          clean_finished.load(std::memory_order_relaxed) == clean_threads) {
        break;
      }
    } else {
      const std::vector<bool> seen = detected_rings();
      std::size_t injected_seen = 0;
      for (std::size_t r = 0; r < deadlock_rings; ++r) {
        if (seen[r]) ++injected_seen;
      }
      if (injected_seen == deadlock_rings &&
          clean_finished.load(std::memory_order_relaxed) == clean_threads) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (recovery_on && pool.victims_poisoned() > pool.monitors_unpoisoned()) {
    // Closing pass: fold fresh snapshots and run one more wait-for pass so
    // a sticky poison whose cycle has long dissolved completes (unpoisons)
    // deterministically instead of depending on periodic timing.
    for (std::size_t i = 0; i < deadlock_rings * forks_per_ring; ++i) {
      fork_monitors[i]->check_now();
    }
    pool.run_waitfor_checkpoint();
  }
  tearing_down.store(true, std::memory_order_release);
  phase2_go.store(true, std::memory_order_release);
  for (auto& monitor : fork_monitors) monitor->poison();
  for (auto& thread : threads) thread.join();
  for (auto& monitor : fork_monitors) monitor->stop_checking();

  DiningLoadResult result;
  // Impose-order pre-empts the cycle, so no structural deadlock may close;
  // its success metric is orders_imposed + liveness, not detections.
  result.deadlocks_expected = impose ? 0 : deadlock_rings;
  result.clean_rings_completed =
      clean_finished.load(std::memory_order_relaxed) == clean_threads;
  result.checkpoints_run = pool.waitfor_checkpoints();
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  const std::vector<bool> seen = detected_rings();
  for (std::size_t r = 0; r < rings; ++r) {
    if (!seen[r]) continue;
    if (r < deadlock_rings && !impose) {
      ++result.deadlocked_rings_detected;
    } else {
      // A clean ring named by any cycle — or any closed cycle at all under
      // pre-emption — is a false positive.
      ++result.false_positive_rings;
    }
  }
  result.missed_detections =
      result.deadlocks_expected > result.deadlocked_rings_detected
          ? result.deadlocks_expected - result.deadlocked_rings_detected
          : 0;
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kWfCycleDetected) {
      result.cycles.push_back(report.message);
    }
  }
  result.recovered_rings_completed =
      recovery_on &&
      recovered_done.load(std::memory_order_acquire) == injected_threads;
  result.recovery_actions = pool.recovery_actions();
  result.victims_poisoned = pool.victims_poisoned();
  result.faults_delivered = pool.recovery_faults_delivered();
  result.orders_imposed = pool.orders_imposed();
  result.monitors_unpoisoned = pool.monitors_unpoisoned();
  result.recovery_log = pool.recovery_log();
  if (first_action_at != 0) {
    const util::TimeNs base =
        impose ? impose_baseline
               : deadlock_formed_at.load(std::memory_order_acquire);
    if (base > 0 && first_action_at > base) {
      result.recovery_latency_ns =
          static_cast<std::uint64_t>(first_action_at - base);
    }
  }
  return result;
}

}  // namespace robmon::wl
