#include "workloads/dining.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "workloads/allocator.hpp"

namespace robmon::wl {

DiningResult run_dining(const DiningOptions& options) {
  const int n = options.philosophers;

  core::CollectingSink sink;
  std::vector<std::unique_ptr<rt::RobustMonitor>> fork_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> forks;
  fork_monitors.reserve(static_cast<std::size_t>(n));
  forks.reserve(static_cast<std::size_t>(n));
  for (int f = 0; f < n; ++f) {
    core::MonitorSpec spec =
        core::MonitorSpec::allocator("fork-" + std::to_string(f));
    spec.t_limit = options.t_limit;
    spec.t_max = options.t_max;
    spec.t_io = options.t_io;
    spec.check_period = options.check_period;
    fork_monitors.push_back(
        std::make_unique<rt::RobustMonitor>(spec, sink));
    forks.push_back(
        std::make_unique<ResourceAllocator>(*fork_monitors.back(), 1));
    fork_monitors.back()->start_checking();
  }

  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      const trace::Pid pid = p;
      int first = p;            // left fork
      int second = (p + 1) % n;  // right fork
      if (!options.symmetric_order && p == n - 1) std::swap(first, second);
      for (int round = 0; round < options.rounds; ++round) {
        if (forks[static_cast<std::size_t>(first)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        if (options.grab_gap_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.grab_gap_ns));
        }
        if (forks[static_cast<std::size_t>(second)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.eat_ns));
        forks[static_cast<std::size_t>(second)]->release(pid);
        forks[static_cast<std::size_t>(first)]->release(pid);
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.think_ns));
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Watchdog: wait for completion or the timeout, then poison the forks so
  // that deadlocked philosophers unwind.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  while (finished.load(std::memory_order_relaxed) < n &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const bool completed = finished.load(std::memory_order_relaxed) == n;
  if (!completed) {
    for (auto& monitor : fork_monitors) monitor->poison();
  }
  for (auto& thread : threads) thread.join();
  for (auto& monitor : fork_monitors) {
    monitor->stop_checking();
    if (completed) monitor->check_now();  // final segment on clean runs
  }

  DiningResult result;
  result.completed = completed;
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kSt8cHoldExceedsTlimit ||
        report.rule == core::RuleId::kSt5ResidenceExceedsTmax ||
        report.rule == core::RuleId::kSt6EntryWaitExceedsTio) {
      result.deadlock_reported = true;
    }
  }
  return result;
}

}  // namespace robmon::wl
