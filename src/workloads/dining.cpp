#include "workloads/dining.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "runtime/checker_pool.hpp"
#include "workloads/allocator.hpp"

namespace robmon::wl {

namespace {

bool is_timeout_rule(core::RuleId rule) {
  return rule == core::RuleId::kSt8cHoldExceedsTlimit ||
         rule == core::RuleId::kSt5ResidenceExceedsTmax ||
         rule == core::RuleId::kSt6EntryWaitExceedsTio;
}

core::MonitorSpec fork_spec(const std::string& name, util::TimeNs t_limit,
                            util::TimeNs t_max, util::TimeNs t_io,
                            util::TimeNs check_period) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_limit = t_limit;
  spec.t_max = t_max;
  spec.t_io = t_io;
  spec.check_period = check_period;
  return spec;
}

}  // namespace

DiningResult run_dining(const DiningOptions& options) {
  const int n = options.philosophers;

  core::CollectingSink sink;
  // The pool outlives the monitors (their destructors unregister).
  rt::CheckerPool::Options pool_options;
  pool_options.waitfor_checkpoint_period = options.checkpoint_period;
  pool_options.waitfor_sink = &sink;
  rt::CheckerPool pool(pool_options);

  std::vector<std::unique_ptr<rt::RobustMonitor>> fork_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> forks;
  fork_monitors.reserve(static_cast<std::size_t>(n));
  forks.reserve(static_cast<std::size_t>(n));
  rt::RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  for (int f = 0; f < n; ++f) {
    fork_monitors.push_back(std::make_unique<rt::RobustMonitor>(
        fork_spec("fork-" + std::to_string(f), options.t_limit, options.t_max,
                  options.t_io, options.check_period),
        sink, monitor_options));
    forks.push_back(
        std::make_unique<ResourceAllocator>(*fork_monitors.back(), 1));
    fork_monitors.back()->start_checking();
  }

  std::atomic<int> finished{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < n; ++p) {
    threads.emplace_back([&, p] {
      const trace::Pid pid = p;
      int first = p;            // left fork
      int second = (p + 1) % n;  // right fork
      if (!options.symmetric_order && p == n - 1) std::swap(first, second);
      for (int round = 0; round < options.rounds; ++round) {
        if (forks[static_cast<std::size_t>(first)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        if (options.grab_gap_ns > 0) {
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.grab_gap_ns));
        }
        if (forks[static_cast<std::size_t>(second)]->acquire(pid) !=
            rt::Status::kOk) {
          return;
        }
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.eat_ns));
        forks[static_cast<std::size_t>(second)]->release(pid);
        forks[static_cast<std::size_t>(first)]->release(pid);
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.think_ns));
      }
      finished.fetch_add(1, std::memory_order_relaxed);
    });
  }

  // Watchdog: wait for completion, a confirmed structural deadlock, or the
  // timeout; then poison the forks so that deadlocked philosophers unwind.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  while (finished.load(std::memory_order_relaxed) < n &&
         std::chrono::steady_clock::now() < deadline) {
    if (sink.any_with_rule(core::RuleId::kWfCycleDetected)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const bool completed = finished.load(std::memory_order_relaxed) == n;
  if (!completed) {
    for (auto& monitor : fork_monitors) monitor->poison();
  }
  for (auto& thread : threads) thread.join();
  for (auto& monitor : fork_monitors) {
    monitor->stop_checking();
    if (completed) monitor->check_now();  // final segment on clean runs
  }

  DiningResult result;
  result.completed = completed;
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  for (const auto& report : result.reports) {
    if (is_timeout_rule(report.rule)) result.deadlock_reported = true;
    if (report.rule == core::RuleId::kWfCycleDetected) {
      result.global_deadlock_reported = true;
      result.cycles.push_back(report.message);
    }
  }
  return result;
}

DiningLoadResult run_dining_load(const DiningLoadOptions& options) {
  const std::size_t rings = options.rings;
  const int n = options.philosophers;
  const std::size_t forks_per_ring = static_cast<std::size_t>(n);
  const std::size_t deadlock_rings = std::min(options.deadlock_rings, rings);
  const std::size_t clean_rings = rings - deadlock_rings;

  core::CollectingSink sink;
  rt::CheckerPool::Options pool_options;
  pool_options.threads = options.pool_threads;
  pool_options.waitfor_checkpoint_period = options.checkpoint_period;
  pool_options.waitfor_sink = &sink;
  rt::CheckerPool pool(pool_options);

  std::vector<std::unique_ptr<rt::RobustMonitor>> fork_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> forks;
  fork_monitors.reserve(rings * forks_per_ring);
  forks.reserve(rings * forks_per_ring);
  rt::RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  for (std::size_t r = 0; r < rings; ++r) {
    for (int f = 0; f < n; ++f) {
      fork_monitors.push_back(std::make_unique<rt::RobustMonitor>(
          fork_spec("r" + std::to_string(r) + "-fork" + std::to_string(f),
                    options.t_limit, options.t_max, options.t_io,
                    options.check_period),
          sink, monitor_options));
      forks.push_back(
          std::make_unique<ResourceAllocator>(*fork_monitors.back(), 1));
      fork_monitors.back()->start_checking();
    }
  }
  const auto fork_at = [&](std::size_t ring, int f) -> ResourceAllocator& {
    return *forks[ring * forks_per_ring + static_cast<std::size_t>(f)];
  };

  // Rendezvous counters for the injected hold-and-wait cycles: a ring's
  // philosophers all take their left fork before anyone reaches for the
  // right one, making the circular wait certain, not just likely.
  std::vector<std::unique_ptr<std::atomic<int>>> left_held;
  for (std::size_t r = 0; r < deadlock_rings; ++r) {
    left_held.push_back(std::make_unique<std::atomic<int>>(0));
  }

  std::atomic<std::size_t> clean_finished{0};
  // Raised before the forks are poisoned: a ring whose rendezvous never
  // completed (e.g. the watchdog timed out first) must abandon the spin
  // wait below instead of spinning forever against ring-mates that
  // unwound with kPoisoned.
  std::atomic<bool> tearing_down{false};
  std::vector<std::thread> threads;
  for (std::size_t r = 0; r < rings; ++r) {
    const bool inject_deadlock = r < deadlock_rings;
    for (int p = 0; p < n; ++p) {
      threads.emplace_back([&, r, p, inject_deadlock] {
        const trace::Pid pid =
            static_cast<trace::Pid>(r * forks_per_ring) + p;
        if (inject_deadlock) {
          const int left = p;
          const int right = (p + 1) % n;
          if (fork_at(r, left).acquire(pid) != rt::Status::kOk) return;
          std::atomic<int>& held = *left_held[r];
          held.fetch_add(1, std::memory_order_acq_rel);
          while (held.load(std::memory_order_acquire) < n) {
            if (tearing_down.load(std::memory_order_acquire)) return;
            std::this_thread::sleep_for(std::chrono::microseconds(100));
          }
          // Every left fork is taken: this acquire can only block, closing
          // the ring-wide circular wait.  Poison unwinds it at teardown.
          (void)fork_at(r, right).acquire(pid);
          return;
        }
        // Clean ring: asymmetric grab order, cannot deadlock.
        int first = p;
        int second = (p + 1) % n;
        if (p == n - 1) std::swap(first, second);
        for (int round = 0; round < options.rounds; ++round) {
          if (fork_at(r, first).acquire(pid) != rt::Status::kOk) return;
          if (fork_at(r, second).acquire(pid) != rt::Status::kOk) return;
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.eat_ns));
          fork_at(r, second).release(pid);
          fork_at(r, first).release(pid);
          std::this_thread::sleep_for(
              std::chrono::nanoseconds(options.think_ns));
        }
        clean_finished.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }

  // Ring of a WF report: its pid encodes ring * philosophers + seat.
  const auto ring_of = [&](trace::Pid pid) -> std::size_t {
    return static_cast<std::size_t>(pid) / forks_per_ring;
  };
  const auto detected_rings = [&] {
    std::vector<bool> seen(rings, false);
    for (const auto& report : sink.reports()) {
      if (report.rule != core::RuleId::kWfCycleDetected) continue;
      if (report.pid == trace::kNoPid) continue;
      const std::size_t ring = ring_of(report.pid);
      if (ring < rings) seen[ring] = true;
    }
    return seen;
  };

  const std::size_t clean_threads = clean_rings * static_cast<std::size_t>(n);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::vector<bool> seen = detected_rings();
    std::size_t injected_seen = 0;
    for (std::size_t r = 0; r < deadlock_rings; ++r) {
      if (seen[r]) ++injected_seen;
    }
    if (injected_seen == deadlock_rings &&
        clean_finished.load(std::memory_order_relaxed) == clean_threads) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  tearing_down.store(true, std::memory_order_release);
  for (auto& monitor : fork_monitors) monitor->poison();
  for (auto& thread : threads) thread.join();
  for (auto& monitor : fork_monitors) monitor->stop_checking();

  DiningLoadResult result;
  result.deadlocks_expected = deadlock_rings;
  result.clean_rings_completed =
      clean_finished.load(std::memory_order_relaxed) == clean_threads;
  result.checkpoints_run = pool.waitfor_checkpoints();
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  const std::vector<bool> seen = detected_rings();
  for (std::size_t r = 0; r < rings; ++r) {
    if (!seen[r]) continue;
    if (r < deadlock_rings) {
      ++result.deadlocked_rings_detected;
    } else {
      ++result.false_positive_rings;
    }
  }
  result.missed_detections =
      result.deadlocks_expected - result.deadlocked_rings_detected;
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kWfCycleDetected) {
      result.cycles.push_back(report.message);
    }
  }
  return result;
}

}  // namespace robmon::wl
