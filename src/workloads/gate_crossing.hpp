// Gate-crossing workload — the canonical lock-order-prediction scenario: a
// latent deadlock that never fires.
//
// M one-unit allocator monitors ("lanes") are acquired by N threads in
// *rotated* orders (thread t starts at lane t % M), so the pairwise
// acquisition orders are inconsistent — the classic recipe for a circular
// wait.  But the entire acquire-all / dwell / release-all region runs under
// a process-wide gate (a plain mutex, invisible to the monitors), so at
// most one thread ever holds any lane: the real cycle can never close, no
// thread ever blocks on a lane, and the wait-for checkpoint must stay
// silent.  The lock-order prediction checkpoint, fed the per-lane hold
// snapshots, must still flag the order cycle as kPotentialDeadlock — this
// workload exists to prove the "warns before the fault exists" contract and
// to pin its false-positive sibling: with consistent_order set, every
// thread takes the lanes in the same global order and NO warning of any
// kind may appear.
//
// Observation is made deterministic rather than probabilistic: while the
// worker threads run, the driver polls a synchronous check of every lane
// monitor at sub-dwell cadence, so each multi-lane hold is certainly
// snapshotted; a final prediction pass then closes the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/lockorder.hpp"
#include "trace/codec.hpp"
#include "util/clock.hpp"

namespace robmon::wl {

struct GateCrossingOptions {
  std::size_t lanes = 3;   ///< M one-unit allocator monitors.
  int threads = 3;         ///< N gate-crossing threads.
  int rounds = 4;          ///< Crossings per thread.
  /// Control: all threads acquire lanes in the same global order; the run
  /// must complete with zero warnings (prediction false-positive guard).
  bool consistent_order = false;
  /// Pause after each lane acquisition (staggers the hold starts so the
  /// hold-hold joins have distinct, ordered acquisition times).
  util::TimeNs step_ns = 500'000;  // 0.5 ms
  /// Full-hold window once every lane is taken; the driver's observation
  /// polling runs several times per dwell.
  util::TimeNs dwell_ns = 4 * util::kMillisecond;
  util::TimeNs think_ns = 200'000;  // 0.2 ms between rounds
  /// Generous per-monitor timers: no ST-5/6/8c timeout verdicts here.
  util::TimeNs t_limit = 30 * util::kSecond;
  util::TimeNs t_max = 30 * util::kSecond;
  util::TimeNs t_io = 30 * util::kSecond;
  util::TimeNs check_period = 2 * util::kMillisecond;
  /// Pool-level checkpoint cadences (both run; the wait-for side proves
  /// the zero-global-deadlock half of the contract).
  util::TimeNs lockorder_checkpoint_period = 5 * util::kMillisecond;
  util::TimeNs waitfor_checkpoint_period = 5 * util::kMillisecond;
  std::size_t pool_threads = 0;  ///< K for the shared pool; 0 = auto.
  util::TimeNs run_timeout = 30 * util::kSecond;
  /// Attach an impose-order RecoveryPolicy + sync::Gate to the pool and
  /// make the crossings gate-aware (imposed order applied, crossings
  /// scoped).  Rotated orders must then draw exactly one imposition per
  /// predicted cycle; the consistent_order control must show ZERO recovery
  /// actions — the recovery engine's false-positive guard.
  bool recovery = false;
};

struct GateCrossingResult {
  bool completed = false;  ///< Every thread finished every round.
  /// kLockOrderCycle warnings (>= 1 expected with inconsistent orders,
  /// exactly 0 with consistent_order).
  std::size_t potential_deadlocks = 0;
  /// kWfCycleDetected reports (must be 0: the gate prevents every real
  /// cycle, so any report is a false positive).
  std::size_t global_deadlocks = 0;
  std::vector<std::string> cycles;  ///< Warning messages.
  std::uint64_t lockorder_checkpoints = 0;
  std::size_t order_edges = 0;  ///< Distinct (from, to) pairs recorded.
  std::vector<core::OrderEdge> edges;  ///< The relation (trace export).
  std::size_t fault_reports = 0;
  std::vector<core::FaultReport> reports;

  // --- Recovery accounting (all zero unless options.recovery). --------------
  std::uint64_t recovery_actions = 0;
  std::uint64_t orders_imposed = 0;
  /// The imposed acquisition order, when any (diagnostics).
  std::vector<std::string> imposed_order;
  /// The pool's codec v4 `rcov` records (attached to --trace exports).
  std::vector<trace::RecoveryRecord> recovery_log;
};

GateCrossingResult run_gate_crossing(const GateCrossingOptions& options);

}  // namespace robmon::wl
