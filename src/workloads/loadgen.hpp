// Closed-loop load drivers for the three monitor types, used by the Table-1
// overhead benchmark and by the soak/property tests.  Each driver builds a
// RobustMonitor with the requested instrumentation/checking configuration,
// runs a fixed number of operations across worker threads, and reports
// throughput plus the detector's counters.
#pragma once

#include <cstdint>
#include <string>

#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

struct LoadOptions {
  core::MonitorType type = core::MonitorType::kCommunicationCoordinator;
  int workers = 4;           ///< Total worker threads (split 50/50 where
                             ///  the workload has two roles).
  std::int64_t ops_per_worker = 2000;
  std::size_t capacity = 8;  ///< Buffer slots / allocator units.
  util::TimeNs work_ns = 0;  ///< Simulated work outside the monitor.

  /// Monitor construction knobs.
  rt::Instrumentation instrumentation = rt::Instrumentation::kFull;
  bool periodic_checking = true;      ///< Start the checker thread.
  util::TimeNs check_period = 100 * util::kMillisecond;
  bool hold_gate_during_check = true;
  util::TimeNs t_max = 5 * util::kSecond;   ///< Generous: no false timeouts
  util::TimeNs t_io = 5 * util::kSecond;    ///  under heavy load.
  util::TimeNs t_limit = 5 * util::kSecond;
};

struct LoadResult {
  std::uint64_t operations = 0;   ///< Completed monitor procedure calls.
  double seconds = 0.0;           ///< Wall-clock for the measured region.
  double ops_per_second = 0.0;
  std::uint64_t checks_run = 0;
  std::uint64_t events_recorded = 0;
  std::size_t faults_reported = 0;  ///< Should be 0 on fault-free runs.
};

/// Run the closed-loop workload described by `options`.
LoadResult run_load(const LoadOptions& options);

}  // namespace robmon::wl
