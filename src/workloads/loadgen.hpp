// Closed-loop load drivers for the three monitor types, used by the Table-1
// overhead benchmark and by the soak/property tests.  Each driver builds a
// RobustMonitor with the requested instrumentation/checking configuration,
// runs a fixed number of operations across worker threads, and reports
// throughput plus the detector's counters.
#pragma once

#include <cstdint>
#include <string>

#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

struct LoadOptions {
  core::MonitorType type = core::MonitorType::kCommunicationCoordinator;
  int workers = 4;           ///< Total worker threads (split 50/50 where
                             ///  the workload has two roles).
  std::int64_t ops_per_worker = 2000;
  std::size_t capacity = 8;  ///< Buffer slots / allocator units.
  util::TimeNs work_ns = 0;  ///< Simulated work outside the monitor.

  /// Monitor construction knobs.
  rt::Instrumentation instrumentation = rt::Instrumentation::kFull;
  bool periodic_checking = true;      ///< Start the checker thread.
  util::TimeNs check_period = 100 * util::kMillisecond;
  bool hold_gate_during_check = true;
  util::TimeNs t_max = 5 * util::kSecond;   ///< Generous: no false timeouts
  util::TimeNs t_io = 5 * util::kSecond;    ///  under heavy load.
  util::TimeNs t_limit = 5 * util::kSecond;
};

struct LoadResult {
  std::uint64_t operations = 0;   ///< Completed monitor procedure calls.
  double seconds = 0.0;           ///< Wall-clock for the measured region.
  double ops_per_second = 0.0;
  std::uint64_t checks_run = 0;
  std::uint64_t events_recorded = 0;
  std::size_t faults_reported = 0;  ///< Should be 0 on fault-free runs.
};

/// Run the closed-loop workload described by `options`.
LoadResult run_load(const LoadOptions& options);

// --- Multi-monitor scenario (CheckerPool scaling). ---------------------------

/// How the detection runtime is provisioned for a multi-monitor run.
enum class CheckerMode {
  kThreadPerMonitor,  ///< One single-thread engine per monitor (old design).
  kSharedPool,        ///< One CheckerPool with K workers for all monitors.
};

struct MultiLoadOptions {
  std::size_t monitors = 8;       ///< M; alternating coordinator/allocator.
  int threads_per_monitor = 2;    ///< T client threads driving each monitor.
  std::int64_t ops_per_thread = 200;
  std::size_t capacity = 8;       ///< Buffer slots / allocator units.
  /// The first `faulty_monitors` monitors get one deterministic injected
  /// fault: a fabricated receive on coordinators (II.c), a release-before-
  /// acquire client on allocators (III.a).  Detection is counted per
  /// monitor; a correct engine misses none.
  std::size_t faulty_monitors = 0;

  CheckerMode mode = CheckerMode::kSharedPool;
  std::size_t pool_threads = 0;   ///< K for kSharedPool; 0 = auto (≤ hw).
  util::TimeNs check_period = 5 * util::kMillisecond;
  /// Per-monitor suspend policy; monitors where (index % 2 == 1) get the
  /// opposite policy when mix_gate_policies is set, exercising coexistence.
  bool hold_gate_during_check = true;
  bool mix_gate_policies = false;

  /// Engine dispatch knobs (rt::CheckerPool::Options passthrough).
  /// max_batch = 1 reproduces the per-item engine — the bench baseline;
  /// 0 = unbounded batches.
  std::size_t max_batch = 0;
  util::TimeNs batch_window = -1;  ///< -1 = auto (one period quantum).
  /// Adaptive cadence ceiling per monitor (1.0 = fixed cadence).
  double max_stretch = 1.0;
  /// Lock-order prediction checkpoint cadence (0 = prediction off).  Every
  /// client here touches exactly one monitor, so a correct predictor
  /// records no cross-monitor edges and zero kPotentialDeadlock warnings —
  /// the bench "predict" shape measures the pure per-check fold overhead
  /// and gates on that zero.
  util::TimeNs lockorder_checkpoint_period = 0;
};

struct MultiLoadResult {
  std::uint64_t operations = 0;       ///< Completed monitor procedure calls.
  double seconds = 0.0;
  double ops_per_second = 0.0;
  std::uint64_t checks_run = 0;       ///< Periodic + final, all monitors.
  double checks_per_second = 0.0;
  std::uint64_t events_recorded = 0;
  /// Events dropped under the EventLog overflow contract, summed over all
  /// monitors (CheckerPool::events_lost).  Must be 0 when the drain
  /// cadence keeps up — the bench gates on it.
  std::uint64_t events_lost = 0;
  std::size_t checker_threads = 0;    ///< Detection threads provisioned.
  double avg_quiesce_us = 0.0;        ///< Gate-exclusive window per check.
  double avg_check_us = 0.0;          ///< Full checking routine per check.
  std::uint64_t dispatches = 0;       ///< Engine dispatches (batches).
  double avg_batch = 0.0;             ///< Checks per dispatch.
  double dispatches_per_1k_checks = 0.0;  ///< Wake-up cost per 1k checks.
  std::uint64_t checks_coalesced = 0; ///< Missed deadlines absorbed.
  std::uint64_t idle_checks = 0;      ///< Checks that drained nothing.
  std::size_t faults_expected = 0;    ///< == faulty_monitors.
  std::size_t faulty_detected = 0;    ///< Faulty monitors with ≥1 report.
  std::size_t missed_detections = 0;  ///< Faulty monitors with no report.
  std::size_t false_positive_monitors = 0;  ///< Clean monitors with reports.
  std::uint64_t lockorder_checkpoints = 0;  ///< Prediction passes run.
  std::size_t lockorder_edges = 0;          ///< Order edges recorded.
  /// kPotentialDeadlock warnings — a false positive here (must be 0: no
  /// client spans monitors).
  std::size_t potential_deadlocks = 0;
};

/// Drive M monitors concurrently and account detection per monitor.
MultiLoadResult run_multi_load(const MultiLoadOptions& options);

// --- Overhead-budget spike scenario (bench/check_overhead `budget`). --------

/// Closed-loop three-phase scenario for the pool's overhead budget: a calm
/// baseline, a 10× load spike (per-thread op delay divided by
/// spike_multiplier), and a calm post-spike phase.  The budget controller
/// must degrade under the spike (in shed order: stretch, then prediction,
/// then widen — never detection), keep measured detection spend near the
/// budget, and recover to nominal when load subsides.  Detection liveness
/// is asserted with deterministic injected faults: a fabricated receive on
/// faulty coordinators before the run (caught by Algorithm 2 at a periodic
/// check) and a release-before-acquire client on faulty allocators at spike
/// onset (caught by the real-time calling-order phase even while periods
/// are widened) — a correct engine misses none at any degradation level.
struct BudgetSpikeOptions {
  std::size_t monitors = 8;       ///< Alternating coordinator/allocator.
  int threads_per_monitor = 2;
  std::size_t capacity = 8;
  util::TimeNs check_period = 2 * util::kMillisecond;
  double max_stretch = 8.0;       ///< Idle-cadence ceiling (baseline phases).
  /// Controller config, calibrated so the three phases land on different
  /// sides of the thresholds: the calm baseline's spend sits clearly below
  /// the budget, the uncontrolled spike's clearly above it, and the
  /// recovery threshold (fraction × recover_margin) falls between the
  /// subsided-load spend and the degraded spike spend.  Under a sustained
  /// spike the controller may hunt between kShedPrediction and kWiden —
  /// that is the intended closed-loop behaviour (it seeks the least
  /// degradation that fits the budget), and the shed order holds through
  /// every step.
  rt::BudgetOptions budget = {.fraction = 0.0035,
                              .ewma_alpha = 0.3,
                              .recover_margin = 0.8,
                              .decision_window = 50 * util::kMillisecond,
                              .stretch_boost = 4.0,
                              .widen_factor = 8.0};
  util::TimeNs baseline_ns = 700 * util::kMillisecond;
  util::TimeNs spike_ns = 1500 * util::kMillisecond;
  util::TimeNs post_ns = 1200 * util::kMillisecond;
  /// Per-thread pause between operation pairs at baseline load; the spike
  /// divides it by spike_multiplier.
  util::TimeNs base_op_delay = 60 * util::kMillisecond;
  int spike_multiplier = 10;
  /// Per-thread pause in the post-spike phase.  Deliberately gentler than
  /// the baseline (0 = 4 × base_op_delay): the phase exists to prove the
  /// controller retraces the ladder when load *subsides*, so the subsided
  /// load sits well clear of the recovery threshold rather than at the
  /// baseline's edge of it.
  util::TimeNs post_op_delay = 0;
  /// Leading fraction of the spike and post phases treated as controller
  /// settling time; spend is measured over the remainder, i.e. the
  /// controller's steady state, not its reaction transient.
  double settle_fraction = 0.5;
  /// Half inline / half offloaded instrumentation is fixed by the scenario
  /// (monitors alternate in pairs), exercising the under-pressure flip.
  std::size_t faulty_monitors = 2;
  util::TimeNs waitfor_checkpoint_period = 20 * util::kMillisecond;
  util::TimeNs lockorder_checkpoint_period = 20 * util::kMillisecond;
};

struct BudgetSpikeResult {
  double budget_fraction = 0.0;   ///< Configured budget (copy).
  /// Detection spend (pool checking wall time / elapsed wall time) per
  /// phase; spike and post are measured after their settling window.
  double baseline_spend = 0.0;
  double spike_spend = 0.0;
  double post_spend = 0.0;
  int max_level = 0;              ///< Deepest ladder level reached.
  int final_level = 0;            ///< Level when the run ended.
  std::uint64_t transitions = 0;
  std::uint64_t prediction_sheds = 0;   ///< Shed prediction passes.
  std::uint64_t inline_checks = 0;      ///< In-path checks executed.
  std::uint64_t inline_flips = 0;       ///< Budget-driven offload flips.
  /// Every logged transition is a ±1 ladder step and chains from the
  /// previous level — the structural proof that prediction was shed before
  /// detection was widened and that recovery retraced the same ladder.
  bool shed_order_ok = true;
  bool recovered = false;         ///< final_level back at nominal.
  /// Wait-for checkpoint passes during the spike's measured window —
  /// confirmed-cycle detection must keep running at every level (> 0).
  std::uint64_t waitfor_passes_during_spike = 0;
  std::size_t faults_expected = 0;
  std::size_t faulty_detected = 0;
  std::size_t missed_detections = 0;
  std::size_t false_positive_monitors = 0;
  std::uint64_t operations = 0;
  std::uint64_t events_lost = 0;
  double seconds = 0.0;
  std::vector<trace::BudgetRecord> budget_log;
};

/// Run the spike scenario.  Throws std::invalid_argument when
/// options.budget.fraction <= 0.
BudgetSpikeResult run_budget_spike(const BudgetSpikeOptions& options);

}  // namespace robmon::wl
