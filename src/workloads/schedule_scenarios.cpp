#include "workloads/schedule_scenarios.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace robmon::wl {

const char* to_string(ScheduleScenario scenario) {
  switch (scenario) {
    case ScheduleScenario::kRecoveryFull:
      return "recovery-full";
    case ScheduleScenario::kDeliverToVictim:
      return "deliver-to-victim";
    case ScheduleScenario::kPoisonDuringWait:
      return "poison-during-wait";
    case ScheduleScenario::kUnpoisonRacesNewBlocker:
      return "unpoison-races-new-blocker";
    case ScheduleScenario::kRemovePoisonedMonitor:
      return "remove-poisoned-monitor";
    case ScheduleScenario::kGateImpositionRacesCrossing:
      return "gate-imposition-races-crossing";
  }
  return "unknown";
}

ScheduleScenario scenario_from_name(const std::string& name) {
  for (const ScheduleScenario scenario : kAllScheduleScenarios) {
    if (name == to_string(scenario)) return scenario;
  }
  throw std::invalid_argument("unknown schedule scenario: " + name);
}

std::string ScenarioResult::scorecard() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "wf=%llu lo=%llu act=%llu poison=%llu deliver=%llu "
                "unpoison=%llu impose=%llu fenced=%llu rf=%d reports=%llu",
                static_cast<unsigned long long>(deadlocks_reported),
                static_cast<unsigned long long>(potential_deadlocks),
                static_cast<unsigned long long>(recovery_actions),
                static_cast<unsigned long long>(victims_poisoned),
                static_cast<unsigned long long>(faults_delivered),
                static_cast<unsigned long long>(monitors_unpoisoned),
                static_cast<unsigned long long>(orders_imposed),
                static_cast<unsigned long long>(fenced_crossings),
                recovery_faults,
                static_cast<unsigned long long>(reports_total));
  return buffer;
}

}  // namespace robmon::wl

#if !defined(ROBMON_SYNC_BACKEND_SIM)

namespace robmon::wl {

ScenarioResult run_schedule_scenario(ScheduleScenario, std::uint64_t) {
  throw std::logic_error(
      "run_schedule_scenario requires the SimBackend build "
      "(link robmon_sim / compile with ROBMON_SYNC_BACKEND_SIM)");
}

}  // namespace robmon::wl

#else  // ROBMON_SYNC_BACKEND_SIM

#include <memory>
#include <optional>
#include <vector>

#include "core/recovery.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "sync/backend.hpp"
#include "sync/gate.hpp"
#include "sync/sim_backend.hpp"
#include "trace/codec.hpp"
#include "workloads/allocator.hpp"

namespace robmon::wl {
namespace {

using core::RuleId;
using rt::CheckerPool;
using rt::RobustMonitor;
using sync::SimScheduler;
using util::kMillisecond;
using util::kSecond;
using util::TimeNs;

constexpr TimeNs kMicrosecond = 1'000;

core::MonitorSpec alloc_spec(const std::string& name) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  // Timer rules far out of the way: these scenarios exercise the wait-for /
  // lock-order / recovery paths, not Tio/Tmax/Tlimit.
  spec.t_limit = 30 * kSecond;
  spec.t_max = 30 * kSecond;
  spec.t_io = 30 * kSecond;
  spec.check_period = kMillisecond;
  return spec;
}

RobustMonitor::Options pool_options(CheckerPool& pool) {
  RobustMonitor::Options options;
  options.checker_pool = &pool;
  options.retain_trace = true;
  return options;
}

/// Scenario-side invariant recorder: the first violated expectation is
/// captured (with the scenario still running to completion where possible)
/// so the explorer can print seed + replay command instead of aborting.
struct Recorder {
  ScenarioResult& result;

  void fail(const std::string& message) {
    if (result.failure.empty()) result.failure = message;
  }
  void expect(bool condition, const std::string& message) {
    if (!condition) fail(message);
  }
  void expect_eq(std::uint64_t got, std::uint64_t want,
                 const std::string& what) {
    if (got != want) {
      fail(what + ": got " + std::to_string(got) + ", want " +
           std::to_string(want));
    }
  }
};

void vsleep(TimeNs delta) { sync::backend_sleep_for(delta); }

/// Bounded virtual-time poll; the scheduler jumps the clock when everyone
/// is parked, so this always makes progress.
template <typename Predicate>
bool poll_until(Predicate pred, int tries = 2000,
                TimeNs step = 200 * kMicrosecond) {
  for (int i = 0; i < tries; ++i) {
    if (pred()) return true;
    vsleep(step);
  }
  return false;
}

/// Fold the pool/gate/sink state into the scorecard; append every
/// retain_trace monitor's v6 trace in the given (fixed) order.
void collect(ScenarioResult& result, const CheckerPool* pool,
             const sync::Gate* gate, const core::CollectingSink& sink,
             const std::vector<const RobustMonitor*>& monitors) {
  if (pool != nullptr) {
    result.deadlocks_reported = pool->deadlocks_reported();
    result.potential_deadlocks = pool->potential_deadlocks_reported();
    result.recovery_actions = pool->recovery_actions();
    result.victims_poisoned = pool->victims_poisoned();
    result.faults_delivered = pool->recovery_faults_delivered();
    result.monitors_unpoisoned = pool->monitors_unpoisoned();
    result.orders_imposed = pool->orders_imposed();
  }
  if (gate != nullptr) {
    result.fenced_crossings = gate->fenced_crossings();
  }
  for (const auto& report : sink.reports()) {
    result.report_log.append(core::to_string(report.rule));
    result.report_log.append(" ");
    result.report_log.append(report.message);
    result.report_log.append("\n");
    ++result.reports_total;
  }
  for (const RobustMonitor* monitor : monitors) {
    result.trace += trace::write_trace_string(monitor->export_trace());
  }
}

/// Reports outside {WF verdict, LO warning, RC action} are recovery-induced
/// false positives — the bug class the suspension/re-baseline plumbing
/// exists to prevent.
void expect_only_recovery_reports(Recorder& rec,
                                  const core::CollectingSink& sink) {
  for (const auto& report : sink.reports()) {
    rec.expect(report.rule == RuleId::kWfCycleDetected ||
                   report.rule == RuleId::kLockOrderCycle ||
                   report.rule == RuleId::kRecoveryAction,
               "unexpected report: " +
                   std::string(core::to_string(report.rule)) + " " +
                   report.message);
  }
}

// --- Deadlocking client pair (shared by the confirmed-cycle scenarios). ------
//
// A takes f0 then f1, B takes f1 then f0; the stagger sleeps guarantee both
// first acquisitions land before either second one, so the cycle always
// closes and the pool's periodic wait-for checkpoint must break it.  The
// evicted client releases its other hold so the survivor can finish —
// full liveness, no teardown poison.
struct DeadlockPair {
  ResourceAllocator& f0;
  ResourceAllocator& f1;
  int* recovery_faults;

  void run_a() const {
    if (f0.acquire(1) != rt::Status::kOk) return;
    vsleep(200 * kMicrosecond);
    const rt::Status status = f1.acquire(1);
    if (status == rt::Status::kRecoveryFault) {
      ++*recovery_faults;
      f0.release(1);
    } else if (status == rt::Status::kOk) {
      f1.release(1);
      f0.release(1);
    }
  }
  void run_b() const {
    if (f1.acquire(2) != rt::Status::kOk) return;
    vsleep(200 * kMicrosecond);
    const rt::Status status = f0.acquire(2);
    if (status == rt::Status::kRecoveryFault) {
      ++*recovery_faults;
      f1.release(2);
    } else if (status == rt::Status::kOk) {
      f0.release(2);
      f1.release(2);
    }
  }
};

// --- Scenario bodies (each runs inside the scenario-main fiber). -------------

void run_recovery_full(SimScheduler& sched, Recorder& rec,
                       ScenarioResult& result) {
  core::CollectingSink sink;
  core::RecoveryPolicy policy([] {
    core::RecoveryPolicy::Options options;
    options.confirmed_remedy = core::RecoveryRemedy::kPoisonVictim;
    return options;
  }());
  sync::Gate gate;
  CheckerPool pool([&] {
    CheckerPool::Options options;
    options.waitfor_checkpoint_period = kMillisecond;
    options.waitfor_sink = &sink;
    options.lockorder_checkpoint_period = kMillisecond;
    options.lockorder_sink = &sink;
    options.recovery.policy = &policy;
    options.recovery.gate = &gate;
    return options;
  }());
  // The deadlocking pair must not feed the order relation: its inconsistent
  // holds would draw a second order cycle and a second imposition, coupling
  // the two halves of the scenario.
  RobustMonitor::Options confirmed_options = pool_options(pool);
  confirmed_options.contribute_lock_order = false;
  RobustMonitor m0(alloc_spec("f0"), sink, confirmed_options);
  RobustMonitor m1(alloc_spec("f1"), sink, confirmed_options);
  RobustMonitor m2(alloc_spec("g0"), sink, pool_options(pool));
  RobustMonitor m3(alloc_spec("g1"), sink, pool_options(pool));
  ResourceAllocator f0(m0, 1), f1(m1, 1), g0(m2, 1), g1(m3, 1);
  m0.start_checking();
  m1.start_checking();
  m2.start_checking();
  m3.start_checking();

  // Confirmed-cycle half: the deadlocking pair, broken by victim poison.
  int recovery_faults = 0;
  DeadlockPair pair{f0, f1, &recovery_faults};
  const int fiber_a = sched.spawn([&] { pair.run_a(); }, "client-a");
  const int fiber_b = sched.spawn([&] { pair.run_b(); }, "client-b");

  // Predicted-cycle half: C crosses g0→g1 twice, then (strictly after C —
  // a real overlap would close a second confirmed cycle) D crosses g1→g0
  // once.  Holds span multiple check periods so periodic snapshots witness
  // both orders; the lock-order checkpoint must impose the dominant order
  // and fence the minority witness (pid 4) — pre-emption, no deadlock ever.
  const int fiber_c = sched.spawn(
      [&] {
        for (int round = 0; round < 2; ++round) {
          if (g0.acquire(3) != rt::Status::kOk) return;
          vsleep(500 * kMicrosecond);
          if (g1.acquire(3) != rt::Status::kOk) return;
          vsleep(2 * kMillisecond);
          g1.release(3);
          g0.release(3);
          vsleep(kMillisecond);
        }
      },
      "client-c");
  sched.join_fiber(fiber_c);
  const int fiber_d = sched.spawn(
      [&] {
        if (g1.acquire(4) != rt::Status::kOk) return;
        vsleep(500 * kMicrosecond);
        if (g0.acquire(4) != rt::Status::kOk) return;
        vsleep(2 * kMillisecond);
        g0.release(4);
        g1.release(4);
      },
      "client-d");
  sched.join_fiber(fiber_d);
  sched.join_fiber(fiber_a);
  sched.join_fiber(fiber_b);

  rec.expect(poll_until([&] { return pool.orders_imposed() >= 1; }),
             "lock-order imposition never fired");
  // The fenced witness crosses once more: the crossing must run under the
  // exclusive protocol.
  const int fiber_e = sched.spawn(
      [&] {
        sync::Gate::Scope scope(gate, 4);
        vsleep(100 * kMicrosecond);
      },
      "client-d-fenced");
  sched.join_fiber(fiber_e);

  // The cycle dissolved when the clients unwound; the next wait-for
  // checkpoint completes the recovery by clearing the sticky poison.
  rec.expect(poll_until([&] {
               return pool.monitors_unpoisoned() >= 1 &&
                      !m0.recovery_poisoned() && !m1.recovery_poisoned();
             }),
             "victim monitor never unpoisoned");
  m0.stop_checking();
  m1.stop_checking();
  m2.stop_checking();
  m3.stop_checking();

  result.recovery_faults = recovery_faults;
  collect(result, &pool, &gate, sink, {&m0, &m1, &m2, &m3});
  rec.expect_eq(result.recovery_faults, 1, "recovery faults seen");
  rec.expect_eq(pool.deadlocks_reported(), 1, "confirmed cycles");
  rec.expect_eq(pool.victims_poisoned(), 1, "victims poisoned");
  rec.expect_eq(pool.recovery_faults_delivered(), 0, "faults delivered");
  rec.expect_eq(pool.monitors_unpoisoned(), 1, "monitors unpoisoned");
  rec.expect_eq(pool.orders_imposed(), 1, "orders imposed");
  rec.expect_eq(pool.recovery_actions(), 2, "recovery actions");
  rec.expect_eq(pool.potential_deadlocks_reported(), 1, "order cycles");
  rec.expect(gate.engaged(), "gate not engaged after imposition");
  rec.expect_eq(gate.fenced_crossings(), 1, "fenced crossings");
  rec.expect(m0.recovery_poisoned() == false && m1.recovery_poisoned() == false,
             "poison still sticky after dissolution");
  expect_only_recovery_reports(rec, sink);
}

void run_deliver_to_victim(SimScheduler& sched, Recorder& rec,
                           ScenarioResult& result) {
  core::CollectingSink sink;
  core::RecoveryPolicy policy([] {
    core::RecoveryPolicy::Options options;
    options.confirmed_remedy = core::RecoveryRemedy::kDeliverFault;
    return options;
  }());
  CheckerPool pool([&] {
    CheckerPool::Options options;
    options.waitfor_checkpoint_period = kMillisecond;
    options.waitfor_sink = &sink;
    options.recovery.policy = &policy;
    return options;
  }());
  RobustMonitor m0(alloc_spec("f0"), sink, pool_options(pool));
  RobustMonitor m1(alloc_spec("f1"), sink, pool_options(pool));
  ResourceAllocator f0(m0, 1), f1(m1, 1);
  m0.start_checking();
  m1.start_checking();

  int recovery_faults = 0;
  DeadlockPair pair{f0, f1, &recovery_faults};
  const int fiber_a = sched.spawn([&] { pair.run_a(); }, "client-a");
  const int fiber_b = sched.spawn([&] { pair.run_b(); }, "client-b");
  sched.join_fiber(fiber_a);
  sched.join_fiber(fiber_b);
  m0.stop_checking();
  m1.stop_checking();

  result.recovery_faults = recovery_faults;
  collect(result, &pool, nullptr, sink, {&m0, &m1});
  rec.expect_eq(result.recovery_faults, 1, "recovery faults seen");
  rec.expect_eq(pool.deadlocks_reported(), 1, "confirmed cycles");
  rec.expect_eq(pool.recovery_faults_delivered(), 1, "faults delivered");
  rec.expect_eq(pool.victims_poisoned(), 0, "victims poisoned");
  rec.expect_eq(pool.recovery_actions(), 1, "recovery actions");
  rec.expect(!m0.recovery_poisoned() && !m1.recovery_poisoned(),
             "delivery must not poison");
  expect_only_recovery_reports(rec, sink);
}

void run_poison_during_wait(SimScheduler& sched, Recorder& rec,
                            ScenarioResult& result) {
  core::CollectingSink sink;
  RobustMonitor::Options options;
  options.retain_trace = true;
  RobustMonitor monitor(alloc_spec("r"), sink, options);
  ResourceAllocator allocator(monitor, 1);

  constexpr int kWaiters = 3;
  int recovery_faults = 0;
  int completed = 0;
  std::vector<int> waiter_fibers;
  // Scenario-main owns the only unit BEFORE any waiter runs, so every
  // waiter parks on condition "available"; the poison lands mid-wait.
  if (allocator.acquire(9) != rt::Status::kOk) {
    rec.fail("holder could not take the unit");
    return;
  }
  for (int i = 0; i < kWaiters; ++i) {
    waiter_fibers.push_back(sched.spawn(
        [&, pid = trace::Pid(i + 1)] {
          for (;;) {
            const rt::Status status = allocator.acquire(pid);
            if (status == rt::Status::kOk) {
              vsleep(50 * kMicrosecond);
              allocator.release(pid);
              ++completed;
              return;
            }
            if (status == rt::Status::kRecoveryFault) ++recovery_faults;
            vsleep(200 * kMicrosecond);
          }
        },
        "waiter-" + std::to_string(i + 1)));
  }
  if (!poll_until(
          [&] { return monitor.snapshot().blocked_count() >= kWaiters; })) {
    rec.fail("waiters never parked");
  }
  monitor.recovery_poison();
  vsleep(500 * kMicrosecond);
  monitor.unpoison();
  allocator.release(9);
  for (const int fiber : waiter_fibers) sched.join_fiber(fiber);

  result.recovery_faults = recovery_faults;
  collect(result, nullptr, nullptr, sink, {&monitor});
  rec.expect_eq(static_cast<std::uint64_t>(completed), kWaiters,
                "waiters completed after restore");
  rec.expect(recovery_faults >= kWaiters,
             "every parked waiter must evict with kRecoveryFault");
  rec.expect(!monitor.recovery_poisoned(), "poison still sticky");
  rec.expect_eq(monitor.snapshot().blocked_count(), 0, "stragglers parked");
}

void run_unpoison_races_new_blocker(SimScheduler& sched, Recorder& rec,
                                    ScenarioResult& result) {
  core::CollectingSink sink;
  RobustMonitor::Options options;
  options.retain_trace = true;
  RobustMonitor monitor(alloc_spec("r"), sink, options);
  ResourceAllocator allocator(monitor, 1);

  // Scenario-main holds the only unit across the poison window: poison
  // rejects exactly the calls that would park, so a free monitor would let
  // every arrival flow and there would be no race to explore.
  if (allocator.acquire(9) != rt::Status::kOk) {
    rec.fail("holder could not take the unit");
    return;
  }
  monitor.recovery_poison();
  int recovery_faults = 0;
  int completed = 0;
  const int restorer = sched.spawn(
      [&] {
        vsleep(300 * kMicrosecond);
        monitor.unpoison();
      },
      "restorer");
  std::vector<int> blockers;
  for (int i = 0; i < 4; ++i) {
    // Arrival times straddle the unpoison (and the release below):
    // depending on the schedule a blocker sees kRecoveryFault (would have
    // parked while poisoned) or normal service — both legal; a hang or a
    // stuck poison is not.
    blockers.push_back(sched.spawn(
        [&, i, pid = trace::Pid(i + 1)] {
          vsleep(static_cast<TimeNs>(i) * 150 * kMicrosecond);
          for (;;) {
            const rt::Status status = allocator.acquire(pid);
            if (status == rt::Status::kOk) {
              vsleep(50 * kMicrosecond);
              allocator.release(pid);
              ++completed;
              return;
            }
            if (status == rt::Status::kRecoveryFault) ++recovery_faults;
            vsleep(100 * kMicrosecond);
          }
        },
        "blocker-" + std::to_string(i + 1)));
  }
  sched.join_fiber(restorer);
  vsleep(300 * kMicrosecond);
  allocator.release(9);
  for (const int fiber : blockers) sched.join_fiber(fiber);

  result.recovery_faults = recovery_faults;
  collect(result, nullptr, nullptr, sink, {&monitor});
  rec.expect_eq(static_cast<std::uint64_t>(completed), 4,
                "blockers completed after restore");
  rec.expect(recovery_faults >= 1,
             "no arrival ever raced the poison window");
  rec.expect(!monitor.recovery_poisoned(), "poison still sticky");
}

void run_remove_poisoned_monitor(SimScheduler& sched, Recorder& rec,
                                 ScenarioResult& result) {
  core::CollectingSink sink;
  core::RecoveryPolicy policy([] {
    core::RecoveryPolicy::Options options;
    options.confirmed_remedy = core::RecoveryRemedy::kPoisonVictim;
    return options;
  }());
  CheckerPool pool([&] {
    CheckerPool::Options options;
    options.waitfor_checkpoint_period = kMillisecond;
    options.waitfor_sink = &sink;
    options.recovery.policy = &policy;
    return options;
  }());
  std::optional<RobustMonitor> m0;
  std::optional<RobustMonitor> m1;
  m0.emplace(alloc_spec("f0"), sink, pool_options(pool));
  m1.emplace(alloc_spec("f1"), sink, pool_options(pool));
  std::optional<ResourceAllocator> f0;
  std::optional<ResourceAllocator> f1;
  f0.emplace(*m0, 1);
  f1.emplace(*m1, 1);
  m0->start_checking();
  m1->start_checking();

  // Satellite regression, raced against the churn below: check_now() on a
  // removed id must deterministically return empty stats, never throw.
  rt::HoareMonitor stale_source(alloc_spec("stale"), *sync::backend_clock());
  const CheckerPool::MonitorId stale_id = pool.add(stale_source);
  const int prober = sched.spawn(
      [&] {
        for (int i = 0; i < 20; ++i) {
          if (i == 7) pool.remove(stale_id);
          const auto stats = pool.check_now(stale_id);
          if (i > 7 && stats.events != 0) {
            rec.fail("check_now on removed id returned non-empty stats");
          }
          vsleep(300 * kMicrosecond);
        }
      },
      "prober");

  int recovery_faults = 0;
  DeadlockPair pair{*f0, *f1, &recovery_faults};
  const int fiber_a = sched.spawn([&] { pair.run_a(); }, "client-a");
  const int fiber_b = sched.spawn([&] { pair.run_b(); }, "client-b");
  sched.join_fiber(fiber_a);
  sched.join_fiber(fiber_b);
  rec.expect_eq(static_cast<std::uint64_t>(recovery_faults), 1,
                "recovery faults seen");

  // Destroy whichever monitor took the poison — the dtor runs
  // pool.remove() — racing the periodic checkpoints, which may or may not
  // have completed the unpoison first (both orders are legal and the seed
  // pins which one this schedule takes).
  if (m0->recovery_poisoned()) {
    f0.reset();
    m0.reset();
  } else if (m1->recovery_poisoned()) {
    f1.reset();
    m1.reset();
  }
  // Poll a few checkpoint periods: the pool must stay consistent — no new
  // reports, the surviving monitor clean.
  vsleep(5 * kMillisecond);
  sched.join_fiber(prober);
  if (m0) {
    rec.expect(!m0->recovery_poisoned(), "survivor f0 left poisoned");
    m0->stop_checking();
  }
  if (m1) {
    rec.expect(!m1->recovery_poisoned(), "survivor f1 left poisoned");
    m1->stop_checking();
  }

  result.recovery_faults = recovery_faults;
  std::vector<const RobustMonitor*> monitors;
  if (m0) monitors.push_back(&*m0);
  if (m1) monitors.push_back(&*m1);
  collect(result, &pool, nullptr, sink, monitors);
  rec.expect_eq(pool.deadlocks_reported(), 1, "confirmed cycles");
  rec.expect_eq(pool.victims_poisoned(), 1, "victims poisoned");
  rec.expect(pool.monitors_unpoisoned() <= 1, "unpoison count");
  expect_only_recovery_reports(rec, sink);
}

void run_gate_imposition_races_crossing(SimScheduler& sched, Recorder& rec,
                                        ScenarioResult& result) {
  core::CollectingSink sink;
  core::RecoveryPolicy policy([] {
    core::RecoveryPolicy::Options options;
    options.confirmed_remedy = core::RecoveryRemedy::kPoisonVictim;
    return options;
  }());
  sync::Gate gate;
  CheckerPool pool([&] {
    CheckerPool::Options options;
    options.lockorder_checkpoint_period = kMillisecond;
    options.lockorder_sink = &sink;
    options.recovery.policy = &policy;
    options.recovery.gate = &gate;
    return options;
  }());
  RobustMonitor m0(alloc_spec("g0"), sink, pool_options(pool));
  RobustMonitor m1(alloc_spec("g1"), sink, pool_options(pool));
  ResourceAllocator g0(m0, 1), g1(m1, 1);
  m0.start_checking();
  m1.start_checking();

  // Crossing traffic in flight the whole time, including pid 2 — the
  // minority witness the imposition will fence mid-stream.  A fenced
  // crossing must run alone.
  int inside = 0;
  bool overlap = false;
  bool done_crossing = false;
  std::vector<int> crossers;
  for (const trace::Pid pid : {trace::Pid(2), trace::Pid(11), trace::Pid(12)}) {
    crossers.push_back(sched.spawn(
        [&, pid] {
          while (!done_crossing) {
            {
              sync::Gate::Scope scope(gate, pid);
              const int occupancy = ++inside;
              if (gate.engaged() && gate.is_fenced(pid) && occupancy > 1) {
                overlap = true;
              }
              vsleep(100 * kMicrosecond);
              --inside;
            }
            vsleep(150 * kMicrosecond);
          }
        },
        "crosser-" + std::to_string(pid)));
  }

  // Inconsistent acquisition orders, strictly serialized (predicted-only):
  // pid 1 crosses g0→g1 twice, pid 2 crosses g1→g0 once.
  const int fiber_c = sched.spawn(
      [&] {
        for (int round = 0; round < 2; ++round) {
          if (g0.acquire(1) != rt::Status::kOk) return;
          vsleep(500 * kMicrosecond);
          if (g1.acquire(1) != rt::Status::kOk) return;
          vsleep(2 * kMillisecond);
          g1.release(1);
          g0.release(1);
          vsleep(kMillisecond);
        }
      },
      "order-major");
  sched.join_fiber(fiber_c);
  const int fiber_d = sched.spawn(
      [&] {
        if (g1.acquire(2) != rt::Status::kOk) return;
        vsleep(500 * kMicrosecond);
        if (g0.acquire(2) != rt::Status::kOk) return;
        vsleep(2 * kMillisecond);
        g0.release(2);
        g1.release(2);
      },
      "order-minor");
  sched.join_fiber(fiber_d);

  rec.expect(poll_until([&] { return pool.orders_imposed() >= 1; }),
             "imposition never fired");
  // Let fenced traffic cross the engaged gate a few more times.
  vsleep(2 * kMillisecond);
  done_crossing = true;
  for (const int fiber : crossers) sched.join_fiber(fiber);
  m0.stop_checking();
  m1.stop_checking();

  collect(result, &pool, &gate, sink, {&m0, &m1});
  rec.expect_eq(pool.orders_imposed(), 1, "orders imposed");
  rec.expect_eq(pool.recovery_actions(), 1, "recovery actions");
  rec.expect_eq(pool.potential_deadlocks_reported(), 1, "order cycles");
  rec.expect(gate.engaged(), "gate not engaged");
  rec.expect(gate.is_fenced(2), "minority witness not fenced");
  rec.expect(gate.fenced_crossings() >= 1, "no fenced crossing ran");
  rec.expect(!overlap, "fenced crossing overlapped another");
  expect_only_recovery_reports(rec, sink);
}

void run_body(ScheduleScenario scenario, SimScheduler& sched, Recorder& rec,
              ScenarioResult& result) {
  switch (scenario) {
    case ScheduleScenario::kRecoveryFull:
      return run_recovery_full(sched, rec, result);
    case ScheduleScenario::kDeliverToVictim:
      return run_deliver_to_victim(sched, rec, result);
    case ScheduleScenario::kPoisonDuringWait:
      return run_poison_during_wait(sched, rec, result);
    case ScheduleScenario::kUnpoisonRacesNewBlocker:
      return run_unpoison_races_new_blocker(sched, rec, result);
    case ScheduleScenario::kRemovePoisonedMonitor:
      return run_remove_poisoned_monitor(sched, rec, result);
    case ScheduleScenario::kGateImpositionRacesCrossing:
      return run_gate_imposition_races_crossing(sched, rec, result);
  }
  rec.fail("unknown scenario");
}

}  // namespace

ScenarioResult run_schedule_scenario(ScheduleScenario scenario,
                                     std::uint64_t seed) {
  ScenarioResult result;
  result.name = to_string(scenario);
  result.seed = seed;
  Recorder rec{result};

  SimScheduler sched([&] {
    SimScheduler::Options options;
    options.policy = sync::SchedulePolicy::kRandom;
    options.seed = seed;
    return options;
  }());
  sched.spawn([&] { run_body(scenario, sched, rec, result); },
              "scenario-main");
  const SimScheduler::StopReason stop = sched.run(2'000'000);
  result.schedule_digest = sched.schedule_digest();
  result.steps = sched.steps();
  result.virtual_end_ns = sched.now();
  if (stop == SimScheduler::StopReason::kQuiescent) {
    rec.fail("scheduler quiescent: undetected deadlock among fibers");
  } else if (stop == SimScheduler::StopReason::kMaxSteps) {
    rec.fail("scheduler step budget exhausted");
  }
  try {
    sched.rethrow_any_failure();
  } catch (const std::exception& error) {
    rec.fail(std::string("fiber exception: ") + error.what());
  }
  result.completed = result.failure.empty();
  return result;
}

}  // namespace robmon::wl

#endif  // ROBMON_SYNC_BACKEND_SIM
