// Bounded buffer over a communication-coordinator monitor (Section 2.1):
// Send/Receive procedures, senders delayed on condition "full", receivers on
// condition "empty".  The paper's four Level-II (monitor procedure) faults
// are injected here, since they are bugs in the procedures' use of
// Wait/Signal rather than in the monitor implementation:
//
//   II.a kSendDelayWrong       Send waits on "full" although not full.
//   II.b kReceiveDelayWrong    Receive waits on "empty" although not empty.
//   II.c kReceiveExceedsSend   Receive fabricates an item from an empty
//                              buffer instead of waiting.
//   II.d kSendExceedsCapacity  Send overfills instead of waiting.
//
// The item store is guarded by its own mutex so that injected
// mutual-exclusion violations produce *logical* anomalies (what the
// detector sees) without undefined behaviour in the harness.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "inject/injection.hpp"
#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

class BoundedBuffer {
 public:
  /// `monitor` must be a coordinator-type RobustMonitor whose rmax equals
  /// `capacity`.  Wires the monitor's resource gauge to the free-slot count.
  BoundedBuffer(rt::RobustMonitor& monitor, std::size_t capacity,
                inject::InjectionController& injection =
                    inject::NullInjection::instance());

  /// Monitor procedure "Send".
  rt::Status send(trace::Pid pid, std::int64_t item);

  /// Monitor procedure "Receive"; the received item goes to *out.
  rt::Status receive(trace::Pid pid, std::int64_t* out);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::int64_t free_slots() const;

 private:
  bool is_full() const;
  bool is_empty() const;

  rt::RobustMonitor* monitor_;
  std::size_t capacity_;
  inject::InjectionController* injection_;

  mutable std::mutex items_mu_;
  std::deque<std::int64_t> items_;
};

}  // namespace robmon::wl
