#include "workloads/bounded_buffer.hpp"

namespace robmon::wl {

using core::FaultKind;

BoundedBuffer::BoundedBuffer(rt::RobustMonitor& monitor, std::size_t capacity,
                             inject::InjectionController& injection)
    : monitor_(&monitor), capacity_(capacity), injection_(&injection) {
  // R# (free slots) is owned by the monitor and adjusted atomically with
  // each Send/Receive completion event; a gauge sampled at snapshot time
  // would race with procedure bodies under real threads.
  monitor_->track_resources(static_cast<std::int64_t>(capacity));
}

std::size_t BoundedBuffer::size() const {
  std::lock_guard<std::mutex> lock(items_mu_);
  return items_.size();
}

std::int64_t BoundedBuffer::free_slots() const {
  return static_cast<std::int64_t>(capacity_) -
         static_cast<std::int64_t>(size());
}

bool BoundedBuffer::is_full() const { return size() >= capacity_; }
bool BoundedBuffer::is_empty() const { return size() == 0; }

rt::Status BoundedBuffer::send(trace::Pid pid, std::int64_t item) {
  if (const auto status = monitor_->enter(pid, "Send");
      status != rt::Status::kOk) {
    return status;
  }

  // II.a: delayed although the buffer is not full.  Arming is conditioned
  // on the state where the fault has an observable effect.
  const bool force_delay =
      !is_full() && injection_->fire(FaultKind::kSendDelayWrong, pid);
  // II.d: not delayed although the buffer is full (overfill).
  const bool skip_delay =
      is_full() && injection_->fire(FaultKind::kSendExceedsCapacity, pid);

  if (force_delay || (is_full() && !skip_delay)) {
    if (const auto status = monitor_->wait(pid, "full");
        status != rt::Status::kOk) {
      return status;
    }
  }

  {
    std::lock_guard<std::mutex> lock(items_mu_);
    items_.push_back(item);
  }
  monitor_->signal_exit(pid, "empty", -1);  // one fewer free slot
  return rt::Status::kOk;
}

rt::Status BoundedBuffer::receive(trace::Pid pid, std::int64_t* out) {
  if (const auto status = monitor_->enter(pid, "Receive");
      status != rt::Status::kOk) {
    return status;
  }

  // II.b: delayed although the buffer is not empty.
  const bool force_delay =
      !is_empty() && injection_->fire(FaultKind::kReceiveDelayWrong, pid);
  // II.c: fabricate an item from an empty buffer instead of waiting.
  const bool fabricate =
      is_empty() && injection_->fire(FaultKind::kReceiveExceedsSend, pid);

  if (force_delay || (is_empty() && !fabricate)) {
    if (const auto status = monitor_->wait(pid, "empty");
        status != rt::Status::kOk) {
      return status;
    }
  }

  {
    std::lock_guard<std::mutex> lock(items_mu_);
    if (items_.empty()) {
      *out = -1;  // fabricated value (fault II.c in effect)
    } else {
      *out = items_.front();
      items_.pop_front();
    }
  }
  monitor_->signal_exit(pid, "full", +1);  // one more free slot
  return rt::Status::kOk;
}

}  // namespace robmon::wl
