#include "workloads/readers_writers.hpp"

namespace robmon::wl {

namespace {
/// Counter access shorthand: all fields are logically monitor state; the
/// mutex only provides memory-order safety for observers outside the
/// monitor (active_readers(), tests).
template <typename T>
T locked_get(std::mutex& mu, const T& field) {
  std::lock_guard<std::mutex> lock(mu);
  return field;
}
}  // namespace

ReadersWriters::ReadersWriters(rt::RobustMonitor& monitor)
    : monitor_(&monitor) {}

std::int64_t ReadersWriters::active_readers() const {
  return locked_get(state_mu_, readers_);
}

bool ReadersWriters::writer_active() const {
  return locked_get(state_mu_, writing_);
}

rt::Status ReadersWriters::start_read(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "StartRead");
      status != rt::Status::kOk) {
    return status;
  }
  bool must_wait;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    // Writer priority: readers defer to active and waiting writers.
    must_wait = writing_ || waiting_writers_ > 0;
    if (must_wait) ++waiting_readers_;
  }
  if (must_wait) {
    if (const auto status = monitor_->wait(pid, "okToRead");
        status != rt::Status::kOk) {
      return status;
    }
    std::lock_guard<std::mutex> lock(state_mu_);
    --waiting_readers_;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++readers_;
  }
  // Baton passing: wake the next waiting reader (if any) while leaving.
  monitor_->signal_exit(pid, "okToRead");
  return rt::Status::kOk;
}

rt::Status ReadersWriters::end_read(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "EndRead");
      status != rt::Status::kOk) {
    return status;
  }
  bool last_reader;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    --readers_;
    last_reader = readers_ == 0;
  }
  if (last_reader) {
    monitor_->signal_exit(pid, "okToWrite");
  } else {
    monitor_->exit(pid);
  }
  return rt::Status::kOk;
}

rt::Status ReadersWriters::start_write(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "StartWrite");
      status != rt::Status::kOk) {
    return status;
  }
  bool must_wait;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    must_wait = writing_ || readers_ > 0;
    if (must_wait) ++waiting_writers_;
  }
  if (must_wait) {
    if (const auto status = monitor_->wait(pid, "okToWrite");
        status != rt::Status::kOk) {
      return status;
    }
    std::lock_guard<std::mutex> lock(state_mu_);
    --waiting_writers_;
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    writing_ = true;
  }
  monitor_->exit(pid);
  return rt::Status::kOk;
}

rt::Status ReadersWriters::end_write(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "EndWrite");
      status != rt::Status::kOk) {
    return status;
  }
  bool readers_waiting;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    writing_ = false;
    readers_waiting = waiting_readers_ > 0;
  }
  // Prefer the reader cascade when readers queued while we wrote;
  // otherwise hand to the next writer.
  monitor_->signal_exit(pid, readers_waiting ? "okToRead" : "okToWrite");
  return rt::Status::kOk;
}

rt::Status ReadersWriters::read(trace::Pid pid,
                                const std::function<void()>& body) {
  if (const auto status = start_read(pid); status != rt::Status::kOk) {
    return status;
  }
  body();
  return end_read(pid);
}

rt::Status ReadersWriters::write(trace::Pid pid,
                                 const std::function<void()>& body) {
  if (const auto status = start_write(pid); status != rt::Status::kOk) {
    return status;
  }
  body();
  return end_write(pid);
}

}  // namespace robmon::wl
