// Seeded schedule-exploration scenarios: pool-level detection + recovery
// runs executed entirely under sync::SimScheduler (the deterministic fiber
// backend).  Each scenario builds a CheckerPool with periodic checkpoints,
// RobustMonitors and client fibers, lets the pool's own workers detect and
// recover under virtual time with zero real threads, and returns a
// ScenarioResult whose every field — scorecard counters, the concatenated
// v6 trace, the fault-report log, the schedule digest — is a pure function
// of (scenario, seed).  tests/schedule_explorer.cpp sweeps seeds over these
// and pins a regression corpus of known-interesting interleavings.
//
// Only runnable when the tree is compiled with ROBMON_SYNC_BACKEND_SIM
// (the robmon_sim library): under the real backend the runtime would park
// OS threads, not fibers, and run_schedule_scenario throws std::logic_error.
#pragma once

#include <cstdint>
#include <string>

namespace robmon::wl {

enum class ScheduleScenario {
  /// The acceptance scenario: a confirmed wait-for cycle broken by victim
  /// poison AND a predicted order cycle pre-empted by a gate imposition, in
  /// one pool run (periodic checks + both checkpoints on worker fibers).
  kRecoveryFull,
  /// Confirmed cycle broken by targeted fault delivery (no poison).
  kDeliverToVictim,
  /// recovery_poison() fired while waiters are parked mid-wait on a
  /// condition; every parked waiter must evict with kRecoveryFault and
  /// complete normally after unpoison.
  kPoisonDuringWait,
  /// unpoison() racing new blockers arriving at the monitor: arrivals see
  /// either kRecoveryFault or normal service, never a hang or a crash.
  kUnpoisonRacesNewBlocker,
  /// Destroying (pool remove()) the poisoned victim monitor while the
  /// periodic checkpoints are mid-flight, plus check_now() on a removed
  /// MonitorId raced against the churn (must return empty, never throw).
  kRemovePoisonedMonitor,
  /// A lock-order imposition landing on the gate while crossings are in
  /// flight: the fenced crossing must run exclusively, everyone completes.
  kGateImpositionRacesCrossing,
};

/// Stable scenario name ("recovery-full", ...) — used in corpus rows and
/// replay commands.
const char* to_string(ScheduleScenario scenario);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
ScheduleScenario scenario_from_name(const std::string& name);

/// Every listed scenario, in corpus order.
inline constexpr ScheduleScenario kAllScheduleScenarios[] = {
    ScheduleScenario::kRecoveryFull,
    ScheduleScenario::kDeliverToVictim,
    ScheduleScenario::kPoisonDuringWait,
    ScheduleScenario::kUnpoisonRacesNewBlocker,
    ScheduleScenario::kRemovePoisonedMonitor,
    ScheduleScenario::kGateImpositionRacesCrossing,
};

struct ScenarioResult {
  std::string name;
  std::uint64_t seed = 0;

  /// True iff the scheduler ran every fiber to completion and every
  /// scenario invariant held.  When false, `failure` names the first
  /// violation and the caller should print seed + replay command.
  bool completed = false;
  std::string failure;

  /// FNV-1a digest of the interleaving actually taken (see
  /// SimScheduler::schedule_digest); equal digests = identical schedules.
  std::uint64_t schedule_digest = 0;
  std::uint64_t steps = 0;
  std::int64_t virtual_end_ns = 0;

  // --- Detection / recovery scorecard. ---------------------------------
  std::uint64_t deadlocks_reported = 0;
  std::uint64_t potential_deadlocks = 0;
  std::uint64_t recovery_actions = 0;
  std::uint64_t victims_poisoned = 0;
  std::uint64_t faults_delivered = 0;
  std::uint64_t monitors_unpoisoned = 0;
  std::uint64_t orders_imposed = 0;
  std::uint64_t fenced_crossings = 0;
  /// Client-side kRecoveryFault observations.
  int recovery_faults = 0;
  std::uint64_t reports_total = 0;

  /// Concatenated codec-v6 traces of every retain_trace monitor, in a
  /// fixed order — byte-identical across runs of the same (scenario, seed).
  std::string trace;
  /// One line per fault report: "<rule> <message>".
  std::string report_log;

  /// One-line counter summary ("wf=1 lo=0 act=2 ..."), the value pinned
  /// per corpus row next to the digest.
  std::string scorecard() const;
};

/// Run `scenario` to completion under a fresh SimScheduler seeded with
/// `seed`.  Deterministic: same inputs, byte-identical ScenarioResult.
ScenarioResult run_schedule_scenario(ScheduleScenario scenario,
                                     std::uint64_t seed);

}  // namespace robmon::wl
