// Shared bank account — a resource-operation-manager monitor (Section 2.1):
// the monitor and the resource are combined into one module and processes
// simply invoke operations (implicit synchronization).  Withdrawals wait on
// condition "funds" until the balance suffices; deposits signal it.
#pragma once

#include <cstdint>
#include <mutex>

#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

class AccountManager {
 public:
  /// `monitor` must be a manager-type RobustMonitor.
  AccountManager(rt::RobustMonitor& monitor, std::int64_t initial_balance);

  /// Monitor procedure "Deposit".
  rt::Status deposit(trace::Pid pid, std::int64_t amount);

  /// Monitor procedure "Withdraw": waits on "funds" until covered.
  rt::Status withdraw(trace::Pid pid, std::int64_t amount);

  std::int64_t balance() const;

 private:
  rt::RobustMonitor* monitor_;
  mutable std::mutex balance_mu_;
  std::int64_t balance_;
};

}  // namespace robmon::wl
