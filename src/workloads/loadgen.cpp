#include "workloads/loadgen.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/checker_pool.hpp"
#include "workloads/account.hpp"
#include "workloads/allocator.hpp"
#include "workloads/bounded_buffer.hpp"

namespace robmon::wl {

namespace {

void simulated_work(util::TimeNs ns) {
  if (ns <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

core::MonitorSpec make_spec(const LoadOptions& options) {
  core::MonitorSpec spec;
  switch (options.type) {
    case core::MonitorType::kCommunicationCoordinator:
      spec = core::MonitorSpec::coordinator(
          "load-buffer", static_cast<std::int64_t>(options.capacity));
      break;
    case core::MonitorType::kResourceAllocator:
      spec = core::MonitorSpec::allocator("load-allocator");
      break;
    case core::MonitorType::kOperationManager:
      spec = core::MonitorSpec::manager("load-account");
      break;
  }
  spec.check_period = options.check_period;
  spec.t_max = options.t_max;
  spec.t_io = options.t_io;
  spec.t_limit = options.t_limit;
  return spec;
}

}  // namespace

LoadResult run_load(const LoadOptions& options) {
  core::CollectingSink sink;
  rt::RobustMonitor::Options monitor_options;
  monitor_options.instrumentation = options.instrumentation;
  monitor_options.hold_gate_during_check = options.hold_gate_during_check;
  rt::RobustMonitor monitor(make_spec(options), sink, monitor_options);

  const bool checking = options.periodic_checking &&
                        options.instrumentation == rt::Instrumentation::kFull;

  std::vector<std::thread> threads;
  std::uint64_t total_operations = 0;
  const auto started = std::chrono::steady_clock::now();

  switch (options.type) {
    case core::MonitorType::kCommunicationCoordinator: {
      BoundedBuffer buffer(monitor, options.capacity);
      const int producers = std::max(1, options.workers / 2);
      const int consumers = std::max(1, options.workers - producers);
      const std::int64_t total_items =
          options.ops_per_worker * static_cast<std::int64_t>(producers);
      const std::int64_t per_consumer = total_items / consumers;
      const std::int64_t remainder = total_items % consumers;
      if (checking) monitor.start_checking();
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          const trace::Pid pid = p;
          for (std::int64_t i = 0; i < options.ops_per_worker; ++i) {
            if (buffer.send(pid, i) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
          const trace::Pid pid = 1000 + c;
          const std::int64_t quota = per_consumer + (c == 0 ? remainder : 0);
          std::int64_t item = 0;
          for (std::int64_t i = 0; i < quota; ++i) {
            if (buffer.receive(pid, &item) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      total_operations =
          static_cast<std::uint64_t>(total_items) * 2;  // sends + receives
      for (auto& thread : threads) thread.join();
      break;
    }
    case core::MonitorType::kResourceAllocator: {
      ResourceAllocator allocator(
          monitor, static_cast<std::int64_t>(std::max<std::size_t>(
                       1, options.capacity)));
      const std::int64_t iterations = options.ops_per_worker / 2;
      if (checking) monitor.start_checking();
      for (int w = 0; w < options.workers; ++w) {
        threads.emplace_back([&, w] {
          const trace::Pid pid = w;
          ClientOptions client;
          client.iterations = static_cast<int>(iterations);
          client.hold_ns = options.work_ns;
          client.think_ns = 0;
          run_allocator_client(allocator, pid,
                               inject::NullInjection::instance(), client);
        });
      }
      total_operations = static_cast<std::uint64_t>(iterations) * 2 *
                         static_cast<std::uint64_t>(options.workers);
      for (auto& thread : threads) thread.join();
      break;
    }
    case core::MonitorType::kOperationManager: {
      AccountManager account(monitor,
                             static_cast<std::int64_t>(options.workers));
      const int depositors = std::max(1, options.workers / 2);
      const int withdrawers = std::max(1, options.workers - depositors);
      const std::int64_t deposits_total =
          options.ops_per_worker * static_cast<std::int64_t>(depositors);
      const std::int64_t per_withdrawer = deposits_total / withdrawers;
      const std::int64_t remainder = deposits_total % withdrawers;
      if (checking) monitor.start_checking();
      for (int d = 0; d < depositors; ++d) {
        threads.emplace_back([&, d] {
          const trace::Pid pid = d;
          for (std::int64_t i = 0; i < options.ops_per_worker; ++i) {
            if (account.deposit(pid, 1) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      for (int w = 0; w < withdrawers; ++w) {
        threads.emplace_back([&, w] {
          const trace::Pid pid = 1000 + w;
          const std::int64_t quota = per_withdrawer + (w == 0 ? remainder : 0);
          for (std::int64_t i = 0; i < quota; ++i) {
            if (account.withdraw(pid, 1) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      total_operations = static_cast<std::uint64_t>(deposits_total) * 2;
      for (auto& thread : threads) thread.join();
      break;
    }
  }

  const auto finished = std::chrono::steady_clock::now();
  if (checking) {
    monitor.stop_checking();
    monitor.check_now();  // final segment
  }

  LoadResult result;
  result.operations = total_operations;
  result.seconds =
      std::chrono::duration<double>(finished - started).count();
  result.ops_per_second =
      result.seconds > 0 ? static_cast<double>(result.operations) /
                               result.seconds
                         : 0.0;
  result.checks_run = monitor.detector().checks_run();
  result.events_recorded = monitor.monitor().log().total_appended();
  result.faults_reported = sink.count();
  return result;
}

MultiLoadResult run_multi_load(const MultiLoadOptions& options) {
  const std::size_t monitor_count = std::max<std::size_t>(1, options.monitors);
  const int threads_per_monitor = std::max(1, options.threads_per_monitor);
  const std::size_t faulty = std::min(options.faulty_monitors, monitor_count);

  // Detection engines.  Both modes run through CheckerPool so the scheduling
  // counters are comparable: the old architecture is M pools of one thread,
  // the new one is a single pool of K ≤ hardware-concurrency threads.
  // Pool-scoped prediction sink (must stay empty).  Declared before the
  // engines: workers hold a pointer to it, so it must outlive them.
  core::CollectingSink lockorder_sink;
  std::vector<std::unique_ptr<rt::CheckerPool>> engines;
  rt::CheckerPool::Options pool_options;
  pool_options.max_batch = options.max_batch;
  pool_options.batch_window = options.batch_window;
  if (options.lockorder_checkpoint_period > 0) {
    pool_options.lockorder_checkpoint_period =
        options.lockorder_checkpoint_period;
    pool_options.lockorder_sink = &lockorder_sink;
  }
  if (options.mode == CheckerMode::kSharedPool) {
    pool_options.threads = options.pool_threads;
    engines.push_back(std::make_unique<rt::CheckerPool>(pool_options));
  } else {
    pool_options.threads = 1;
    for (std::size_t i = 0; i < monitor_count; ++i) {
      engines.push_back(std::make_unique<rt::CheckerPool>(pool_options));
    }
  }
  const auto engine_for = [&](std::size_t i) -> rt::CheckerPool* {
    return options.mode == CheckerMode::kSharedPool ? engines[0].get()
                                                    : engines[i].get();
  };

  // Monitors: alternating communication coordinators (even index) and
  // resource allocators (odd index), each with its own sink so detections
  // are accounted per monitor.
  const auto is_coordinator = [](std::size_t i) { return i % 2 == 0; };
  const std::size_t buffer_capacity =
      std::max<std::size_t>(options.capacity,
                            static_cast<std::size_t>(threads_per_monitor));
  std::vector<std::unique_ptr<core::CollectingSink>> sinks;
  std::vector<std::unique_ptr<inject::ScriptedInjection>> injections;
  std::vector<std::unique_ptr<rt::RobustMonitor>> monitors;
  std::vector<std::unique_ptr<BoundedBuffer>> buffers(monitor_count);
  std::vector<std::unique_ptr<ResourceAllocator>> allocators(monitor_count);
  for (std::size_t i = 0; i < monitor_count; ++i) {
    core::MonitorSpec spec =
        is_coordinator(i)
            ? core::MonitorSpec::coordinator(
                  "multi-" + std::to_string(i),
                  static_cast<std::int64_t>(buffer_capacity))
            : core::MonitorSpec::allocator("multi-" + std::to_string(i));
    spec.check_period = options.check_period;
    spec.t_max = 5 * util::kSecond;
    spec.t_io = 5 * util::kSecond;
    spec.t_limit = 5 * util::kSecond;

    sinks.push_back(std::make_unique<core::CollectingSink>());
    rt::RobustMonitor::Options monitor_options;
    monitor_options.checker_pool = engine_for(i);
    monitor_options.cadence_max_stretch = options.max_stretch;
    monitor_options.hold_gate_during_check =
        options.mix_gate_policies && i % 2 == 1
            ? !options.hold_gate_during_check
            : options.hold_gate_during_check;
    monitors.push_back(std::make_unique<rt::RobustMonitor>(
        std::move(spec), *sinks.back(), monitor_options));

    inject::InjectionController* buffer_injection =
        &inject::NullInjection::instance();
    if (i < faulty && is_coordinator(i)) {
      injections.push_back(std::make_unique<inject::ScriptedInjection>(
          inject::ScriptedInjection::Plan{core::FaultKind::kReceiveExceedsSend,
                                          trace::kNoPid, 1, false}));
      buffer_injection = injections.back().get();
    }
    if (is_coordinator(i)) {
      buffers[i] = std::make_unique<BoundedBuffer>(*monitors[i],
                                                   buffer_capacity,
                                                   *buffer_injection);
    } else {
      allocators[i] = std::make_unique<ResourceAllocator>(
          *monitors[i],
          static_cast<std::int64_t>(std::max<std::size_t>(1, options.capacity)));
    }
  }

  // Deterministic fault injection before the measured region: a fabricated
  // receive from an empty buffer (II.c, caught by Algorithm-2 at the next
  // checking point) or a release-before-acquire client (III.a, caught by
  // the real-time phase and confirmed by Algorithm-3).
  for (std::size_t i = 0; i < faulty; ++i) {
    // Injector pids are globally unique (like the client pids below): the
    // lock-order join matches accesses by pid across monitors, so a pid
    // shared by threads on different monitors would fabricate order edges.
    const trace::Pid inject_pid = 9000 + static_cast<trace::Pid>(i);
    if (is_coordinator(i)) {
      std::int64_t item = 0;
      buffers[i]->receive(inject_pid, &item);
    } else {
      inject::ScriptedInjection release_early(
          {core::FaultKind::kReleaseBeforeAcquire, trace::kNoPid, 1, false});
      ClientOptions client;
      client.iterations = 1;
      run_allocator_client(*allocators[i], inject_pid, release_early,
                           client);
    }
  }

  for (auto& monitor : monitors) monitor->start_checking();

  std::vector<std::thread> threads;
  threads.reserve(monitor_count * static_cast<std::size_t>(threads_per_monitor));
  const std::int64_t pairs = std::max<std::int64_t>(1, options.ops_per_thread / 2);
  const auto started = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < monitor_count; ++i) {
    for (int t = 0; t < threads_per_monitor; ++t) {
      const trace::Pid pid =
          100 + static_cast<trace::Pid>(i) * threads_per_monitor + t;
      if (is_coordinator(i)) {
        BoundedBuffer* buffer = buffers[i].get();
        threads.emplace_back([buffer, pid, pairs] {
          std::int64_t item = 0;
          for (std::int64_t k = 0; k < pairs; ++k) {
            if (buffer->send(pid, k) != rt::Status::kOk) return;
            if (buffer->receive(pid, &item) != rt::Status::kOk) return;
          }
        });
      } else {
        ResourceAllocator* allocator = allocators[i].get();
        threads.emplace_back([allocator, pid, pairs] {
          ClientOptions client;
          client.iterations = static_cast<int>(pairs);
          run_allocator_client(*allocator, pid,
                               inject::NullInjection::instance(), client);
        });
      }
    }
  }
  for (auto& thread : threads) thread.join();
  const auto finished = std::chrono::steady_clock::now();

  std::size_t checker_threads = 0;
  for (const auto& engine : engines) {
    checker_threads += engine->thread_count();
  }

  for (auto& monitor : monitors) monitor->stop_checking();
  // Final synchronous check per monitor: drains the tail segment, so a
  // detection cannot be missed just because the run outpaced the cadence.
  for (auto& monitor : monitors) monitor->check_now();

  MultiLoadResult result;
  result.seconds = std::chrono::duration<double>(finished - started).count();
  result.operations = static_cast<std::uint64_t>(monitor_count) *
                      static_cast<std::uint64_t>(threads_per_monitor) *
                      static_cast<std::uint64_t>(pairs) * 2;
  result.ops_per_second =
      result.seconds > 0
          ? static_cast<double>(result.operations) / result.seconds
          : 0.0;
  for (std::size_t i = 0; i < monitor_count; ++i) {
    result.checks_run += monitors[i]->detector().checks_run();
    result.events_recorded += monitors[i]->monitor().log().total_appended();
  }
  result.checks_per_second =
      result.seconds > 0
          ? static_cast<double>(result.checks_run) / result.seconds
          : 0.0;
  result.checker_threads = checker_threads;

  std::uint64_t engine_checks = 0, quiesce_ns = 0, check_ns = 0;
  for (const auto& engine : engines) {
    engine_checks += engine->checks_executed();
    quiesce_ns += engine->total_quiesce_ns();
    check_ns += engine->total_check_ns();
    result.dispatches += engine->dispatches();
    result.checks_coalesced += engine->checks_coalesced();
    result.events_lost += engine->events_lost();
  }
  for (std::size_t i = 0; i < monitor_count; ++i) {
    result.idle_checks += monitors[i]->detector().idle_checks();
  }
  if (engine_checks > 0) {
    result.avg_quiesce_us =
        static_cast<double>(quiesce_ns) / engine_checks / 1000.0;
    result.avg_check_us =
        static_cast<double>(check_ns) / engine_checks / 1000.0;
    result.dispatches_per_1k_checks =
        static_cast<double>(result.dispatches) * 1000.0 /
        static_cast<double>(engine_checks);
  }
  if (result.dispatches > 0) {
    result.avg_batch = static_cast<double>(engine_checks) /
                       static_cast<double>(result.dispatches);
  }

  for (const auto& engine : engines) {
    result.lockorder_checkpoints += engine->lockorder_checkpoints();
    result.lockorder_edges += engine->lockorder_edge_count();
  }
  result.potential_deadlocks = lockorder_sink.count();

  result.faults_expected = faulty;
  for (std::size_t i = 0; i < monitor_count; ++i) {
    const bool reported = sinks[i]->count() > 0;
    if (i < faulty) {
      if (reported) {
        ++result.faulty_detected;
      } else {
        ++result.missed_detections;
      }
    } else if (reported) {
      ++result.false_positive_monitors;
    }
  }
  return result;
}

BudgetSpikeResult run_budget_spike(const BudgetSpikeOptions& options) {
  if (options.budget.fraction <= 0.0) {
    throw std::invalid_argument(
        "run_budget_spike: budget.fraction must be > 0");
  }
  const std::size_t monitor_count = std::max<std::size_t>(2, options.monitors);
  const int threads_per_monitor = std::max(1, options.threads_per_monitor);
  const std::size_t faulty = std::min(options.faulty_monitors, monitor_count);

  // One shared pool carries the budget: the controller sees the spend of
  // every monitor, both checkpoints, and the inline path together.
  core::CollectingSink waitfor_sink;
  core::CollectingSink lockorder_sink;
  rt::CheckerPool::Options pool_options;
  pool_options.budget = options.budget;
  if (options.waitfor_checkpoint_period > 0) {
    pool_options.waitfor_checkpoint_period = options.waitfor_checkpoint_period;
    pool_options.waitfor_sink = &waitfor_sink;
  }
  if (options.lockorder_checkpoint_period > 0) {
    pool_options.lockorder_checkpoint_period =
        options.lockorder_checkpoint_period;
    pool_options.lockorder_sink = &lockorder_sink;
  }
  rt::CheckerPool pool(pool_options);

  const auto is_coordinator = [](std::size_t i) { return i % 2 == 0; };
  // Instrumentation alternates in pairs so it is decorrelated from the
  // monitor type: both coordinators and allocators appear on both paths.
  const auto is_inline = [](std::size_t i) { return (i / 2) % 2 == 0; };

  const std::size_t buffer_capacity = std::max<std::size_t>(
      options.capacity, static_cast<std::size_t>(threads_per_monitor));
  std::vector<std::unique_ptr<core::CollectingSink>> sinks;
  std::vector<std::unique_ptr<inject::ScriptedInjection>> injections;
  std::vector<std::unique_ptr<rt::RobustMonitor>> monitors;
  std::vector<std::unique_ptr<BoundedBuffer>> buffers(monitor_count);
  std::vector<std::unique_ptr<ResourceAllocator>> allocators(monitor_count);
  for (std::size_t i = 0; i < monitor_count; ++i) {
    core::MonitorSpec spec =
        is_coordinator(i)
            ? core::MonitorSpec::coordinator(
                  "spike-" + std::to_string(i),
                  static_cast<std::int64_t>(buffer_capacity))
            : core::MonitorSpec::allocator("spike-" + std::to_string(i));
    spec.check_period = options.check_period;
    spec.t_max = 5 * util::kSecond;
    spec.t_io = 5 * util::kSecond;
    spec.t_limit = 5 * util::kSecond;

    sinks.push_back(std::make_unique<core::CollectingSink>());
    rt::RobustMonitor::Options monitor_options;
    monitor_options.checker_pool = &pool;
    monitor_options.cadence_max_stretch = options.max_stretch;
    monitor_options.check_instrumentation =
        is_inline(i) ? rt::CheckerPool::CheckInstrumentation::kInline
                     : rt::CheckerPool::CheckInstrumentation::kOffloaded;
    monitors.push_back(std::make_unique<rt::RobustMonitor>(
        std::move(spec), *sinks.back(), monitor_options));

    inject::InjectionController* buffer_injection =
        &inject::NullInjection::instance();
    if (i < faulty && is_coordinator(i)) {
      injections.push_back(std::make_unique<inject::ScriptedInjection>(
          inject::ScriptedInjection::Plan{core::FaultKind::kReceiveExceedsSend,
                                          trace::kNoPid, 1, false}));
      buffer_injection = injections.back().get();
    }
    if (is_coordinator(i)) {
      buffers[i] = std::make_unique<BoundedBuffer>(*monitors[i],
                                                   buffer_capacity,
                                                   *buffer_injection);
    } else {
      allocators[i] = std::make_unique<ResourceAllocator>(
          *monitors[i],
          static_cast<std::int64_t>(std::max<std::size_t>(1, options.capacity)));
    }
  }

  // Coordinator faults go in before the run: the fabricated receive needs an
  // empty buffer, and Algorithm 2 catches it at any later checking point —
  // including one widened toward the timer bound.  Allocator faults are
  // injected at spike onset instead (below): the real-time calling-order
  // phase is state-independent, so injecting under full degradation proves
  // detection is never shed.  Injector pids stay globally unique (the
  // lock-order join matches accesses by pid across monitors).
  for (std::size_t i = 0; i < faulty; ++i) {
    if (!is_coordinator(i)) continue;
    std::int64_t item = 0;
    buffers[i]->receive(9000 + static_cast<trace::Pid>(i), &item);
  }

  for (auto& monitor : monitors) monitor->start_checking();

  // Client threads run open-ended op pairs; the driver throttles them all
  // through one shared delay, which is what makes the spike a load change
  // rather than a different workload.
  std::atomic<util::TimeNs> op_delay{options.base_op_delay};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> operations{0};
  std::vector<std::thread> threads;
  threads.reserve(monitor_count *
                  static_cast<std::size_t>(threads_per_monitor));
  for (std::size_t i = 0; i < monitor_count; ++i) {
    for (int t = 0; t < threads_per_monitor; ++t) {
      const trace::Pid pid =
          100 + static_cast<trace::Pid>(i) * threads_per_monitor + t;
      if (is_coordinator(i)) {
        BoundedBuffer* buffer = buffers[i].get();
        threads.emplace_back([buffer, pid, &op_delay, &stop, &operations] {
          std::int64_t item = 0;
          std::int64_t k = 0;
          while (!stop.load(std::memory_order_relaxed)) {
            if (buffer->send(pid, k++) != rt::Status::kOk) return;
            if (buffer->receive(pid, &item) != rt::Status::kOk) return;
            operations.fetch_add(2, std::memory_order_relaxed);
            simulated_work(op_delay.load(std::memory_order_relaxed));
          }
        });
      } else {
        ResourceAllocator* allocator = allocators[i].get();
        threads.emplace_back([allocator, pid, &op_delay, &stop, &operations] {
          while (!stop.load(std::memory_order_relaxed)) {
            if (allocator->acquire(pid) != rt::Status::kOk) return;
            if (allocator->release(pid) != rt::Status::kOk) return;
            operations.fetch_add(2, std::memory_order_relaxed);
            simulated_work(op_delay.load(std::memory_order_relaxed));
          }
        });
      }
    }
  }

  const util::Clock& clock = util::SteadyClock::instance();
  const auto sleep_ns = [](util::TimeNs ns) {
    if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
  };
  struct Mark {
    util::TimeNs t = 0;
    std::uint64_t check_ns = 0;
    std::uint64_t waitfor = 0;
  };
  const auto mark = [&] {
    return Mark{clock.now_ns(), pool.total_check_ns(),
                pool.waitfor_checkpoints()};
  };
  const auto spend = [](const Mark& a, const Mark& b) {
    const util::TimeNs elapsed = b.t - a.t;
    return elapsed > 0 ? static_cast<double>(b.check_ns - a.check_ns) /
                             static_cast<double>(elapsed)
                       : 0.0;
  };
  const double settle_fraction =
      std::clamp(options.settle_fraction, 0.0, 0.95);
  const auto settle = [settle_fraction](util::TimeNs phase) {
    return static_cast<util::TimeNs>(static_cast<double>(phase) *
                                     settle_fraction);
  };

  // Phase 1: calm baseline.
  const auto run_started = mark();
  sleep_ns(options.baseline_ns);
  const auto baseline_end = mark();

  // Phase 2: spike — divide every client's pause, and inject the allocator
  // order violations right at the onset so they are detected while the
  // controller is degrading.
  op_delay.store(
      std::max<util::TimeNs>(
          1, options.base_op_delay / std::max(1, options.spike_multiplier)),
      std::memory_order_relaxed);
  for (std::size_t i = 0; i < faulty; ++i) {
    if (is_coordinator(i)) continue;
    inject::ScriptedInjection release_early(
        {core::FaultKind::kReleaseBeforeAcquire, trace::kNoPid, 1, false});
    ClientOptions client;
    client.iterations = 1;
    run_allocator_client(*allocators[i], 9000 + static_cast<trace::Pid>(i),
                         release_early, client);
  }
  sleep_ns(settle(options.spike_ns));
  const auto spike_mid = mark();
  sleep_ns(options.spike_ns - settle(options.spike_ns));
  const auto spike_end = mark();

  // Phase 3: load subsides; the controller must retrace the ladder down.
  const util::TimeNs post_delay = options.post_op_delay > 0
                                      ? options.post_op_delay
                                      : 4 * options.base_op_delay;
  op_delay.store(post_delay, std::memory_order_relaxed);
  sleep_ns(settle(options.post_ns));
  const auto post_mid = mark();
  sleep_ns(options.post_ns - settle(options.post_ns));
  const auto post_end = mark();

  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();
  for (auto& monitor : monitors) monitor->stop_checking();
  for (auto& monitor : monitors) monitor->check_now();  // final segment

  BudgetSpikeResult result;
  result.budget_fraction = options.budget.fraction;
  result.baseline_spend = spend(run_started, baseline_end);
  result.spike_spend = spend(spike_mid, spike_end);
  result.post_spend = spend(post_mid, post_end);
  result.waitfor_passes_during_spike = spike_end.waitfor - spike_mid.waitfor;
  result.transitions = pool.budget_transitions();
  result.prediction_sheds = pool.prediction_sheds();
  result.inline_checks = pool.inline_checks();
  result.inline_flips = pool.inline_flips();
  result.budget_log = pool.budget_log();
  // Replay the transition log: every record must chain from the previous
  // level and move exactly one rung — which makes "prediction shed before
  // detection widened" and "recovery retraced the ladder" structural facts
  // of the log rather than sampled observations.
  int level = 0;
  for (const auto& record : result.budget_log) {
    if (record.from != level || std::abs(record.to - record.from) != 1 ||
        record.to < 0 ||
        record.to > static_cast<int>(rt::BudgetLevel::kWiden)) {
      result.shed_order_ok = false;
    }
    level = record.to;
    result.max_level = std::max(result.max_level, record.to);
  }
  result.final_level = level;
  result.recovered = result.final_level ==
                     static_cast<int>(rt::BudgetLevel::kNominal);
  result.operations = operations.load(std::memory_order_relaxed);
  result.events_lost = pool.events_lost();
  result.seconds = static_cast<double>(post_end.t - run_started.t) / 1e9;
  result.faults_expected = faulty;
  for (std::size_t i = 0; i < monitor_count; ++i) {
    const bool reported = sinks[i]->count() > 0;
    if (i < faulty) {
      if (reported) {
        ++result.faulty_detected;
      } else {
        ++result.missed_detections;
      }
    } else if (reported) {
      ++result.false_positive_monitors;
    }
  }
  return result;
}

}  // namespace robmon::wl
