#include "workloads/loadgen.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "workloads/account.hpp"
#include "workloads/allocator.hpp"
#include "workloads/bounded_buffer.hpp"

namespace robmon::wl {

namespace {

void simulated_work(util::TimeNs ns) {
  if (ns <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

core::MonitorSpec make_spec(const LoadOptions& options) {
  core::MonitorSpec spec;
  switch (options.type) {
    case core::MonitorType::kCommunicationCoordinator:
      spec = core::MonitorSpec::coordinator(
          "load-buffer", static_cast<std::int64_t>(options.capacity));
      break;
    case core::MonitorType::kResourceAllocator:
      spec = core::MonitorSpec::allocator("load-allocator");
      break;
    case core::MonitorType::kOperationManager:
      spec = core::MonitorSpec::manager("load-account");
      break;
  }
  spec.check_period = options.check_period;
  spec.t_max = options.t_max;
  spec.t_io = options.t_io;
  spec.t_limit = options.t_limit;
  return spec;
}

}  // namespace

LoadResult run_load(const LoadOptions& options) {
  core::CollectingSink sink;
  rt::RobustMonitor::Options monitor_options;
  monitor_options.instrumentation = options.instrumentation;
  monitor_options.hold_gate_during_check = options.hold_gate_during_check;
  rt::RobustMonitor monitor(make_spec(options), sink, monitor_options);

  const bool checking = options.periodic_checking &&
                        options.instrumentation == rt::Instrumentation::kFull;

  std::vector<std::thread> threads;
  std::uint64_t total_operations = 0;
  const auto started = std::chrono::steady_clock::now();

  switch (options.type) {
    case core::MonitorType::kCommunicationCoordinator: {
      BoundedBuffer buffer(monitor, options.capacity);
      const int producers = std::max(1, options.workers / 2);
      const int consumers = std::max(1, options.workers - producers);
      const std::int64_t total_items =
          options.ops_per_worker * static_cast<std::int64_t>(producers);
      const std::int64_t per_consumer = total_items / consumers;
      const std::int64_t remainder = total_items % consumers;
      if (checking) monitor.start_checking();
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          const trace::Pid pid = p;
          for (std::int64_t i = 0; i < options.ops_per_worker; ++i) {
            if (buffer.send(pid, i) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      for (int c = 0; c < consumers; ++c) {
        threads.emplace_back([&, c] {
          const trace::Pid pid = 1000 + c;
          const std::int64_t quota = per_consumer + (c == 0 ? remainder : 0);
          std::int64_t item = 0;
          for (std::int64_t i = 0; i < quota; ++i) {
            if (buffer.receive(pid, &item) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      total_operations =
          static_cast<std::uint64_t>(total_items) * 2;  // sends + receives
      for (auto& thread : threads) thread.join();
      break;
    }
    case core::MonitorType::kResourceAllocator: {
      ResourceAllocator allocator(
          monitor, static_cast<std::int64_t>(std::max<std::size_t>(
                       1, options.capacity)));
      const std::int64_t iterations = options.ops_per_worker / 2;
      if (checking) monitor.start_checking();
      for (int w = 0; w < options.workers; ++w) {
        threads.emplace_back([&, w] {
          const trace::Pid pid = w;
          ClientOptions client;
          client.iterations = static_cast<int>(iterations);
          client.hold_ns = options.work_ns;
          client.think_ns = 0;
          run_allocator_client(allocator, pid,
                               inject::NullInjection::instance(), client);
        });
      }
      total_operations = static_cast<std::uint64_t>(iterations) * 2 *
                         static_cast<std::uint64_t>(options.workers);
      for (auto& thread : threads) thread.join();
      break;
    }
    case core::MonitorType::kOperationManager: {
      AccountManager account(monitor,
                             static_cast<std::int64_t>(options.workers));
      const int depositors = std::max(1, options.workers / 2);
      const int withdrawers = std::max(1, options.workers - depositors);
      const std::int64_t deposits_total =
          options.ops_per_worker * static_cast<std::int64_t>(depositors);
      const std::int64_t per_withdrawer = deposits_total / withdrawers;
      const std::int64_t remainder = deposits_total % withdrawers;
      if (checking) monitor.start_checking();
      for (int d = 0; d < depositors; ++d) {
        threads.emplace_back([&, d] {
          const trace::Pid pid = d;
          for (std::int64_t i = 0; i < options.ops_per_worker; ++i) {
            if (account.deposit(pid, 1) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      for (int w = 0; w < withdrawers; ++w) {
        threads.emplace_back([&, w] {
          const trace::Pid pid = 1000 + w;
          const std::int64_t quota = per_withdrawer + (w == 0 ? remainder : 0);
          for (std::int64_t i = 0; i < quota; ++i) {
            if (account.withdraw(pid, 1) != rt::Status::kOk) return;
            simulated_work(options.work_ns);
          }
        });
      }
      total_operations = static_cast<std::uint64_t>(deposits_total) * 2;
      for (auto& thread : threads) thread.join();
      break;
    }
  }

  const auto finished = std::chrono::steady_clock::now();
  if (checking) {
    monitor.stop_checking();
    monitor.check_now();  // final segment
  }

  LoadResult result;
  result.operations = total_operations;
  result.seconds =
      std::chrono::duration<double>(finished - started).count();
  result.ops_per_second =
      result.seconds > 0 ? static_cast<double>(result.operations) /
                               result.seconds
                         : 0.0;
  result.checks_run = monitor.detector().checks_run();
  result.events_recorded = monitor.monitor().log().total_appended();
  result.faults_reported = sink.count();
  return result;
}

}  // namespace robmon::wl
