#include "workloads/allocator.hpp"

#include <chrono>
#include <thread>

namespace robmon::wl {

using core::FaultKind;

ResourceAllocator::ResourceAllocator(rt::RobustMonitor& monitor,
                                     std::int64_t units)
    : monitor_(&monitor), units_(units) {
  monitor_->set_resource_gauge([this] { return available(); });
}

ResourceAllocator::~ResourceAllocator() {
  monitor_->set_resource_gauge(nullptr);
}

std::int64_t ResourceAllocator::available() const {
  std::lock_guard<std::mutex> lock(units_mu_);
  return units_;
}

rt::Status ResourceAllocator::acquire(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "Acquire");
      status != rt::Status::kOk) {
    return status;
  }
  if (available() == 0) {
    if (const auto status = monitor_->wait(pid, "available");
        status != rt::Status::kOk) {
      return status;
    }
  }
  {
    std::lock_guard<std::mutex> lock(units_mu_);
    --units_;
  }
  // Register the hold before exiting the monitor: once this thread can
  // block elsewhere, the wait-for graph's hold edge is already visible.
  monitor_->note_hold(pid);
  monitor_->exit(pid);
  return rt::Status::kOk;
}

rt::Status ResourceAllocator::release(trace::Pid pid) {
  if (const auto status = monitor_->enter(pid, "Release");
      status != rt::Status::kOk) {
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(units_mu_);
    ++units_;
  }
  // Drop the hold edge before the unit is actually handed over; a missing
  // edge can only hide a cycle for one checkpoint, never fabricate one.
  monitor_->note_release(pid);
  monitor_->signal_exit(pid, "available");
  return rt::Status::kOk;
}

rt::Status run_allocator_client(
    ResourceAllocator& allocator, trace::Pid pid,
    inject::InjectionController& injection, const ClientOptions& options,
    const std::function<void(util::TimeNs)>& sleep_fn) {
  const auto sleep = [&](util::TimeNs ns) {
    if (ns <= 0) return;
    if (sleep_fn) {
      sleep_fn(ns);
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    }
  };

  for (int i = 0; i < options.iterations; ++i) {
    // Fault III.a: release a resource that was never acquired.
    if (injection.fire(FaultKind::kReleaseBeforeAcquire, pid)) {
      if (const auto status = allocator.release(pid);
          status != rt::Status::kOk) {
        return status;
      }
    }
    if (const auto status = allocator.acquire(pid);
        status != rt::Status::kOk) {
      return status;
    }
    // Fault III.c: acquire again while already holding (self-deadlock).
    if (injection.fire(FaultKind::kDoubleAcquireDeadlock, pid)) {
      if (const auto status = allocator.acquire(pid);
          status != rt::Status::kOk) {
        return status;
      }
    }
    sleep(options.hold_ns);
    // Fault III.b: never release the acquired resource.
    if (!injection.fire(FaultKind::kResourceNeverReleased, pid)) {
      if (const auto status = allocator.release(pid);
          status != rt::Status::kOk) {
        return status;
      }
    }
    sleep(options.think_ns);
  }
  return rt::Status::kOk;
}

}  // namespace robmon::wl
