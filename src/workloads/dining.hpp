// Dining philosophers over resource-access-right-allocator monitors: each
// fork is a one-unit allocator RobustMonitor with its own periodic checker.
// With the symmetric grab order (everyone takes the left fork first) the
// system can deadlock; the detection model then reports it through ST-8c
// (fork held beyond Tlimit), ST-5 (condition wait beyond Tmax) and ST-6 —
// the run-time manifestation of the paper's user-process-level fault III.c.
// The asymmetric variant (last philosopher grabs right first) is the
// fault-free control.
#pragma once

#include <cstdint>
#include <vector>

#include "core/fault.hpp"
#include "util/clock.hpp"

namespace robmon::wl {

struct DiningOptions {
  int philosophers = 5;
  int rounds = 50;
  util::TimeNs eat_ns = 200'000;    // 0.2 ms
  util::TimeNs think_ns = 100'000;  // 0.1 ms
  /// Pause between grabbing the first and second fork; a nonzero gap makes
  /// the circular wait near-certain under the symmetric order.
  util::TimeNs grab_gap_ns = 0;
  /// true = symmetric order (deadlock-prone); false = last philosopher
  /// grabs right-hand fork first (deadlock-free control).
  bool symmetric_order = true;
  util::TimeNs t_limit = 100 * util::kMillisecond;
  util::TimeNs t_max = 100 * util::kMillisecond;
  util::TimeNs t_io = 200 * util::kMillisecond;
  util::TimeNs check_period = 50 * util::kMillisecond;
  /// Give up (poison the forks) after this much wall-clock time.
  util::TimeNs run_timeout = 2 * util::kSecond;
};

struct DiningResult {
  bool completed = false;  ///< All philosophers finished all rounds.
  bool deadlock_reported = false;  ///< Any Tlimit/Tmax/Tio report.
  std::size_t fault_reports = 0;
  std::vector<core::FaultReport> reports;
};

DiningResult run_dining(const DiningOptions& options);

}  // namespace robmon::wl
