// Dining philosophers over resource-access-right-allocator monitors: each
// fork is a one-unit allocator RobustMonitor.  With the symmetric grab order
// (everyone takes the left fork first) the system can deadlock.
//
// Two detection paths exist for that deadlock:
//   * per-monitor (the paper's model): ST-8c (fork held beyond Tlimit),
//     ST-5/ST-6 — each fork reaches the verdict from its own history, but
//     only as a timeout, and without naming the cycle;
//   * pool-level (this repo's extension): the shared CheckerPool assembles
//     a cross-monitor wait-for graph and reports a structural GlobalDeadlock
//     fault naming the exact thread/monitor cycle, validated against live
//     snapshots (no false positives when a wait resolves on its own).
//
// run_dining drives one ring.  run_dining_load drives M rings against one
// shared pool, with deterministic hold-and-wait cycles injected into the
// first `deadlock_rings` rings (acquire left, rendezvous, acquire right),
// and accounts detection per ring: a correct engine reports a cycle for
// every injected ring and never names a clean ring.
//
// Recovery modes (DiningLoadOptions::recovery) turn the same workload into
// the liveness contract for the recovery engine: a ring that
// deterministically deadlocks must run to completion.
//   * kPoisonVictim / kDeliverFault — the injected rendezvous cycle closes
//     for real; the pool's recovery hook breaks it (victim monitor poisoned
//     or designated fault delivered), evicted philosophers hand back their
//     left fork and retry the full crossing until it succeeds (so unpoison-
//     restores-service is exercised too).
//   * kImposeOrder — pre-emption: the injected rings first run a serialized
//     "parade" (each philosopher briefly holds left+right) that records the
//     circular acquisition-order relation without any real deadlock; the
//     prediction checkpoint warns, the policy imposes the dominant order on
//     a sync::Gate, and only then does the ring attempt the rendezvous
//     crossing — gate-aware (order applied, crossing fenced), so the cycle
//     that would otherwise close deterministically never can.
// In every mode the acceptance contract is: all threads complete, exactly
// one recovery action per injected ring, zero actions on clean rings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "trace/codec.hpp"
#include "util/clock.hpp"

namespace robmon::wl {

/// Recovery remedy exercised by run_dining_load (kOff = detection only).
enum class DiningRecovery {
  kOff,
  kPoisonVictim,
  kDeliverFault,
  kImposeOrder,
};

struct DiningOptions {
  int philosophers = 5;
  int rounds = 50;
  util::TimeNs eat_ns = 200'000;    // 0.2 ms
  util::TimeNs think_ns = 100'000;  // 0.1 ms
  /// Pause between grabbing the first and second fork; a nonzero gap makes
  /// the circular wait near-certain under the symmetric order.
  util::TimeNs grab_gap_ns = 0;
  /// true = symmetric order (deadlock-prone); false = last philosopher
  /// grabs right-hand fork first (deadlock-free control).
  bool symmetric_order = true;
  util::TimeNs t_limit = 100 * util::kMillisecond;
  util::TimeNs t_max = 100 * util::kMillisecond;
  util::TimeNs t_io = 200 * util::kMillisecond;
  util::TimeNs check_period = 50 * util::kMillisecond;
  /// Pool-level wait-for checkpoint cadence; 0 falls back to timeout-only
  /// detection (the pre-pool behaviour).
  util::TimeNs checkpoint_period = 20 * util::kMillisecond;
  /// Give up (poison the forks) after this much wall-clock time.
  util::TimeNs run_timeout = 2 * util::kSecond;
};

struct DiningResult {
  bool completed = false;  ///< All philosophers finished all rounds.
  bool deadlock_reported = false;  ///< Any Tlimit/Tmax/Tio report.
  /// A structural GlobalDeadlock cycle was confirmed at a pool checkpoint.
  bool global_deadlock_reported = false;
  /// Messages of the confirmed cycles ("p0 waits on fork-1[...] ...").
  std::vector<std::string> cycles;
  std::size_t fault_reports = 0;
  std::vector<core::FaultReport> reports;
};

DiningResult run_dining(const DiningOptions& options);

// --- Multi-ring scenario (pool-level detection under load). ------------------

struct DiningLoadOptions {
  std::size_t rings = 3;      ///< M independent philosopher rings.
  int philosophers = 4;       ///< Per ring (and forks per ring).
  int rounds = 20;            ///< Eat/think rounds in clean rings.
  /// The first `deadlock_rings` rings get a deterministic injected
  /// hold-and-wait cycle: every philosopher acquires its left fork, the
  /// ring rendezvouses, then everyone goes for the right fork.
  std::size_t deadlock_rings = 1;
  util::TimeNs eat_ns = 100'000;
  util::TimeNs think_ns = 50'000;
  /// Generous per-monitor timers so the only deadlock verdicts come from
  /// the structural pool checkpoint, not ST-5/6/8c timeouts.
  util::TimeNs t_limit = 30 * util::kSecond;
  util::TimeNs t_max = 30 * util::kSecond;
  util::TimeNs t_io = 30 * util::kSecond;
  util::TimeNs check_period = 5 * util::kMillisecond;
  util::TimeNs checkpoint_period = 10 * util::kMillisecond;
  std::size_t pool_threads = 0;  ///< K for the shared pool; 0 = auto.
  util::TimeNs run_timeout = 5 * util::kSecond;
  /// Recovery mode (see file comment); kOff reproduces detection-only.
  DiningRecovery recovery = DiningRecovery::kOff;
};

struct DiningLoadResult {
  std::size_t deadlocks_expected = 0;  ///< == deadlock_rings.
  /// Injected rings for which a GlobalDeadlock cycle was reported.
  std::size_t deadlocked_rings_detected = 0;
  /// Missed = expected - detected (a correct engine misses none).
  std::size_t missed_detections = 0;
  /// Clean rings named by any reported cycle (must be 0).
  std::size_t false_positive_rings = 0;
  bool clean_rings_completed = false;
  std::vector<std::string> cycles;
  std::uint64_t checkpoints_run = 0;
  std::size_t fault_reports = 0;
  std::vector<core::FaultReport> reports;

  // --- Recovery accounting (all zero when recovery == kOff). ----------------
  /// Liveness: every injected-ring philosopher completed a full crossing.
  bool recovered_rings_completed = false;
  std::uint64_t recovery_actions = 0;  ///< Poisons + deliveries + impositions.
  std::uint64_t victims_poisoned = 0;
  std::uint64_t faults_delivered = 0;
  std::uint64_t orders_imposed = 0;
  std::uint64_t monitors_unpoisoned = 0;
  /// Wall-clock ns from the first confirmed/predicted report to the first
  /// recovery action (the bench's recovery-latency column); 0 = no action.
  std::uint64_t recovery_latency_ns = 0;
  /// The pool's codec v4 `rcov` records, in order.
  std::vector<trace::RecoveryRecord> recovery_log;
};

DiningLoadResult run_dining_load(const DiningLoadOptions& options);

}  // namespace robmon::wl
