#include "workloads/account.hpp"

namespace robmon::wl {

AccountManager::AccountManager(rt::RobustMonitor& monitor,
                               std::int64_t initial_balance)
    : monitor_(&monitor), balance_(initial_balance) {}

std::int64_t AccountManager::balance() const {
  std::lock_guard<std::mutex> lock(balance_mu_);
  return balance_;
}

rt::Status AccountManager::deposit(trace::Pid pid, std::int64_t amount) {
  if (const auto status = monitor_->enter(pid, "Deposit");
      status != rt::Status::kOk) {
    return status;
  }
  {
    std::lock_guard<std::mutex> lock(balance_mu_);
    balance_ += amount;
  }
  monitor_->signal_exit(pid, "funds");
  return rt::Status::kOk;
}

rt::Status AccountManager::withdraw(trace::Pid pid, std::int64_t amount) {
  if (const auto status = monitor_->enter(pid, "Withdraw");
      status != rt::Status::kOk) {
    return status;
  }
  // Each "funds" signal resumes one waiter; if the balance still does not
  // cover the request, wait again (multiple waits per call are legal).
  while (balance() < amount) {
    if (const auto status = monitor_->wait(pid, "funds");
        status != rt::Status::kOk) {
      return status;
    }
  }
  {
    std::lock_guard<std::mutex> lock(balance_mu_);
    balance_ -= amount;
  }
  monitor_->exit(pid);
  return rt::Status::kOk;
}

}  // namespace robmon::wl
