// Deterministic coverage scenarios on the simulator — the harness behind
// the paper's robustness evaluation ("Faults of different kinds ... are
// injected randomly ... The results show that all injected faults are
// detected").
//
// run_coverage_trial(kind, seed) builds the workload the catalog prescribes
// for the fault class (bounded-buffer producer/consumer on a coordinator
// monitor, or acquire/release clients on an allocator monitor), injects one
// fault of that class via ScriptedInjection, runs the periodic checker over
// virtual time, and reports whether the detector flagged it with one of the
// rules the catalog expects.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "core/fault.hpp"
#include "inject/catalog.hpp"
#include "inject/injection.hpp"
#include "sim/scheduler.hpp"
#include "sim/sim_monitor.hpp"

namespace robmon::wl {

/// Shared bounded-buffer state for the simulated coordinator workload.
struct SimBuffer {
  std::size_t capacity = 2;
  std::deque<std::int64_t> items;

  bool full() const { return items.size() >= capacity; }
  bool empty() const { return items.empty(); }
  std::int64_t free_slots() const {
    return static_cast<std::int64_t>(capacity) -
           static_cast<std::int64_t>(items.size());
  }
};

/// Monitor procedure "Send" (simulated).  `in_monitor_ns` models the
/// critical-section duration so that entries contend realistically.
sim::Op<> sim_send(sim::SimMonitor& monitor, SimBuffer& buffer,
                   trace::Pid pid, std::int64_t item,
                   inject::InjectionController& injection,
                   util::TimeNs in_monitor_ns);

/// Monitor procedure "Receive" (simulated).
sim::Op<> sim_receive(sim::SimMonitor& monitor, SimBuffer& buffer,
                      trace::Pid pid, inject::InjectionController& injection,
                      util::TimeNs in_monitor_ns);

/// Producer / consumer processes for the coordinator workload.
sim::Process sim_producer(sim::Scheduler& scheduler, sim::SimMonitor& monitor,
                          SimBuffer& buffer, trace::Pid pid, int operations,
                          inject::InjectionController& injection,
                          util::TimeNs in_monitor_ns, util::TimeNs think_ns,
                          util::TimeNs initial_delay_ns = 0);
sim::Process sim_consumer(sim::Scheduler& scheduler, sim::SimMonitor& monitor,
                          SimBuffer& buffer, trace::Pid pid, int operations,
                          inject::InjectionController& injection,
                          util::TimeNs in_monitor_ns, util::TimeNs think_ns,
                          util::TimeNs initial_delay_ns = 0);

/// Allocator workload: Acquire/Release of `units` with Level-III client
/// faults supplied by `injection`.
sim::Process sim_allocator_client(sim::Scheduler& scheduler,
                                  sim::SimMonitor& monitor,
                                  std::int64_t& units, trace::Pid pid,
                                  int iterations,
                                  inject::InjectionController& injection,
                                  util::TimeNs hold_ns,
                                  util::TimeNs think_ns);

struct CoverageOutcome {
  core::FaultKind kind;
  bool injected = false;   ///< The scripted fault actually struck.
  bool detected = false;   ///< A catalog-expected rule was reported.
  /// Checking period ordinal of the first matching report (1-based);
  /// 0 when undetected.
  std::uint64_t detection_check = 0;
  /// Which injection opportunity (1-based nth) produced the detection.
  /// Some faults can be serendipitously *masked* at a given opportunity —
  /// e.g. two entry waiters resumed together who both immediately wait on a
  /// condition replay as a legal execution; the paper acknowledges this
  /// incompleteness of post-checking (Section 3.3: "even if every step of
  /// the derivation is correct, this does not imply a fault-free
  /// situation").  The harness mirrors the paper's repeated random
  /// injection by advancing to the next opportunity.
  std::int64_t injection_attempt = 0;
  std::size_t total_reports = 0;
  std::vector<core::FaultReport> reports;
};

struct CoverageConfig {
  int producers = 3;
  int consumers = 3;
  int operations = 12;            ///< Per process.
  std::size_t buffer_capacity = 2;
  std::int64_t allocator_units = 2;
  util::TimeNs in_monitor_ns = 200'000;        // 200 us critical section
  util::TimeNs producer_think_ns = 50'000;     // producers burst
  util::TimeNs consumer_think_ns = 400'000;    // consumers lag -> full phases
  /// Producers start late so every consumer first observes an empty buffer
  /// and waits on "empty" — guaranteeing both wait flavours occur under
  /// every schedule seed.
  util::TimeNs producer_initial_delay_ns = 2 * util::kMillisecond;
  util::TimeNs t_max = 10 * util::kMillisecond;
  util::TimeNs t_io = 20 * util::kMillisecond;
  util::TimeNs t_limit = 20 * util::kMillisecond;
  util::TimeNs check_period = 15 * util::kMillisecond;  // T > Tmax (paper)
  std::uint64_t max_checks = 40;
  std::uint64_t max_steps = 4'000'000;
};

/// Inject one fault of `kind` into the prescribed workload under schedule
/// seed `seed`; return what the detector saw.
CoverageOutcome run_coverage_trial(core::FaultKind kind, std::uint64_t seed);
CoverageOutcome run_coverage_trial(core::FaultKind kind, std::uint64_t seed,
                                   const CoverageConfig& config);

/// Fault-free control run: same workloads, no injection; returns the number
/// of (spurious) reports — the soundness check expects zero.
std::size_t run_fault_free_trial(core::MonitorType type, std::uint64_t seed);
std::size_t run_fault_free_trial(core::MonitorType type, std::uint64_t seed,
                                 const CoverageConfig& config);

/// One trial recorded in the paper's T=1 mode (state after every event),
/// validated both by the interval-checking algorithms (ST) and by the
/// declarative FD-Rules of Section 3.2.  Used to test the paper's
/// FD-equivalent-to-ST claim.
struct FdTrialResult {
  bool injected = false;
  std::size_t event_count = 0;
  std::vector<core::FaultReport> st_reports;
  std::vector<core::FaultReport> fd_reports;
};

/// kind == nullopt -> fault-free control.
FdTrialResult run_fd_trial(std::optional<core::FaultKind> kind,
                           std::uint64_t seed);
FdTrialResult run_fd_trial(std::optional<core::FaultKind> kind,
                           std::uint64_t seed, const CoverageConfig& config);

}  // namespace robmon::wl
