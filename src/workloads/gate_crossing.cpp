#include "workloads/gate_crossing.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>

#include "core/recovery.hpp"
#include "runtime/checker_pool.hpp"
#include "sync/gate.hpp"
#include "workloads/allocator.hpp"

namespace robmon::wl {

namespace {

core::MonitorSpec lane_spec(const std::string& name,
                            const GateCrossingOptions& options) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_limit = options.t_limit;
  spec.t_max = options.t_max;
  spec.t_io = options.t_io;
  spec.check_period = options.check_period;
  return spec;
}

void pause(util::TimeNs ns) {
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

}  // namespace

GateCrossingResult run_gate_crossing(const GateCrossingOptions& options) {
  const std::size_t lanes = std::max<std::size_t>(2, options.lanes);
  const int threads = std::max(2, options.threads);
  const int rounds = std::max(1, options.rounds);

  core::CollectingSink sink;
  core::RecoveryPolicy::Options policy_options;
  policy_options.preempt_predicted = true;
  core::RecoveryPolicy policy(policy_options);
  sync::Gate recovery_gate;

  rt::CheckerPool::Options pool_options;
  pool_options.threads = options.pool_threads;
  pool_options.waitfor_checkpoint_period = options.waitfor_checkpoint_period;
  pool_options.waitfor_sink = &sink;
  pool_options.lockorder_checkpoint_period =
      options.lockorder_checkpoint_period;
  pool_options.lockorder_sink = &sink;
  if (options.recovery) {
    pool_options.recovery.policy = &policy;
    pool_options.recovery.gate = &recovery_gate;
  }
  rt::CheckerPool pool(pool_options);

  std::vector<std::unique_ptr<rt::RobustMonitor>> lane_monitors;
  std::vector<std::unique_ptr<ResourceAllocator>> lane_allocs;
  std::vector<std::string> lane_names;
  std::unordered_map<std::string, std::size_t> lane_index;
  lane_monitors.reserve(lanes);
  lane_allocs.reserve(lanes);
  rt::RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    lane_names.push_back("lane-" + std::to_string(lane));
    lane_index.emplace(lane_names.back(), lane);
    lane_monitors.push_back(std::make_unique<rt::RobustMonitor>(
        lane_spec(lane_names.back(), options), sink, monitor_options));
    lane_allocs.push_back(
        std::make_unique<ResourceAllocator>(*lane_monitors.back(), 1));
    lane_monitors.back()->start_checking();
  }

  // The gate: a process-wide mutex around the whole crossing.  It is not a
  // monitor, so the detection layer cannot see it — exactly the shape of a
  // real codebase whose ad-hoc serialization happens to mask a lock-order
  // bug today and disappears in next quarter's refactor.
  std::mutex gate;
  std::atomic<int> running{threads};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      const trace::Pid pid = t;
      std::vector<std::size_t> order(lanes);
      for (std::size_t k = 0; k < lanes; ++k) {
        order[k] = options.consistent_order
                       ? k
                       : (static_cast<std::size_t>(t) + k) % lanes;
      }
      for (int round = 0; round < rounds; ++round) {
        std::lock_guard<std::mutex> crossing(gate);
        // Gate-aware crossing: once the recovery policy has imposed an
        // order, cooperative call sites re-sort onto it (and fenced pids
        // cross exclusively), so later rounds stop witnessing the
        // minority direction.
        std::vector<std::size_t> seq = order;
        std::optional<sync::Gate::Scope> fence;
        if (options.recovery) {
          std::vector<std::string> names;
          names.reserve(lanes);
          for (const std::size_t lane : order) {
            names.push_back(lane_names[lane]);
          }
          recovery_gate.apply_order(names);
          seq.clear();
          for (const std::string& name : names) {
            seq.push_back(lane_index.at(name));
          }
          fence.emplace(recovery_gate, pid);
        }
        std::size_t taken = 0;
        for (; taken < lanes; ++taken) {
          if (lane_allocs[seq[taken]]->acquire(pid) != rt::Status::kOk) {
            break;  // poisoned: release what we hold and bail
          }
          pause(options.step_ns);
        }
        if (taken == lanes) pause(options.dwell_ns);
        for (std::size_t k = taken; k > 0; --k) {
          (void)lane_allocs[seq[k - 1]]->release(pid);
        }
        if (taken < lanes) break;
        pause(options.think_ns);
      }
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  // Observation loop: synchronous checks of every lane at sub-dwell
  // cadence make the multi-lane holds certainly snapshotted (the periodic
  // cadence alone would make detection probabilistic on slow CI runners).
  const util::TimeNs poll_ns =
      std::max<util::TimeNs>(options.dwell_ns / 4, 250'000);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::nanoseconds(options.run_timeout);
  while (running.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    for (auto& monitor : lane_monitors) monitor->check_now();
    pause(poll_ns);
  }
  const bool completed = running.load(std::memory_order_acquire) == 0;
  if (!completed) {
    for (auto& monitor : lane_monitors) monitor->poison();
  }
  for (auto& worker : workers) worker.join();

  // Closing passes: fold the final snapshots, then run both checkpoints
  // once more so the verdicts do not depend on periodic timing.
  for (auto& monitor : lane_monitors) monitor->check_now();
  pool.run_lockorder_checkpoint();
  pool.run_waitfor_checkpoint();
  for (auto& monitor : lane_monitors) monitor->stop_checking();

  GateCrossingResult result;
  result.completed = completed;
  result.lockorder_checkpoints = pool.lockorder_checkpoints();
  result.edges = pool.lockorder_edges();
  result.order_edges = result.edges.size();
  result.recovery_actions = pool.recovery_actions();
  result.orders_imposed = pool.orders_imposed();
  result.imposed_order = recovery_gate.imposed_order();
  result.recovery_log = pool.recovery_log();
  result.reports = sink.reports();
  result.fault_reports = result.reports.size();
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kLockOrderCycle) {
      ++result.potential_deadlocks;
      result.cycles.push_back(report.message);
    }
    if (report.rule == core::RuleId::kWfCycleDetected) {
      ++result.global_deadlocks;
    }
  }
  return result;
}

}  // namespace robmon::wl
