// Readers-writers controller — a resource-operation-manager monitor
// (Section 2.1) with two condition variables and writer priority, written
// in the baton-passing style that the paper's *combined* Signal-Exit
// naturally induces: a resumed reader passes the baton to the next waiting
// reader as it leaves the entry protocol, giving the classic reader
// cascade without an urgent queue.
//
// Procedures: StartRead / EndRead / StartWrite / EndWrite; processes use
// the implicit-synchronization wrappers read()/write() (the operation
// manager mediates everything, as Section 2.1 prescribes for this type).
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

class ReadersWriters {
 public:
  /// `monitor` must be a manager-type RobustMonitor.
  explicit ReadersWriters(rt::RobustMonitor& monitor);

  /// Execute `body` under shared (reader) access.
  rt::Status read(trace::Pid pid, const std::function<void()>& body);

  /// Execute `body` under exclusive (writer) access.
  rt::Status write(trace::Pid pid, const std::function<void()>& body);

  std::int64_t active_readers() const;
  bool writer_active() const;

 private:
  rt::Status start_read(trace::Pid pid);
  rt::Status end_read(trace::Pid pid);
  rt::Status start_write(trace::Pid pid);
  rt::Status end_write(trace::Pid pid);

  rt::RobustMonitor* monitor_;
  mutable std::mutex state_mu_;
  std::int64_t readers_ = 0;
  std::int64_t waiting_readers_ = 0;
  std::int64_t waiting_writers_ = 0;
  bool writing_ = false;
};

}  // namespace robmon::wl
