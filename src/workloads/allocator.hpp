// Resource-access-right allocator (Section 2.1): a monitor mediating
// Acquire/Release of a pool of identical units, with the declared call
// order (Acquire ; Release)* checked in real time by the RobustMonitor.
//
// The paper's three Level-III (user process) faults are bugs in *client*
// code, injected by the client driver:
//   III.a kReleaseBeforeAcquire   Release issued while holding nothing.
//   III.b kResourceNeverReleased  Acquired unit never returned.
//   III.c kDoubleAcquireDeadlock  Re-acquire while already holding.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "inject/injection.hpp"
#include "runtime/robust_monitor.hpp"

namespace robmon::wl {

class ResourceAllocator {
 public:
  /// `monitor` must be an allocator-type RobustMonitor.
  ResourceAllocator(rt::RobustMonitor& monitor, std::int64_t units);

  /// Unregisters the resource gauge: the monitor may outlive this wrapper
  /// and its checker would otherwise call a gauge capturing a dead `this`.
  ~ResourceAllocator();

  /// Monitor procedure "Acquire": blocks on condition "available" while no
  /// unit is free.
  rt::Status acquire(trace::Pid pid);

  /// Monitor procedure "Release": returns a unit, resuming one waiter.
  rt::Status release(trace::Pid pid);

  std::int64_t available() const;

 private:
  rt::RobustMonitor* monitor_;
  mutable std::mutex units_mu_;
  std::int64_t units_;
};

/// One client process's lifetime against the allocator.
struct ClientOptions {
  int iterations = 10;
  util::TimeNs hold_ns = 0;   ///< Simulated use of the resource.
  util::TimeNs think_ns = 0;  ///< Pause between iterations.
};

/// Runs acquire/use/release loops, consulting `injection` for the three
/// Level-III faults.  `sleep_fn` abstracts the delay (std::this_thread-based
/// by default) so tests can use virtual pauses.
rt::Status run_allocator_client(
    ResourceAllocator& allocator, trace::Pid pid,
    inject::InjectionController& injection, const ClientOptions& options,
    const std::function<void(util::TimeNs)>& sleep_fn = {});

}  // namespace robmon::wl
