#include "workloads/sim_scenarios.hpp"

#include <algorithm>
#include <memory>

#include "core/detector.hpp"
#include "core/fd_rules.hpp"
#include "core/monitor_spec.hpp"

namespace robmon::wl {

using core::FaultKind;
using core::MonitorType;

sim::Op<> sim_send(sim::SimMonitor& monitor, SimBuffer& buffer,
                   trace::Pid pid, std::int64_t item,
                   inject::InjectionController& injection,
                   util::TimeNs in_monitor_ns) {
  co_await monitor.enter("Send");
  if (in_monitor_ns > 0) {
    co_await monitor.scheduler().delay(in_monitor_ns);
  }
  // II.a: delayed although not full / II.d: not delayed although full.
  // Arming is conditioned on the state where the fault has an effect, so a
  // one-shot injection is not wasted on a no-op opportunity.
  const bool force_delay =
      !buffer.full() && injection.fire(FaultKind::kSendDelayWrong, pid);
  const bool skip_delay =
      buffer.full() && injection.fire(FaultKind::kSendExceedsCapacity, pid);
  if (force_delay || (buffer.full() && !skip_delay)) {
    co_await monitor.wait("full");
  }
  buffer.items.push_back(item);
  monitor.signal_exit("empty");
}

sim::Op<> sim_receive(sim::SimMonitor& monitor, SimBuffer& buffer,
                      trace::Pid pid, inject::InjectionController& injection,
                      util::TimeNs in_monitor_ns) {
  co_await monitor.enter("Receive");
  if (in_monitor_ns > 0) {
    co_await monitor.scheduler().delay(in_monitor_ns);
  }
  // II.b: delayed although not empty / II.c: fabricate instead of waiting.
  const bool force_delay =
      !buffer.empty() && injection.fire(FaultKind::kReceiveDelayWrong, pid);
  const bool fabricate =
      buffer.empty() && injection.fire(FaultKind::kReceiveExceedsSend, pid);
  if (force_delay || (buffer.empty() && !fabricate)) {
    co_await monitor.wait("empty");
  }
  if (!buffer.items.empty()) {
    buffer.items.pop_front();
  }
  monitor.signal_exit("full");
}

sim::Process sim_producer(sim::Scheduler& scheduler, sim::SimMonitor& monitor,
                          SimBuffer& buffer, trace::Pid pid, int operations,
                          inject::InjectionController& injection,
                          util::TimeNs in_monitor_ns, util::TimeNs think_ns,
                          util::TimeNs initial_delay_ns) {
  if (initial_delay_ns > 0) co_await scheduler.delay(initial_delay_ns);
  for (int i = 0; i < operations; ++i) {
    co_await sim_send(monitor, buffer, pid, i, injection, in_monitor_ns);
    if (think_ns > 0) co_await scheduler.delay(think_ns);
  }
}

sim::Process sim_consumer(sim::Scheduler& scheduler, sim::SimMonitor& monitor,
                          SimBuffer& buffer, trace::Pid pid, int operations,
                          inject::InjectionController& injection,
                          util::TimeNs in_monitor_ns, util::TimeNs think_ns,
                          util::TimeNs initial_delay_ns) {
  if (initial_delay_ns > 0) co_await scheduler.delay(initial_delay_ns);
  for (int i = 0; i < operations; ++i) {
    co_await sim_receive(monitor, buffer, pid, injection, in_monitor_ns);
    if (think_ns > 0) co_await scheduler.delay(think_ns);
  }
}

namespace {

sim::Op<> sim_acquire(sim::SimMonitor& monitor, std::int64_t& units,
                      util::TimeNs in_monitor_ns) {
  co_await monitor.enter("Acquire");
  if (in_monitor_ns > 0) {
    co_await monitor.scheduler().delay(in_monitor_ns);
  }
  if (units == 0) co_await monitor.wait("available");
  --units;
  monitor.exit();
}

sim::Op<> sim_release(sim::SimMonitor& monitor, std::int64_t& units,
                      util::TimeNs in_monitor_ns) {
  co_await monitor.enter("Release");
  if (in_monitor_ns > 0) {
    co_await monitor.scheduler().delay(in_monitor_ns);
  }
  ++units;
  monitor.signal_exit("available");
}

}  // namespace

sim::Process sim_allocator_client(sim::Scheduler& scheduler,
                                  sim::SimMonitor& monitor,
                                  std::int64_t& units, trace::Pid pid,
                                  int iterations,
                                  inject::InjectionController& injection,
                                  util::TimeNs hold_ns,
                                  util::TimeNs think_ns) {
  constexpr util::TimeNs kInMonitorNs = 50'000;
  for (int i = 0; i < iterations; ++i) {
    // III.a: release a resource that was never acquired.
    if (injection.fire(FaultKind::kReleaseBeforeAcquire, pid)) {
      co_await sim_release(monitor, units, kInMonitorNs);
    }
    co_await sim_acquire(monitor, units, kInMonitorNs);
    // III.c: acquire again while already holding.
    if (injection.fire(FaultKind::kDoubleAcquireDeadlock, pid)) {
      co_await sim_acquire(monitor, units, kInMonitorNs);
    }
    if (hold_ns > 0) co_await scheduler.delay(hold_ns);
    // III.b: never release.
    if (!injection.fire(FaultKind::kResourceNeverReleased, pid)) {
      co_await sim_release(monitor, units, kInMonitorNs);
    }
    if (think_ns > 0) co_await scheduler.delay(think_ns);
  }
}

namespace {

struct TrialRig {
  sim::Scheduler scheduler;
  core::MonitorSpec spec;
  std::unique_ptr<sim::SimMonitor> monitor;
  std::unique_ptr<core::CollectingSink> sink;
  std::unique_ptr<core::Detector> detector;
  std::int64_t allocator_units = 0;
  std::unique_ptr<SimBuffer> buffer;

  TrialRig(MonitorType type, std::uint64_t seed,
           const CoverageConfig& config,
           inject::InjectionController& injection)
      : scheduler(sim::Scheduler::Options{1000, sim::SchedulePolicy::kRandom,
                                          seed}) {
    if (type == MonitorType::kCommunicationCoordinator) {
      spec = core::MonitorSpec::coordinator(
          "cov-buffer", static_cast<std::int64_t>(config.buffer_capacity));
    } else {
      spec = core::MonitorSpec::allocator("cov-allocator");
    }
    spec.t_max = config.t_max;
    spec.t_io = config.t_io;
    spec.t_limit = config.t_limit;
    spec.check_period = config.check_period;

    monitor = std::make_unique<sim::SimMonitor>(spec, scheduler, injection);
    sink = std::make_unique<core::CollectingSink>();
    detector = std::make_unique<core::Detector>(spec, monitor->symbols(),
                                                *sink);

    if (type == MonitorType::kCommunicationCoordinator) {
      buffer = std::make_unique<SimBuffer>();
      buffer->capacity = config.buffer_capacity;
      monitor->set_resource_gauge(
          [state = buffer.get()] { return state->free_slots(); });
    } else {
      allocator_units = config.allocator_units;
      monitor->set_resource_gauge([this] { return allocator_units; });
    }
    detector->initialize(monitor->snapshot());
  }

  void spawn_workload(MonitorType type, const CoverageConfig& config,
                      inject::InjectionController& injection) {
    if (type == MonitorType::kCommunicationCoordinator) {
      const std::int64_t total =
          static_cast<std::int64_t>(config.producers) * config.operations;
      const std::int64_t per_consumer = total / config.consumers;
      const std::int64_t remainder = total % config.consumers;
      for (int p = 0; p < config.producers; ++p) {
        scheduler.spawn(
            p, sim_producer(scheduler, *monitor, *buffer, p,
                            config.operations, injection,
                            config.in_monitor_ns, config.producer_think_ns,
                            config.producer_initial_delay_ns));
      }
      for (int c = 0; c < config.consumers; ++c) {
        const auto quota =
            static_cast<int>(per_consumer + (c == 0 ? remainder : 0));
        scheduler.spawn(
            100 + c, sim_consumer(scheduler, *monitor, *buffer, 100 + c,
                                  quota, injection, config.in_monitor_ns,
                                  config.consumer_think_ns));
      }
    } else {
      const int clients = config.producers + config.consumers;
      for (int w = 0; w < clients; ++w) {
        scheduler.spawn(
            w, sim_allocator_client(scheduler, *monitor, allocator_units, w,
                                    config.operations / 2 + 1, injection,
                                    config.producer_think_ns,
                                    config.producer_think_ns));
      }
    }
  }

  void spawn_checker(const CoverageConfig& config) {
    sim::CheckerOptions checker_options;
    checker_options.max_checks = config.max_checks;
    // Cover the longest timer horizon plus slack.
    const util::TimeNs horizon =
        std::max({spec.t_max, spec.t_io, spec.t_limit});
    checker_options.min_checks =
        static_cast<std::uint64_t>(horizon / spec.check_period) + 3;
    // Harness tasks use pids below -1 (kNoPid is reserved).
    scheduler.spawn(-100, sim::periodic_checker(scheduler, *monitor,
                                                *detector, checker_options));
  }
};

}  // namespace

CoverageOutcome run_coverage_trial(core::FaultKind kind, std::uint64_t seed) {
  return run_coverage_trial(kind, seed, CoverageConfig{});
}

namespace {

CoverageOutcome run_one_attempt(core::FaultKind kind, std::uint64_t seed,
                                const CoverageConfig& config,
                                std::int64_t nth) {
  const inject::CatalogEntry& entry = inject::catalog_entry(kind);

  inject::ScriptedInjection::Plan plan;
  plan.kind = kind;
  plan.nth = nth;
  plan.sticky = inject::is_sticky_fault(kind);
  inject::ScriptedInjection injection(plan);

  TrialRig rig(entry.exercised_on, seed, config, injection);
  rig.spawn_workload(entry.exercised_on, config, injection);
  rig.spawn_checker(config);
  rig.scheduler.run(config.max_steps);
  rig.scheduler.rethrow_any_failure();

  CoverageOutcome outcome;
  outcome.kind = kind;
  outcome.injected = injection.fired();
  outcome.injection_attempt = nth;
  outcome.reports = rig.sink->reports();
  outcome.total_reports = outcome.reports.size();
  outcome.detected = inject::detected(entry, outcome.reports);
  if (outcome.detected) {
    util::TimeNs first = 0;
    for (const auto& report : outcome.reports) {
      const bool matches =
          std::find(entry.detecting_rules.begin(),
                    entry.detecting_rules.end(),
                    report.rule) != entry.detecting_rules.end();
      if (matches && (first == 0 || report.detected_at < first)) {
        first = report.detected_at;
      }
    }
    outcome.detection_check = static_cast<std::uint64_t>(
        (first + rig.spec.check_period - 1) / rig.spec.check_period);
  }
  return outcome;
}

}  // namespace

CoverageOutcome run_coverage_trial(core::FaultKind kind, std::uint64_t seed,
                                   const CoverageConfig& config) {
  constexpr std::int64_t kMaxAttempts = 12;
  CoverageOutcome outcome;
  for (std::int64_t nth = 1; nth <= kMaxAttempts; ++nth) {
    outcome = run_one_attempt(kind, seed, config, nth);
    // Detected, or the fault never even armed at this depth (no further
    // opportunities exist) -> stop.
    if (outcome.detected || !outcome.injected) break;
  }
  return outcome;
}

std::size_t run_fault_free_trial(core::MonitorType type, std::uint64_t seed) {
  return run_fault_free_trial(type, seed, CoverageConfig{});
}

std::size_t run_fault_free_trial(core::MonitorType type, std::uint64_t seed,
                                 const CoverageConfig& config) {
  TrialRig rig(type, seed, config, inject::NullInjection::instance());
  rig.spawn_workload(type, config, inject::NullInjection::instance());
  rig.spawn_checker(config);
  rig.scheduler.run(config.max_steps);
  rig.scheduler.rethrow_any_failure();
  return rig.sink->count();
}


FdTrialResult run_fd_trial(std::optional<core::FaultKind> kind,
                           std::uint64_t seed) {
  return run_fd_trial(kind, seed, CoverageConfig{});
}

FdTrialResult run_fd_trial(std::optional<core::FaultKind> kind,
                           std::uint64_t seed, const CoverageConfig& config) {
  const MonitorType type =
      kind ? inject::catalog_entry(*kind).exercised_on
           : MonitorType::kCommunicationCoordinator;

  inject::ScriptedInjection::Plan plan;
  plan.kind = kind.value_or(core::FaultKind::kEnterRequestLost);
  plan.sticky = kind ? inject::is_sticky_fault(*kind) : false;
  inject::ScriptedInjection scripted(plan);
  inject::InjectionController& injection =
      kind ? static_cast<inject::InjectionController&>(scripted)
           : inject::NullInjection::instance();

  TrialRig rig(type, seed, config, injection);
  rig.monitor->log().set_retention(true);
  rig.monitor->enable_state_trace();
  rig.spawn_workload(type, config, injection);
  rig.spawn_checker(config);
  rig.scheduler.run(config.max_steps);
  rig.scheduler.rethrow_any_failure();

  FdTrialResult result;
  result.injected = kind ? scripted.fired() : false;
  result.st_reports = rig.sink->reports();

  const auto events = rig.monitor->log().history();
  result.event_count = events.size();
  result.fd_reports = core::validate_fd_rules(
      rig.spec, rig.monitor->symbols(), events, rig.monitor->state_trace(),
      rig.scheduler.now());
  return result;
}

}  // namespace robmon::wl
