#include "trace/snapshot.hpp"

#include <sstream>

namespace robmon::trace {

namespace {
const std::vector<QueueEntry> kEmptyQueue;
}

const std::vector<QueueEntry>& SchedulingState::cond_entries(
    SymbolId cond) const {
  for (const auto& queue : cond_queues) {
    if (queue.cond == cond) return queue.entries;
  }
  return kEmptyQueue;
}

std::size_t SchedulingState::blocked_count() const {
  std::size_t n = entry_queue.size();
  for (const auto& queue : cond_queues) n += queue.entries.size();
  return n;
}

const HoldEntry* SchedulingState::hold_of(Tid pid) const {
  for (const auto& hold : holders) {
    if (hold.pid == pid) return &hold;
  }
  return nullptr;
}

std::string describe(const SchedulingState& state,
                     const SymbolTable& symbols) {
  std::ostringstream out;
  out << "state@" << state.captured_at << "ns";
  if (state.has_running()) {
    out << " running=p" << state.running << "("
        << symbols.name(state.running_proc) << ")";
  } else {
    out << " running=-";
  }
  if (state.resources >= 0) out << " R#=" << state.resources;
  out << "\n  EQ: [";
  for (std::size_t i = 0; i < state.entry_queue.size(); ++i) {
    if (i) out << ", ";
    out << "p" << state.entry_queue[i].pid << "("
        << symbols.name(state.entry_queue[i].proc) << ")";
  }
  out << "]";
  for (const auto& queue : state.cond_queues) {
    out << "\n  CQ[" << symbols.name(queue.cond) << "]: [";
    for (std::size_t i = 0; i < queue.entries.size(); ++i) {
      if (i) out << ", ";
      out << "p" << queue.entries[i].pid << "("
          << symbols.name(queue.entries[i].proc) << ")";
    }
    out << "]";
  }
  if (!state.holders.empty()) {
    out << "\n  holds: [";
    for (std::size_t i = 0; i < state.holders.size(); ++i) {
      if (i) out << ", ";
      out << "p" << state.holders[i].pid << "x" << state.holders[i].units;
    }
    out << "]";
  }
  return out.str();
}

}  // namespace robmon::trace
