#include "trace/event_log.hpp"

#include <mutex>
#include <utility>

namespace robmon::trace {

std::uint64_t EventLog::append(EventRecord event) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  event.seq = next_seq_++;
  buffer_.push_back(event);
  if (retain_history_) archive_.push_back(event);
  return event.seq;
}

std::vector<EventRecord> EventLog::drain() {
  std::vector<EventRecord> out;
  std::lock_guard<sync::SpinLock> lock(mu_);
  out.swap(buffer_);
  return out;
}

std::size_t EventLog::pending() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return buffer_.size();
}

std::uint64_t EventLog::total_appended() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return next_seq_;
}

void EventLog::set_retention(bool retain) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  retain_history_ = retain;
}

bool EventLog::retention() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return retain_history_;
}

std::vector<EventRecord> EventLog::history() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return archive_;
}

}  // namespace robmon::trace
