#include "trace/event_log.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

namespace robmon::trace {

namespace {

bool seq_less(const EventRecord& a, const EventRecord& b) {
  return a.seq < b.seq;
}

std::uint64_t next_log_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// seq_cursor packing: high 48 bits = next seq, low 16 bits = remaining
/// block allowance.  remaining == 0 means "refill from the global counter".
constexpr std::uint64_t kRemainingBits = 16;
constexpr std::uint64_t kRemainingMask =
    (std::uint64_t{1} << kRemainingBits) - 1;

constexpr std::uint64_t pack_cursor(std::uint64_t next_seq,
                                    std::uint64_t remaining) {
  return (next_seq << kRemainingBits) | remaining;
}

}  // namespace

EventLog::EventLog(Options options)
    : shard_count_(options.shards == 0 ? 1 : options.shards),
      seq_block_(std::min<std::uint64_t>(
          options.seq_block == 0 ? 1 : options.seq_block, kRemainingMask)),
      backend_(options.backend),
      ring_capacity_(options.ring_capacity),
      overflow_capacity_(options.overflow_capacity),
      log_id_(next_log_id()),
      shards_(std::make_unique<Shard[]>(shard_count_)),
      retain_history_(options.retain_history) {
  if (backend_ == Backend::kRing) {
    for (std::size_t i = 0; i < shard_count_; ++i) {
      shards_[i].ring =
          std::make_unique<sync::MpscRing<EventRecord>>(ring_capacity_);
    }
  }
}

EventLog::EventLog(bool retain_history, std::size_t shards,
                   std::uint64_t seq_block)
    : EventLog(Options{.retain_history = retain_history,
                       .shards = shards,
                       .seq_block = seq_block}) {}

EventLog::Shard& EventLog::shard_for_thread() {
  // Per-thread cache of the last (log, shard) pair: the hot path is one
  // compare + deref.  Keyed by log_id_, not address, so a log constructed
  // at a destroyed log's address cannot resolve to a dangling shard.
  struct Cache {
    std::uint64_t log_id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.log_id == log_id_) return *cache.shard;
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  cache.log_id = log_id_;
  cache.shard = &shards_[slot % shard_count_];
  return *cache.shard;
}

std::uint64_t EventLog::claim_seq(Shard& shard) {
  std::uint64_t packed = shard.seq_cursor.load(std::memory_order_relaxed);
  for (;;) {
    const std::uint64_t remaining = packed & kRemainingMask;
    if (remaining == 0) {
      // Block exhausted (or retired by a drain): draw a fresh block from
      // the global counter.  Losing the install CAS abandons the block —
      // a bounded seq gap, never a duplicate — and retries on the racing
      // appender's refill.
      const std::uint64_t base =
          next_seq_.fetch_add(seq_block_, std::memory_order_relaxed);
      if (shard.seq_cursor.compare_exchange_weak(
              packed, pack_cursor(base + 1, seq_block_ - 1),
              std::memory_order_relaxed)) {
        return base;
      }
      continue;
    }
    const std::uint64_t next = packed >> kRemainingBits;
    if (shard.seq_cursor.compare_exchange_weak(
            packed, pack_cursor(next + 1, remaining - 1),
            std::memory_order_relaxed)) {
      return next;
    }
  }
}

std::uint64_t EventLog::append(EventRecord event) {
  Shard& shard = shard_for_thread();
  if (backend_ == Backend::kLocked) {
    std::lock_guard<sync::SpinLock> lock(shard.mu);
    event.seq = claim_seq(shard);
    shard.active.push_back(event);
    // Plain store (not an RMW): appended is only written under shard.mu.
    shard.appended.store(shard.appended.load(std::memory_order_relaxed) + 1,
                         std::memory_order_relaxed);
    return event.seq;
  }

  event.seq = claim_seq(shard);
  if (shard.ring->try_push(event)) {
    shard.appended.fetch_add(1, std::memory_order_relaxed);
    return event.seq;
  }
  // Ring full (stalled or outpaced drain): bounded spill, then exact loss
  // accounting.  Never a silent drop.
  {
    std::lock_guard<sync::SpinLock> lock(shard.mu);
    if (overflow_capacity_ == 0 || shard.overflow.size() < overflow_capacity_) {
      shard.overflow.push_back(event);
      shard.appended.fetch_add(1, std::memory_order_relaxed);
      return event.seq;
    }
  }
  shard.lost.fetch_add(1, std::memory_order_relaxed);
  return event.seq;
}

std::vector<EventRecord> EventLog::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);

  std::vector<EventRecord> merged;
  if (backend_ == Backend::kRing) {
    // Consume each shard's published prefix (claimed-slot order, never
    // blocking appenders), then collect its overflow spill.  Retiring the
    // shard's sequence block pins the drain boundary in seq space: every
    // append that begins after this drain draws a block past the global
    // counter, so it sorts after everything returned here.
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[i];
      shard.ring->consume(
          [&merged](const EventRecord& event) { merged.push_back(event); });
      {
        std::lock_guard<sync::SpinLock> lock(shard.mu);
        if (!shard.overflow.empty()) {
          merged.insert(merged.end(), shard.overflow.begin(),
                        shard.overflow.end());
          shard.overflow.clear();
        }
      }
      shard.seq_cursor.store(0, std::memory_order_relaxed);
    }
  } else {
    // Constant-time handoff per shard: swap the append buffer for the
    // empty standby while holding the spinlock, merge outside every
    // append lock.
    std::size_t total = 0;
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[i];
      std::lock_guard<sync::SpinLock> lock(shard.mu);
      shard.active.swap(shard.standby);
      shard.seq_cursor.store(0, std::memory_order_relaxed);
      total += shard.standby.size();
    }
    merged.reserve(total);
    for (std::size_t i = 0; i < shard_count_; ++i) {
      Shard& shard = shards_[i];
      merged.insert(merged.end(), shard.standby.begin(), shard.standby.end());
      shard.standby.clear();  // keeps capacity for the next swap
    }
  }
  std::sort(merged.begin(), merged.end(), seq_less);

  drained_.fetch_add(merged.size(), std::memory_order_relaxed);
  if (retain_history_.load(std::memory_order_relaxed) && !merged.empty()) {
    auto segment = std::make_shared<const std::vector<EventRecord>>(merged);
    std::lock_guard<sync::SpinLock> lock(archive_mu_);
    archive_segments_.push_back(std::move(segment));
  }
  return merged;
}

std::size_t EventLog::pending() const {
  std::uint64_t appended = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    appended += shards_[i].appended.load(std::memory_order_relaxed);
  }
  const std::uint64_t drained = drained_.load(std::memory_order_relaxed);
  return appended >= drained ? static_cast<std::size_t>(appended - drained)
                             : 0;
}

std::uint64_t EventLog::total_appended() const {
  std::uint64_t appended = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    appended += shards_[i].appended.load(std::memory_order_relaxed);
  }
  return appended;
}

std::uint64_t EventLog::events_lost() const {
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    lost += shards_[i].lost.load(std::memory_order_relaxed);
  }
  return lost;
}

void EventLog::set_retention(bool retain) {
  retain_history_.store(retain, std::memory_order_relaxed);
}

bool EventLog::retention() const {
  return retain_history_.load(std::memory_order_relaxed);
}

std::vector<EventRecord> EventLog::pending_snapshot() const {
  std::vector<EventRecord> out;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    if (backend_ == Backend::kRing) {
      shard.ring->peek(
          [&out](const EventRecord& event) { out.push_back(event); });
      std::lock_guard<sync::SpinLock> lock(shard.mu);
      out.insert(out.end(), shard.overflow.begin(), shard.overflow.end());
    } else {
      std::lock_guard<sync::SpinLock> lock(shard.mu);
      out.insert(out.end(), shard.active.begin(), shard.active.end());
    }
  }
  std::sort(out.begin(), out.end(), seq_less);
  return out;
}

std::vector<EventRecord> EventLog::history() const {
  if (!retention()) return {};

  // Excluding drains (drain_mu_) keeps "archived" and "pending" disjoint
  // and satisfies the rings' single-consumer-side requirement for peek;
  // appenders are never blocked by history readers.  Drain-boundary seq
  // monotonicity keeps the concatenation in sequence order.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  std::vector<Segment> segments;
  {
    std::lock_guard<sync::SpinLock> lock(archive_mu_);
    segments = archive_segments_;
  }
  std::vector<EventRecord> pending_events = pending_snapshot();

  std::size_t total = pending_events.size();
  for (const Segment& segment : segments) total += segment->size();
  std::vector<EventRecord> out;
  out.reserve(total);
  for (const Segment& segment : segments) {
    out.insert(out.end(), segment->begin(), segment->end());
  }
  out.insert(out.end(), pending_events.begin(), pending_events.end());
  return out;
}

}  // namespace robmon::trace
