#include "trace/event_log.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

namespace robmon::trace {

namespace {

bool seq_less(const EventRecord& a, const EventRecord& b) {
  return a.seq < b.seq;
}

std::uint64_t next_log_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

EventLog::EventLog(bool retain_history, std::size_t shards,
                   std::uint64_t seq_block)
    : shard_count_(shards == 0 ? 1 : shards),
      seq_block_(seq_block == 0 ? 1 : seq_block),
      log_id_(next_log_id()),
      shards_(std::make_unique<Shard[]>(shard_count_)),
      retain_history_(retain_history) {}

EventLog::Shard& EventLog::shard_for_thread() {
  // Per-thread cache of the last (log, shard) pair: the hot path is one
  // compare + deref.  Keyed by log_id_, not address, so a log constructed
  // at a destroyed log's address cannot resolve to a dangling shard.
  struct Cache {
    std::uint64_t log_id = 0;
    Shard* shard = nullptr;
  };
  thread_local Cache cache;
  if (cache.log_id == log_id_) return *cache.shard;
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed);
  cache.log_id = log_id_;
  cache.shard = &shards_[slot % shard_count_];
  return *cache.shard;
}

std::uint64_t EventLog::append(EventRecord event) {
  Shard& shard = shard_for_thread();
  std::lock_guard<sync::SpinLock> lock(shard.mu);
  if (shard.seq_next == shard.seq_end) {
    shard.seq_next = next_seq_.fetch_add(seq_block_, std::memory_order_relaxed);
    shard.seq_end = shard.seq_next + seq_block_;
  }
  event.seq = shard.seq_next++;
  shard.active.push_back(event);
  // Plain store (not an RMW): appended is only written under shard.mu.
  shard.appended.store(shard.appended.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  return event.seq;
}

std::vector<EventRecord> EventLog::drain() {
  std::lock_guard<std::mutex> drain_lock(drain_mu_);

  // Constant-time handoff per shard: swap the append buffer for the empty
  // standby while holding the spinlock, merge outside every append lock.
  // Retiring the shard's sequence block pins the drain boundary in seq
  // space: every later append draws a block past the global counter, so it
  // sorts after everything returned here.
  std::size_t total = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<sync::SpinLock> lock(shard.mu);
    shard.active.swap(shard.standby);
    shard.seq_next = shard.seq_end;
    total += shard.standby.size();
  }

  std::vector<EventRecord> merged;
  merged.reserve(total);
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    merged.insert(merged.end(), shard.standby.begin(), shard.standby.end());
    shard.standby.clear();  // keeps capacity for the next swap
  }
  std::sort(merged.begin(), merged.end(), seq_less);

  drained_.fetch_add(merged.size(), std::memory_order_relaxed);
  if (retain_history_.load(std::memory_order_relaxed) && !merged.empty()) {
    auto segment = std::make_shared<const std::vector<EventRecord>>(merged);
    std::lock_guard<sync::SpinLock> lock(archive_mu_);
    archive_segments_.push_back(std::move(segment));
  }
  return merged;
}

std::size_t EventLog::pending() const {
  std::uint64_t appended = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    appended += shards_[i].appended.load(std::memory_order_relaxed);
  }
  const std::uint64_t drained = drained_.load(std::memory_order_relaxed);
  return appended >= drained ? static_cast<std::size_t>(appended - drained)
                             : 0;
}

std::uint64_t EventLog::total_appended() const {
  std::uint64_t appended = 0;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    appended += shards_[i].appended.load(std::memory_order_relaxed);
  }
  return appended;
}

void EventLog::set_retention(bool retain) {
  retain_history_.store(retain, std::memory_order_relaxed);
}

bool EventLog::retention() const {
  return retain_history_.load(std::memory_order_relaxed);
}

std::vector<EventRecord> EventLog::pending_snapshot() const {
  std::vector<EventRecord> out;
  for (std::size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<sync::SpinLock> lock(shard.mu);
    out.insert(out.end(), shard.active.begin(), shard.active.end());
  }
  std::sort(out.begin(), out.end(), seq_less);
  return out;
}

std::vector<EventRecord> EventLog::history() const {
  if (!retention()) return {};

  // Excluding drains (drain_mu_) keeps "archived" and "pending" disjoint;
  // appenders are never blocked by history readers.  Drain-boundary seq
  // monotonicity keeps the concatenation in sequence order.
  std::lock_guard<std::mutex> drain_lock(drain_mu_);
  std::vector<Segment> segments;
  {
    std::lock_guard<sync::SpinLock> lock(archive_mu_);
    segments = archive_segments_;
  }
  std::vector<EventRecord> pending_events = pending_snapshot();

  std::size_t total = pending_events.size();
  for (const Segment& segment : segments) total += segment->size();
  std::vector<EventRecord> out;
  out.reserve(total);
  for (const Segment& segment : segments) {
    out.insert(out.end(), segment->begin(), segment->end());
  }
  out.insert(out.end(), pending_events.begin(), pending_events.end());
  return out;
}

}  // namespace robmon::trace
