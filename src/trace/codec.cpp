#include "trace/codec.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

namespace robmon::trace {

namespace {

char kind_code(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter:
      return 'E';
    case EventKind::kWait:
      return 'W';
    case EventKind::kSignalExit:
      return 'S';
  }
  return '?';
}

EventKind kind_from_code(char code, std::size_t line_no) {
  switch (code) {
    case 'E':
      return EventKind::kEnter;
    case 'W':
      return EventKind::kWait;
    case 'S':
      return EventKind::kSignalExit;
    default:
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": bad event kind '" + std::string(1, code) +
                               "'");
  }
}

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("trace line " + std::to_string(line_no) + ": " +
                           what);
}

}  // namespace

void write_trace(std::ostream& out, const TraceFile& trace) {
  // v6 adds `bdgt` budget-transition lines; v5 adds the `loss`
  // ingestion-loss line (omitted when zero); v4 adds `rcov` recovery-action
  // lines; v3 adds `lord` lock-order-witness lines; v2 appends the episode
  // ticket as a trailing field on state/eq/cq/hold lines.  Older documents
  // (no bdgt/loss/rcov/lord lines, no tickets) still parse, with the absent
  // data defaulted.
  out << "robmon-trace v6\n";
  out << "monitor " << trace.monitor_name << " " << trace.monitor_type << " "
      << trace.rmax << "\n";
  if (trace.events_lost > 0) out << "loss " << trace.events_lost << "\n";
  for (std::size_t i = 0; i < trace.symbols.size(); ++i) {
    out << "sym " << i << " " << trace.symbols[i] << "\n";
  }
  for (const auto& ev : trace.events) {
    out << "ev " << ev.seq << " " << ev.time << " " << kind_code(ev.kind)
        << " " << ev.pid << " " << ev.proc << " " << ev.cond << " "
        << (ev.flag ? 1 : 0) << "\n";
  }
  for (const auto& state : trace.checkpoints) {
    out << "state " << state.captured_at << " " << state.resources << " "
        << state.running << " " << state.running_proc << " "
        << state.running_since << " " << state.running_ticket << "\n";
    for (const auto& entry : state.entry_queue) {
      out << "eq " << entry.pid << " " << entry.proc << " "
          << entry.enqueued_at << " " << entry.ticket << "\n";
    }
    for (const auto& queue : state.cond_queues) {
      for (const auto& entry : queue.entries) {
        out << "cq " << queue.cond << " " << entry.pid << " " << entry.proc
            << " " << entry.enqueued_at << " " << entry.ticket << "\n";
      }
      if (queue.entries.empty()) {
        out << "cq " << queue.cond << " -1 -1 0 0\n";  // declare empty queue
      }
    }
    for (const auto& hold : state.holders) {
      out << "hold " << hold.pid << " " << hold.units << " "
          << hold.held_since << " " << hold.ticket << "\n";
    }
    out << "endstate\n";
  }
  for (const auto& record : trace.lock_order) {
    out << "lord " << record.from << " " << record.to << " " << record.pid
        << " " << record.from_ticket << " " << record.to_ticket << " "
        << (record.to_wait ? 'W' : 'H') << "\n";
  }
  for (const auto& record : trace.recovery) {
    out << "rcov " << record.action << " " << record.victim << " "
        << (record.monitor.empty() ? "-" : record.monitor) << " "
        << record.ticket << " " << record.at;
    if (!record.detail.empty()) out << " " << record.detail;
    out << "\n";
  }
  for (const auto& record : trace.budget) {
    out << "bdgt " << record.from << " " << record.to << " "
        << record.spend_ppm << " " << record.budget_ppm << " " << record.at;
    if (!record.detail.empty()) out << " " << record.detail;
    out << "\n";
  }
}

std::string write_trace_string(const TraceFile& trace) {
  std::ostringstream out;
  write_trace(out, trace);
  return out.str();
}

TraceFile read_trace(std::istream& in) {
  TraceFile trace;
  std::string line;
  std::size_t line_no = 0;
  bool in_state = false;
  SchedulingState current;

  auto flush_state = [&] {
    if (in_state) parse_error(line_no, "unterminated state block");
  };

  if (!std::getline(in, line)) parse_error(1, "empty trace");
  ++line_no;
  if (line != "robmon-trace v6" && line != "robmon-trace v5" &&
      line != "robmon-trace v4" && line != "robmon-trace v3" &&
      line != "robmon-trace v2" && line != "robmon-trace v1") {
    parse_error(1, "bad magic: " + line);
  }

  // Tickets are a trailing v2 field; absent (v1) they default to 0, but a
  // present-and-malformed value is a parse error like any other field.
  auto read_ticket = [&line_no](std::istringstream& fields) -> std::uint64_t {
    std::uint64_t ticket = 0;
    if (fields >> ticket) return ticket;
    if (fields.eof()) return 0;  // v1 line: field absent
    parse_error(line_no, "bad ticket field");
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "monitor") {
      fields >> trace.monitor_name >> trace.monitor_type >> trace.rmax;
    } else if (tag == "loss") {
      fields >> trace.events_lost;
      if (fields.fail()) parse_error(line_no, "bad loss line");
    } else if (tag == "sym") {
      std::size_t id = 0;
      std::string name;
      fields >> id >> name;
      if (fields.fail()) parse_error(line_no, "bad sym line");
      if (id != trace.symbols.size()) {
        parse_error(line_no, "non-dense symbol id");
      }
      trace.symbols.push_back(name);
    } else if (tag == "ev") {
      EventRecord ev;
      char code = '?';
      int flag = 0;
      fields >> ev.seq >> ev.time >> code >> ev.pid >> ev.proc >> ev.cond >>
          flag;
      if (fields.fail()) parse_error(line_no, "bad ev line");
      ev.kind = kind_from_code(code, line_no);
      ev.flag = flag != 0;
      trace.events.push_back(ev);
    } else if (tag == "state") {
      if (in_state) parse_error(line_no, "nested state block");
      current = SchedulingState{};
      fields >> current.captured_at >> current.resources >> current.running >>
          current.running_proc >> current.running_since;
      if (fields.fail()) parse_error(line_no, "bad state line");
      current.running_ticket = read_ticket(fields);
      in_state = true;
    } else if (tag == "eq") {
      if (!in_state) parse_error(line_no, "eq outside state block");
      QueueEntry entry;
      fields >> entry.pid >> entry.proc >> entry.enqueued_at;
      if (fields.fail()) parse_error(line_no, "bad eq line");
      entry.ticket = read_ticket(fields);
      current.entry_queue.push_back(entry);
    } else if (tag == "cq") {
      if (!in_state) parse_error(line_no, "cq outside state block");
      SymbolId cond = kNoSymbol;
      QueueEntry entry;
      fields >> cond >> entry.pid >> entry.proc >> entry.enqueued_at;
      if (fields.fail()) parse_error(line_no, "bad cq line");
      entry.ticket = read_ticket(fields);
      auto* queue_state = [&]() -> CondQueueState* {
        for (auto& q : current.cond_queues) {
          if (q.cond == cond) return &q;
        }
        current.cond_queues.push_back(CondQueueState{cond, {}});
        return &current.cond_queues.back();
      }();
      if (entry.pid != kNoPid) queue_state->entries.push_back(entry);
    } else if (tag == "hold") {
      if (!in_state) parse_error(line_no, "hold outside state block");
      HoldEntry hold;
      fields >> hold.pid >> hold.units >> hold.held_since;
      if (fields.fail()) parse_error(line_no, "bad hold line");
      hold.ticket = read_ticket(fields);
      current.holders.push_back(hold);
    } else if (tag == "endstate") {
      if (!in_state) parse_error(line_no, "endstate outside state block");
      trace.checkpoints.push_back(current);
      in_state = false;
    } else if (tag == "lord") {
      LockOrderRecord record;
      char kind = '?';
      fields >> record.from >> record.to >> record.pid >>
          record.from_ticket >> record.to_ticket >> kind;
      if (fields.fail() || (kind != 'W' && kind != 'H')) {
        parse_error(line_no, "bad lord line");
      }
      record.to_wait = kind == 'W';
      trace.lock_order.push_back(std::move(record));
    } else if (tag == "rcov") {
      RecoveryRecord record;
      fields >> record.action >> record.victim >> record.monitor >>
          record.ticket >> record.at;
      if (fields.fail() || std::string("PFOC").find(record.action) ==
                               std::string::npos) {
        parse_error(line_no, "bad rcov line");
      }
      if (record.monitor == "-") record.monitor.clear();
      // The rationale is the free-text remainder of the line.
      std::getline(fields >> std::ws, record.detail);
      trace.recovery.push_back(std::move(record));
    } else if (tag == "bdgt") {
      BudgetRecord record;
      fields >> record.from >> record.to >> record.spend_ppm >>
          record.budget_ppm >> record.at;
      // Levels are the documented four-step shed ladder; anything outside
      // it is a malformed document, not a future extension point.
      if (fields.fail() || record.from < 0 || record.from > 3 ||
          record.to < 0 || record.to > 3) {
        parse_error(line_no, "bad bdgt line");
      }
      std::getline(fields >> std::ws, record.detail);
      trace.budget.push_back(std::move(record));
    } else {
      parse_error(line_no, "unknown tag: " + tag);
    }
  }
  flush_state();
  return trace;
}

TraceFile read_trace_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

TraceFile make_trace_file(const std::string& monitor_name,
                          const std::string& monitor_type, std::int64_t rmax,
                          const SymbolTable& symbols,
                          const std::vector<EventRecord>& events,
                          const std::vector<SchedulingState>& checkpoints,
                          std::uint64_t events_lost) {
  TraceFile trace;
  trace.monitor_name = monitor_name;
  trace.monitor_type = monitor_type;
  trace.rmax = rmax;
  trace.events_lost = events_lost;
  trace.symbols.reserve(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    trace.symbols.push_back(symbols.name(static_cast<SymbolId>(i)));
  }
  trace.events = events;
  trace.checkpoints = checkpoints;
  return trace;
}

}  // namespace robmon::trace
