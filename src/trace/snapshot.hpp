// Scheduling state — the paper's 3-tuple <EQ, CQ[], R#> (Section 3.1),
// extended with the active process ("Running", Section 3.3.1) and per-entry
// enqueue timestamps so that the Timer(Pid) checks (ST-Rules 5/6, Tlimit)
// can be evaluated at a checking point.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "util/clock.hpp"

namespace robmon::trace {

/// One process parked on a queue: who, which procedure it called, and when
/// it was enqueued (for Timer checks).  `ticket` is the monitor's monotonic
/// episode counter, bumped once per blocking episode: it identifies the
/// episode independently of the clock (two episodes under a frozen
/// ManualClock share a timestamp but never a ticket).  0 = unknown
/// (pre-ticket traces).
struct QueueEntry {
  Tid pid = kNoTid;
  SymbolId proc = kNoSymbol;
  util::TimeNs enqueued_at = 0;
  std::uint64_t ticket = 0;

  bool operator==(const QueueEntry&) const = default;
};

/// A condition queue and its contents, ordered oldest-first.
struct CondQueueState {
  SymbolId cond = kNoSymbol;
  std::vector<QueueEntry> entries;

  bool operator==(const CondQueueState&) const = default;
};

/// One process holding a unit of the monitor's resource (registered by the
/// workload wrapper via HoareMonitor::note_hold; allocator monitors).  The
/// holds plus the blocked queues give the pool-level wait-for graph its
/// monitor→thread and thread→monitor edges.
struct HoldEntry {
  Tid pid = kNoTid;
  std::int64_t units = 0;        ///< Units currently held (≥ 1).
  util::TimeNs held_since = 0;   ///< Start of the oldest outstanding hold.
  std::uint64_t ticket = 0;      ///< Episode ticket of the oldest hold.

  bool operator==(const HoldEntry&) const = default;
};

/// Snapshot of a monitor's scheduling state at a checking point.
struct SchedulingState {
  util::TimeNs captured_at = 0;

  /// EQ: external entry queue, oldest-first.
  std::vector<QueueEntry> entry_queue;

  /// CQ[]: one state per condition variable, sorted by cond id.
  std::vector<CondQueueState> cond_queues;

  /// R#: available resources (communication-coordinator monitors; free
  /// buffer slots for a bounded buffer).  -1 when not applicable.
  std::int64_t resources = -1;

  /// Outstanding resource holds, sorted by pid (allocator monitors with a
  /// hold registry; empty otherwise).
  std::vector<HoldEntry> holders;

  /// The process currently running inside the monitor, if any.
  Tid running = kNoTid;
  SymbolId running_proc = kNoSymbol;
  util::TimeNs running_since = 0;
  /// Episode ticket of the current ownership (one per ownership hand-off);
  /// 0 when nobody runs or the trace predates tickets.
  std::uint64_t running_ticket = 0;

  bool has_running() const { return running != kNoTid; }

  /// Entries of CQ[cond]; empty vector when the condition has no queue yet.
  const std::vector<QueueEntry>& cond_entries(SymbolId cond) const;

  /// Total processes blocked on EQ plus all condition queues.
  std::size_t blocked_count() const;

  /// Hold entry for `pid`; nullptr when it holds nothing.
  const HoldEntry* hold_of(Tid pid) const;

  bool operator==(const SchedulingState&) const = default;
};

/// Multi-line human-readable rendering for reports and debugging.
std::string describe(const SchedulingState& state, const SymbolTable& symbols);

}  // namespace robmon::trace
