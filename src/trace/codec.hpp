// Line-oriented text serialization of recorded history: symbol table,
// scheduling events, and checkpoint scheduling states.  Enables offline
// replay of the detection algorithms over saved traces (examples/trace_replay)
// and golden-file tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::trace {

/// In-memory representation of a serialized trace.
struct TraceFile {
  std::string monitor_name;
  std::string monitor_type;  ///< "coordinator" | "allocator" | "manager".
  std::int64_t rmax = -1;
  std::vector<std::string> symbols;  ///< index = SymbolId.
  std::vector<EventRecord> events;
  std::vector<SchedulingState> checkpoints;
};

/// Serialize to the robmon-trace v2 text format (v1 plus per-entry episode
/// tickets on state/eq/cq/hold lines).
void write_trace(std::ostream& out, const TraceFile& trace);
std::string write_trace_string(const TraceFile& trace);

/// Parse a robmon-trace v1 or v2 document (v1 entries get ticket 0).
/// Throws std::runtime_error with a line-numbered message on malformed
/// input.
TraceFile read_trace(std::istream& in);
TraceFile read_trace_string(const std::string& text);

/// Build a TraceFile from live recording state.
TraceFile make_trace_file(const std::string& monitor_name,
                          const std::string& monitor_type, std::int64_t rmax,
                          const SymbolTable& symbols,
                          const std::vector<EventRecord>& events,
                          const std::vector<SchedulingState>& checkpoints);

}  // namespace robmon::trace
