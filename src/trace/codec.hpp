// Line-oriented text serialization of recorded history: symbol table,
// scheduling events, and checkpoint scheduling states.  Enables offline
// replay of the detection algorithms over saved traces (examples/trace_replay)
// and golden-file tests.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::trace {

/// One persisted lock-order witness (robmon-trace v3 `lord` line): `pid`
/// held monitor `from` (episode `from_ticket`) while holding or — when
/// `to_wait` — blocked acquiring monitor `to` (episode `to_ticket`).
/// Monitors are named, not id'd: ids are a pool-lifetime artifact, names
/// survive replay.  The relation is pool-scoped; by convention it is
/// attached to whichever TraceFile the recording session exports.
struct LockOrderRecord {
  std::string from;
  std::string to;
  Pid pid = kNoPid;
  std::uint64_t from_ticket = 0;
  std::uint64_t to_ticket = 0;
  bool to_wait = false;

  bool operator==(const LockOrderRecord&) const = default;
};

/// One persisted recovery action (robmon-trace v4 `rcov` line): what the
/// recovery policy did and why.  `action` is one of
///   'P'  victim monitor poisoned (waiters wake with RecoveryFault),
///   'F'  designated RecoveryFault delivered to the victim thread,
///   'O'  dominant acquisition order imposed (minority call sites fenced),
///   'C'  recovery complete — victim monitor unpoisoned, service restored.
/// `victim` / `monitor` / `ticket` identify the chosen victim (kNoPid /
/// empty / 0 when the action has none, e.g. an order imposition names only
/// the fenced edge in `detail`).  `detail` is the policy's rationale — the
/// cycle that triggered the action plus the comparator verdict — and is the
/// free-text remainder of the line.
struct RecoveryRecord {
  char action = '?';
  Pid victim = kNoPid;
  std::string monitor;
  std::uint64_t ticket = 0;
  util::TimeNs at = 0;
  std::string detail;

  bool operator==(const RecoveryRecord&) const = default;
};

/// One persisted overhead-budget transition (robmon-trace v6 `bdgt` line):
/// the pool's BudgetController moved from degradation level `from` to `to`
/// because its spend EWMA crossed the configured budget (or the recovery
/// threshold under it).  Levels are the documented shed ladder:
///   0  nominal — full detection and prediction,
///   1  idle cadence stretched harder (and inline monitors offloaded),
///   2  lock-order *prediction* shed (confirmed-cycle detection untouched),
///   3  detection periods widened toward Tmax (never dropped).
/// `spend_ppm` / `budget_ppm` are the spend EWMA and the budget as integer
/// parts-per-million of wall time — integers so a round-trip is exact.
/// `detail` is the free-text remainder of the line: what was shed or
/// restored.  The log is pool-scoped, like the lock-order relation and the
/// recovery log; replay re-derives what was shed and when from these lines.
struct BudgetRecord {
  int from = 0;
  int to = 0;
  std::uint64_t spend_ppm = 0;
  std::uint64_t budget_ppm = 0;
  util::TimeNs at = 0;
  std::string detail;

  bool operator==(const BudgetRecord&) const = default;
};

/// In-memory representation of a serialized trace.
struct TraceFile {
  std::string monitor_name;
  std::string monitor_type;  ///< "coordinator" | "allocator" | "manager".
  std::int64_t rmax = -1;
  /// Events the recorder's EventLog dropped under its overflow contract
  /// (v5 `loss` line; 0 — and the line omitted — for lossless recordings
  /// and for pre-v5 documents).  Non-zero warns offline consumers that
  /// the event stream has accounted gaps beyond retired seq blocks.
  std::uint64_t events_lost = 0;
  std::vector<std::string> symbols;  ///< index = SymbolId.
  std::vector<EventRecord> events;
  std::vector<SchedulingState> checkpoints;
  /// Acquisition-order relation (v3; empty for v1/v2 documents).
  std::vector<LockOrderRecord> lock_order;
  /// Recovery actions (v4; empty for earlier documents).  Pool-scoped, like
  /// the lock-order relation.
  std::vector<RecoveryRecord> recovery;
  /// Overhead-budget transitions (v6; empty for earlier documents).
  /// Pool-scoped, like the recovery log.
  std::vector<BudgetRecord> budget;
};

/// Serialize to the robmon-trace v6 text format (v5 plus `bdgt`
/// budget-transition lines; v5 is v4 plus the `loss`
/// ingestion-loss-accounting line; v4 is v3 plus `rcov` recovery-action
/// lines; v3 is v2 plus `lord` lock-order-witness lines; v2 itself is v1
/// plus per-entry episode tickets on state/eq/cq/hold lines).
/// docs/trace-format.md documents every line shape.
void write_trace(std::ostream& out, const TraceFile& trace);
std::string write_trace_string(const TraceFile& trace);

/// Parse a robmon-trace v1–v6 document (v1 entries get ticket 0; v1/v2
/// documents have an empty lock-order relation, pre-v4 documents an empty
/// recovery log, pre-v5 documents a zero loss count, pre-v6 documents an
/// empty budget log).  Throws std::runtime_error with a line-numbered
/// message on malformed input.
TraceFile read_trace(std::istream& in);
TraceFile read_trace_string(const std::string& text);

/// Build a TraceFile from live recording state.  `events_lost` is the
/// recording EventLog's drop count (EventLog::events_lost()).
TraceFile make_trace_file(const std::string& monitor_name,
                          const std::string& monitor_type, std::int64_t rmax,
                          const SymbolTable& symbols,
                          const std::vector<EventRecord>& events,
                          const std::vector<SchedulingState>& checkpoints,
                          std::uint64_t events_lost = 0);

}  // namespace robmon::trace
