// Append-only scheduling-event log — the event half of the paper's history
// information database (Fig. 1).  The data-gathering routines append in real
// time; the periodic checker drains the segment recorded since the previous
// checking point ("most of the information can be removed after being used",
// Section 3.3).  Optional full retention supports offline FD-Rule validation
// and trace export.
//
// Scalability structure (CheckerPool era): appends go to per-shard
// double-buffered vectors, so concurrent appenders from different threads
// rarely contend on one lock, and drain() swaps each shard's active buffer
// for its empty standby instead of copying event data while a spinlock is
// held.  Sequence numbers are issued from one atomic counter; drain() merges
// the shard segments back into global sequence order.  Within one drain the
// result is always seq-sorted; the guarantee that *no* event migrates past a
// drain boundary holds whenever the caller quiesces appenders first (the
// checker gate's exclusive side), which is how every checking routine calls
// it.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sync/spinlock.hpp"
#include "trace/event.hpp"

namespace robmon::trace {

class EventLog {
 public:
  /// Default shard count; chosen to keep false sharing low without wasting
  /// memory on mostly-idle monitors.
  static constexpr std::size_t kDefaultShards = 8;

  explicit EventLog(bool retain_history = false,
                    std::size_t shards = kDefaultShards);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event; assigns and returns its sequence number.
  std::uint64_t append(EventRecord event);

  /// Remove and return every event buffered since the last drain, merged
  /// into sequence order.  Constant-time buffer swap per shard under the
  /// shard spinlock; the merge happens outside all append locks.
  std::vector<EventRecord> drain();

  /// Number of events currently buffered (not yet drained).
  std::size_t pending() const;

  /// Total events ever appended.
  std::uint64_t total_appended() const;

  /// When retention is on, every drained segment is also archived (and
  /// history() additionally includes still-pending events).
  void set_retention(bool retain);
  bool retention() const;

  /// Full archive in sequence order (requires retention; empty otherwise).
  /// Archived segments are shared snapshots: only the small pointer vector
  /// is copied under the archive lock, never the event data.
  std::vector<EventRecord> history() const;

  std::size_t shard_count() const { return shard_count_; }

 private:
  /// One append shard: active receives appends; standby is the drained-out
  /// double buffer, reused (capacity kept) across drains.
  struct alignas(64) Shard {
    mutable sync::SpinLock mu;
    std::vector<EventRecord> active;
    std::vector<EventRecord> standby;
  };

  using Segment = std::shared_ptr<const std::vector<EventRecord>>;

  Shard& shard_for_thread();
  /// Seq-sorted copy of every not-yet-drained event (brief per-shard locks).
  std::vector<EventRecord> pending_snapshot() const;

  const std::size_t shard_count_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<bool> retain_history_;

  /// Serializes drains, and history() against drains (appends never take it).
  mutable std::mutex drain_mu_;

  mutable sync::SpinLock archive_mu_;
  std::vector<Segment> archive_segments_;
};

}  // namespace robmon::trace
