// Append-only scheduling-event log — the event half of the paper's history
// information database (Fig. 1).  The data-gathering routines append in real
// time; the periodic checker drains the segment recorded since the previous
// checking point ("most of the information can be removed after being used",
// Section 3.3).  Optional full retention supports offline FD-Rule validation
// and trace export.
//
// Ingestion structure (lock-free era): appends go to per-shard bounded MPSC
// rings (sync::MpscRing).  An appender claims a ring slot with one CAS,
// fills the record, and publishes it with a release store on the slot's turn
// word — no lock is ever taken on the hot path.  The shard an appender
// writes to is resolved once and cached per thread (one compare per append,
// no modulo), which keeps a hot appender on one ring and off every other
// core's cache lines.  The drain side consumes published slots in
// claimed-slot order and never blocks appenders: an unpublished slot (a
// producer preempted between claim and publish) merely ends the pass there;
// that slot and its successors surface in the next drain.
//
// Overflow contract: a ring made full by a stalled drain does NOT block or
// silently drop.  The appender spills to the shard's bounded, spinlocked
// overflow list; when that too is at capacity the event is dropped and
// counted in events_lost() — exact per-shard loss accounting, never a
// silent gap.  total_appended() counts accepted events only;
// total_appended() + events_lost() equals the number of append() calls.
// Episode tickets make sequence gaps tolerable to wait-for validation
// (see core/waitfor.hpp), and the trace codec carries the loss count
// (v5 `loss` line) so offline consumers can see ingestion was lossy.
//
// Sequence numbers are reserved from one global counter in *blocks* (one
// fetch_add per seq_block appends per shard); the shard's cursor packs
// (next seq, remaining) into one word refilled by CAS, so allocation is
// lock-free too.  Ordering contract:
//   * seqs are unique, and monotone in claim order within one shard —
//     hence per-thread monotone (a thread sticks to its shard);
//   * across shards the order is block-approximate, NOT the real-time
//     interleaving;
//   * drain() retires each shard's unused block remainder, so every event
//     whose append *begins* after a drain returns sorts after everything
//     that drain returned (an append racing the drain itself may keep a
//     pre-boundary seq and surface in the next drain — the checker-gate
//     discipline quiesces appenders first, which restores the strict
//     boundary);
//   * a single-shard log whose appends are externally serialized (the
//     HoareMonitor discipline: every append happens under the monitor's
//     internal lock) keeps the full total append order: the ring publishes
//     and drains in claimed-slot order, and serialized appends claim in
//     append order.  Algorithm-1's segment replay depends on that order,
//     which is why monitor logs are built with shards = 1.
// Because blocks may be retired with unused remainders (and dropped events
// consume seqs), seqs are not dense.
//
// Backend::kLocked preserves the previous spinlocked double-buffer shards —
// kept as the measured baseline for bench/check_overhead's ring-vs-locked
// appender columns, not for production use.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sync/mpsc_ring.hpp"
#include "sync/spinlock.hpp"
#include "trace/event.hpp"

namespace robmon::trace {

class EventLog {
 public:
  /// Default shard count; chosen to keep false sharing low without wasting
  /// memory on mostly-idle monitors.
  static constexpr std::size_t kDefaultShards = 8;

  /// Default sequence-block size B: one fetch_add on the shared counter per
  /// B appends per shard.  1 reproduces the per-event allocation (dense
  /// seqs, real-time cross-shard order).  Clamped to 65535 (the packed
  /// cursor keeps the remaining count in 16 bits).
  static constexpr std::uint64_t kDefaultSeqBlock = 16;

  /// Default per-shard ring capacity (slots; rounded up to a power of
  /// two).  Sized so hundreds of single-shard monitor logs stay tens of
  /// KB each; sustained bursts past it spill to the overflow list.
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  /// Default per-shard overflow-list bound (events).  0 = unbounded spill
  /// (never lose an event; memory grows while the drain is stalled).
  static constexpr std::size_t kDefaultOverflowCapacity = std::size_t{1} << 20;

  /// Append-path implementation.
  enum class Backend {
    kRing,    ///< Lock-free MPSC rings + bounded overflow (default).
    kLocked,  ///< Spinlocked double-buffer shards (bench baseline).
  };

  struct Options {
    bool retain_history = false;
    std::size_t shards = kDefaultShards;
    std::uint64_t seq_block = kDefaultSeqBlock;
    Backend backend = Backend::kRing;
    std::size_t ring_capacity = kDefaultRingCapacity;
    std::size_t overflow_capacity = kDefaultOverflowCapacity;
  };

  explicit EventLog(Options options);
  explicit EventLog(bool retain_history = false,
                    std::size_t shards = kDefaultShards,
                    std::uint64_t seq_block = kDefaultSeqBlock);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event; assigns and returns its sequence number.  Lock-free
  /// on the ring backend while the ring has space.  A dropped event (ring
  /// and overflow both full) still returns its claimed seq and is counted
  /// in events_lost(), never recorded.
  std::uint64_t append(EventRecord event);

  /// Remove and return every published event buffered since the last
  /// drain, merged into sequence order.  Never blocks appenders: events
  /// whose publish is still in flight surface in the next drain (with
  /// appenders quiesced — the checker-gate discipline — nothing is in
  /// flight and the drain is complete).  Retires unused sequence-block
  /// remainders, so appends that begin after this call sort after the
  /// returned segment.
  std::vector<EventRecord> drain();

  /// Number of accepted events currently buffered (not yet drained).
  std::size_t pending() const;

  /// Total events ever accepted (excludes dropped events).
  std::uint64_t total_appended() const;

  /// Total events dropped by the overflow contract (ring and bounded
  /// overflow list both full) — exact, per-shard accounted.
  std::uint64_t events_lost() const;

  /// When retention is on, every drained segment is also archived (and
  /// history() additionally includes still-pending events).
  void set_retention(bool retain);
  bool retention() const;

  /// Full archive in sequence order (requires retention; empty otherwise).
  /// Archived segments are shared snapshots: only the small pointer vector
  /// is copied under the archive lock, never the event data.
  std::vector<EventRecord> history() const;

  std::size_t shard_count() const { return shard_count_; }
  std::uint64_t seq_block() const { return seq_block_; }
  Backend backend() const { return backend_; }
  std::size_t ring_capacity() const { return ring_capacity_; }
  std::size_t overflow_capacity() const { return overflow_capacity_; }

 private:
  /// One append shard.  Ring backend: `ring` takes the lock-free fast
  /// path, `overflow` (under mu) the bounded spill, `lost` the exact drop
  /// count.  Locked backend: active receives appends under mu; standby is
  /// the drained-out double buffer, reused (capacity kept) across drains.
  /// seq_cursor packs (next seq << 16 | remaining) — the shard's cached
  /// block of the global sequence counter, refilled by CAS (ring) or under
  /// mu (locked).  appended counts accepted events.
  struct alignas(64) Shard {
    std::unique_ptr<sync::MpscRing<EventRecord>> ring;
    std::atomic<std::uint64_t> seq_cursor{0};
    std::atomic<std::uint64_t> appended{0};
    std::atomic<std::uint64_t> lost{0};
    mutable sync::SpinLock mu;
    std::vector<EventRecord> overflow;
    std::vector<EventRecord> active;
    std::vector<EventRecord> standby;
  };

  using Segment = std::shared_ptr<const std::vector<EventRecord>>;

  Shard& shard_for_thread();
  /// Claim one sequence number from the shard's packed cursor, refilling
  /// from the global counter when the block is exhausted.  Lock-free; a
  /// refill CAS lost to a racing appender abandons its block (a seq gap,
  /// never a duplicate).
  std::uint64_t claim_seq(Shard& shard);
  /// Seq-sorted copy of every not-yet-drained event (published ring slots
  /// are peeked, not consumed; drain_mu_ must be held — the ring consumer
  /// side is single-threaded).
  std::vector<EventRecord> pending_snapshot() const;

  const std::size_t shard_count_;
  const std::uint64_t seq_block_;
  const Backend backend_;
  const std::size_t ring_capacity_;
  const std::size_t overflow_capacity_;
  /// Identifies this instance in the per-thread shard cache (address reuse
  /// after destruction must not resolve to a stale shard pointer).
  const std::uint64_t log_id_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<bool> retain_history_;

  /// Serializes drains (the rings' single-consumer requirement), and
  /// history() against drains (appends never take it).
  mutable std::mutex drain_mu_;

  mutable sync::SpinLock archive_mu_;
  std::vector<Segment> archive_segments_;
};

}  // namespace robmon::trace
