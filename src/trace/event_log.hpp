// Append-only scheduling-event log — the event half of the paper's history
// information database (Fig. 1).  The data-gathering routines append in real
// time; the periodic checker drains the segment recorded since the previous
// checking point ("most of the information can be removed after being used",
// Section 3.3).  Optional full retention supports offline FD-Rule validation
// and trace export.
#pragma once

#include <cstdint>
#include <vector>

#include "sync/spinlock.hpp"
#include "trace/event.hpp"

namespace robmon::trace {

class EventLog {
 public:
  explicit EventLog(bool retain_history = false)
      : retain_history_(retain_history) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event; assigns and returns its sequence number.
  std::uint64_t append(EventRecord event);

  /// Remove and return every event buffered since the last drain, in order.
  std::vector<EventRecord> drain();

  /// Number of events currently buffered (not yet drained).
  std::size_t pending() const;

  /// Total events ever appended.
  std::uint64_t total_appended() const;

  /// When retention is on, every appended event is also archived.
  void set_retention(bool retain);
  bool retention() const;

  /// Copy of the full archive (requires retention; empty otherwise).
  std::vector<EventRecord> history() const;

 private:
  mutable sync::SpinLock mu_;
  std::vector<EventRecord> buffer_;
  std::vector<EventRecord> archive_;
  std::uint64_t next_seq_ = 0;
  bool retain_history_;
};

}  // namespace robmon::trace
