// Append-only scheduling-event log — the event half of the paper's history
// information database (Fig. 1).  The data-gathering routines append in real
// time; the periodic checker drains the segment recorded since the previous
// checking point ("most of the information can be removed after being used",
// Section 3.3).  Optional full retention supports offline FD-Rule validation
// and trace export.
//
// Scalability structure (CheckerPool era): appends go to per-shard
// double-buffered vectors, so concurrent appenders from different threads
// rarely contend on one lock, and drain() swaps each shard's active buffer
// for its empty standby instead of copying event data while a spinlock is
// held.  The shard an appender writes to is resolved once and cached
// per thread (one pointer compare per append, no modulo).
//
// Sequence numbers are reserved from one global counter in *blocks* (one
// atomic fetch_add per seq_block appends per shard), so appenders on
// different shards do not bounce the counter's cache line on every event.
// Ordering contract:
//   * seqs are unique, and monotone in append order within one shard —
//     hence per-thread monotone (a thread sticks to its shard);
//   * across shards the order is block-approximate, NOT the real-time
//     interleaving;
//   * drain() discards each shard's unused block remainder, so every event
//     appended after a drain sorts after every event that drain returned
//     (seqs never migrate past a drain boundary);
//   * a single-shard log whose appends are externally serialized (the
//     HoareMonitor discipline: every append happens under the monitor's
//     internal lock) keeps the full total append order.  Algorithm-1's
//     segment replay depends on that order, which is why monitor logs are
//     built with shards = 1.
// Because blocks may be retired with unused remainders, seqs are not dense.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "sync/spinlock.hpp"
#include "trace/event.hpp"

namespace robmon::trace {

class EventLog {
 public:
  /// Default shard count; chosen to keep false sharing low without wasting
  /// memory on mostly-idle monitors.
  static constexpr std::size_t kDefaultShards = 8;

  /// Default sequence-block size B: one fetch_add on the shared counter per
  /// B appends per shard.  1 reproduces the per-event allocation (dense
  /// seqs, real-time cross-shard order) — the bench baseline.
  static constexpr std::uint64_t kDefaultSeqBlock = 16;

  explicit EventLog(bool retain_history = false,
                    std::size_t shards = kDefaultShards,
                    std::uint64_t seq_block = kDefaultSeqBlock);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Append one event; assigns and returns its sequence number.
  std::uint64_t append(EventRecord event);

  /// Remove and return every event buffered since the last drain, merged
  /// into sequence order.  Constant-time buffer swap per shard under the
  /// shard spinlock; the merge happens outside all append locks.  Unused
  /// sequence-block remainders are discarded, so later appends always sort
  /// after this segment.
  std::vector<EventRecord> drain();

  /// Number of events currently buffered (not yet drained).
  std::size_t pending() const;

  /// Total events ever appended.
  std::uint64_t total_appended() const;

  /// When retention is on, every drained segment is also archived (and
  /// history() additionally includes still-pending events).
  void set_retention(bool retain);
  bool retention() const;

  /// Full archive in sequence order (requires retention; empty otherwise).
  /// Archived segments are shared snapshots: only the small pointer vector
  /// is copied under the archive lock, never the event data.
  std::vector<EventRecord> history() const;

  std::size_t shard_count() const { return shard_count_; }
  std::uint64_t seq_block() const { return seq_block_; }

 private:
  /// One append shard: active receives appends; standby is the drained-out
  /// double buffer, reused (capacity kept) across drains.  seq_next/seq_end
  /// is the shard's cached sequence block; appended counts events ever
  /// appended here (written under mu, read lock-free by accounting).
  struct alignas(64) Shard {
    mutable sync::SpinLock mu;
    std::vector<EventRecord> active;
    std::vector<EventRecord> standby;
    std::uint64_t seq_next = 0;
    std::uint64_t seq_end = 0;
    std::atomic<std::uint64_t> appended{0};
  };

  using Segment = std::shared_ptr<const std::vector<EventRecord>>;

  Shard& shard_for_thread();
  /// Seq-sorted copy of every not-yet-drained event (brief per-shard locks).
  std::vector<EventRecord> pending_snapshot() const;

  const std::size_t shard_count_;
  const std::uint64_t seq_block_;
  /// Identifies this instance in the per-thread shard cache (address reuse
  /// after destruction must not resolve to a stale shard pointer).
  const std::uint64_t log_id_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> drained_{0};
  std::atomic<bool> retain_history_;

  /// Serializes drains, and history() against drains (appends never take it).
  mutable std::mutex drain_mu_;

  mutable sync::SpinLock archive_mu_;
  std::vector<Segment> archive_segments_;
};

}  // namespace robmon::trace
