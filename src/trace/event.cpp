#include "trace/event.hpp"

#include <mutex>
#include <sstream>
#include <stdexcept>

namespace robmon::trace {

SymbolId SymbolTable::intern(std::string_view name) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SymbolId>(i);
  }
  names_.emplace_back(name);
  return static_cast<SymbolId>(names_.size() - 1);
}

SymbolId SymbolTable::find(std::string_view name) const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SymbolId>(i);
  }
  return kNoSymbol;
}

std::string SymbolTable::name(SymbolId id) const {
  if (id == kNoSymbol) return "-";
  std::lock_guard<sync::SpinLock> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= names_.size()) {
    throw std::out_of_range("unknown symbol id " + std::to_string(id));
  }
  return names_[static_cast<std::size_t>(id)];
}

std::size_t SymbolTable::size() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return names_.size();
}

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kEnter:
      return "Enter";
    case EventKind::kWait:
      return "Wait";
    case EventKind::kSignalExit:
      return "Signal-Exit";
  }
  return "?";
}

std::string describe(const EventRecord& event, const SymbolTable& symbols) {
  std::ostringstream out;
  out << to_string(event.kind) << "(p" << event.pid << ", "
      << symbols.name(event.proc);
  if (event.kind != EventKind::kEnter) {
    out << ", " << symbols.name(event.cond);
  }
  if (event.kind != EventKind::kWait) {
    out << ", " << (event.flag ? 1 : 0);
  }
  out << ")";
  return out.str();
}

}  // namespace robmon::trace
