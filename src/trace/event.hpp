// Scheduling events — the paper's EVENTset (Section 3.1 / 3.3.1).
//
// The reduced recording model of Section 3.3.1 is used: a blocked process is
// recorded once at request time and its record is never mutated on resume;
// the resume is implied by the Wait/Signal-Exit event that popped it off a
// queue.  EVENTset = { Enter(Pid, Pname, flag), Wait(Pid, Pname, Cond),
// Signal-Exit(Pid, Pname, Cond, flag) }.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sync/spinlock.hpp"
#include "util/clock.hpp"
#include "util/ids.hpp"

namespace robmon::trace {

/// Process identifier — the trace layer's (paper-vocabulary) name for the
/// repo-wide thread identity robmon::Tid (util/ids.hpp).
using Pid = Tid;
constexpr Pid kNoPid = kNoTid;

/// Interned procedure / condition name.
using SymbolId = std::int32_t;
constexpr SymbolId kNoSymbol = -1;

/// Per-monitor intern table for procedure and condition names.
/// Thread-safe; ids are dense and start at 0.
class SymbolTable {
 public:
  SymbolId intern(std::string_view name);

  /// Lookup without interning; kNoSymbol if absent.
  SymbolId find(std::string_view name) const;

  /// Name for an id previously returned by intern().
  std::string name(SymbolId id) const;

  std::size_t size() const;

 private:
  mutable sync::SpinLock mu_;
  std::vector<std::string> names_;
};

enum class EventKind : std::uint8_t {
  kEnter = 0,
  kWait = 1,
  kSignalExit = 2,
};

std::string_view to_string(EventKind kind);

/// One scheduling event.  Field use per kind:
///  kEnter:      proc = requested procedure; flag = true if the process
///               entered immediately, false if it queued on EQ.
///  kWait:       proc = procedure executing; cond = condition waited on.
///  kSignalExit: proc = procedure executing; cond = condition signalled
///               (kNoSymbol for a plain Exit); flag = true iff a process
///               waiting on CQ[cond] was resumed by this signal.
struct EventRecord {
  std::uint64_t seq = 0;  ///< Per-monitor sequence number (assigned by log).
  util::TimeNs time = 0;  ///< Gathering-routine timestamp.
  EventKind kind = EventKind::kEnter;
  Pid pid = kNoPid;
  SymbolId proc = kNoSymbol;
  SymbolId cond = kNoSymbol;
  bool flag = false;

  static EventRecord enter(Pid pid, SymbolId proc, bool entered,
                           util::TimeNs t) {
    return EventRecord{0, t, EventKind::kEnter, pid, proc, kNoSymbol, entered};
  }
  static EventRecord wait(Pid pid, SymbolId proc, SymbolId cond,
                          util::TimeNs t) {
    return EventRecord{0, t, EventKind::kWait, pid, proc, cond, false};
  }
  static EventRecord signal_exit(Pid pid, SymbolId proc, SymbolId cond,
                                 bool resumed_cond_waiter, util::TimeNs t) {
    return EventRecord{0,   t,    EventKind::kSignalExit,
                       pid, proc, cond,
                       resumed_cond_waiter};
  }

  bool operator==(const EventRecord&) const = default;
};

/// Human-readable single-line rendering, e.g. "Enter(p3, Send, 1)".
std::string describe(const EventRecord& event, const SymbolTable& symbols);

}  // namespace robmon::trace
