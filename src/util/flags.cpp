#include "util/flags.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace robmon::util {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  entries_[name] = Entry{default_value, default_value, help};
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      key = body;
      value = "true";  // bare --flag means boolean true
    } else {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", key.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Flags::str(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw std::out_of_range("undefined flag " + name);
  return it->second.value;
}

std::int64_t Flags::i64(const std::string& name) const {
  return std::strtoll(str(name).c_str(), nullptr, 10);
}

double Flags::f64(const std::string& name) const {
  return std::strtod(str(name).c_str(), nullptr);
}

bool Flags::boolean(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--flag=value]...\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << " (default: " << entry.default_value << ")  "
        << entry.help << "\n";
  }
  return out.str();
}

EnvFlags::EnvFlags(std::string prefix) : prefix_(std::move(prefix)) {}

std::optional<std::string> EnvFlags::raw(const std::string& name) const {
  const char* value = std::getenv((prefix_ + name).c_str());
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::string EnvFlags::str(const std::string& name,
                          const std::string& fallback) {
  seen_.push_back(prefix_ + name);
  return raw(name).value_or(fallback);
}

std::int64_t EnvFlags::i64(const std::string& name, std::int64_t fallback,
                           std::int64_t min, std::int64_t max) {
  seen_.push_back(prefix_ + name);
  const std::optional<std::string> value = raw(name);
  if (!value) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (value->empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    record_error(name, *value, "not an integer");
    return fallback;
  }
  if (parsed < min || parsed > max) {
    std::ostringstream what;
    what << "out of range [" << min << ", " << max << "]";
    record_error(name, *value, what.str());
    return fallback;
  }
  return parsed;
}

double EnvFlags::f64(const std::string& name, double fallback, double min,
                     double max) {
  seen_.push_back(prefix_ + name);
  const std::optional<std::string> value = raw(name);
  if (!value) return fallback;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (value->empty() || end == nullptr || *end != '\0' || errno == ERANGE) {
    record_error(name, *value, "not a number");
    return fallback;
  }
  if (!(parsed >= min && parsed <= max)) {  // rejects NaN too
    std::ostringstream what;
    what << "out of range [" << min << ", " << max << "]";
    record_error(name, *value, what.str());
    return fallback;
  }
  return parsed;
}

bool EnvFlags::boolean(const std::string& name, bool fallback) {
  seen_.push_back(prefix_ + name);
  const std::optional<std::string> value = raw(name);
  if (!value) return fallback;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") {
    return true;
  }
  if (*value == "false" || *value == "0" || *value == "no" ||
      *value == "off") {
    return false;
  }
  record_error(name, *value, "not a boolean (true/1/yes/on or false/0/no/off)");
  return fallback;
}

std::string EnvFlags::error_text() const {
  if (errors_.empty()) return "";
  std::ostringstream out;
  out << "robmon: bad configuration:\n";
  for (const std::string& error : errors_) out << "  " << error << "\n";
  out << "recognized variables:";
  for (const std::string& name : seen_) out << " " << name;
  out << "\n";
  return out.str();
}

void EnvFlags::record_error(const std::string& name, const std::string& value,
                            const std::string& what) {
  errors_.push_back(prefix_ + name + "=" + value + ": " + what);
}

}  // namespace robmon::util
