#include "util/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace robmon::util {

void Flags::define(const std::string& name, const std::string& default_value,
                   const std::string& help) {
  entries_[name] = Entry{default_value, default_value, help};
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    std::string key;
    std::string value;
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      key = body;
      value = "true";  // bare --flag means boolean true
    } else {
      key = body.substr(0, eq);
      value = body.substr(eq + 1);
    }
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", key.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string Flags::str(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw std::out_of_range("undefined flag " + name);
  return it->second.value;
}

std::int64_t Flags::i64(const std::string& name) const {
  return std::strtoll(str(name).c_str(), nullptr, 10);
}

double Flags::f64(const std::string& name) const {
  return std::strtod(str(name).c_str(), nullptr);
}

bool Flags::boolean(const std::string& name) const {
  const std::string v = str(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream out;
  out << "usage: " << program << " [--flag=value]...\n";
  for (const auto& [name, entry] : entries_) {
    out << "  --" << name << " (default: " << entry.default_value << ")  "
        << entry.help << "\n";
  }
  return out.str();
}

}  // namespace robmon::util
