// Streaming and batch statistics used by the benchmark harness to report the
// overhead ratios of Table 1 and the component costs of Figure 1.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace robmon::util {

/// Welford online mean/variance plus min/max.  Not thread-safe.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with percentile queries (copies + sorts on demand).
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  void reserve(std::size_t n) { values_.reserve(n); }
  std::size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const;
  double percentile(double p) const;  ///< p in [0, 100].
  double min() const;
  double max() const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Fixed-bucket histogram over [lo, hi); overflow/underflow tracked separately.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  /// Render as a compact ASCII bar chart (for bench output).
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace robmon::util
