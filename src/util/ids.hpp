// The one thread/process identity used across every layer.
//
// The paper speaks of user-process ids (Pid); the runtime deals in real
// threads, the interposition shim in pthreads, the recovery engine in
// victims.  They were always the same 32-bit value under different local
// spellings; robmon::Tid is the single alias they all share now.
// trace::Pid remains as a namespace-local synonym (the paper's vocabulary
// for the event/trace layer), defined in terms of Tid.
#pragma once

#include <cstdint>

namespace robmon {

/// One thread of the monitored program.  Assigned by the embedding
/// application (native monitors) or densely by the interposition runtime
/// (first adapted operation registers the calling thread).
using Tid = std::int32_t;
constexpr Tid kNoTid = -1;

}  // namespace robmon
