// Small, fast, seedable PRNG (SplitMix64 seeding + xoshiro256**).
// Used by fault injection, schedule randomisation and workload generators so
// that every experiment in the paper reproduction is replayable from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace robmon::util {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; public-domain algorithm reimplemented.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace robmon::util
