// Minimal leveled logger.  Kept deliberately tiny: the library itself logs
// nothing by default; examples and benches raise the level for narration,
// and fault reports are routed through core::ReportSink rather than the log.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace robmon::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a single log line (thread-safe, writes to stderr).
void log_line(LogLevel level, std::string_view message);

namespace detail {
inline void append_all(std::ostringstream&) {}

template <typename First, typename... Rest>
void append_all(std::ostringstream& out, const First& first,
                const Rest&... rest) {
  out << first;
  append_all(out, rest...);
}
}  // namespace detail

/// Convenience variadic loggers: log_info("x=", x, " y=", y).
template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream out;
  detail::append_all(out, args...);
  log_line(LogLevel::kDebug, out.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream out;
  detail::append_all(out, args...);
  log_line(LogLevel::kInfo, out.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream out;
  detail::append_all(out, args...);
  log_line(LogLevel::kWarn, out.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream out;
  detail::append_all(out, args...);
  log_line(LogLevel::kError, out.str());
}

}  // namespace robmon::util
