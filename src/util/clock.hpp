// Clock abstraction shared by the real-thread runtime and the deterministic
// simulator.  All timer-based fault-detection rules (Tmax, Tio, Tlimit) are
// expressed against a Clock so that the simulator can drive them with virtual
// time and tests never depend on wall-clock behaviour.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace robmon::util {

/// Nanoseconds since an arbitrary epoch.  All robmon timestamps use this unit.
using TimeNs = std::int64_t;

constexpr TimeNs kMillisecond = 1'000'000;
constexpr TimeNs kSecond = 1'000'000'000;

/// Abstract monotone clock.  Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds.  Monotone non-decreasing.
  virtual TimeNs now_ns() const = 0;
};

/// Real monotone clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  TimeNs now_ns() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  /// Process-wide shared instance (stateless, so sharing is safe).
  static SteadyClock& instance() {
    static SteadyClock clock;
    return clock;
  }
};

/// Manually advanced clock for deterministic tests and the simulator.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimeNs start = 0) : now_(start) {}

  TimeNs now_ns() const override { return now_.load(std::memory_order_acquire); }

  /// Advance by `delta` nanoseconds; returns the new time.
  TimeNs advance(TimeNs delta) {
    return now_.fetch_add(delta, std::memory_order_acq_rel) + delta;
  }

  /// Jump directly to `t`.  `t` must not be earlier than the current time.
  void set(TimeNs t) { now_.store(t, std::memory_order_release); }

 private:
  std::atomic<TimeNs> now_;
};

}  // namespace robmon::util
