#include "util/stats.hpp"

#include <numeric>
#include <sstream>

namespace robmon::util {

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo_idx = static_cast<std::size_t>(rank);
  const auto hi_idx = std::min(lo_idx + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo_idx);
  return sorted[lo_idx] + frac * (sorted[hi_idx] - sorted[lo_idx]);
}

double Samples::min() const {
  return values_.empty() ? 0.0
                         : *std::min_element(values_.begin(), values_.end());
}

double Samples::max() const {
  return values_.empty() ? 0.0
                         : *std::max_element(values_.begin(), values_.end());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double span = hi_ - lo_;
  auto idx = static_cast<std::size_t>((x - lo_) / span *
                                      static_cast<double>(counts_.size()));
  if (idx >= counts_.size()) idx = counts_.size() - 1;
  ++counts_[idx];
}

std::string Histogram::render(std::size_t width) const {
  std::ostringstream out;
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  const double bucket_span =
      (hi_ - lo_) / static_cast<double>(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double bucket_lo = lo_ + bucket_span * static_cast<double>(i);
    const auto bar =
        counts_[i] * width / peak;
    out << "[" << bucket_lo << ", " << bucket_lo + bucket_span << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  if (underflow_ != 0) out << "underflow: " << underflow_ << "\n";
  if (overflow_ != 0) out << "overflow: " << overflow_ << "\n";
  return out.str();
}

}  // namespace robmon::util
