// Tiny --key=value command-line parser for the examples and benches, and
// the ROBMON_* environment-variable parser shared by the interposition shim
// and the examples.  Both support string / int64 / double / bool values
// with defaults; EnvFlags adds range validation and a single "bad config"
// error path (collected errors, one formatted report).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace robmon::util {

class Flags {
 public:
  /// Declare a flag before parse().  `help` is shown by --help.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parse argv; returns false (and prints usage) on unknown flag or --help.
  bool parse(int argc, char** argv);

  std::string str(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

/// Typed, validating reader for `ROBMON_*` environment variables — the one
/// configuration surface of the interposition shim (which has no argv) and
/// the env-overridable defaults of the examples.
///
/// Every getter reads `prefix + name` (default prefix "ROBMON_"), returns
/// the fallback when the variable is unset, and *collects* a description of
/// the problem — instead of throwing — when the value is malformed or out
/// of range, returning the fallback.  After the last getter, callers hit
/// the single bad-config error path: `ok()` says whether every variable
/// parsed, `error_text()` formats all collected errors in one report.  The
/// shim prints it and runs with defaults (never aborts the host program);
/// the examples print it and exit non-zero.  Getters also record each
/// variable they touched, so error_text() can append a reference of
/// recognized names.
class EnvFlags {
 public:
  explicit EnvFlags(std::string prefix = "ROBMON_");

  /// Raw lookup: value of `prefix + name`, or nullopt when unset.
  std::optional<std::string> raw(const std::string& name) const;

  std::string str(const std::string& name, const std::string& fallback);
  /// Integer in [min, max]; the bounds are inclusive.
  std::int64_t i64(const std::string& name, std::int64_t fallback,
                   std::int64_t min = INT64_MIN, std::int64_t max = INT64_MAX);
  /// Double in [min, max]; the bounds are inclusive.
  double f64(const std::string& name, double fallback, double min,
             double max);
  /// true/1/yes/on and false/0/no/off (case-sensitive, like Flags).
  bool boolean(const std::string& name, bool fallback);

  bool ok() const { return errors_.empty(); }
  const std::vector<std::string>& errors() const { return errors_; }
  /// The single bad-config report: one line per collected error plus the
  /// recognized-variable reference.  Empty string when ok().
  std::string error_text() const;

 private:
  void record_error(const std::string& name, const std::string& value,
                    const std::string& what);

  std::string prefix_;
  std::vector<std::string> seen_;  ///< Variables consulted, define order.
  std::vector<std::string> errors_;
};

}  // namespace robmon::util
