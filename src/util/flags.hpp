// Tiny --key=value command-line parser for the examples and benches.
// Supports string / int64 / double / bool flags with defaults and --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace robmon::util {

class Flags {
 public:
  /// Declare a flag before parse().  `help` is shown by --help.
  void define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parse argv; returns false (and prints usage) on unknown flag or --help.
  bool parse(int argc, char** argv);

  std::string str(const std::string& name) const;
  std::int64_t i64(const std::string& name) const;
  double f64(const std::string& name) const;
  bool boolean(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  struct Entry {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace robmon::util
