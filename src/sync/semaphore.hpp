// Counting / binary semaphores built on mutex + condition_variable.
// These are the lower-level primitives the Hoare monitor implementation is
// assembled from, mirroring the classic semaphore-based monitor construction
// (Hoare 1974).  We implement them ourselves (rather than using
// std::counting_semaphore) so that waiters can be *poisoned*: after a fault
// has been injected and detected, test harnesses must be able to release
// every parked thread and unwind cleanly.
// Blocking and wakeup go through the sync backend seam (sync/backend.hpp):
// the real build uses std::mutex + std::condition_variable exactly as
// before, while the sim build parks the calling fiber on the deterministic
// scheduler — this is the primitive every HoareMonitor waiter sleeps on, so
// porting it moves all monitor blocking onto virtual time.
#pragma once

#include <cstdint>
#include <mutex>

#include "sync/backend.hpp"

namespace robmon::sync {

/// Result of a blocking acquire.
enum class AcquireResult {
  kAcquired,  ///< Normal acquisition.
  kPoisoned,  ///< Semaphore was poisoned while (or before) waiting.
  kTimeout,   ///< timed_acquire() deadline elapsed.
};

class Semaphore {
 public:
  explicit Semaphore(std::int64_t initial = 0) : count_(initial) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Block until a permit is available or the semaphore is poisoned.
  AcquireResult acquire();

  /// Block up to `timeout_ns`; kTimeout if no permit arrived in time.
  AcquireResult timed_acquire(std::int64_t timeout_ns);

  /// Non-blocking attempt.
  bool try_acquire();

  /// Release `permits` permits, waking blocked acquirers.
  void release(std::int64_t permits = 1);

  /// Wake all current and future waiters with kPoisoned.
  void poison();

  bool poisoned() const;

  /// Current permit count (diagnostic only; racy by nature).
  std::int64_t available() const;

 private:
  mutable BackendMutex mu_;
  BackendCondVar cv_;
  std::int64_t count_;
  bool poisoned_ = false;
};

/// Binary semaphore used for ownership hand-off between monitor processes:
/// one permit maximum, starts empty.
class BinarySemaphore {
 public:
  BinarySemaphore() : sem_(0) {}

  AcquireResult acquire() { return sem_.acquire(); }
  AcquireResult timed_acquire(std::int64_t timeout_ns) {
    return sem_.timed_acquire(timeout_ns);
  }
  void release() { sem_.release(1); }
  void poison() { sem_.poison(); }
  bool poisoned() const { return sem_.poisoned(); }

 private:
  Semaphore sem_;
};

}  // namespace robmon::sync
