// SimBackend: the deterministic synchronization backend.
//
// A SimScheduler multiplexes *fibers* (ucontext stacks) onto one OS thread.
// Every blocking primitive in the runtime — mutex, condition variable,
// semaphore park, thread join, sleep — compiles down to a cooperative
// suspend on the scheduler, every context switch is chosen by a seeded
// SchedulePolicy, and time is a ManualClock that ticks per resume step and
// jumps to the earliest timer when nothing is runnable.  The whole
// CheckerPool (deadline heap, batch draining, recovery actuation) therefore
// executes with **zero real threads** and an interleaving that is a pure
// function of the seed: run the same seed twice and you get byte-identical
// traces; sweep seeds and you explore schedules.
//
// Usage (see tests/schedule_explorer.cpp and docs/deterministic-testing.md):
//
//   sync::SimScheduler sched({.policy = sync::SchedulePolicy::kRandom,
//                             .seed = 42});
//   sched.spawn([&] { ...build pool + monitors, spawn client fibers...; });
//   auto stop = sched.run();
//   sched.rethrow_any_failure();
//
// Rules imposed on runtime code compiled against this backend:
//   * Anything that can block must go through Backend primitives.  A plain
//     std::mutex is still fine for pure data sections, because only one OS
//     thread exists — but it must never be held across a Backend call that
//     can suspend (the fiber would switch away with the OS mutex held, and
//     a second fiber's lock() would then deadlock the whole scheduler).
//   * Blocking calls are only legal inside a fiber.  From the root context
//     (outside run()) an uncontended SimMutex::lock still works, so setup /
//     teardown code that merely touches locks keeps working; an operation
//     that would have to *wait* throws std::logic_error instead.
#pragma once

#include <ucontext.h>

#include <chrono>
#include <condition_variable>  // std::cv_status
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>  // std::unique_lock
#include <string>
#include <vector>

#include "sync/schedule_policy.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace robmon::sync {

class SimScheduler {
 public:
  struct Options {
    util::TimeNs tick_ns = 1000;  ///< Virtual time per resume step (1 us).
    SchedulePolicy policy = SchedulePolicy::kRandom;
    std::uint64_t seed = 1;
    /// Probability that a fiber yields at a preemption point (SimMutex
    /// acquisition) under kRandom, adding interleavings beyond the ones the
    /// blocking structure forces.  0 disables.
    double preempt_probability = 0.25;
    std::size_t stack_bytes = 256 * 1024;
  };

  SimScheduler() : SimScheduler(Options{}) {}
  explicit SimScheduler(Options options);
  ~SimScheduler();

  SimScheduler(const SimScheduler&) = delete;
  SimScheduler& operator=(const SimScheduler&) = delete;

  /// Scheduler installed for this OS thread (constructor installs, destructor
  /// restores the previous one).  Backend primitives route through this.
  static SimScheduler* current();

  /// Register a fiber.  Fibers may spawn further fibers.  Returns fiber id.
  int spawn(std::function<void()> body, std::string name = {});

  enum class StopReason {
    kAllDone,    ///< Every fiber ran to completion.
    kQuiescent,  ///< Only fibers parked forever remain (deadlock).
    kMaxSteps,   ///< Step budget exhausted.
  };

  /// Run until done/quiescent or `max_steps` resume steps (this call).
  StopReason run(std::uint64_t max_steps = 5'000'000);

  util::ManualClock& clock() { return clock_; }
  util::TimeNs now() const { return clock_.now_ns(); }
  std::uint64_t steps() const { return steps_; }

  /// FNV-1a digest over the pick sequence (fiber id per resume step plus
  /// clock jumps): two runs took the same schedule iff digests match.  Used
  /// by the schedule-exploration corpus to pin exact interleavings.
  std::uint64_t schedule_digest() const { return digest_; }

  /// Rethrow the first exception that escaped any fiber, if one occurred.
  void rethrow_any_failure() const;

  std::size_t live_count() const;  ///< Fibers not yet done.
  bool in_fiber() const { return current_ >= 0; }
  int current_fiber() const { return current_; }
  const std::string& fiber_name(int fiber) const;

  // --- Primitive-facing API (SimMutex/SimCondVar/SimThread internals). ------

  /// Reschedule the caller behind other runnable fibers.
  void yield_fiber();
  /// Policy-chosen optional yield (called at preemption points).
  void maybe_preempt();
  /// Sleep for `delta` of virtual time.
  void sleep_fiber(util::TimeNs delta);
  /// Park until unpark(fiber).
  void park_fiber();
  /// Park until unpark or virtual `deadline`; true = woken by unpark.
  bool park_fiber_until(util::TimeNs deadline);
  /// Make a parked fiber runnable (no-op on a fiber that is not parked).
  void unpark(int fiber);
  bool fiber_done(int fiber) const;
  /// Park the caller until `fiber` completes (immediately returns if done).
  void join_fiber(int fiber);
  /// Seeded uniform pick in [0, n) — primitives use it so that *which*
  /// waiter a notify_one wakes is part of the explored schedule.
  std::size_t pick(std::size_t n);

 private:
  enum class FState {
    kNew,
    kRunnable,
    kSleeping,
    kParked,
    kParkedTimed,
    kDone
  };

  struct Fiber {
    int id = -1;
    std::string name;
    std::function<void()> body;
    std::unique_ptr<char[]> stack;
    ucontext_t ctx{};
    FState state = FState::kNew;
    util::TimeNs wake_at = 0;
    bool woken_by_unpark = false;
    std::vector<int> joiners;
    std::exception_ptr exception;
    void* fake_stack = nullptr;  ///< ASan fiber bookkeeping.
    void* tsan_fiber = nullptr;  ///< TSan fiber bookkeeping.
  };

  [[noreturn]] static void trampoline(unsigned hi, unsigned lo);
  void fiber_main(Fiber& fiber);
  /// Swap from `self` (nullptr = root/run loop) into `to` (nullptr = root).
  /// `dying` = `self` will never be resumed again.
  void switch_context(Fiber* self, Fiber* to, bool dying);
  /// Suspend the current fiber and return to the run loop.
  void switch_to_scheduler();
  Fiber& require_fiber(const char* what);
  int pick_next();
  /// Move due sleepers/timed-parkers to runnable; returns earliest future
  /// wake time or -1 when none.
  util::TimeNs service_timers();
  void mix_digest(std::uint64_t value);

  Options options_;
  util::ManualClock clock_;
  util::Rng rng_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::deque<int> runnable_;
  int current_ = -1;
  ucontext_t root_ctx_{};
  void* root_fake_stack_ = nullptr;
  void* root_tsan_fiber_ = nullptr;
  const void* root_stack_bottom_ = nullptr;  ///< Learned at first fiber entry.
  std::size_t root_stack_size_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t digest_ = 14695981039346656037ULL;  // FNV-1a offset basis.
  SimScheduler* prev_installed_ = nullptr;
};

/// Cooperative mutex.  Safe to hold across a fiber switch (unlike a real
/// std::mutex under this backend); contended lock() parks the fiber and
/// unlock() makes every waiter runnable again — which one wins is the
/// scheduler's (seeded) choice.
class SimMutex {
 public:
  SimMutex() = default;
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  bool locked_ = false;
  std::deque<int> waiters_;
};

/// Cooperative condition variable over SimMutex.  notify_one wakes a
/// policy-chosen waiter; which waiter reacquires the mutex first is again
/// the scheduler's choice, so the usual predicated-wait loops explore real
/// wakeup orders.  Timed waits use the virtual clock.
class SimCondVar {
 public:
  SimCondVar() = default;
  SimCondVar(const SimCondVar&) = delete;
  SimCondVar& operator=(const SimCondVar&) = delete;

  void notify_one();
  void notify_all();

  void wait(std::unique_lock<SimMutex>& lock);

  template <typename Predicate>
  void wait(std::unique_lock<SimMutex>& lock, Predicate pred) {
    while (!pred()) wait(lock);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<SimMutex>& lock,
                          const std::chrono::duration<Rep, Period>& timeout) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
    return wait_until_ns(lock, deadline_from(ns));
  }

  template <typename Rep, typename Period, typename Predicate>
  bool wait_for(std::unique_lock<SimMutex>& lock,
                const std::chrono::duration<Rep, Period>& timeout,
                Predicate pred) {
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout).count();
    const util::TimeNs deadline = deadline_from(ns);
    while (!pred()) {
      if (wait_until_ns(lock, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

 private:
  static util::TimeNs deadline_from(std::int64_t timeout_ns);
  std::cv_status wait_until_ns(std::unique_lock<SimMutex>& lock,
                               util::TimeNs deadline);
  std::vector<int> waiters_;
};

/// Fiber-backed stand-in for std::thread: construction spawns a fiber on the
/// current SimScheduler, join() parks the calling fiber until it completes.
class SimThread {
 public:
  SimThread() = default;
  explicit SimThread(std::function<void()> body);
  ~SimThread();

  SimThread(SimThread&& other) noexcept;
  SimThread& operator=(SimThread&& other) noexcept;
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  bool joinable() const { return fiber_ >= 0; }
  void join();

 private:
  SimScheduler* scheduler_ = nullptr;
  int fiber_ = -1;
};

/// util::Clock adapter over the installed scheduler's virtual clock, so that
/// `Options::clock` defaults (detection-rule timestamps) follow virtual time
/// automatically under this backend.
class SimClock final : public util::Clock {
 public:
  util::TimeNs now_ns() const override;
  static SimClock& instance();
};

struct SimBackend {
  using Mutex = SimMutex;
  using CondVar = SimCondVar;
  using Thread = SimThread;

  static util::TimeNs now();
  /// Virtual "CPU" time: the budget controller's spend measurements become
  /// deterministic functions of the schedule rather than of the host.
  static util::TimeNs cpu_now() { return now(); }
  static void sleep_for(util::TimeNs delta);
  static void yield();
  /// Fixed worker-count clamp so pool sizing is schedule-independent.
  static unsigned hardware_concurrency() { return 2; }
  static const util::Clock* clock() { return &SimClock::instance(); }
};

}  // namespace robmon::sync
