// Compile-time synchronization-backend seam (the cxxtrace
// real_/relacy_synchronization.h pattern).
//
// Everything in the runtime that can block, spawn a thread, or read time for
// cadence/budget decisions names these aliases instead of std types.  The
// default build resolves them to RealBackend (exactly the std/pthread
// primitives used before the seam existed — zero cost).  Compiling with
// -DROBMON_SYNC_BACKEND_SIM=1 (the `robmon_sim` CMake target) resolves them
// to SimBackend: every blocking edge becomes a cooperative fiber suspend on
// a seeded SimScheduler and every clock becomes its virtual clock, which is
// what lets tests/schedule_explorer.cpp run the whole CheckerPool + recovery
// machinery deterministically from a seed.  See docs/deterministic-testing.md.
#pragma once

#include "sync/schedule_policy.hpp"
#include "util/clock.hpp"

#if defined(ROBMON_SYNC_BACKEND_SIM)
#include "sync/sim_backend.hpp"
#else
#include "sync/real_backend.hpp"
#endif

namespace robmon::sync {

#if defined(ROBMON_SYNC_BACKEND_SIM)
using Backend = SimBackend;
#else
using Backend = RealBackend;
#endif

using BackendMutex = Backend::Mutex;
using BackendCondVar = Backend::CondVar;
using BackendThread = Backend::Thread;

/// Monotone wall clock for deadlines and cadence (virtual under sim).
inline util::TimeNs backend_now() { return Backend::now(); }
/// Per-thread CPU clock for budget spend (virtual under sim).
inline util::TimeNs backend_cpu_now() { return Backend::cpu_now(); }
inline void backend_sleep_for(util::TimeNs delta) { Backend::sleep_for(delta); }
inline void backend_yield() { Backend::yield(); }
inline unsigned backend_hardware_concurrency() {
  return Backend::hardware_concurrency();
}
/// Clock instance for Options::clock defaults (detection-rule timestamps).
inline const util::Clock* backend_clock() { return Backend::clock(); }

}  // namespace robmon::sync
