#include "sync/gate.hpp"

#include <algorithm>

namespace robmon::sync {

void CheckerGate::enter_shared() {
  std::unique_lock<BackendMutex> lock(mu_);
  cv_.wait(lock, [&] { return !exclusive_held_ && writers_waiting_ == 0; });
  ++shared_holders_;
}

void CheckerGate::exit_shared() {
  std::lock_guard<BackendMutex> lock(mu_);
  --shared_holders_;
  if (shared_holders_ == 0) cv_.notify_all();
}

void CheckerGate::enter_exclusive() {
  std::unique_lock<BackendMutex> lock(mu_);
  ++writers_waiting_;
  cv_.wait(lock, [&] { return !exclusive_held_ && shared_holders_ == 0; });
  --writers_waiting_;
  exclusive_held_ = true;
}

void CheckerGate::exit_exclusive() {
  {
    std::lock_guard<BackendMutex> lock(mu_);
    exclusive_held_ = false;
  }
  cv_.notify_all();
}

void Gate::impose(std::vector<std::string> order,
                  std::vector<trace::Pid> fenced) {
  std::lock_guard<BackendMutex> lock(mu_);
  engaged_ = true;
  ++impositions_;
  // Merge: independent cycles impose disjoint orders, and clobbering an
  // earlier imposition would silently un-fence its call sites.  Monitors
  // already ranked keep their rank; new ones append behind.
  for (std::string& name : order) {
    if (rank_.find(name) != rank_.end()) continue;
    rank_.emplace(name, order_.size());
    order_.push_back(std::move(name));
  }
  fenced_.insert(fenced.begin(), fenced.end());
}

void Gate::clear() {
  {
    std::lock_guard<BackendMutex> lock(mu_);
    engaged_ = false;
    fenced_.clear();
    order_.clear();
    rank_.clear();
  }
  cv_.notify_all();
}

bool Gate::engaged() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return engaged_;
}

bool Gate::is_fenced(trace::Pid pid) const {
  std::lock_guard<BackendMutex> lock(mu_);
  return engaged_ && fenced_.count(pid) != 0;
}

std::vector<std::string> Gate::imposed_order() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return order_;
}

void Gate::apply_order(std::vector<std::string>& monitors) const {
  std::lock_guard<BackendMutex> lock(mu_);
  if (!engaged_ || rank_.empty()) return;
  std::stable_sort(monitors.begin(), monitors.end(),
                   [this](const std::string& a, const std::string& b) {
                     const auto ra = rank_.find(a);
                     const auto rb = rank_.find(b);
                     const std::size_t ka =
                         ra == rank_.end() ? rank_.size() : ra->second;
                     const std::size_t kb =
                         rb == rank_.end() ? rank_.size() : rb->second;
                     return ka < kb;
                   });
}

std::uint64_t Gate::impositions() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return impositions_;
}

std::uint64_t Gate::fenced_crossings() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return fenced_crossings_;
}

Gate::Side Gate::enter(trace::Pid pid) {
  std::unique_lock<BackendMutex> lock(mu_);
  if (engaged_ && fenced_.count(pid) != 0) {
    // Fenced crossing: exclusive against everything, writer priority so a
    // steady stream of shared crossings cannot starve it.
    ++exclusive_waiting_;
    cv_.wait(lock, [this] { return !exclusive_held_ && shared_ == 0; });
    --exclusive_waiting_;
    exclusive_held_ = true;
    ++fenced_crossings_;
    return Side::kExclusive;
  }
  // Unfenced (or disengaged) crossing: shared side.  Registering even while
  // disengaged means an imposition arriving mid-crossing still waits for
  // every in-flight crossing to drain before a fenced one runs alone.
  cv_.wait(lock,
           [this] { return !exclusive_held_ && exclusive_waiting_ == 0; });
  ++shared_;
  return Side::kShared;
}

void Gate::exit(Side side) {
  {
    std::lock_guard<BackendMutex> lock(mu_);
    if (side == Side::kExclusive) {
      exclusive_held_ = false;
    } else {
      --shared_;
    }
  }
  cv_.notify_all();
}

}  // namespace robmon::sync
