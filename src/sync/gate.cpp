#include "sync/gate.hpp"

namespace robmon::sync {

void CheckerGate::enter_shared() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return !exclusive_held_ && writers_waiting_ == 0; });
  ++shared_holders_;
}

void CheckerGate::exit_shared() {
  std::lock_guard<std::mutex> lock(mu_);
  --shared_holders_;
  if (shared_holders_ == 0) cv_.notify_all();
}

void CheckerGate::enter_exclusive() {
  std::unique_lock<std::mutex> lock(mu_);
  ++writers_waiting_;
  cv_.wait(lock, [&] { return !exclusive_held_ && shared_holders_ == 0; });
  --writers_waiting_;
  exclusive_held_ = true;
}

void CheckerGate::exit_exclusive() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_held_ = false;
  }
  cv_.notify_all();
}

}  // namespace robmon::sync
