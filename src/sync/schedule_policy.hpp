// Schedule policy shared by every deterministic scheduler in the tree: the
// coroutine simulator (sim::Scheduler) and the fiber-based SimBackend
// (sync::SimScheduler) make every interleaving decision through the same
// seeded policy enum, so a seed means the same thing in both worlds and
// replay commands are portable between them.
#pragma once

namespace robmon::sync {

enum class SchedulePolicy {
  kFifo,    ///< Round-robin over runnable processes.
  kRandom,  ///< Uniform random pick among runnable processes (seeded).
};

}  // namespace robmon::sync
