#include "sync/sim_backend.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

// --- Sanitizer fiber annotations. -------------------------------------------
// ucontext switches move the stack pointer between heap-allocated stacks;
// without these hooks ASan's fake-stack machinery and TSan's shadow-stack
// tracking both misfire.  Declared by hand (extern "C", exact sanitizer-ABI
// signatures) so the build does not depend on sanitizer headers being
// installed.
#if defined(__SANITIZE_ADDRESS__)
#define ROBMON_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__)
#define ROBMON_TSAN_FIBERS 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ROBMON_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define ROBMON_TSAN_FIBERS 1
#endif
#endif

#if defined(ROBMON_ASAN_FIBERS)
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom,
                                    size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** bottom_old, size_t* size_old);
}
#endif
#if defined(ROBMON_TSAN_FIBERS)
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

namespace robmon::sync {

namespace {

thread_local SimScheduler* g_current_scheduler = nullptr;

}  // namespace

// --- SimScheduler. -----------------------------------------------------------

SimScheduler* SimScheduler::current() { return g_current_scheduler; }

SimScheduler::SimScheduler(Options options)
    : options_(options), clock_(0), rng_(options.seed) {
#if defined(ROBMON_TSAN_FIBERS)
  root_tsan_fiber_ = __tsan_get_current_fiber();
#endif
  prev_installed_ = g_current_scheduler;
  g_current_scheduler = this;
}

SimScheduler::~SimScheduler() {
#if defined(ROBMON_TSAN_FIBERS)
  for (auto& fiber : fibers_) {
    if (fiber->tsan_fiber != nullptr) __tsan_destroy_fiber(fiber->tsan_fiber);
  }
#endif
  g_current_scheduler = prev_installed_;
}

int SimScheduler::spawn(std::function<void()> body, std::string name) {
  const int id = static_cast<int>(fibers_.size());
  auto fiber = std::make_unique<Fiber>();
  fiber->id = id;
  fiber->name = name.empty() ? "fiber-" + std::to_string(id) : std::move(name);
  fiber->body = std::move(body);
  fiber->stack = std::make_unique<char[]>(options_.stack_bytes);
  getcontext(&fiber->ctx);
  fiber->ctx.uc_stack.ss_sp = fiber->stack.get();
  fiber->ctx.uc_stack.ss_size = options_.stack_bytes;
  fiber->ctx.uc_link = nullptr;
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiber->ctx,
              reinterpret_cast<void (*)()>(&SimScheduler::trampoline), 2, static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xFFFFFFFFu));
#if defined(ROBMON_TSAN_FIBERS)
  fiber->tsan_fiber = __tsan_create_fiber(0);
#endif
  fiber->state = FState::kRunnable;
  fibers_.push_back(std::move(fiber));
  runnable_.push_back(id);
  return id;
}

void SimScheduler::trampoline(unsigned hi, unsigned lo) {
  auto* scheduler = reinterpret_cast<SimScheduler*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo));
  Fiber& fiber = *scheduler->fibers_[scheduler->current_];
#if defined(ROBMON_ASAN_FIBERS)
  // First entry: learn the run loop's (root) stack bounds from the switch we
  // just arrived on, so fiber->root switches can name them.
  __sanitizer_finish_switch_fiber(fiber.fake_stack,
                                  &scheduler->root_stack_bottom_,
                                  &scheduler->root_stack_size_);
#endif
  scheduler->fiber_main(fiber);
  std::abort();  // fiber_main switches away for good; never reached.
}

void SimScheduler::fiber_main(Fiber& fiber) {
  try {
    fiber.body();
  } catch (...) {
    fiber.exception = std::current_exception();
  }
  fiber.body = nullptr;  // Release captures while the fiber is still "alive".
  fiber.state = FState::kDone;
  for (int joiner : fiber.joiners) unpark(joiner);
  fiber.joiners.clear();
  switch_context(&fiber, nullptr, /*dying=*/true);
}

void SimScheduler::switch_context(Fiber* self, Fiber* to,
                                  [[maybe_unused]] bool dying) {
  ucontext_t* from_ctx = self != nullptr ? &self->ctx : &root_ctx_;
  ucontext_t* to_ctx = to != nullptr ? &to->ctx : &root_ctx_;
#if defined(ROBMON_ASAN_FIBERS)
  const void* to_bottom =
      to != nullptr ? static_cast<const void*>(to->stack.get())
                    : root_stack_bottom_;
  const std::size_t to_size =
      to != nullptr ? options_.stack_bytes : root_stack_size_;
  void** save =
      dying ? nullptr
            : (self != nullptr ? &self->fake_stack : &root_fake_stack_);
  __sanitizer_start_switch_fiber(save, to_bottom, to_size);
#endif
#if defined(ROBMON_TSAN_FIBERS)
  __tsan_switch_to_fiber(to != nullptr ? to->tsan_fiber : root_tsan_fiber_, 0);
#endif
  swapcontext(from_ctx, to_ctx);
  // Control has come back to `self` (dying switches never return).
#if defined(ROBMON_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(
      self != nullptr ? self->fake_stack : root_fake_stack_, nullptr, nullptr);
#endif
}

void SimScheduler::switch_to_scheduler() {
  Fiber& fiber = require_fiber("switch_to_scheduler");
  switch_context(&fiber, nullptr, /*dying=*/false);
}

SimScheduler::Fiber& SimScheduler::require_fiber(const char* what) {
  if (current_ < 0) {
    throw std::logic_error(std::string("SimScheduler::") + what +
                           ": blocking operation outside a fiber (wrap the "
                           "scenario body in spawn())");
  }
  return *fibers_[static_cast<std::size_t>(current_)];
}

void SimScheduler::mix_digest(std::uint64_t value) {
  digest_ = (digest_ ^ value) * 1099511628211ULL;  // FNV-1a prime.
}

int SimScheduler::pick_next() {
  std::size_t index = 0;
  if (options_.policy == SchedulePolicy::kRandom && runnable_.size() > 1) {
    index = rng_.below(runnable_.size());
  }
  const int fiber = runnable_[index];
  runnable_.erase(runnable_.begin() + static_cast<std::ptrdiff_t>(index));
  return fiber;
}

util::TimeNs SimScheduler::service_timers() {
  const util::TimeNs now = clock_.now_ns();
  util::TimeNs earliest = -1;
  for (auto& fiber : fibers_) {
    if (fiber->state != FState::kSleeping &&
        fiber->state != FState::kParkedTimed) {
      continue;
    }
    if (fiber->wake_at <= now) {
      fiber->state = FState::kRunnable;  // woken_by_unpark false: timeout
      runnable_.push_back(fiber->id);
    } else if (earliest < 0 || fiber->wake_at < earliest) {
      earliest = fiber->wake_at;
    }
  }
  return earliest;
}

SimScheduler::StopReason SimScheduler::run(std::uint64_t max_steps) {
  if (in_fiber()) {
    throw std::logic_error("SimScheduler::run called from inside a fiber");
  }
  const std::uint64_t budget_end = steps_ + max_steps;
  for (;;) {
    const util::TimeNs next_wake = service_timers();
    if (runnable_.empty()) {
      if (next_wake < 0) {
        return live_count() == 0 ? StopReason::kAllDone
                                 : StopReason::kQuiescent;
      }
      // Everyone is waiting on a timer: jump virtual time to the earliest.
      clock_.set(std::max(clock_.now_ns(), next_wake));
      mix_digest(0x6A09E667F3BCC909ULL ^ static_cast<std::uint64_t>(next_wake));
      continue;
    }
    if (steps_ >= budget_end) return StopReason::kMaxSteps;
    const int fid = pick_next();
    mix_digest(static_cast<std::uint64_t>(fid) + 0x100);
    ++steps_;
    clock_.advance(options_.tick_ns);
    Fiber& fiber = *fibers_[static_cast<std::size_t>(fid)];
    current_ = fid;
    switch_context(nullptr, &fiber, /*dying=*/false);
    current_ = -1;
    if (fiber.state == FState::kRunnable) runnable_.push_back(fid);
  }
}

void SimScheduler::yield_fiber() {
  require_fiber("yield_fiber");
  switch_to_scheduler();
}

void SimScheduler::maybe_preempt() {
  if (current_ < 0) return;
  if (options_.policy != SchedulePolicy::kRandom) return;
  if (options_.preempt_probability <= 0.0) return;
  if (rng_.chance(options_.preempt_probability)) yield_fiber();
}

void SimScheduler::sleep_fiber(util::TimeNs delta) {
  Fiber& fiber = require_fiber("sleep_fiber");
  if (delta <= 0) {
    switch_to_scheduler();
    return;
  }
  fiber.state = FState::kSleeping;
  fiber.wake_at = clock_.now_ns() + delta;
  switch_to_scheduler();
}

void SimScheduler::park_fiber() {
  Fiber& fiber = require_fiber("park_fiber");
  fiber.state = FState::kParked;
  fiber.woken_by_unpark = false;
  switch_to_scheduler();
}

bool SimScheduler::park_fiber_until(util::TimeNs deadline) {
  Fiber& fiber = require_fiber("park_fiber_until");
  if (deadline <= clock_.now_ns()) return false;
  fiber.state = FState::kParkedTimed;
  fiber.wake_at = deadline;
  fiber.woken_by_unpark = false;
  switch_to_scheduler();
  return fiber.woken_by_unpark;
}

void SimScheduler::unpark(int fiber_id) {
  if (fiber_id < 0 || static_cast<std::size_t>(fiber_id) >= fibers_.size()) {
    return;
  }
  Fiber& fiber = *fibers_[static_cast<std::size_t>(fiber_id)];
  if (fiber.state != FState::kParked && fiber.state != FState::kParkedTimed) {
    return;  // Not parked (already woken, running, or done): lost-notify safe.
  }
  fiber.state = FState::kRunnable;
  fiber.woken_by_unpark = true;
  runnable_.push_back(fiber.id);
}

bool SimScheduler::fiber_done(int fiber_id) const {
  if (fiber_id < 0 || static_cast<std::size_t>(fiber_id) >= fibers_.size()) {
    return true;
  }
  return fibers_[static_cast<std::size_t>(fiber_id)]->state == FState::kDone;
}

void SimScheduler::join_fiber(int fiber_id) {
  if (fiber_done(fiber_id)) return;
  Fiber& self = require_fiber("join_fiber");
  while (!fiber_done(fiber_id)) {
    fibers_[static_cast<std::size_t>(fiber_id)]->joiners.push_back(self.id);
    park_fiber();
  }
}

std::size_t SimScheduler::pick(std::size_t n) {
  if (n <= 1) return 0;
  if (options_.policy != SchedulePolicy::kRandom) return 0;
  return rng_.below(n);
}

std::size_t SimScheduler::live_count() const {
  std::size_t live = 0;
  for (const auto& fiber : fibers_) {
    if (fiber->state != FState::kDone) ++live;
  }
  return live;
}

const std::string& SimScheduler::fiber_name(int fiber) const {
  static const std::string kRoot = "<root>";
  if (fiber < 0 || static_cast<std::size_t>(fiber) >= fibers_.size()) {
    return kRoot;
  }
  return fibers_[static_cast<std::size_t>(fiber)]->name;
}

void SimScheduler::rethrow_any_failure() const {
  for (const auto& fiber : fibers_) {
    if (fiber->exception) std::rethrow_exception(fiber->exception);
  }
}

// --- SimMutex. ---------------------------------------------------------------

void SimMutex::lock() {
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr || !scheduler->in_fiber()) {
    if (locked_) {
      throw std::logic_error("SimMutex::lock: contended lock outside a fiber");
    }
    locked_ = true;
    return;
  }
  scheduler->maybe_preempt();
  while (locked_) {
    waiters_.push_back(scheduler->current_fiber());
    scheduler->park_fiber();
  }
  locked_ = true;
}

bool SimMutex::try_lock() {
  if (locked_) return false;
  locked_ = true;
  return true;
}

void SimMutex::unlock() {
  locked_ = false;
  if (waiters_.empty()) return;
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr) {
    waiters_.clear();
    return;
  }
  // Wake everyone; who actually gets the lock is the scheduler's pick
  // (barging allowed, exactly like the real primitives).
  for (const int fiber : waiters_) scheduler->unpark(fiber);
  waiters_.clear();
}

// --- SimCondVar. -------------------------------------------------------------

void SimCondVar::notify_one() {
  if (waiters_.empty()) return;
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr) return;
  const std::size_t index = scheduler->pick(waiters_.size());
  const int fiber = waiters_[index];
  waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(index));
  scheduler->unpark(fiber);
}

void SimCondVar::notify_all() {
  if (waiters_.empty()) return;
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr) {
    waiters_.clear();
    return;
  }
  for (const int fiber : waiters_) scheduler->unpark(fiber);
  waiters_.clear();
}

void SimCondVar::wait(std::unique_lock<SimMutex>& lock) {
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr || !scheduler->in_fiber()) {
    throw std::logic_error("SimCondVar::wait outside a fiber");
  }
  waiters_.push_back(scheduler->current_fiber());
  lock.unlock();
  scheduler->park_fiber();
  lock.lock();
}

util::TimeNs SimCondVar::deadline_from(std::int64_t timeout_ns) {
  const util::TimeNs now = SimBackend::now();
  if (timeout_ns <= 0) return now;
  constexpr util::TimeNs kMax = std::numeric_limits<util::TimeNs>::max();
  return timeout_ns > kMax - now ? kMax : now + timeout_ns;
}

std::cv_status SimCondVar::wait_until_ns(std::unique_lock<SimMutex>& lock,
                                         util::TimeNs deadline) {
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr || !scheduler->in_fiber()) {
    throw std::logic_error("SimCondVar::wait_for outside a fiber");
  }
  const int self = scheduler->current_fiber();
  waiters_.push_back(self);
  lock.unlock();
  const bool woken = scheduler->park_fiber_until(deadline);
  if (!woken) {
    // Timed out: deregister (a notify may have raced the timer and already
    // consumed the entry — the caller's predicate re-check under the lock
    // keeps that indistinguishable from a spurious wake).
    const auto it = std::find(waiters_.begin(), waiters_.end(), self);
    if (it != waiters_.end()) waiters_.erase(it);
  }
  lock.lock();
  return woken ? std::cv_status::no_timeout : std::cv_status::timeout;
}

// --- SimThread. --------------------------------------------------------------

SimThread::SimThread(std::function<void()> body)
    : scheduler_(SimScheduler::current()) {
  if (scheduler_ == nullptr) {
    throw std::logic_error("SimThread requires an installed SimScheduler");
  }
  fiber_ = scheduler_->spawn(std::move(body), "thread");
}

SimThread::~SimThread() {
  if (joinable()) std::terminate();  // Mirrors std::thread.
}

SimThread::SimThread(SimThread&& other) noexcept
    : scheduler_(other.scheduler_), fiber_(other.fiber_) {
  other.scheduler_ = nullptr;
  other.fiber_ = -1;
}

SimThread& SimThread::operator=(SimThread&& other) noexcept {
  if (this != &other) {
    if (joinable()) std::terminate();
    scheduler_ = other.scheduler_;
    fiber_ = other.fiber_;
    other.scheduler_ = nullptr;
    other.fiber_ = -1;
  }
  return *this;
}

void SimThread::join() {
  if (!joinable()) {
    throw std::logic_error("SimThread::join: not joinable");
  }
  if (scheduler_->in_fiber()) {
    scheduler_->join_fiber(fiber_);
  } else if (!scheduler_->fiber_done(fiber_)) {
    throw std::logic_error(
        "SimThread::join from the root context before the fiber completed "
        "(drive the scenario inside SimScheduler::run)");
  }
  fiber_ = -1;
}

// --- Clock + backend statics. ------------------------------------------------

util::TimeNs SimClock::now_ns() const {
  auto* scheduler = SimScheduler::current();
  return scheduler != nullptr ? scheduler->now() : 0;
}

SimClock& SimClock::instance() {
  static SimClock clock;
  return clock;
}

util::TimeNs SimBackend::now() {
  auto* scheduler = SimScheduler::current();
  return scheduler != nullptr ? scheduler->now() : 0;
}

void SimBackend::sleep_for(util::TimeNs delta) {
  auto* scheduler = SimScheduler::current();
  if (scheduler == nullptr) return;
  if (scheduler->in_fiber()) {
    scheduler->sleep_fiber(delta);
  } else if (delta > 0) {
    scheduler->clock().advance(delta);
  }
}

void SimBackend::yield() {
  auto* scheduler = SimScheduler::current();
  if (scheduler != nullptr && scheduler->in_fiber()) scheduler->yield_fiber();
}

}  // namespace robmon::sync
