// Checker gate: the portable substitute for the paper's "upon detection, all
// other running processes are suspended and are resumed only after the
// checking has finished" (Section 4).
//
// Monitor primitives hold the *shared* side for the duration of their queue
// manipulation; the periodic checker takes the *exclusive* side before taking
// a snapshot and running the detection algorithms.  Writer priority ensures a
// busy monitor cannot starve the checker.  The observable guarantee is the
// same as thread suspension: no monitor primitive is mid-flight while the
// checker reads state.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sync/backend.hpp"
#include "trace/event.hpp"

namespace robmon::sync {

class CheckerGate {
 public:
  CheckerGate() = default;
  CheckerGate(const CheckerGate&) = delete;
  CheckerGate& operator=(const CheckerGate&) = delete;

  /// Shared side: many monitor primitives may hold it concurrently.
  void enter_shared();
  void exit_shared();

  /// Exclusive side: blocks until all shared holders drain; new shared
  /// entrants queue behind the checker (writer priority).
  void enter_exclusive();
  void exit_exclusive();

  /// RAII helpers.
  class SharedScope {
   public:
    explicit SharedScope(CheckerGate& gate) : gate_(gate) {
      gate_.enter_shared();
    }
    ~SharedScope() { gate_.exit_shared(); }
    SharedScope(const SharedScope&) = delete;
    SharedScope& operator=(const SharedScope&) = delete;

   private:
    CheckerGate& gate_;
  };

  class ExclusiveScope {
   public:
    explicit ExclusiveScope(CheckerGate& gate) : gate_(gate) {
      gate_.enter_exclusive();
    }
    ~ExclusiveScope() { gate_.exit_exclusive(); }
    ExclusiveScope(const ExclusiveScope&) = delete;
    ExclusiveScope& operator=(const ExclusiveScope&) = delete;

   private:
    CheckerGate& gate_;
  };

 private:
  BackendMutex mu_;
  BackendCondVar cv_;
  std::int64_t shared_holders_ = 0;
  std::int64_t writers_waiting_ = 0;
  bool exclusive_held_ = false;
};

/// Recovery fence (the actuator of the impose-order remedy): call sites
/// that acquire several monitors wrap the whole acquisition region in a
/// Gate::Scope and consult apply_order() for the sequence to acquire in.
/// Until a recovery policy engages the gate, both are no-ops beyond one
/// uncontended mutex hop — the fence costs nothing while no deadlock is
/// predicted.
///
/// When a PotentialDeadlock warning arrives, the policy calls impose() with
/// the dominant acquisition order and the pids witnessed using the minority
/// (cycle-closing) direction.  From then on:
///
///   * apply_order() re-sorts a crossing's monitor sequence onto the
///     imposed order (unranked monitors keep their relative position,
///     after the ranked ones), so cooperative call sites simply stop using
///     the minority order;
///   * Scope makes a *fenced* pid's crossing exclusive against every other
///     crossing (shared/exclusive protocol, writer priority) — sound for
///     call sites that cannot re-order: a cycle needs two concurrent
///     crossings in conflicting orders, and while a fenced crossing runs,
///     no other crossing runs at all.
///
/// Engagement is sticky until clear().  The counters let workloads and
/// tests assert the zero-actions contract on consistent-order controls.
class Gate {
 public:
  /// Which protocol a crossing entered under (Scope bookkeeping: the
  /// verdict is made at enter time and must be paired at exit even if the
  /// gate is engaged or cleared mid-crossing).
  enum class Side { kShared, kExclusive };

  Gate() = default;
  Gate(const Gate&) = delete;
  Gate& operator=(const Gate&) = delete;

  /// Engage the fence: crossings by `fenced` pids turn exclusive, and
  /// apply_order() starts sorting onto `order` (monitor names, dominant
  /// direction first).  Re-imposing MERGES: already-ranked monitors keep
  /// their rank (new ones append behind) and the fenced sets union, so
  /// independent cycles impose independently.
  void impose(std::vector<std::string> order, std::vector<trace::Pid> fenced);

  /// Disengage; crossings become no-ops again.
  void clear();

  bool engaged() const;
  bool is_fenced(trace::Pid pid) const;
  std::vector<std::string> imposed_order() const;

  /// Stable-sort `monitors` onto the imposed order; names outside the
  /// order keep their relative position, after every ranked name.  No-op
  /// while disengaged.
  void apply_order(std::vector<std::string>& monitors) const;

  /// Times impose() engaged the fence.
  std::uint64_t impositions() const;
  /// Crossings that ran under the exclusive protocol.
  std::uint64_t fenced_crossings() const;

  /// Begin/end one crossing.  Prefer Scope.
  Side enter(trace::Pid pid);
  void exit(Side side);

  class Scope {
   public:
    Scope(Gate& gate, trace::Pid pid) : gate_(gate), side_(gate.enter(pid)) {}
    ~Scope() { gate_.exit(side_); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Gate& gate_;
    Side side_;
  };

 private:
  mutable BackendMutex mu_;
  BackendCondVar cv_;
  bool engaged_ = false;
  std::unordered_set<trace::Pid> fenced_;
  std::vector<std::string> order_;
  std::unordered_map<std::string, std::size_t> rank_;
  std::int64_t shared_ = 0;
  std::int64_t exclusive_waiting_ = 0;
  bool exclusive_held_ = false;
  std::uint64_t impositions_ = 0;
  std::uint64_t fenced_crossings_ = 0;
};

}  // namespace robmon::sync
