// Checker gate: the portable substitute for the paper's "upon detection, all
// other running processes are suspended and are resumed only after the
// checking has finished" (Section 4).
//
// Monitor primitives hold the *shared* side for the duration of their queue
// manipulation; the periodic checker takes the *exclusive* side before taking
// a snapshot and running the detection algorithms.  Writer priority ensures a
// busy monitor cannot starve the checker.  The observable guarantee is the
// same as thread suspension: no monitor primitive is mid-flight while the
// checker reads state.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace robmon::sync {

class CheckerGate {
 public:
  CheckerGate() = default;
  CheckerGate(const CheckerGate&) = delete;
  CheckerGate& operator=(const CheckerGate&) = delete;

  /// Shared side: many monitor primitives may hold it concurrently.
  void enter_shared();
  void exit_shared();

  /// Exclusive side: blocks until all shared holders drain; new shared
  /// entrants queue behind the checker (writer priority).
  void enter_exclusive();
  void exit_exclusive();

  /// RAII helpers.
  class SharedScope {
   public:
    explicit SharedScope(CheckerGate& gate) : gate_(gate) {
      gate_.enter_shared();
    }
    ~SharedScope() { gate_.exit_shared(); }
    SharedScope(const SharedScope&) = delete;
    SharedScope& operator=(const SharedScope&) = delete;

   private:
    CheckerGate& gate_;
  };

  class ExclusiveScope {
   public:
    explicit ExclusiveScope(CheckerGate& gate) : gate_(gate) {
      gate_.enter_exclusive();
    }
    ~ExclusiveScope() { gate_.exit_exclusive(); }
    ExclusiveScope(const ExclusiveScope&) = delete;
    ExclusiveScope& operator=(const ExclusiveScope&) = delete;

   private:
    CheckerGate& gate_;
  };

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::int64_t shared_holders_ = 0;
  std::int64_t writers_waiting_ = 0;
  bool exclusive_held_ = false;
};

}  // namespace robmon::sync
