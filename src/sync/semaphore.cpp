#include "sync/semaphore.hpp"

#include <chrono>

namespace robmon::sync {

AcquireResult Semaphore::acquire() {
  std::unique_lock<BackendMutex> lock(mu_);
  cv_.wait(lock, [&] { return count_ > 0 || poisoned_; });
  if (poisoned_) return AcquireResult::kPoisoned;
  --count_;
  return AcquireResult::kAcquired;
}

AcquireResult Semaphore::timed_acquire(std::int64_t timeout_ns) {
  std::unique_lock<BackendMutex> lock(mu_);
  const bool ready =
      cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                   [&] { return count_ > 0 || poisoned_; });
  if (!ready) return AcquireResult::kTimeout;
  if (poisoned_) return AcquireResult::kPoisoned;
  --count_;
  return AcquireResult::kAcquired;
}

bool Semaphore::try_acquire() {
  std::lock_guard<BackendMutex> lock(mu_);
  if (poisoned_ || count_ <= 0) return false;
  --count_;
  return true;
}

// release() and poison() notify while *holding* mu_.  Waiters live on the
// stack of the blocked thread (HoareMonitor::Waiter) and are destroyed the
// moment acquire() returns; notifying after unlock would let the woken
// thread destroy the condition variable while the notify call is still
// touching it.  Under the lock the waiter cannot re-acquire mu_ (and thus
// cannot return) until the notify has completed.

void Semaphore::release(std::int64_t permits) {
  std::lock_guard<BackendMutex> lock(mu_);
  count_ += permits;
  if (permits == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
}

void Semaphore::poison() {
  std::lock_guard<BackendMutex> lock(mu_);
  poisoned_ = true;
  cv_.notify_all();
}

bool Semaphore::poisoned() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return poisoned_;
}

std::int64_t Semaphore::available() const {
  std::lock_guard<BackendMutex> lock(mu_);
  return count_;
}

}  // namespace robmon::sync
