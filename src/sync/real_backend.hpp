// RealBackend: the production synchronization backend.  Every alias maps
// straight onto the std/pthread primitive the runtime has always used, and
// every function is a thin inline wrapper, so selecting this backend (the
// default) costs nothing over writing std::mutex by hand.
//
// The seam exists so that the same runtime sources can be compiled against
// SimBackend (sync/sim_backend.hpp), which routes blocking and time onto a
// deterministic fiber scheduler — the cxxtrace real_/relacy_synchronization.h
// pattern.  Code under src/ that can block, or that reads time for cadence /
// budget decisions, must go through these names rather than naming std
// types directly; pure data-protecting mutexes that are never held across a
// blocking call may stay std::mutex.
#pragma once

#include <pthread.h>
#include <time.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/clock.hpp"

namespace robmon::sync {

struct RealBackend {
  using Mutex = std::mutex;
  using CondVar = std::condition_variable;
  using Thread = std::thread;

  /// Monotone wall clock (cadence, deadlines).
  static util::TimeNs now() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Per-thread CPU clock (budget spend measurement).
  static util::TimeNs cpu_now() {
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return static_cast<util::TimeNs>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
  }

  static void sleep_for(util::TimeNs delta) {
    if (delta > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(delta));
  }

  static void yield() { std::this_thread::yield(); }

  static unsigned hardware_concurrency() {
    return std::thread::hardware_concurrency();
  }

  /// Clock instance for detection-rule timestamps (Options::clock defaults).
  static const util::Clock* clock() { return &util::SteadyClock::instance(); }
};

}  // namespace robmon::sync
