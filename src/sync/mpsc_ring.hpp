// Lock-free bounded MPSC ring buffer (cxxtrace-style slot claiming).
//
// Many producers claim slots with one compare_exchange on the claim cursor;
// each claimed slot is filled and then *published* with a release store on
// the slot's per-slot turn word (Vyukov's bounded-queue scheme).  The single
// consumer walks the published prefix in claimed-slot order and never blocks
// producers: an unpublished slot (a producer preempted between claim and
// publish) simply ends the current consume pass — the slot, and everything
// claimed after it, is picked up by a later pass.
//
// Concurrency contract:
//   * try_push may be called from any number of threads concurrently —
//     lock-free (a failed claim CAS means another producer made progress).
//   * consume / peek / consumed_count form the consumer side: at most one
//     thread at a time, externally serialized (EventLog holds drain_mu_).
//     Different threads may act as the consumer at different times as long
//     as the serialization orders them (a mutex does).
//   * A full ring rejects the push (returns false) instead of overwriting
//     or spinning; the caller owns the overflow/loss policy.
//
// Slot turn protocol (capacity C, all values mod 2^64):
//   turn == pos        slot free for the producer claiming position pos
//   turn == pos + 1    slot published, ready for the consumer at pos
//   turn == pos + C    slot consumed, free for the producer at pos + C
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace robmon::sync {

template <typename T>
class MpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit MpscRing(std::size_t capacity)
      : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<Slot[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      slots_[i].turn.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  /// Producer side: claim a slot, fill it, publish it.  Returns false when
  /// the ring is full (the slot at the claim cursor has not been consumed).
  bool try_push(const T& value) {
    std::uint64_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t turn = slot.turn.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(turn) - static_cast<std::int64_t>(pos);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          slot.value = value;
          slot.turn.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with the new claim cursor.
      } else if (diff < 0) {
        return false;  // One full lap behind: ring is full.
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Consumer side: invoke `fn(value)` on up to `max` published slots in
  /// claimed order, freeing each for reuse.  Stops early at the first
  /// unpublished slot.  Returns the number consumed.
  template <typename Fn>
  std::size_t consume(Fn&& fn, std::size_t max = SIZE_MAX) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t consumed = 0;
    while (consumed < max) {
      Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      if (slot.turn.load(std::memory_order_acquire) != pos + 1) break;
      fn(std::as_const(slot.value));
      slot.turn.store(pos + capacity_, std::memory_order_release);
      ++pos;
      ++consumed;
    }
    tail_.store(pos, std::memory_order_relaxed);
    return consumed;
  }

  /// Consumer side: invoke `fn(value)` on every currently published slot
  /// without consuming it (snapshot support).  Published-but-unconsumed
  /// slots cannot be reused by producers, so the values are stable.
  template <typename Fn>
  std::size_t peek(Fn&& fn) const {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    std::size_t seen = 0;
    for (;;) {
      const Slot& slot = slots_[static_cast<std::size_t>(pos) & mask_];
      if (slot.turn.load(std::memory_order_acquire) != pos + 1) break;
      fn(slot.value);
      ++pos;
      ++seen;
    }
    return seen;
  }

  std::size_t capacity() const { return capacity_; }

  /// Claimed-minus-consumed estimate; exact when producers are quiesced.
  std::size_t size_estimate() const {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }

 private:
  /// Not padded per slot: adjacent-slot sharing costs a little contended
  /// throughput but keeps a 1k-slot ring of small records tens of KB, so
  /// hundreds of monitor-local rings stay cheap.  The cursors below do get
  /// their own lines — they are the truly hot shared words.
  struct Slot {
    std::atomic<std::uint64_t> turn{0};
    T value{};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  /// Producer claim cursor and consumer cursor on separate cache lines:
  /// producers never touch tail_, the consumer never writes head_.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  alignas(64) std::atomic<std::uint64_t> tail_{0};
};

}  // namespace robmon::sync
