// Test-and-test-and-set spinlock with exponential backoff.  Protects the
// monitor's internal queue structures, whose critical sections are a few
// dozen instructions; a full mutex would dominate the cost being measured
// by the Table-1 overhead benchmark.
//
// Under the deterministic SimBackend a raw spin would livelock: the holder
// is another fiber on the same OS thread and std::this_thread::yield never
// switches fibers.  There SpinLock is the cooperative SimMutex instead —
// contention parks the fiber and the scheduler picks who runs.
#pragma once

#if defined(ROBMON_SYNC_BACKEND_SIM)

#include "sync/sim_backend.hpp"

namespace robmon::sync {
using SpinLock = SimMutex;
}  // namespace robmon::sync

#else

#include <atomic>
#include <thread>

namespace robmon::sync {

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Spin on a relaxed load to avoid cache-line ping-pong.
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins >= kYieldThreshold) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kYieldThreshold = 64;
  std::atomic<bool> flag_{false};
};

}  // namespace robmon::sync

#endif  // ROBMON_SYNC_BACKEND_SIM
