#include "pathexpr/parser.hpp"

#include <cctype>
#include <optional>
#include <utility>
#include <vector>

namespace robmon::pathexpr {

namespace {

enum class TokenKind {
  kIdent,
  kSemicolon,
  kComma,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kQuestion,
  kPathKeyword,
  kEndKeyword,
  kEof,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Token next() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ >= text_.size()) return {TokenKind::kEof, "", start};
    const char c = text_[pos_];
    switch (c) {
      case ';':
        ++pos_;
        return {TokenKind::kSemicolon, ";", start};
      case ',':
        ++pos_;
        return {TokenKind::kComma, ",", start};
      case '(':
        ++pos_;
        return {TokenKind::kLParen, "(", start};
      case ')':
        ++pos_;
        return {TokenKind::kRParen, ")", start};
      case '*':
        ++pos_;
        return {TokenKind::kStar, "*", start};
      case '+':
        ++pos_;
        return {TokenKind::kPlus, "+", start};
      case '?':
        ++pos_;
        return {TokenKind::kQuestion, "?", start};
      default:
        break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      std::string word(text_.substr(pos_, end - pos_));
      pos_ = end;
      if (word == "path") return {TokenKind::kPathKeyword, word, start};
      if (word == "end") return {TokenKind::kEndKeyword, word, start};
      return {TokenKind::kIdent, word, start};
    }
    throw ParseError(start, std::string("unexpected character '") + c + "'");
  }

 private:
  void skip_whitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  std::string_view text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : lexer_(text) { advance(); }

  NodePtr parse_spec() {
    bool bracketed = false;
    if (current_.kind == TokenKind::kPathKeyword) {
      bracketed = true;
      advance();
    }
    NodePtr expr = parse_alt();
    if (bracketed) {
      expect(TokenKind::kEndKeyword, "'end'");
      advance();
    }
    expect(TokenKind::kEof, "end of input");
    return expr;
  }

 private:
  NodePtr parse_alt() {
    std::vector<NodePtr> branches;
    branches.push_back(parse_seq());
    while (current_.kind == TokenKind::kComma) {
      advance();
      branches.push_back(parse_seq());
    }
    if (branches.size() == 1) return std::move(branches.front());
    return Node::make_alt(std::move(branches));
  }

  NodePtr parse_seq() {
    std::vector<NodePtr> parts;
    parts.push_back(parse_postfix());
    while (current_.kind == TokenKind::kSemicolon) {
      advance();
      parts.push_back(parse_postfix());
    }
    if (parts.size() == 1) return std::move(parts.front());
    return Node::make_seq(std::move(parts));
  }

  NodePtr parse_postfix() {
    NodePtr node = parse_primary();
    for (;;) {
      if (current_.kind == TokenKind::kStar) {
        node = Node::make_star(std::move(node));
        advance();
      } else if (current_.kind == TokenKind::kPlus) {
        node = Node::make_plus(std::move(node));
        advance();
      } else if (current_.kind == TokenKind::kQuestion) {
        node = Node::make_opt(std::move(node));
        advance();
      } else {
        return node;
      }
    }
  }

  NodePtr parse_primary() {
    if (current_.kind == TokenKind::kIdent) {
      NodePtr node = Node::make_name(current_.text);
      advance();
      return node;
    }
    if (current_.kind == TokenKind::kLParen) {
      advance();
      NodePtr inner = parse_alt();
      expect(TokenKind::kRParen, "')'");
      advance();
      return inner;
    }
    throw ParseError(current_.offset,
                     "expected procedure name or '(', got '" + current_.text +
                         "'");
  }

  void expect(TokenKind kind, const std::string& what) {
    if (current_.kind != kind) {
      throw ParseError(current_.offset, "expected " + what + ", got '" +
                                            (current_.text.empty()
                                                 ? std::string("<eof>")
                                                 : current_.text) +
                                            "'");
    }
  }

  void advance() { current_ = lexer_.next(); }

  Lexer lexer_;
  Token current_{TokenKind::kEof, "", 0};
};

}  // namespace

NodePtr parse(std::string_view text) { return Parser(text).parse_spec(); }

}  // namespace robmon::pathexpr
