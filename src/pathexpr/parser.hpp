// Lexer + recursive-descent parser for path expressions.  See ast.hpp for
// the grammar.  Errors carry a character offset and human-readable message.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "pathexpr/ast.hpp"

namespace robmon::pathexpr {

class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t offset, const std::string& message)
      : std::runtime_error("path expression at offset " +
                           std::to_string(offset) + ": " + message),
        offset_(offset) {}

  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse a path-expression specification.  Accepts both the bare expression
/// form ("(Acquire ; Release)*") and the bracketed form
/// ("path (Acquire ; Release)* end").  Throws ParseError on bad input.
NodePtr parse(std::string_view text);

}  // namespace robmon::pathexpr
