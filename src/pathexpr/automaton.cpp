#include "pathexpr/automaton.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <stdexcept>

#include "pathexpr/parser.hpp"

namespace robmon::pathexpr {

namespace {

/// Fragment of an NFA under construction: entry and exit states.
struct Fragment {
  StateId in;
  StateId out;
};

class NfaBuilder {
 public:
  explicit NfaBuilder(const Node& expr) {
    nfa_.alphabet = alphabet(expr);
    Fragment all = build(expr);
    nfa_.start = all.in;
    nfa_.accept = all.out;
  }

  Nfa take() { return std::move(nfa_); }

 private:
  StateId new_state() { return nfa_.state_count++; }

  void edge(StateId from, std::int32_t symbol, StateId to) {
    nfa_.transitions.push_back({from, symbol, to});
  }

  std::int32_t symbol_of(const std::string& name) const {
    const auto it =
        std::find(nfa_.alphabet.begin(), nfa_.alphabet.end(), name);
    return static_cast<std::int32_t>(it - nfa_.alphabet.begin());
  }

  Fragment build(const Node& node) {
    switch (node.kind) {
      case NodeKind::kName: {
        const StateId in = new_state();
        const StateId out = new_state();
        edge(in, symbol_of(node.name), out);
        return {in, out};
      }
      case NodeKind::kSeq: {
        Fragment acc = build(*node.children.front());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
          const Fragment next = build(*node.children[i]);
          edge(acc.out, -1, next.in);
          acc.out = next.out;
        }
        return acc;
      }
      case NodeKind::kAlt: {
        const StateId in = new_state();
        const StateId out = new_state();
        for (const auto& child : node.children) {
          const Fragment branch = build(*child);
          edge(in, -1, branch.in);
          edge(branch.out, -1, out);
        }
        return {in, out};
      }
      case NodeKind::kStar: {
        const StateId in = new_state();
        const StateId out = new_state();
        const Fragment body = build(*node.children[0]);
        edge(in, -1, body.in);
        edge(body.out, -1, out);
        edge(in, -1, out);        // skip
        edge(body.out, -1, body.in);  // repeat
        return {in, out};
      }
      case NodeKind::kPlus: {
        const StateId in = new_state();
        const StateId out = new_state();
        const Fragment body = build(*node.children[0]);
        edge(in, -1, body.in);
        edge(body.out, -1, out);
        edge(body.out, -1, body.in);  // repeat, but no skip
        return {in, out};
      }
      case NodeKind::kOpt: {
        const StateId in = new_state();
        const StateId out = new_state();
        const Fragment body = build(*node.children[0]);
        edge(in, -1, body.in);
        edge(body.out, -1, out);
        edge(in, -1, out);  // skip
        return {in, out};
      }
    }
    throw std::logic_error("unreachable node kind");
  }

  Nfa nfa_;
};

using StateSet = std::set<StateId>;

StateSet epsilon_closure(const Nfa& nfa, const StateSet& states) {
  StateSet closure = states;
  std::queue<StateId> frontier;
  for (StateId s : states) frontier.push(s);
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop();
    for (const auto& t : nfa.transitions) {
      if (t.from == s && t.symbol == -1 && !closure.count(t.to)) {
        closure.insert(t.to);
        frontier.push(t.to);
      }
    }
  }
  return closure;
}

StateSet move_on(const Nfa& nfa, const StateSet& states, std::int32_t symbol) {
  StateSet out;
  for (const auto& t : nfa.transitions) {
    if (t.symbol == symbol && states.count(t.from)) out.insert(t.to);
  }
  return out;
}

}  // namespace

Nfa build_nfa(const Node& expr) { return NfaBuilder(expr).take(); }

std::int32_t Dfa::symbol_index(const std::string& name) const {
  const auto it = std::find(alphabet.begin(), alphabet.end(), name);
  if (it == alphabet.end()) return -1;
  return static_cast<std::int32_t>(it - alphabet.begin());
}

Dfa determinize(const Nfa& nfa) {
  Dfa dfa;
  dfa.alphabet = nfa.alphabet;
  const auto k = static_cast<std::int32_t>(dfa.alphabet.size());

  std::map<StateSet, StateId> ids;
  std::vector<StateSet> sets;
  std::queue<StateId> work;

  const StateSet start_set = epsilon_closure(nfa, {nfa.start});
  ids[start_set] = 0;
  sets.push_back(start_set);
  work.push(0);
  dfa.start = 0;

  while (!work.empty()) {
    const StateId current = work.front();
    work.pop();
    const StateSet current_set = sets[static_cast<std::size_t>(current)];
    for (std::int32_t sym = 0; sym < k; ++sym) {
      const StateSet moved =
          epsilon_closure(nfa, move_on(nfa, current_set, sym));
      StateId target = kDeadState;
      if (!moved.empty()) {
        auto [it, inserted] =
            ids.emplace(moved, static_cast<StateId>(sets.size()));
        if (inserted) {
          sets.push_back(moved);
          work.push(it->second);
        }
        target = it->second;
      }
      // Transition table grows lazily; fill after the loop below.
      dfa.transitions.resize(sets.size() * static_cast<std::size_t>(k),
                             kDeadState);
      dfa.transitions[static_cast<std::size_t>(current) *
                          static_cast<std::size_t>(k) +
                      static_cast<std::size_t>(sym)] = target;
    }
  }

  dfa.state_count = static_cast<std::int32_t>(sets.size());
  dfa.transitions.resize(static_cast<std::size_t>(dfa.state_count) *
                             static_cast<std::size_t>(k),
                         kDeadState);
  dfa.accepting.resize(static_cast<std::size_t>(dfa.state_count), false);
  for (StateId s = 0; s < dfa.state_count; ++s) {
    dfa.accepting[static_cast<std::size_t>(s)] =
        sets[static_cast<std::size_t>(s)].count(nfa.accept) > 0;
  }
  return dfa;
}

Dfa minimize(const Dfa& dfa) {
  const auto k = static_cast<std::int32_t>(dfa.alphabet.size());
  const std::int32_t n = dfa.state_count;
  if (n == 0) return dfa;

  // Partition refinement.  Block 0 = non-accepting, block 1 = accepting
  // (either may be empty; normalize below).  The implicit dead state is its
  // own block and is represented by kDeadState directly.
  std::vector<std::int32_t> block(static_cast<std::size_t>(n));
  for (std::int32_t s = 0; s < n; ++s) {
    block[static_cast<std::size_t>(s)] =
        dfa.accepting[static_cast<std::size_t>(s)] ? 1 : 0;
  }

  bool changed = true;
  std::int32_t block_count = 2;
  while (changed) {
    changed = false;
    // Signature of a state: (its block, blocks of all successors).
    std::map<std::vector<std::int32_t>, std::int32_t> signature_to_block;
    std::vector<std::int32_t> new_block(static_cast<std::size_t>(n));
    for (std::int32_t s = 0; s < n; ++s) {
      std::vector<std::int32_t> sig;
      sig.reserve(static_cast<std::size_t>(k) + 1);
      sig.push_back(block[static_cast<std::size_t>(s)]);
      for (std::int32_t sym = 0; sym < k; ++sym) {
        const StateId t = dfa.next(s, sym);
        sig.push_back(t == kDeadState ? -1 : block[static_cast<std::size_t>(t)]);
      }
      auto [it, inserted] = signature_to_block.emplace(
          sig, static_cast<std::int32_t>(signature_to_block.size()));
      new_block[static_cast<std::size_t>(s)] = it->second;
    }
    const auto new_count = static_cast<std::int32_t>(signature_to_block.size());
    if (new_count != block_count) {
      changed = true;
      block_count = new_count;
    }
    block = std::move(new_block);
  }

  Dfa out;
  out.alphabet = dfa.alphabet;
  out.state_count = block_count;
  out.accepting.resize(static_cast<std::size_t>(block_count), false);
  out.transitions.resize(static_cast<std::size_t>(block_count) *
                             static_cast<std::size_t>(k),
                         kDeadState);
  out.start = block[static_cast<std::size_t>(dfa.start)];
  for (std::int32_t s = 0; s < n; ++s) {
    const auto b = static_cast<std::size_t>(block[static_cast<std::size_t>(s)]);
    if (dfa.accepting[static_cast<std::size_t>(s)]) out.accepting[b] = true;
    for (std::int32_t sym = 0; sym < k; ++sym) {
      const StateId t = dfa.next(s, sym);
      out.transitions[b * static_cast<std::size_t>(k) +
                      static_cast<std::size_t>(sym)] =
          t == kDeadState ? kDeadState
                          : block[static_cast<std::size_t>(t)];
    }
  }
  return out;
}

Dfa compile(const std::string& expression) {
  const NodePtr ast = parse(expression);
  return minimize(determinize(build_nfa(*ast)));
}

bool equivalent_up_to(const Dfa& dfa, const Dfa& other, std::size_t max_len) {
  if (dfa.alphabet != other.alphabet) return false;
  const auto k = static_cast<std::int32_t>(dfa.alphabet.size());

  // BFS over the product automaton up to depth max_len.
  std::set<std::pair<StateId, StateId>> seen;
  std::queue<std::pair<std::pair<StateId, StateId>, std::size_t>> work;
  work.push({{dfa.start, other.start}, 0});
  seen.insert({dfa.start, other.start});
  while (!work.empty()) {
    const auto [pair, depth] = work.front();
    work.pop();
    const auto [a, b] = pair;
    const bool a_accepts = a != kDeadState &&
                           dfa.accepting[static_cast<std::size_t>(a)];
    const bool b_accepts = b != kDeadState &&
                           other.accepting[static_cast<std::size_t>(b)];
    if (a_accepts != b_accepts) return false;
    if (depth >= max_len) continue;
    for (std::int32_t sym = 0; sym < k; ++sym) {
      const StateId na = a == kDeadState ? kDeadState : dfa.next(a, sym);
      const StateId nb = b == kDeadState ? kDeadState : other.next(b, sym);
      if (na == kDeadState && nb == kDeadState) continue;
      if (seen.insert({na, nb}).second) work.push({{na, nb}, depth + 1});
    }
  }
  return true;
}

}  // namespace robmon::pathexpr
