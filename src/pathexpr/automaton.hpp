// Thompson NFA construction and subset-construction DFA (with partition-
// refinement minimization) over path-expression ASTs.  The alphabet is the
// set of procedure names appearing in the expression, mapped to dense
// indices 0..k-1.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pathexpr/ast.hpp"

namespace robmon::pathexpr {

using StateId = std::int32_t;
constexpr StateId kDeadState = -1;

/// Nondeterministic finite automaton with epsilon transitions.
struct Nfa {
  struct Transition {
    StateId from;
    std::int32_t symbol;  ///< index into `alphabet`; -1 = epsilon.
    StateId to;
  };

  std::vector<std::string> alphabet;
  StateId start = 0;
  StateId accept = 0;
  std::int32_t state_count = 0;
  std::vector<Transition> transitions;
};

/// Build a Thompson NFA for the expression.
Nfa build_nfa(const Node& expr);

/// Deterministic finite automaton; transition table is dense
/// (state_count x alphabet.size()), kDeadState marks missing transitions.
struct Dfa {
  std::vector<std::string> alphabet;
  StateId start = 0;
  std::int32_t state_count = 0;
  std::vector<bool> accepting;            ///< indexed by state.
  std::vector<StateId> transitions;       ///< row-major [state][symbol].

  StateId next(StateId state, std::int32_t symbol) const {
    return transitions[static_cast<std::size_t>(state) * alphabet.size() +
                       static_cast<std::size_t>(symbol)];
  }

  std::int32_t symbol_index(const std::string& name) const;

  /// True if some word is reachable from `state` (i.e. the state is live).
  bool live(StateId state) const { return state != kDeadState; }
};

/// Subset construction.
Dfa determinize(const Nfa& nfa);

/// Hopcroft-style partition refinement; returns an equivalent minimal DFA.
Dfa minimize(const Dfa& dfa);

/// Convenience: parse + NFA + DFA + minimize.
Dfa compile(const std::string& expression);

/// True iff `dfa` accepts exactly the same words as `other` up to length
/// `max_len` over the shared alphabet (test helper; alphabets must match).
bool equivalent_up_to(const Dfa& dfa, const Dfa& other, std::size_t max_len);

}  // namespace robmon::pathexpr
