// Per-process call-order matcher — the *real-time* phase of the paper's
// two-phase detection strategy (Section 3.3): "real-time checking of calling
// orders of monitor procedures, which is applied only to
// Resource-access-right-allocator type monitors".
//
// A CallOrderSpec compiles the monitor's declared path expression once; each
// user process then owns a Matcher cursor.  advance() is O(1) per call.
// Procedure names outside the expression's alphabet are unconstrained and do
// not move the cursor.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pathexpr/automaton.hpp"

namespace robmon::pathexpr {

enum class MatchResult {
  kOk,            ///< Call permitted; cursor advanced.
  kUnconstrained, ///< Name not in the alphabet; cursor unchanged.
  kViolation,     ///< Call violates the declared partial order.
};

class CallOrderSpec;

/// Cursor over the compiled DFA for one user process.
class Matcher {
 public:
  Matcher() = default;
  explicit Matcher(const CallOrderSpec* spec);

  /// Feed one completed procedure call.  On kViolation the cursor freezes
  /// (subsequent calls keep reporting violations) until reset().
  MatchResult advance(const std::string& procedure);

  /// True if the calls so far form a complete word of the path expression
  /// (e.g. every Acquire has been Released).
  bool at_accepting() const;

  /// True if some continuation could still reach acceptance.
  bool viable() const { return state_ != kDeadState; }

  void reset();

 private:
  const CallOrderSpec* spec_ = nullptr;
  StateId state_ = kDeadState;
};

/// Immutable compiled specification shared by all matchers of a monitor.
class CallOrderSpec {
 public:
  /// Compile from path-expression text.  Throws ParseError on bad syntax.
  explicit CallOrderSpec(const std::string& expression);

  const Dfa& dfa() const { return dfa_; }
  const std::string& expression() const { return expression_; }

  Matcher matcher() const { return Matcher(this); }

 private:
  std::string expression_;
  Dfa dfa_;
};

}  // namespace robmon::pathexpr
