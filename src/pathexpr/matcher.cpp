#include "pathexpr/matcher.hpp"

namespace robmon::pathexpr {

Matcher::Matcher(const CallOrderSpec* spec)
    : spec_(spec), state_(spec ? spec->dfa().start : kDeadState) {}

MatchResult Matcher::advance(const std::string& procedure) {
  if (spec_ == nullptr) return MatchResult::kUnconstrained;
  const std::int32_t symbol = spec_->dfa().symbol_index(procedure);
  if (symbol < 0) return MatchResult::kUnconstrained;
  if (state_ == kDeadState) return MatchResult::kViolation;
  const StateId next = spec_->dfa().next(state_, symbol);
  if (next == kDeadState) {
    state_ = kDeadState;
    return MatchResult::kViolation;
  }
  state_ = next;
  return MatchResult::kOk;
}

bool Matcher::at_accepting() const {
  if (spec_ == nullptr || state_ == kDeadState) return false;
  return spec_->dfa().accepting[static_cast<std::size_t>(state_)];
}

void Matcher::reset() {
  state_ = spec_ ? spec_->dfa().start : kDeadState;
}

CallOrderSpec::CallOrderSpec(const std::string& expression)
    : expression_(expression), dfa_(compile(expression)) {}

}  // namespace robmon::pathexpr
