// AST for path-expression-like call-order specifications (paper Section 3:
// "A convenient way to specify the partial order relation is path-expression
// like notation", citing Campbell & Kolstad).
//
// Grammar (',' = selection, ';' = sequence, postfix '*' '+' '?'):
//   spec    := "path" expr "end" | expr
//   expr    := seq ("," seq)*
//   seq     := postfix (";" postfix)*
//   postfix := primary ("*" | "+" | "?")*
//   primary := IDENT | "(" expr ")"
//
// Example (resource-access-right allocator): path (Acquire ; Release)* end
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace robmon::pathexpr {

enum class NodeKind {
  kName,  ///< A monitor procedure name.
  kSeq,   ///< Sequence: children in order.
  kAlt,   ///< Selection: any one child.
  kStar,  ///< Zero or more repetitions of the single child.
  kPlus,  ///< One or more repetitions.
  kOpt,   ///< Zero or one occurrence.
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

struct Node {
  NodeKind kind;
  std::string name;            ///< kName only.
  std::vector<NodePtr> children;

  static NodePtr make_name(std::string value);
  static NodePtr make_seq(std::vector<NodePtr> children);
  static NodePtr make_alt(std::vector<NodePtr> children);
  static NodePtr make_star(NodePtr child);
  static NodePtr make_plus(NodePtr child);
  static NodePtr make_opt(NodePtr child);
};

/// Canonical textual rendering (fully parenthesized) for tests/debugging.
std::string to_string(const Node& node);

/// All distinct procedure names appearing in the expression, in first-seen
/// order.  This is the matcher's alphabet; names outside it are unconstrained.
std::vector<std::string> alphabet(const Node& node);

}  // namespace robmon::pathexpr
