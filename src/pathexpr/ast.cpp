#include "pathexpr/ast.hpp"

#include <algorithm>
#include <sstream>

namespace robmon::pathexpr {

NodePtr Node::make_name(std::string value) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kName;
  node->name = std::move(value);
  return node;
}

NodePtr Node::make_seq(std::vector<NodePtr> children) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kSeq;
  node->children = std::move(children);
  return node;
}

NodePtr Node::make_alt(std::vector<NodePtr> children) {
  auto node = std::make_unique<Node>();
  node->kind = NodeKind::kAlt;
  node->children = std::move(children);
  return node;
}

namespace {
NodePtr make_unary(NodeKind kind, NodePtr child) {
  auto node = std::make_unique<Node>();
  node->kind = kind;
  node->children.push_back(std::move(child));
  return node;
}
}  // namespace

NodePtr Node::make_star(NodePtr child) {
  return make_unary(NodeKind::kStar, std::move(child));
}
NodePtr Node::make_plus(NodePtr child) {
  return make_unary(NodeKind::kPlus, std::move(child));
}
NodePtr Node::make_opt(NodePtr child) {
  return make_unary(NodeKind::kOpt, std::move(child));
}

std::string to_string(const Node& node) {
  std::ostringstream out;
  switch (node.kind) {
    case NodeKind::kName:
      out << node.name;
      break;
    case NodeKind::kSeq: {
      out << "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out << " ; ";
        out << to_string(*node.children[i]);
      }
      out << ")";
      break;
    }
    case NodeKind::kAlt: {
      out << "(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out << " , ";
        out << to_string(*node.children[i]);
      }
      out << ")";
      break;
    }
    case NodeKind::kStar:
      out << to_string(*node.children[0]) << "*";
      break;
    case NodeKind::kPlus:
      out << to_string(*node.children[0]) << "+";
      break;
    case NodeKind::kOpt:
      out << to_string(*node.children[0]) << "?";
      break;
  }
  return out.str();
}

namespace {
void collect_names(const Node& node, std::vector<std::string>& out) {
  if (node.kind == NodeKind::kName) {
    if (std::find(out.begin(), out.end(), node.name) == out.end()) {
      out.push_back(node.name);
    }
    return;
  }
  for (const auto& child : node.children) collect_names(*child, out);
}
}  // namespace

std::vector<std::string> alphabet(const Node& node) {
  std::vector<std::string> names;
  collect_names(node, names);
  return names;
}

}  // namespace robmon::pathexpr
