// robmon — umbrella header: the supported public surface, in one include.
//
//   #include "robmon.hpp"
//
// Layers (see docs/architecture.md):
//   core/     detection model — specs, fault taxonomy, detectors, the
//             pool-level wait-for and lock-order analyses, recovery policy
//   trace/    events, scheduling-state snapshots, the event log, codec
//   runtime/  the execution engine — rt::EventSink (the stable ingestion
//             seam), HoareMonitor / RobustMonitor, rt::CheckerPool
//   inject/   fault injection (tests, examples, coverage)
//   workloads/ the paper's example monitors (bounded buffer, allocator,
//             dining philosophers, gate crossing)
//   util/     flags (argv + ROBMON_* env), clocks, ids
//
// Embedding contract: the stable way to feed robmon's detection engine
// from your own instrumentation is rt::EventSink — implement it and
// register with rt::CheckerPool::add(EventSink&) (detector-less) or
// add(EventSink&, Detector&).  The LD_PRELOAD interposition backend
// (src/interpose/, docs/interposition.md) is itself a client of exactly
// that seam; nothing it does is privileged.
//
// The interpose/ headers are deliberately NOT pulled in here: they are
// the shim's internals, not the embedding API.
#pragma once

#include "core/assertions.hpp"
#include "core/detector.hpp"
#include "core/fault.hpp"
#include "core/lockorder.hpp"
#include "core/monitor_spec.hpp"
#include "core/recovery.hpp"
#include "core/replay.hpp"
#include "core/waitfor.hpp"
#include "inject/injection.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/event_sink.hpp"
#include "runtime/hoare_monitor.hpp"
#include "runtime/robust_monitor.hpp"
#include "trace/codec.hpp"
#include "trace/event.hpp"
#include "trace/event_log.hpp"
#include "trace/snapshot.hpp"
#include "util/clock.hpp"
#include "util/flags.hpp"
#include "util/ids.hpp"
#include "workloads/allocator.hpp"
#include "workloads/bounded_buffer.hpp"
#include "workloads/dining.hpp"
#include "workloads/gate_crossing.hpp"
#include "workloads/loadgen.hpp"
