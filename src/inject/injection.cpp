#include "inject/injection.hpp"

namespace robmon::inject {

NullInjection& NullInjection::instance() {
  static NullInjection controller;
  return controller;
}

bool ScriptedInjection::fire(core::FaultKind kind, trace::Pid pid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kind != plan_.kind) return false;
  if (plan_.target != trace::kNoPid && pid != plan_.target) return false;
  if (fired_) {
    // Sticky faults keep striking their victim.
    return plan_.sticky && pid == victim_;
  }
  ++opportunities_;
  if (opportunities_ < plan_.nth) return false;
  fired_ = true;
  victim_ = pid;
  return true;
}

bool ScriptedInjection::active(core::FaultKind kind, trace::Pid pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_ && kind == plan_.kind && pid == victim_;
}

bool ScriptedInjection::fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_;
}

std::optional<trace::Pid> ScriptedInjection::victim() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fired_) return std::nullopt;
  return victim_;
}

RandomInjection::RandomInjection(core::FaultKind kind, double probability,
                                 std::uint64_t seed)
    : kind_(kind), probability_(probability), rng_(seed) {}

bool RandomInjection::fire(core::FaultKind kind, trace::Pid pid) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kind != kind_) return false;
  if (sticky_engaged_) return pid == first_victim_;
  if (!rng_.chance(probability_)) return false;
  ++fired_count_;
  if (first_victim_ == trace::kNoPid) first_victim_ = pid;
  if (is_sticky_fault(kind_)) sticky_engaged_ = true;
  return true;
}

bool RandomInjection::active(core::FaultKind kind, trace::Pid pid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return kind == kind_ && first_victim_ != trace::kNoPid &&
         pid == first_victim_;
}

std::int64_t RandomInjection::times_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fired_count_;
}

std::optional<trace::Pid> RandomInjection::victim() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_victim_ == trace::kNoPid) return std::nullopt;
  return first_victim_;
}

bool is_sticky_fault(core::FaultKind kind) {
  switch (kind) {
    case core::FaultKind::kEnterNoResponse:   // victim stays unserved
    case core::FaultKind::kWaitEntryStarved:  // victim skipped repeatedly
      return true;
    default:
      return false;
  }
}

bool needs_timer(core::FaultKind kind) {
  switch (kind) {
    case core::FaultKind::kEnterNoResponse:        // Tio
    case core::FaultKind::kWaitEntryStarved:       // Tio
    case core::FaultKind::kSignalExitNoResume:     // Tmax on cond waiters
    case core::FaultKind::kTerminationInsideMonitor:  // Tmax
    case core::FaultKind::kResourceNeverReleased:  // Tlimit
      return true;
    default:
      return false;
  }
}

}  // namespace robmon::inject
