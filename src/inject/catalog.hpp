// The fault catalog: for each of the paper's 21 taxonomy classes, which
// detection rules are expected to flag it.  Drives the coverage matrix
// (the paper's robustness evaluation: "all injected faults are detected")
// and the completeness property tests.
#pragma once

#include <vector>

#include "core/fault.hpp"
#include "core/monitor_spec.hpp"

namespace robmon::inject {

struct CatalogEntry {
  core::FaultKind kind;
  /// Monitor type on which the class is exercised (Level II faults need a
  /// coordinator, Level III an allocator; Level I uses any — we use the
  /// coordinator workload).
  core::MonitorType exercised_on;
  /// Detection counts if the detector reported *any* of these rules.  For
  /// Level I this is the full Algorithm-1 rule set: a single implementation
  /// fault desynchronizes the checking lists and typically trips a cascade
  /// of entangled rules, and the paper claims detection, not attribution.
  std::vector<core::RuleId> detecting_rules;
  /// The rules most characteristic of the class (documentation/matrix).
  std::vector<core::RuleId> characteristic_rules;
  /// Detection requires a timeout horizon (Tmax/Tio/Tlimit) to pass.
  bool timer_based;
};

const std::vector<CatalogEntry>& fault_catalog();
const CatalogEntry& catalog_entry(core::FaultKind kind);

/// Does any report match the entry's expected rules?
bool detected(const CatalogEntry& entry,
              const std::vector<core::FaultReport>& reports);

}  // namespace robmon::inject
