#include "inject/catalog.hpp"

#include <algorithm>
#include <stdexcept>

namespace robmon::inject {

namespace {

using core::FaultKind;
using core::MonitorType;
using core::RuleId;

/// Any implementation-level (Level I) fault manifests as a violation of the
/// general concurrency-control rules checked by Algorithm-1.  A single
/// injected fault typically triggers a *cascade* (e.g. a lost entry request
/// desynchronizes the rebuilt Enter-0-List, so later admissions replay
/// wrongly and trip ST-3/ST-4 as well as the final list comparisons); the
/// paper's claim is that the fault is detected, not which of the entangled
/// rules fires first, so detection of a Level-I fault counts any of these.
std::vector<RuleId> level1_rules() {
  return {RuleId::kSt1EntryQueueMismatch,   RuleId::kSt2CondQueueMismatch,
          RuleId::kSt3aMultipleRunning,     RuleId::kSt3bRunnerNotSole,
          RuleId::kSt3cEnterWhileOccupied,  RuleId::kSt3dBlockedWhileFree,
          RuleId::kSt4EventFromBlockedProcess,
          RuleId::kSt5ResidenceExceedsTmax, RuleId::kSt6EntryWaitExceedsTio,
          RuleId::kStRunningMismatch};
}

/// Level II faults violate the resource-state rules of Algorithm-2.
std::vector<RuleId> level2_rules() {
  return {RuleId::kSt7aReceiveExceedsSend, RuleId::kSt7aSendExceedsCapacity,
          RuleId::kSt7bResourceBalanceMismatch,
          RuleId::kSt7cSendDelayedWhenNotFull,
          RuleId::kSt7dReceiveDelayedWhenNotEmpty};
}

/// Level III faults violate the calling-order rules of Algorithm-3 or the
/// real-time path-expression phase.
std::vector<RuleId> level3_rules() {
  return {RuleId::kSt8aDuplicateAcquire, RuleId::kSt8bReleaseWithoutAcquire,
          RuleId::kSt8cHoldExceedsTlimit, RuleId::kRealTimeOrder};
}

CatalogEntry make_entry(FaultKind kind,
                        std::vector<RuleId> characteristic_rules,
                        bool timer_based) {
  CatalogEntry entry;
  entry.kind = kind;
  entry.exercised_on = core::level_of(kind) == core::FaultLevel::kUserProcess
                           ? MonitorType::kResourceAllocator
                           : MonitorType::kCommunicationCoordinator;
  switch (core::level_of(kind)) {
    case core::FaultLevel::kImplementation:
      entry.detecting_rules = level1_rules();
      break;
    case core::FaultLevel::kMonitorProcedure:
      entry.detecting_rules = level2_rules();
      break;
    case core::FaultLevel::kUserProcess:
      entry.detecting_rules = level3_rules();
      break;
  }
  entry.characteristic_rules = std::move(characteristic_rules);
  entry.timer_based = timer_based;
  return entry;
}

std::vector<CatalogEntry> build_catalog() {
  return {
      // Level I — implementation faults.
      make_entry(FaultKind::kEnterMutualExclusionViolation,
                 {RuleId::kSt3cEnterWhileOccupied,
                  RuleId::kSt3aMultipleRunning},
                 false),
      make_entry(FaultKind::kEnterRequestLost,
                 {RuleId::kSt1EntryQueueMismatch,
                  RuleId::kSt4EventFromBlockedProcess},
                 false),
      make_entry(FaultKind::kEnterNoResponse,
                 {RuleId::kSt3dBlockedWhileFree,
                  RuleId::kSt6EntryWaitExceedsTio},
                 true),
      make_entry(FaultKind::kEnterNotObserved,
                 {RuleId::kSt3bRunnerNotSole, RuleId::kStRunningMismatch},
                 false),
      make_entry(FaultKind::kWaitNoBlock,
                 {RuleId::kSt4EventFromBlockedProcess,
                  RuleId::kSt2CondQueueMismatch},
                 false),
      make_entry(FaultKind::kWaitProcessLost,
                 {RuleId::kSt2CondQueueMismatch},
                 false),
      make_entry(FaultKind::kWaitEntryNotResumed,
                 {RuleId::kSt1EntryQueueMismatch,
                  RuleId::kStRunningMismatch},
                 false),
      make_entry(FaultKind::kWaitEntryStarved,
                 {RuleId::kSt6EntryWaitExceedsTio,
                  RuleId::kSt1EntryQueueMismatch},
                 true),
      make_entry(FaultKind::kWaitMutualExclusionViolation,
                 {RuleId::kSt3bRunnerNotSole,
                  RuleId::kSt4EventFromBlockedProcess},
                 false),
      make_entry(FaultKind::kWaitMonitorNotReleased,
                 {RuleId::kStRunningMismatch,
                  RuleId::kSt6EntryWaitExceedsTio},
                 false),
      make_entry(FaultKind::kSignalExitNoResume,
                 {RuleId::kSt1EntryQueueMismatch,
                  RuleId::kSt5ResidenceExceedsTmax},
                 true),
      make_entry(FaultKind::kSignalExitMonitorNotReleased,
                 {RuleId::kStRunningMismatch,
                  RuleId::kSt5ResidenceExceedsTmax},
                 false),
      make_entry(FaultKind::kSignalExitMutualExclusionViolation,
                 {RuleId::kSt3bRunnerNotSole,
                  RuleId::kSt4EventFromBlockedProcess},
                 false),
      make_entry(FaultKind::kTerminationInsideMonitor,
                 {RuleId::kSt5ResidenceExceedsTmax},
                 true),
      // Level II — monitor procedure faults.
      make_entry(FaultKind::kSendDelayWrong,
                 {RuleId::kSt7cSendDelayedWhenNotFull},
                 false),
      make_entry(FaultKind::kReceiveDelayWrong,
                 {RuleId::kSt7dReceiveDelayedWhenNotEmpty},
                 false),
      make_entry(FaultKind::kReceiveExceedsSend,
                 {RuleId::kSt7aReceiveExceedsSend},
                 false),
      make_entry(FaultKind::kSendExceedsCapacity,
                 {RuleId::kSt7aSendExceedsCapacity},
                 false),
      // Level III — user process faults.
      make_entry(FaultKind::kReleaseBeforeAcquire,
                 {RuleId::kSt8bReleaseWithoutAcquire, RuleId::kRealTimeOrder},
                 false),
      make_entry(FaultKind::kResourceNeverReleased,
                 {RuleId::kSt8cHoldExceedsTlimit},
                 true),
      make_entry(FaultKind::kDoubleAcquireDeadlock,
                 {RuleId::kSt8aDuplicateAcquire, RuleId::kRealTimeOrder},
                 false),
  };
}

}  // namespace

const std::vector<CatalogEntry>& fault_catalog() {
  static const std::vector<CatalogEntry> catalog = build_catalog();
  return catalog;
}

const CatalogEntry& catalog_entry(core::FaultKind kind) {
  for (const auto& entry : fault_catalog()) {
    if (entry.kind == kind) return entry;
  }
  throw std::out_of_range("no catalog entry for fault kind");
}

bool detected(const CatalogEntry& entry,
              const std::vector<core::FaultReport>& reports) {
  return std::any_of(
      reports.begin(), reports.end(), [&](const core::FaultReport& report) {
        return std::find(entry.detecting_rules.begin(),
                         entry.detecting_rules.end(),
                         report.rule) != entry.detecting_rules.end();
      });
}

}  // namespace robmon::inject
