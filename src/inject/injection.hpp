// Fault injection framework (Section 4 evaluation: "Faults of different
// kinds as classified in Section 3.2 are injected randomly for evaluating
// the coverage of the fault detection algorithms").
//
// The monitor implementations (runtime/hoare_monitor, sim/sim_monitor) and
// the buggy workload variants consult an InjectionController at each
// decision point that a taxonomy fault can subvert.  The instrumentation
// (data-gathering routines) stays correct — faults corrupt *behaviour*, and
// the recorded events/states reflect what actually happened, which is what
// the detector checks.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>

#include "core/fault.hpp"
#include "trace/event.hpp"
#include "util/rng.hpp"

namespace robmon::inject {

/// Queried by instrumented code: "should fault `kind` strike at this
/// opportunity, affecting process `pid`?"  Implementations must be
/// thread-safe (the real-thread monitor calls from many threads).
class InjectionController {
 public:
  virtual ~InjectionController() = default;

  /// Arming opportunity: "should fault `kind` strike here?"  Counting
  /// implementations advance their opportunity counter on every call with a
  /// matching kind, so call it only at the decision point the fault class
  /// subverts.
  virtual bool fire(core::FaultKind kind, trace::Pid pid) = 0;

  /// Sticky-victim query: is `pid` the already-struck victim of `kind`?
  /// Never arms.  Used where one fault class influences another decision
  /// point (e.g. an enter-no-response victim must also be skipped during
  /// entry-queue admission).
  virtual bool active(core::FaultKind kind, trace::Pid pid) const {
    (void)kind;
    (void)pid;
    return false;
  }
};

/// Never injects; the default for production use.
class NullInjection final : public InjectionController {
 public:
  bool fire(core::FaultKind, trace::Pid) override { return false; }
  static NullInjection& instance();
};

/// Deterministic one-shot (or sticky) injection of a single fault class.
///
///   kind    — the taxonomy class to inject.
///   target  — restrict to one pid (kNoPid = any process).
///   nth     — fire at the nth matching opportunity (1-based).
///   sticky  — once armed, keep firing for the same pid at every later
///             opportunity (needed for persistent faults such as
///             starvation, where the victim must be skipped repeatedly).
class ScriptedInjection final : public InjectionController {
 public:
  struct Plan {
    core::FaultKind kind;
    trace::Pid target = trace::kNoPid;
    std::int64_t nth = 1;
    bool sticky = false;
  };

  explicit ScriptedInjection(Plan plan) : plan_(plan) {}

  bool fire(core::FaultKind kind, trace::Pid pid) override;
  bool active(core::FaultKind kind, trace::Pid pid) const override;

  /// True once the fault has been injected at least once.
  bool fired() const;
  /// Pid that the (first) injection struck, if any.
  std::optional<trace::Pid> victim() const;

 private:
  Plan plan_;
  mutable std::mutex mu_;
  std::int64_t opportunities_ = 0;
  bool fired_ = false;
  trace::Pid victim_ = trace::kNoPid;
};

/// Randomized injection: each opportunity of the configured class fires
/// with probability p (seeded, reproducible).  Used by the coverage bench's
/// "injected randomly" mode.
class RandomInjection final : public InjectionController {
 public:
  RandomInjection(core::FaultKind kind, double probability,
                  std::uint64_t seed);

  bool fire(core::FaultKind kind, trace::Pid pid) override;
  bool active(core::FaultKind kind, trace::Pid pid) const override;

  std::int64_t times_fired() const;
  std::optional<trace::Pid> victim() const;

 private:
  core::FaultKind kind_;
  double probability_;
  mutable std::mutex mu_;
  util::Rng rng_;
  std::int64_t fired_count_ = 0;
  trace::Pid first_victim_ = trace::kNoPid;
  bool sticky_engaged_ = false;
};

/// True when the fault class requires *sticky* semantics to manifest (the
/// implementation must keep misbehaving towards the same victim).
bool is_sticky_fault(core::FaultKind kind);

/// True when detection of this class requires a timeout horizon to elapse
/// (Tmax / Tio / Tlimit) rather than a single list comparison.
bool needs_timer(core::FaultKind kind);

}  // namespace robmon::inject
