// BudgetController — the pool-wide overhead governor behind
// CheckerPool::Options::budget.
//
// The paper's pitch (Section 3.3) is detection cheap enough to leave on in
// production, but per-monitor EWMA stretch bounds nothing *globally*: a 10×
// load spike multiplies every monitor's per-check cost (Algorithm 1 replays
// the drained segment, so checks scale with event volume) and total
// detection spend grows unbounded.  The detectEr line of work shows the
// levers that matter are the sync-vs-async instrumentation choice and
// load-aware shedding; this controller drives both from one number: the
// fraction of wall-clock time the pool may spend checking.
//
// Measurement reuses the batch-drain structure: the dispatching worker
// already brackets each batch, so one wall-clock pair per dispatch (not per
// check) feeds record_batch().  Spend is accumulated over a decision window
// and folded into an EWMA of the spend *ratio* (check time / wall time);
// windows — not raw batches — drive transitions, so a single slow batch
// cannot whipsaw the level.
//
// Degradation is a fixed, documented ladder, one step per decision window:
//
//   0 kNominal         full detection and prediction
//   1 kStretch         idle-cadence ceiling × stretch_boost; offload-
//                      eligible (kInline) monitors flip to the pool
//   2 kShedPrediction  lock-order *prediction* shed: checkpoint passes and
//                      per-check order folds skipped (resumable)
//   3 kWiden           every effective check period × widen_factor, still
//                      clamped to the smallest timer threshold (Tmax) —
//                      detection is widened toward Tmax, never dropped
//
// Confirmed-cycle (wait-for) detection and active recovery are never shed:
// the ladder tops out at deferring work the timer rules bound, and the
// wait-for checkpoint + recovery actuation run at every level.  Recovery is
// symmetric — one step down per window once the EWMA falls below
// fraction × recover_margin (hysteresis, so the controller does not oscillate
// on the budget boundary) — and every transition is appended to the log as a
// codec v6 `bdgt` record, so replay can re-derive what was shed and when.
//
// The controller takes timestamps as arguments and owns no clock: tests
// drive it deterministically (util::ManualClock feeding synthetic now/spend
// pairs), and the pool feeds it the same wall clock its cadence runs on.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "trace/codec.hpp"
#include "util/clock.hpp"

namespace robmon::rt {

/// The degradation ladder, in shed order.  Values are the codec v6 `bdgt`
/// level encoding — keep them dense and ordered.
enum class BudgetLevel : int {
  kNominal = 0,
  kStretch = 1,
  kShedPrediction = 2,
  kWiden = 3,
};

struct BudgetOptions {
  /// Detection budget as a fraction of wall-clock time (0.01 = "detection
  /// ≤ 1% of cycles").  ≤ 0 disables the controller entirely: no
  /// measurement, no transitions, every knob neutral.
  double fraction = 0.0;
  /// EWMA weight of the newest window's spend ratio.
  double ewma_alpha = 0.3;
  /// Step back down once the EWMA falls below fraction × recover_margin.
  /// Must be in (0, 1): the gap between the two thresholds is the
  /// hysteresis band that keeps the level from oscillating at the boundary.
  double recover_margin = 0.5;
  /// Spend accumulation window; transitions are evaluated at most once per
  /// window.  0 evaluates on every record_batch (deterministic tests).
  util::TimeNs decision_window = 50 * util::kMillisecond;
  /// Level ≥ kStretch: multiplier on every monitor's idle-stretch ceiling.
  double stretch_boost = 4.0;
  /// Level kWiden: multiplier on every monitor's effective check period
  /// (applied before the Tmax clamp — latency stays timer-bounded).
  double widen_factor = 4.0;
};

class BudgetController {
 public:
  BudgetController() = default;
  /// Validates the knobs (throws std::invalid_argument) when enabled.
  explicit BudgetController(BudgetOptions options);

  bool enabled() const { return options_.fraction > 0.0; }
  const BudgetOptions& options() const { return options_; }

  /// Fold one dispatch batch that spent `check_ns` checking and finished at
  /// wall time `now`.  Returns the transition record when the degradation
  /// level changed (the caller applies side effects and keeps the pool log);
  /// the record is also appended to log().  No-op when disabled.
  std::optional<trace::BudgetRecord> record_batch(util::TimeNs check_ns,
                                                  util::TimeNs now);

  /// Current ladder position.  Lock-free: hot paths (cadence updates, the
  /// prediction shed gate) read this on every check.
  BudgetLevel level() const {
    return static_cast<BudgetLevel>(level_.load(std::memory_order_relaxed));
  }
  /// Current spend EWMA (fraction of wall time; 0 until the first window).
  double spend_ewma() const;

  // --- The knobs the pool reads (all neutral when disabled/nominal). -----

  /// Idle-cadence ceiling multiplier: options.stretch_boost at level ≥
  /// kStretch, otherwise 1.
  double stretch_boost() const {
    return level() >= BudgetLevel::kStretch ? options_.stretch_boost : 1.0;
  }
  /// Whether lock-order prediction (checkpoint passes and per-check folds)
  /// is currently shed.
  bool shed_prediction() const {
    return level() >= BudgetLevel::kShedPrediction;
  }
  /// Effective-period multiplier: options.widen_factor at kWiden, else 1.
  double widen_factor() const {
    return level() >= BudgetLevel::kWiden ? options_.widen_factor : 1.0;
  }

  std::uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  /// Copy of the transition log, in order — the codec v6 `bdgt` records a
  /// trace export attaches.
  std::vector<trace::BudgetRecord> log() const;

 private:
  BudgetOptions options_;
  std::atomic<int> level_{0};
  std::atomic<std::uint64_t> transitions_{0};

  /// Window accumulator + EWMA + log.  One lock acquisition per dispatch
  /// batch — record_batch is the only writer path.
  mutable std::mutex mu_;
  util::TimeNs window_start_ = -1;  ///< -1 until the first batch lands.
  util::TimeNs window_spend_ = 0;
  double ewma_ = 0.0;
  bool ewma_seeded_ = false;
  std::vector<trace::BudgetRecord> log_;
};

}  // namespace robmon::rt
