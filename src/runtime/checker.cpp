#include "runtime/checker.hpp"

#include <chrono>
#include <optional>

namespace robmon::rt {

PeriodicChecker::PeriodicChecker(HoareMonitor& monitor,
                                 core::Detector& detector,
                                 const util::Clock& clock)
    : PeriodicChecker(monitor, detector, clock, Options{}) {}

PeriodicChecker::PeriodicChecker(HoareMonitor& monitor,
                                 core::Detector& detector,
                                 const util::Clock& clock, Options options)
    : monitor_(&monitor),
      detector_(&detector),
      clock_(&clock),
      options_(options) {}

PeriodicChecker::~PeriodicChecker() { stop(); }

void PeriodicChecker::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void PeriodicChecker::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
}

core::Detector::CheckStats PeriodicChecker::check_now() {
  std::lock_guard<std::mutex> serialize(check_mu_);
  std::vector<trace::EventRecord> segment;
  std::optional<trace::SchedulingState> state;
  core::Detector::CheckStats stats;
  if (options_.hold_gate_during_check) {
    sync::CheckerGate::ExclusiveScope quiesce(monitor_->gate());
    segment = monitor_->log().drain();
    state = monitor_->snapshot();
    stats = detector_->check(segment, *state, clock_->now_ns());
  } else {
    {
      sync::CheckerGate::ExclusiveScope quiesce(monitor_->gate());
      segment = monitor_->log().drain();
      state = monitor_->snapshot();
    }
    stats = detector_->check(segment, *state, clock_->now_ns());
  }
  if (options_.on_checkpoint) options_.on_checkpoint(*state);
  return stats;
}

std::uint64_t PeriodicChecker::checks_run() const {
  return detector_->checks_run();
}

void PeriodicChecker::loop() {
  const auto period =
      std::chrono::nanoseconds(detector_->spec().check_period);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, period, [this] { return stop_requested_; })) {
      return;
    }
    lock.unlock();
    check_now();
    lock.lock();
  }
}

}  // namespace robmon::rt
