#include "runtime/checker.hpp"

#include <utility>

namespace robmon::rt {

namespace {

CheckerPool::Options single_thread(const util::Clock& clock) {
  CheckerPool::Options options;
  options.threads = 1;
  options.clock = &clock;
  return options;
}

CheckerPool::MonitorOptions to_pool_options(PeriodicChecker::Options options) {
  CheckerPool::MonitorOptions pool_options;
  pool_options.hold_gate_during_check = options.hold_gate_during_check;
  pool_options.max_stretch = options.max_stretch;
  pool_options.on_checkpoint = std::move(options.on_checkpoint);
  return pool_options;
}

}  // namespace

PeriodicChecker::PeriodicChecker(HoareMonitor& monitor,
                                 core::Detector& detector,
                                 const util::Clock& clock)
    : PeriodicChecker(monitor, detector, clock, Options{}) {}

PeriodicChecker::PeriodicChecker(HoareMonitor& monitor,
                                 core::Detector& detector,
                                 const util::Clock& clock, Options options)
    : detector_(&detector),
      pool_(single_thread(clock)),
      id_(pool_.add(monitor, detector, to_pool_options(std::move(options)))) {}

PeriodicChecker::~PeriodicChecker() = default;  // pool joins its worker

void PeriodicChecker::start() { pool_.schedule(id_); }

void PeriodicChecker::stop() { pool_.unschedule(id_); }

core::Detector::CheckStats PeriodicChecker::check_now() {
  return pool_.check_now(id_);
}

std::uint64_t PeriodicChecker::checks_run() const {
  return detector_->checks_run();
}

}  // namespace robmon::rt
