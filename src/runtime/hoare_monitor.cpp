#include "runtime/hoare_monitor.hpp"

#include <mutex>
#include <utility>

namespace robmon::rt {

using core::FaultKind;
using trace::EventRecord;

HoareMonitor::HoareMonitor(core::MonitorSpec spec, const util::Clock& clock,
                           inject::InjectionController& injection,
                           Instrumentation instrumentation,
                           Semantics semantics)
    : spec_(std::move(spec)),
      clock_(&clock),
      injection_(&injection),
      instrumentation_(instrumentation),
      semantics_(semantics) {
  // Coordinator monitors own R# from the start (all Rmax resources free),
  // so the detector's initial state is consistent before any procedure of
  // the shared module has been constructed.
  if (spec_.type == core::MonitorType::kCommunicationCoordinator) {
    track_resources_ = true;
    resources_ = spec_.rmax;
  }
}

trace::SymbolId HoareMonitor::proc_of(trace::Pid pid) const {
  const auto it = inside_proc_.find(pid);
  return it == inside_proc_.end() ? trace::kNoSymbol : it->second;
}

void HoareMonitor::record(const trace::EventRecord& event) {
  if (instrumentation_ == Instrumentation::kFull) log_.append(event);
}

void HoareMonitor::set_resource_gauge(std::function<std::int64_t()> gauge) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  resource_gauge_ = std::move(gauge);
}

Status HoareMonitor::enter(trace::Pid pid, const std::string& procedure) {
  return enter(pid, symbols_.intern(procedure));
}
Status HoareMonitor::wait(trace::Pid pid, const std::string& cond) {
  return wait(pid, symbols_.intern(cond));
}
void HoareMonitor::signal_exit(trace::Pid pid, const std::string& cond) {
  signal_exit_impl(pid, symbols_.intern(cond), 0);
}
void HoareMonitor::signal_exit(trace::Pid pid, const std::string& cond,
                               std::int64_t resource_delta) {
  signal_exit_impl(pid, symbols_.intern(cond), resource_delta);
}
void HoareMonitor::signal_exit(trace::Pid pid, trace::SymbolId cond) {
  signal_exit_impl(pid, cond, 0);
}
void HoareMonitor::signal_exit(trace::Pid pid, trace::SymbolId cond,
                               std::int64_t resource_delta) {
  signal_exit_impl(pid, cond, resource_delta);
}
void HoareMonitor::exit(trace::Pid pid) {
  signal_exit_impl(pid, trace::kNoSymbol, 0);
}

void HoareMonitor::track_resources(std::int64_t initial) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  track_resources_ = true;
  resources_ = initial;
}

std::int64_t HoareMonitor::resources() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return resources_;
}

void HoareMonitor::note_hold(trace::Pid pid) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  auto [it, inserted] = holds_.try_emplace(pid);
  if (inserted) {
    it->second.since = now();
    it->second.ticket = ++next_ticket_;
  }
  ++it->second.units;
}

void HoareMonitor::note_release(trace::Pid pid) {
  std::lock_guard<sync::SpinLock> lock(mu_);
  auto it = holds_.find(pid);
  if (it == holds_.end()) return;  // release-before-acquire client bug
  if (--it->second.units <= 0) holds_.erase(it);
}

Status HoareMonitor::enter(trace::Pid pid, trace::SymbolId proc_id) {
  Waiter self{pid, proc_id, 0, 0, false, {}};
  bool must_park = false;
  {
    std::optional<sync::CheckerGate::SharedScope> gate_scope;
    if (instrumentation_ == Instrumentation::kFull) gate_scope.emplace(gate_);
    std::lock_guard<sync::SpinLock> lock(mu_);
    if (poisoned_) return Status::kPoisoned;

    // Fault I.a.4: run inside without Enter being observed.
    if (injection_->fire(FaultKind::kEnterNotObserved, pid)) {
      inside_proc_[pid] = proc_id;
      return Status::kOk;
    }

    const bool busy = owner_.has_value();

    // Fault I.a.1: entry granted although the monitor is occupied.
    if (busy &&
        injection_->fire(FaultKind::kEnterMutualExclusionViolation, pid)) {
      record(EventRecord::enter(pid, proc_id, true, now()));
      inside_proc_[pid] = proc_id;
      return Status::kOk;
    }

    if (!busy) {
      // Fault I.a.3: blocked although the monitor is free.
      if (injection_->fire(FaultKind::kEnterNoResponse, pid)) {
        record(EventRecord::enter(pid, proc_id, false, now()));
        self.since = now();
        self.ticket = ++next_ticket_;
        entry_queue_.push_back(
            {pid, proc_id, self.since, self.ticket, &self, false});
        must_park = true;
      } else {
        owner_ = pid;
        owner_proc_ = proc_id;
        owner_since_ = now();
        owner_ticket_ = ++next_ticket_;
        inside_proc_[pid] = proc_id;
        record(EventRecord::enter(pid, proc_id, true, now()));
        return Status::kOk;
      }
    } else {
      // Recovery poison rejects exactly the calls that would park: the
      // monitor is busy, so this enter would block.  Non-blocking traffic
      // (a free monitor — e.g. a Release returning a unit) flows, which is
      // what lets a poisoned monitor drain back to service.  No event is
      // recorded: the rejection is out-of-band, like the eviction.
      if (recovery_poisoned_) return Status::kRecoveryFault;
      record(EventRecord::enter(pid, proc_id, false, now()));
      // Fault I.a.2: the request is recorded but then lost.
      if (injection_->fire(FaultKind::kEnterRequestLost, pid)) {
        lost_waiters_.push_back(&self);
        must_park = true;
      } else {
        self.since = now();
        self.ticket = ++next_ticket_;
        entry_queue_.push_back(
            {pid, proc_id, self.since, self.ticket, &self, false});
        must_park = true;
      }
    }
  }
  if (must_park) {
    const auto result = self.sem.acquire();
    if (result == sync::AcquireResult::kPoisoned) return Status::kPoisoned;
    if (self.recovery) return Status::kRecoveryFault;
  }
  return Status::kOk;
}

Status HoareMonitor::wait(trace::Pid pid, trace::SymbolId cond) {
  Waiter self{pid, trace::kNoSymbol, 0, 0, false, {}};
  bool must_park = false;
  {
    std::optional<sync::CheckerGate::SharedScope> gate_scope;
    if (instrumentation_ == Instrumentation::kFull) gate_scope.emplace(gate_);
    std::lock_guard<sync::SpinLock> lock(mu_);
    if (poisoned_) return Status::kPoisoned;
    if (recovery_poisoned_) {
      // The caller owns the monitor; a rejected wait must not leave it
      // claimed (the entry queue is empty while recovery-poisoned, so
      // there is nobody to hand off to).
      if (owner_ && *owner_ == pid) {
        owner_.reset();
        inside_proc_.erase(pid);
      }
      return Status::kRecoveryFault;
    }

    const trace::SymbolId proc_id = proc_of(pid);
    self.proc = proc_id;
    record(EventRecord::wait(pid, proc_id, cond, now()));

    // Fault I.b.1: not blocked; continues inside without releasing.
    if (injection_->fire(FaultKind::kWaitNoBlock, pid)) {
      return Status::kOk;
    }

    // Fault I.b.2: neither queued nor running.
    const bool lost = injection_->fire(FaultKind::kWaitProcessLost, pid);
    if (lost) {
      lost_waiters_.push_back(&self);
    } else {
      self.since = now();
      self.ticket = ++next_ticket_;
      cond_queues_[cond].push_back(&self);
    }
    must_park = true;

    if (owner_ && *owner_ == pid) {
      // Fault I.b.6: blocked but the monitor is not released.
      if (injection_->fire(FaultKind::kWaitMonitorNotReleased, pid)) {
        // owner_ deliberately left pointing at the blocked process.
      } else {
        owner_.reset();
        inside_proc_.erase(pid);
        // Fault I.b.3: entry waiters not resumed on wait (arming requires
        // an actual entry waiter).
        if (entry_queue_.empty() ||
            !injection_->fire(FaultKind::kWaitEntryNotResumed, pid)) {
          // Fault I.b.5: more than one entry waiter resumed.
          const bool extra =
              entry_queue_.size() >= 2 &&
              injection_->fire(FaultKind::kWaitMutualExclusionViolation, pid);
          Waiter* admitted = nullptr;
          Waiter* ghost = nullptr;
          admit_from_entry_queue(extra, &admitted, &ghost);
          if (admitted != nullptr) admitted->sem.release();
          if (ghost != nullptr) ghost->sem.release();
        }
      }
    }
  }
  if (must_park) {
    const auto result = self.sem.acquire();
    if (result == sync::AcquireResult::kPoisoned) return Status::kPoisoned;
    if (self.recovery) return Status::kRecoveryFault;
  }
  return Status::kOk;
}

HoareMonitor::Waiter* HoareMonitor::pop_admittable() {
  for (auto it = entry_queue_.begin(); it != entry_queue_.end(); ++it) {
    if (it->zombie) continue;  // slot leaked by a double-admission
    if (injection_->fire(FaultKind::kWaitEntryStarved, it->pid)) continue;
    if (injection_->active(FaultKind::kEnterNoResponse, it->pid)) continue;
    Waiter* waiter = it->waiter;
    entry_queue_.erase(it);
    return waiter;
  }
  return nullptr;
}

HoareMonitor::Waiter* HoareMonitor::resume_ghost_from_entry_queue() {
  // Notify-too-many bug: resume the waiter but leak its queue slot.
  for (auto& entry : entry_queue_) {
    if (entry.zombie) continue;
    if (injection_->active(FaultKind::kWaitEntryStarved, entry.pid)) continue;
    if (injection_->active(FaultKind::kEnterNoResponse, entry.pid)) continue;
    Waiter* waiter = entry.waiter;
    entry.zombie = true;
    entry.waiter = nullptr;
    inside_proc_[entry.pid] = entry.proc;
    return waiter;
  }
  return nullptr;
}

void HoareMonitor::admit_from_entry_queue(bool extra,
                                          HoareMonitor::Waiter** admitted,
                                          HoareMonitor::Waiter** ghost) {
  *admitted = nullptr;
  *ghost = nullptr;
  Waiter* waiter = pop_admittable();
  if (waiter == nullptr) return;
  owner_ = waiter->pid;
  owner_proc_ = waiter->proc;
  owner_since_ = now();
  owner_ticket_ = ++next_ticket_;
  inside_proc_[waiter->pid] = waiter->proc;
  *admitted = waiter;
  if (extra) *ghost = resume_ghost_from_entry_queue();
}

void HoareMonitor::signal_exit_impl(trace::Pid pid, trace::SymbolId cond,
                                    std::int64_t resource_delta) {
  Waiter* wake_first = nullptr;
  Waiter* wake_second = nullptr;
  {
    std::optional<sync::CheckerGate::SharedScope> gate_scope;
    if (instrumentation_ == Instrumentation::kFull) gate_scope.emplace(gate_);
    std::lock_guard<sync::SpinLock> lock(mu_);
    if (poisoned_) return;

    // Fault I.c.4: terminates inside the monitor; the exit never happens.
    if (injection_->fire(FaultKind::kTerminationInsideMonitor, pid)) {
      return;
    }

    if (track_resources_) resources_ += resource_delta;

    const trace::SymbolId proc_id = proc_of(pid);
    const bool is_owner = owner_ && *owner_ == pid;

    auto* cond_queue = [&]() -> std::deque<Waiter*>* {
      if (cond == trace::kNoSymbol) return nullptr;
      auto it = cond_queues_.find(cond);
      return it == cond_queues_.end() ? nullptr : &it->second;
    }();
    const bool someone_waiting =
        (cond_queue != nullptr && !cond_queue->empty()) ||
        !entry_queue_.empty();

    // Fault I.c.2: exits but the monitor is not released.
    const bool keep_lock =
        is_owner &&
        injection_->fire(FaultKind::kSignalExitMonitorNotReleased, pid);
    // Fault I.c.1: nobody is resumed on exit (arming requires a waiter).
    const bool suppress_resume =
        is_owner && !keep_lock && someone_waiting &&
        injection_->fire(FaultKind::kSignalExitNoResume, pid);

    const bool resume_cond_waiter = is_owner && !keep_lock &&
                                    !suppress_resume && cond_queue != nullptr &&
                                    !cond_queue->empty();

    record(EventRecord::signal_exit(pid, proc_id, cond, resume_cond_waiter,
                                    now()));
    inside_proc_.erase(pid);

    if (is_owner && !keep_lock) {
      if (resume_cond_waiter && semantics_ == Semantics::kMesaSignalContinue) {
        // Mesa signal-and-continue: the signalled waiter re-contends via
        // the entry queue; the monitor itself is released to the EQ head.
        Waiter* waiter = cond_queue->front();
        cond_queue->pop_front();
        entry_queue_.push_back({waiter->pid, waiter->proc, now(),
                                ++next_ticket_, waiter, false});
        owner_.reset();
        admit_from_entry_queue(false, &wake_first, &wake_second);
      } else if (resume_cond_waiter) {
        Waiter* waiter = cond_queue->front();
        cond_queue->pop_front();
        owner_ = waiter->pid;
        owner_proc_ = waiter->proc;
        owner_since_ = now();
        owner_ticket_ = ++next_ticket_;
        inside_proc_[waiter->pid] = waiter->proc;
        wake_first = waiter;
        // Fault I.c.3: additionally resume an entry waiter without
        // removing its queue slot (notify-too-many).
        if (!entry_queue_.empty() &&
            injection_->fire(FaultKind::kSignalExitMutualExclusionViolation,
                             pid)) {
          wake_second = resume_ghost_from_entry_queue();
        }
      } else {
        owner_.reset();
        if (!suppress_resume) {
          const bool extra =
              entry_queue_.size() >= 2 &&
              injection_->fire(
                  FaultKind::kSignalExitMutualExclusionViolation, pid);
          admit_from_entry_queue(extra, &wake_first, &wake_second);
        }
      }
    }
  }
  if (wake_first != nullptr) wake_first->sem.release();
  if (wake_second != nullptr) wake_second->sem.release();
}

trace::SchedulingState HoareMonitor::snapshot() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  trace::SchedulingState state;
  state.captured_at = now();
  for (const EqEntry& entry : entry_queue_) {
    state.entry_queue.push_back(
        {entry.pid, entry.proc, entry.since, entry.ticket});
  }
  for (const auto& [cond, queue] : cond_queues_) {
    trace::CondQueueState cq;
    cq.cond = cond;
    for (const Waiter* waiter : queue) {
      cq.entries.push_back(
          {waiter->pid, waiter->proc, waiter->since, waiter->ticket});
    }
    state.cond_queues.push_back(std::move(cq));
  }
  if (track_resources_) {
    state.resources = resources_;
  } else {
    state.resources = resource_gauge_ ? resource_gauge_() : -1;
  }
  for (const auto& [pid, hold] : holds_) {  // std::map: already pid-sorted
    state.holders.push_back({pid, hold.units, hold.since, hold.ticket});
  }
  if (owner_) {
    state.running = *owner_;
    state.running_proc = owner_proc_;
    state.running_since = owner_since_;
    state.running_ticket = owner_ticket_;
  }
  return state;
}

void HoareMonitor::poison() {
  std::vector<Waiter*> parked;
  {
    std::lock_guard<sync::SpinLock> lock(mu_);
    poisoned_ = true;
    for (EqEntry& entry : entry_queue_) {
      if (entry.waiter != nullptr) parked.push_back(entry.waiter);
    }
    entry_queue_.clear();
    for (auto& [cond, queue] : cond_queues_) {
      for (Waiter* waiter : queue) parked.push_back(waiter);
      queue.clear();
    }
    for (Waiter* waiter : lost_waiters_) parked.push_back(waiter);
    lost_waiters_.clear();
  }
  for (Waiter* waiter : parked) waiter->sem.poison();
}

bool HoareMonitor::poisoned() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return poisoned_;
}

void HoareMonitor::recovery_poison() {
  std::vector<Waiter*> parked;
  {
    std::lock_guard<sync::SpinLock> lock(mu_);
    recovery_poisoned_ = true;
    for (EqEntry& entry : entry_queue_) {
      if (entry.waiter != nullptr) parked.push_back(entry.waiter);
    }
    entry_queue_.clear();
    for (auto& [cond, queue] : cond_queues_) {
      for (Waiter* waiter : queue) parked.push_back(waiter);
      queue.clear();
    }
    for (Waiter* waiter : lost_waiters_) parked.push_back(waiter);
    lost_waiters_.clear();
    // The flag must be set before the release: the woken thread reads it
    // with no lock, and the semaphore hand-off orders the write.
    for (Waiter* waiter : parked) waiter->recovery = true;
  }
  for (Waiter* waiter : parked) waiter->sem.release();
}

void HoareMonitor::unpoison() {
  std::lock_guard<sync::SpinLock> lock(mu_);
  recovery_poisoned_ = false;
}

bool HoareMonitor::recovery_poisoned() const {
  std::lock_guard<sync::SpinLock> lock(mu_);
  return recovery_poisoned_;
}

bool HoareMonitor::deliver_recovery_fault(trace::Pid pid) {
  Waiter* victim = nullptr;
  {
    std::lock_guard<sync::SpinLock> lock(mu_);
    for (auto it = entry_queue_.begin(); it != entry_queue_.end(); ++it) {
      if (it->pid == pid && it->waiter != nullptr) {
        victim = it->waiter;
        entry_queue_.erase(it);
        break;
      }
    }
    if (victim == nullptr) {
      for (auto& [cond, queue] : cond_queues_) {
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if ((*it)->pid == pid) {
            victim = *it;
            queue.erase(it);
            break;
          }
        }
        if (victim != nullptr) break;
      }
    }
    if (victim == nullptr) {
      for (auto it = lost_waiters_.begin(); it != lost_waiters_.end(); ++it) {
        if ((*it)->pid == pid) {
          victim = *it;
          lost_waiters_.erase(it);
          break;
        }
      }
    }
    if (victim == nullptr) return false;
    victim->recovery = true;
  }
  victim->sem.release();
  return true;
}

}  // namespace robmon::rt
