// EventSink — the stable event-ingestion seam between event producers and
// the detection engine.
//
// rt::CheckerPool consumes a narrow surface from whatever it checks: a
// spec (name + timer thresholds + cadence), an interned symbol table, a
// checker gate to quiesce through, the event segment recorded since the
// last checking point, a scheduling-state snapshot, a loss count, and —
// when recovery is attached — four actuation hooks.  That surface used to
// be HoareMonitor's concrete API, which tied every ingestion path to the
// native monitor implementation.  EventSink extracts it as an abstract
// interface so external instrumentation (the LD_PRELOAD interposition
// backend's synthetic monitors, or any embedder's adapter) can feed the
// same pool without touching EventLog/Detector internals.
//
// This is the supported embedding API (see docs/interposition.md and
// src/robmon.hpp): implement EventSink, register it with
// CheckerPool::add(EventSink&, MonitorOptions) — the detector-less
// registration used by adapters that cannot replay the paper's per-monitor
// ST-Rules — or add(EventSink&, Detector&) when the source records a
// faithful Hoare-monitor event stream.  HoareMonitor itself implements
// EventSink, so native monitors and synthetic ones are pool-identical.
//
// Contract:
//   * spec()/symbols()/gate() must be stable for the registration lifetime
//     (the pool holds references across checks).
//   * drain_segment() and snapshot() are called with the gate held
//     exclusively (hold_gate_during_check) or back-to-back under it; a
//     snapshot must reflect every event already drained — the wait-for
//     validation passes re-snapshot and require episode tickets to be
//     stable for an uninterrupted wait/hold (see core/waitfor.hpp).
//   * Episode tickets: entry_queue / cond_queues / holders / running_ticket
//     entries carry per-monitor monotonic tickets, bumped once per blocking
//     episode / ownership / hold — clock-independent episode identity.
//   * The recovery hooks default to no-ops (recovery actions on sinks that
//     cannot evict waiters degrade to reports; see docs/interposition.md).
#pragma once

#include <cstdint>
#include <vector>

#include "core/monitor_spec.hpp"
#include "sync/gate.hpp"
#include "trace/event.hpp"
#include "trace/snapshot.hpp"

namespace robmon::rt {

class EventSink {
 public:
  virtual ~EventSink() = default;

  /// Monitor identity and timing parameters.  Detector-less registrations
  /// take their check cadence and timer clamp from here.
  virtual const core::MonitorSpec& spec() const = 0;

  /// Intern table resolving the proc/cond ids in events and snapshots.
  virtual const trace::SymbolTable& symbols() const = 0;

  /// Quiesce gate: the pool takes the exclusive side around
  /// drain_segment() + snapshot(); producers hold the shared side (or are
  /// lock-free and tolerate a stale-by-one-segment drain, like the
  /// interposition adapter's ring).
  virtual sync::CheckerGate& gate() = 0;

  /// Remove and return every event recorded since the previous checking
  /// point, in the order the detection algorithms may replay them.
  virtual std::vector<trace::EventRecord> drain_segment() = 0;

  /// Events dropped by the ingestion path's overflow contract — exact
  /// accounting, never a silent gap (EventLog::events_lost()).
  virtual std::uint64_t events_lost() const = 0;

  /// Current scheduling state <EQ, CQ[], R#, holders, Running>.  Must
  /// incorporate every operation visible to a completed drain_segment().
  virtual trace::SchedulingState snapshot() const = 0;

  // --- Recovery actuation (optional; defaults are inert). -------------------

  /// Sticky recovery-poison state; while true the pool suspends detection
  /// on this sink (out-of-band transitions must not read as violations).
  virtual bool recovery_poisoned() const { return false; }
  /// Evict every parked waiter and reject would-block calls (sticky).
  virtual void recovery_poison() {}
  /// Restore normal service after the cycle dissolved.
  virtual void unpoison() {}
  /// Wake only `tid` with a recovery fault; false when it is not parked.
  virtual bool deliver_recovery_fault(Tid tid) {
    (void)tid;
    return false;
  }
};

}  // namespace robmon::rt
