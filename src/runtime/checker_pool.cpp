#include "runtime/checker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <optional>
#include <stdexcept>
#include <utility>

namespace robmon::rt {

namespace {

/// Floor for the checking cadence: a zero check_period (the paper's
/// per-event "T = 1" request, which the pool does not implement) would turn
/// a worker into a hot spin loop.
constexpr util::TimeNs kMinPeriodNs = 100'000;  // 100us

/// EWMA of drained segment sizes below which a monitor counts as idle for
/// the adaptive-cadence controller.
constexpr double kIdleEventsEwma = 0.5;

/// Deadlines and durations are backend wall-clock: Options::clock only feeds
/// the detection rules, so a frozen ManualClock must not stall the cadence.
/// Under SimBackend this is the scheduler's virtual clock, which only a
/// scheduler step can freeze — and then nothing runs at all.
util::TimeNs wall_now() { return sync::backend_now(); }

/// Budgeted check cost is measured on the *thread CPU* clock, not the wall
/// clock: a batch preempted mid-flight on a contended box would otherwise
/// charge the scheduler's time slice to the detection budget and drive
/// spurious degradation.  The spend window itself stays wall-clock (the
/// budget is "checking cycles per wall-clock second").  Falls back to the
/// wall clock where no thread CPU clock exists.
util::TimeNs cpu_now() { return sync::backend_cpu_now(); }

std::size_t clamp_threads(std::size_t requested) {
  const std::size_t hardware =
      std::max<std::size_t>(1, sync::backend_hardware_concurrency());
  if (requested == 0) return hardware;
  return std::min(requested, hardware);
}

}  // namespace

CheckerPool::CheckerPool(Options options)
    : clock_(options.clock),
      configured_threads_(clamp_threads(options.threads)),
      batch_window_(options.batch_window),
      max_batch_(options.max_batch),
      backlog_policy_(options.backlog_policy),
      max_backlog_(options.max_backlog),
      waitfor_period_(options.waitfor_checkpoint_period > 0
                          ? std::max(options.waitfor_checkpoint_period,
                                     kMinPeriodNs)
                          : 0),
      waitfor_sink_(options.waitfor_sink),
      lockorder_period_(options.lockorder_checkpoint_period > 0
                            ? std::max(options.lockorder_checkpoint_period,
                                       kMinPeriodNs)
                            : 0),
      lockorder_sink_(options.lockorder_sink),
      recovery_(options.recovery),
      budget_(options.budget) {
  if (waitfor_period_ > 0 && waitfor_sink_ == nullptr) {
    throw std::invalid_argument(
        "CheckerPool: waitfor_checkpoint_period set without a waitfor_sink");
  }
  if (lockorder_period_ > 0 && lockorder_sink_ == nullptr) {
    throw std::invalid_argument(
        "CheckerPool: lockorder_checkpoint_period set without a "
        "lockorder_sink");
  }
}

CheckerPool::~CheckerPool() {
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (sync::BackendThread& worker : workers_) worker.join();
}

CheckerPool::MonitorId CheckerPool::add(EventSink& source,
                                        core::Detector& detector) {
  return add_impl(source, &detector, MonitorOptions{});
}

CheckerPool::MonitorId CheckerPool::add(EventSink& source,
                                        core::Detector& detector,
                                        MonitorOptions options) {
  return add_impl(source, &detector, std::move(options));
}

CheckerPool::MonitorId CheckerPool::add(EventSink& source) {
  return add_impl(source, nullptr, MonitorOptions{});
}

CheckerPool::MonitorId CheckerPool::add(EventSink& source,
                                        MonitorOptions options) {
  return add_impl(source, nullptr, std::move(options));
}

CheckerPool::MonitorId CheckerPool::add_impl(EventSink& source,
                                             core::Detector* detector,
                                             MonitorOptions options) {
  // Detector-less sources pace themselves: cadence (and the timer clamp in
  // update_cadence_locked) come from the source's own spec.
  const util::TimeNs requested_period = detector != nullptr
                                            ? detector->spec().check_period
                                            : source.spec().check_period;
  if (requested_period < 0) {
    throw std::invalid_argument(
        "CheckerPool::add: negative check_period");
  }
  if (options.max_stretch < 1.0) {
    throw std::invalid_argument(
        "CheckerPool::add: max_stretch must be >= 1");
  }
  if (options.ewma_alpha <= 0.0 || options.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "CheckerPool::add: ewma_alpha must be in (0, 1]");
  }
  auto entry = std::make_unique<Entry>();
  entry->monitor = &source;
  entry->detector = detector;
  entry->options = std::move(options);
  // Clamp (not reject) a zero period: callers historically pass 0 meaning
  // "as fast as possible", and the 100 µs floor keeps that from becoming a
  // hot spin on the heap.
  entry->period = std::max(requested_period, kMinPeriodNs);
  entry->effective_period = entry->period;

  std::lock_guard<sync::BackendMutex> lock(mu_);
  const MonitorId id = next_id_++;
  entry->id = id;
  entries_.emplace(id, std::move(entry));
  return id;
}

void CheckerPool::ensure_workers_locked() {
  if (!workers_.empty() || stop_) return;
  workers_.reserve(configured_threads_);
  for (std::size_t i = 0; i < configured_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void CheckerPool::schedule(MonitorId id) {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument("CheckerPool::schedule: unknown monitor id");
  }
  Entry& entry = *it->second;
  if (entry.scheduled) return;
  entry.scheduled = true;
  ++entry.generation;
  // A fresh scheduling episode starts at base cadence: stretch retained
  // from a previous idle episode must not defer the first check while new
  // events accumulate.
  entry.stretch = 1.0;
  entry.ewma_events = 0.0;
  entry.effective_period = entry.period;
  // Inline monitors stay off the worker heap — their call sites poll
  // check_inline() — unless budget pressure has offloaded them.
  if (entry.options.instrumentation == CheckInstrumentation::kOffloaded ||
      inline_offloaded_.load(std::memory_order_relaxed)) {
    heap_.push({wall_now() + entry.period, id, entry.generation});
  }
  if (waitfor_enabled() && !checkpoint_scheduled_) {
    heap_.push({wall_now() + waitfor_period_, kCheckpointId, 0});
    checkpoint_scheduled_ = true;
  }
  if (lockorder_enabled() && !lockorder_scheduled_) {
    heap_.push({wall_now() + lockorder_period_, kLockOrderId, 0});
    lockorder_scheduled_ = true;
  }
  ensure_workers_locked();
  work_cv_.notify_all();
}

void CheckerPool::unschedule(MonitorId id) {
  std::unique_lock<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;  // invalidates every heap item for this monitor
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  // Withdraw the wait-for contribution: it would never be refreshed again
  // and every checkpoint would re-derive (and re-validate) candidates from
  // it.  A later check_now()/schedule() re-contributes.
  std::lock_guard<sync::BackendMutex> graph_lock(graph_mu_);
  graph_.erase(id);
}

void CheckerPool::remove(MonitorId id) {
  std::unique_lock<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  EventSink* monitor = entry.monitor;  // outlives its registration
  entries_.erase(it);  // stale heap items are discarded by the workers
  // No check of this monitor is in flight or can start (busy drained above),
  // so nothing can re-contribute this id's edges after the erase.  Per the
  // lifecycle contract (header comment), remove() erases the monitor from
  // BOTH pool-level graphs and re-arms every reported cycle naming it —
  // wait-for and order side handled identically.
  const auto names_monitor = [id](const auto& reported) {
    const auto& monitors = reported.second;
    return std::find(monitors.begin(), monitors.end(), id) != monitors.end();
  };
  {
    std::lock_guard<sync::BackendMutex> graph_lock(graph_mu_);
    graph_.erase(id);
    std::erase_if(reported_cycles_, names_monitor);
  }
  {
    std::lock_guard<sync::BackendMutex> order_lock(lockorder_mu_);
    order_graph_.erase(id);
    std::erase_if(reported_order_cycles_, names_monitor);
  }
  // A sticky poison targeting the removed monitor can never be completed
  // by a later checkpoint (the registration is gone) — clear it NOW, or a
  // still-alive monitor re-registered later would reject blocking calls
  // forever.  `monitor` stays valid here: remove() only unregisters, and
  // busy drained above means no check references it.
  bool was_poisoned = false;
  {
    std::lock_guard<sync::BackendMutex> recovery_lock(recovery_mu_);
    was_poisoned =
        std::erase_if(active_poisons_, [id](const auto& poison) {
          return poison.second == id;
        }) > 0;
  }
  if (was_poisoned) monitor->unpoison();
}

core::Detector::CheckStats CheckerPool::check_now(MonitorId id) {
  Entry* entry = nullptr;
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    auto it = entries_.find(id);
    // Unknown or just-removed id: report "no check ran" instead of
    // throwing.  Callers probing mid-churn (the schedule explorer, inline
    // polls racing remove()) cannot atomically check-and-call, so caller
    // discipline is not enforceable here.
    if (it == entries_.end()) return core::Detector::CheckStats{};
    entry = it->second.get();
    ++entry->busy;  // pins the entry: remove() waits for busy == 0
  }
  // The busy pin must drop even if the check throws (e.g. a user
  // on_checkpoint callback), or unschedule()/remove() would block forever.
  struct BusyRelease {
    CheckerPool* pool;
    Entry* entry;
    ~BusyRelease() {
      {
        std::lock_guard<sync::BackendMutex> lock(pool->mu_);
        --entry->busy;
      }
      pool->idle_cv_.notify_all();
    }
  } release{this, entry};
  core::Detector::CheckStats stats;
  bool occupied = false;
  {
    std::lock_guard<sync::BackendMutex> check_lock(entry->check_mu);
    stats = run_check(*entry, clock_->now_ns(), &occupied);
  }
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    update_cadence_locked(*entry, stats, occupied);
  }
  return stats;
}

core::Detector::CheckStats CheckerPool::check_inline(MonitorId id) {
  // Inline checks run on the application's thread, so their cost is exactly
  // the in-path overhead the budget bounds: measure and fold every one.
  inline_checks_.fetch_add(1, std::memory_order_relaxed);
  const util::TimeNs started = cpu_now();
  core::Detector::CheckStats stats = check_now(id);
  if (budget_.enabled()) {
    record_budget(cpu_now() - started, wall_now());
  }
  return stats;
}

void CheckerPool::record_budget(util::TimeNs check_ns, util::TimeNs now) {
  const std::optional<trace::BudgetRecord> transition =
      budget_.record_batch(check_ns, now);
  if (transition) apply_budget_transition(*transition);
}

void CheckerPool::apply_budget_transition(
    const trace::BudgetRecord& transition) {
  // The inline↔offloaded flip rides the kStretch boundary: under pressure
  // application threads should not also pay for checking, so the pool takes
  // the inline monitors over; recovery hands them back.
  const auto crossed = [](int level) {
    return level >= static_cast<int>(BudgetLevel::kStretch);
  };
  if (crossed(transition.to) != crossed(transition.from)) {
    set_inline_offloaded(crossed(transition.to));
  }
}

void CheckerPool::set_inline_offloaded(bool offload) {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  if (inline_offloaded_.load(std::memory_order_relaxed) == offload) return;
  inline_offloaded_.store(offload, std::memory_order_relaxed);
  bool pushed = false;
  for (auto& [id, entry] : entries_) {
    if (entry->options.instrumentation != CheckInstrumentation::kInline ||
        !entry->scheduled) {
      continue;
    }
    inline_flips_.fetch_add(1, std::memory_order_relaxed);
    if (offload) {
      heap_.push({wall_now() + entry->effective_period, id,
                  entry->generation});
      pushed = true;
    } else {
      // Invalidate the heap items pushed while offloaded; the call sites'
      // polls resume on their own (they re-read inline_offloaded()).
      ++entry->generation;
    }
  }
  if (pushed) {
    ensure_workers_locked();
    work_cv_.notify_all();
  }
}

std::size_t CheckerPool::thread_count() const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  return workers_.size();
}

std::size_t CheckerPool::monitor_count() const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  return entries_.size();
}

std::size_t CheckerPool::scheduled_count() const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->scheduled) ++count;
  }
  return count;
}

util::TimeNs CheckerPool::period(MonitorId id) const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument("CheckerPool::period: unknown monitor id");
  }
  return it->second->period;
}

util::TimeNs CheckerPool::effective_period(MonitorId id) const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument(
        "CheckerPool::effective_period: unknown monitor id");
  }
  return it->second->effective_period;
}

double CheckerPool::stretch(MonitorId id) const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument("CheckerPool::stretch: unknown monitor id");
  }
  return it->second->stretch;
}

core::Detector::CheckStats CheckerPool::run_check(Entry& entry,
                                                  util::TimeNs rule_now,
                                                  bool* occupied_out) {
  const util::TimeNs started = wall_now();
  std::vector<trace::EventRecord> segment;
  std::optional<trace::SchedulingState> state;
  core::Detector::CheckStats stats;
  util::TimeNs gate_released = started;
  // While a monitor is recovery-poisoned its traffic is out-of-band by
  // definition (evictions and would-block rejections record no events,
  // but admitted non-blocking calls still record theirs), so replaying
  // the window's segment would fabricate ST violations.  Detection is
  // suspended for the window — segment drained and discarded, snapshot
  // still taken (the wait-for/order contributions stay fresh) — and
  // complete_recoveries() re-baselines the detector when service is
  // restored.  recovery_poisoned() is stable across this function: the
  // poison/unpoison transitions run under entry.check_mu, which every
  // caller of run_check holds.
  bool suppressed = false;
  // Detector-less sinks (interposition adapters) skip the per-monitor
  // algorithms — their synthetic stream is not a faithful Hoare history and
  // Algorithms 1-3 would fabricate ST violations over it — but still feed
  // the cadence controller (segment size) and, below, the pool-level
  // wait-for and lock-order contributions.
  const auto evaluate = [&] {
    if (suppressed) return;
    if (entry.detector != nullptr) {
      stats = entry.detector->check(segment, *state, rule_now);
    } else {
      stats.events = segment.size();
      stats.idle = segment.empty();
    }
  };
  if (entry.options.hold_gate_during_check) {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->drain_segment();
      state = entry.monitor->snapshot();
      suppressed = entry.monitor->recovery_poisoned();
      evaluate();
    }
    gate_released = wall_now();  // paper mode: suspended through the check
  } else {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->drain_segment();
      state = entry.monitor->snapshot();
      suppressed = entry.monitor->recovery_poisoned();
    }
    gate_released = wall_now();
    evaluate();
  }
  if (suppressed) stats.idle = true;
  const util::TimeNs finished = wall_now();
  checks_executed_.fetch_add(1, std::memory_order_relaxed);
  total_quiesce_ns_.fetch_add(
      static_cast<std::uint64_t>(gate_released - started),
      std::memory_order_relaxed);
  total_check_ns_.fetch_add(static_cast<std::uint64_t>(finished - started),
                            std::memory_order_relaxed);
  if (occupied_out != nullptr) {
    *occupied_out = state->has_running() || state->blocked_count() > 0;
  }
  if (waitfor_enabled() && entry.options.contribute_wait_edges) {
    contribute_wait_edges(entry, *state);
  }
  if (lockorder_enabled() && entry.options.contribute_lock_order &&
      !budget_.shed_prediction()) {
    // Shed with the prediction checkpoint: the per-check fold is the other
    // half of prediction's cost (the observe() join).  Edges missed while
    // shed are simply not recorded — the relation is advisory, and the
    // certified-interval join never fabricates, so resuming is safe.
    contribute_lock_order(entry, *state);
  }
  if (entry.options.on_checkpoint) entry.options.on_checkpoint(*state);
  return stats;
}

void CheckerPool::update_cadence_locked(
    Entry& entry, const core::Detector::CheckStats& stats, bool occupied) {
  // Budget degradation feeds the same controller: level ≥ kStretch lifts
  // the idle-stretch ceiling (first shed step — idle monitors are checked
  // even more lazily, which costs nothing in detection latency thanks to
  // the timer clamp below), and kWiden multiplies the effective period of
  // EVERY monitor, occupied ones included (last step before nothing is
  // left to shed but detection itself — which is never shed; the clamp
  // keeps the widened period timer-bounded).  Both knobs are 1.0 when the
  // budget is disabled or nominal.
  const double boost = budget_.stretch_boost();
  const double widen = budget_.widen_factor();
  const double ceiling = std::max(1.0, entry.options.max_stretch * boost);
  const double alpha = entry.options.ewma_alpha;
  entry.ewma_events = alpha * static_cast<double>(stats.events) +
                      (1.0 - alpha) * entry.ewma_events;
  // Symmetric recovery: a ceiling that shrank back (boost returned to 1)
  // re-clamps stretch retained from the pressure episode immediately.
  entry.stretch = std::min(entry.stretch, ceiling);
  if (stats.events > 0 || stats.violations > 0 || occupied) {
    // Activity, a finding, or anybody running/queued: base cadence, now.
    // Occupancy is the precondition of every timer rule (ST-5/6/8c), so an
    // occupied monitor is always checked at base cadence.
    entry.stretch = 1.0;
  } else if (entry.ewma_events < kIdleEventsEwma) {
    entry.stretch = std::min(entry.stretch * 2.0, ceiling);
  }
  // A flipped inline monitor sits on the heap only as a pressure measure:
  // the flip exists to relieve application threads, not to add pool load,
  // so the pool covers it at the boosted ceiling (still timer-clamped
  // below) instead of base cadence.  This is part of the kStretch shed
  // step — it keeps degraded levels strictly cheaper than nominal, which
  // is what lets the controller descend back out of them.
  double floor = 1.0;
  if (entry.options.instrumentation == CheckInstrumentation::kInline) {
    floor = ceiling;
  }
  util::TimeNs effective = static_cast<util::TimeNs>(
      static_cast<double>(entry.period) *
      std::max({entry.stretch, widen, floor}));
  // Detection-latency clamp.  A blocking episode that *begins* mid-
  // stretched-interval is only noticed at the next (deferred) check, so
  // the effective period also bounds that first detection latency.  Capping
  // it at the smallest *positive* timer threshold (never below the base
  // period; a zeroed threshold means "rule unused", not "clamp off") keeps
  // the deferred case within ~2x the threshold: onset -> next check is at
  // most that threshold, and the check both snaps the cadence back to base
  // and evaluates the timer rules.  Tmax < T_eff (the Section 3.3
  // relation) holds throughout, since stretching only grows T.
  const core::MonitorSpec& spec = entry.detector != nullptr
                                      ? entry.detector->spec()
                                      : entry.monitor->spec();
  util::TimeNs min_timer = 0;
  for (const util::TimeNs threshold : {spec.t_max, spec.t_io, spec.t_limit}) {
    if (threshold > 0 && (min_timer == 0 || threshold < min_timer)) {
      min_timer = threshold;
    }
  }
  if (min_timer > 0) {
    effective = std::min(effective, std::max(entry.period, min_timer));
  }
  entry.effective_period = std::max<util::TimeNs>(1, effective);
}

util::TimeNs CheckerPool::next_due_locked(Entry& entry, util::TimeNs due,
                                          util::TimeNs finished) {
  const util::TimeNs period = std::max<util::TimeNs>(1, entry.effective_period);
  const util::TimeNs next = due + period;
  if (next > finished) return next;  // on schedule (includes pulled-forward)
  // The check outlasted its period: `missed` deadlines fell due while it
  // ran.  kCoalesce slips the grid (the next check's drained segment covers
  // them); kRunAll re-runs them back-to-back, at most max_backlog deep.
  const std::uint64_t missed =
      static_cast<std::uint64_t>((finished - next) / period) + 1;
  if (backlog_policy_ == BacklogPolicy::kRunAll) {
    const std::uint64_t backlog =
        std::min<std::uint64_t>(missed, max_backlog_);
    checks_coalesced_.fetch_add(missed - backlog, std::memory_order_relaxed);
    return finished - static_cast<util::TimeNs>(backlog - 1) * period;
  }
  checks_coalesced_.fetch_add(missed, std::memory_order_relaxed);
  return finished + period;
}

void CheckerPool::contribute_wait_edges(const Entry& entry,
                                        const trace::SchedulingState& state) {
  // Resolve names and copy queues outside the graph lock; only the swap-in
  // (and the epoch stamp) happens under it.
  core::WaitContribution contribution = core::make_wait_contribution(
      entry.id, entry.monitor->spec().name, 0, state,
      entry.monitor->symbols());
  std::lock_guard<sync::BackendMutex> lock(graph_mu_);
  contribution.epoch = graph_epoch_;
  graph_.update(std::move(contribution));
}

void CheckerPool::contribute_lock_order(const Entry& entry,
                                        const trace::SchedulingState& state) {
  // observe() joins this snapshot against every other monitor's current
  // accesses, so the whole fold runs under the order-graph lock.  The
  // access sets are one snapshot deep per monitor, keeping the join small.
  std::lock_guard<sync::BackendMutex> lock(lockorder_mu_);
  order_graph_.observe(entry.id, entry.monitor->spec().name,
                       lockorder_epoch_, state);
}

bool CheckerPool::validate_cycle(const core::DeadlockCycle& cycle) {
  // Pin every participating monitor so remove() cannot free an entry while
  // we re-snapshot it.  A monitor that already unregistered voids the cycle.
  std::vector<Entry*> pinned;
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    for (const auto& link : cycle.links) {
      auto it = entries_.find(link.monitor);
      if (it == entries_.end()) {
        for (Entry* entry : pinned) --entry->busy;
        if (!pinned.empty()) idle_cv_.notify_all();
        return false;
      }
      Entry* entry = it->second.get();
      // A cycle may traverse one monitor more than once; pin per link so
      // the unpin below is symmetric.
      ++entry->busy;
      pinned.push_back(entry);
    }
  }
  // Two sequential live passes, each re-snapshotting every participating
  // monitor.  One pass is not enough for exactness: its snapshots are taken
  // at different instants, so link A could be confirmed at t1, dissolve,
  // and link B (formed only after A dissolved) be confirmed at t2 — a
  // "cycle" that never coexisted.  With two passes, a link confirmed in
  // both with the SAME blocking episode and the same hold episode was
  // continuously blocked/held across the boundary between the passes — a
  // parked thread cannot release anything, and a re-formed wait or hold
  // carries a fresh episode ticket.  So every edge of the cycle exists
  // simultaneously at the instant pass 1 ended, and the deadlock is real;
  // a cycle that resolved before the checkpoint fails here and is never
  // reported.  Episode identity is the per-monitor monotonic ticket
  // (clock-independent: distinct episodes get distinct tickets even under
  // a frozen ManualClock); only links from pre-ticket traces fall back to
  // enqueue/hold timestamps.
  bool confirmed = true;
  for (int pass = 0; pass < 2 && confirmed; ++pass) {
    for (std::size_t i = 0; i < cycle.links.size() && confirmed; ++i) {
      const auto& link = cycle.links[i];
      const trace::SchedulingState state = pinned[i]->monitor->snapshot();
      confirmed =
          core::link_holds_in(link, state, pinned[i]->monitor->symbols());
    }
  }
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    for (Entry* entry : pinned) --entry->busy;
  }
  idle_cv_.notify_all();
  return confirmed;
}

std::size_t CheckerPool::run_waitfor_checkpoint() {
  if (!waitfor_enabled()) return 0;
  std::lock_guard<sync::BackendMutex> pass_lock(checkpoint_pass_mu_);
  std::vector<core::DeadlockCycle> candidates;
  {
    std::lock_guard<sync::BackendMutex> lock(graph_mu_);
    ++graph_epoch_;
    candidates = graph_.find_cycles();
  }
  waitfor_checkpoints_.fetch_add(1, std::memory_order_relaxed);

  std::size_t confirmed_count = 0;
  std::unordered_set<std::string> confirmed_keys;
  for (const core::DeadlockCycle& cycle : candidates) {
    if (!validate_cycle(cycle)) continue;
    ++confirmed_count;
    const std::string key = cycle.key();
    confirmed_keys.insert(key);
    bool already_reported;
    {
      std::lock_guard<sync::BackendMutex> lock(graph_mu_);
      std::vector<MonitorId> monitors;
      monitors.reserve(cycle.links.size());
      for (const auto& link : cycle.links) monitors.push_back(link.monitor);
      already_reported =
          !reported_cycles_.emplace(key, std::move(monitors)).second;
    }
    if (already_reported) continue;
    deadlocks_reported_.fetch_add(1, std::memory_order_relaxed);
    waitfor_sink_->report(core::make_cycle_report(cycle, clock_->now_ns()));
    // Exactly one recovery action per reported cycle: actuation rides the
    // same newly-reported edge as the fault report.
    if (recovery_enabled()) act_on_confirmed_cycle(cycle);
  }

  // Forget cycles that no longer hold, so a deadlock that dissolves (e.g.
  // poisoned monitors) and later re-forms is reported again.
  {
    std::lock_guard<sync::BackendMutex> lock(graph_mu_);
    std::erase_if(reported_cycles_, [&](const auto& reported) {
      return confirmed_keys.find(reported.first) == confirmed_keys.end();
    });
  }
  // Recovery-complete: a sticky poison whose cycle dissolved is cleared,
  // restoring normal service on the victim monitor.
  if (recovery_enabled()) complete_recoveries(confirmed_keys);
  return confirmed_count;
}

std::uint64_t CheckerPool::waitfor_epoch() const {
  std::lock_guard<sync::BackendMutex> lock(graph_mu_);
  return graph_epoch_;
}

std::size_t CheckerPool::waitfor_graph_monitors() const {
  std::lock_guard<sync::BackendMutex> lock(graph_mu_);
  return graph_.monitor_count();
}

std::size_t CheckerPool::run_lockorder_checkpoint() {
  if (!lockorder_enabled()) return 0;
  if (budget_.shed_prediction()) {
    // Prediction is shed before detection (budget level ≥ kShedPrediction):
    // the pass is skipped, not cancelled — the periodic heap item keeps
    // rescheduling, so the first pass after recovery resumes over the
    // accumulated relation.  lockorder_checkpoints() deliberately does not
    // advance: it counts passes that ran.
    prediction_sheds_.fetch_add(1, std::memory_order_relaxed);
    return 0;
  }
  // Order cycles are accumulated historical facts — no live validation
  // pass, and no cross-pass race to serialize: the reported-set insert
  // under the graph lock makes concurrent passes agree on who reports.
  std::vector<core::OrderCycle> fresh;
  std::vector<core::OrderEdge> edges_snapshot;
  std::size_t present = 0;
  {
    std::lock_guard<sync::BackendMutex> lock(lockorder_mu_);
    ++lockorder_epoch_;
    for (core::OrderCycle& cycle : order_graph_.find_cycles()) {
      ++present;
      auto [it, inserted] =
          reported_order_cycles_.emplace(cycle.key(), cycle.monitors());
      if (inserted) fresh.push_back(std::move(cycle));
    }
    // The pre-emptive decision scores minority edges by witness count; take
    // the relation snapshot under the same lock as the verdicts.
    if (!fresh.empty() && recovery_enabled()) {
      edges_snapshot = order_graph_.edges();
    }
  }
  lockorder_checkpoints_.fetch_add(1, std::memory_order_relaxed);
  for (const core::OrderCycle& cycle : fresh) {
    potential_deadlocks_reported_.fetch_add(1, std::memory_order_relaxed);
    lockorder_sink_->report(
        core::make_order_report(cycle, clock_->now_ns()));
    if (recovery_enabled()) act_on_order_cycle(cycle, edges_snapshot);
  }
  return present;
}

std::uint64_t CheckerPool::lockorder_epoch() const {
  std::lock_guard<sync::BackendMutex> lock(lockorder_mu_);
  return lockorder_epoch_;
}

std::size_t CheckerPool::lockorder_edge_count() const {
  std::lock_guard<sync::BackendMutex> lock(lockorder_mu_);
  return order_graph_.edge_count();
}

std::vector<core::OrderEdge> CheckerPool::lockorder_edges() const {
  std::lock_guard<sync::BackendMutex> lock(lockorder_mu_);
  return order_graph_.edges();
}

CheckerPool::Entry* CheckerPool::pin_entry(MonitorId id) {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return nullptr;
  ++it->second->busy;  // remove() waits for busy == 0
  return it->second.get();
}

void CheckerPool::unpin_entry(Entry* entry) {
  if (entry == nullptr) return;
  {
    std::lock_guard<sync::BackendMutex> lock(mu_);
    --entry->busy;
  }
  idle_cv_.notify_all();
}

void CheckerPool::rebaseline_entry(Entry& entry) {
  // Discard the segment spanning the action and restart the detector from
  // the post-action state.  The caller holds entry.check_mu, so no worker
  // check interleaves between the action and the new baseline.
  sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
  entry.monitor->drain_segment();
  if (entry.detector != nullptr) {
    entry.detector->rebaseline(entry.monitor->snapshot());
  }
}

void CheckerPool::act_on_confirmed_cycle(const core::DeadlockCycle& cycle) {
  const core::RecoveryDecision decision = recovery_.policy->decide(cycle);
  if (decision.victim.pid == trace::kNoPid) return;
  Entry* entry = pin_entry(decision.victim.monitor);
  if (entry == nullptr) return;  // victim monitor unregistered: cycle gone
  {
    // check_mu spans the action and the re-baseline: a periodic check must
    // never observe the post-action queues against a pre-action baseline
    // (that mismatch would read as an ST-Rule violation).
    std::lock_guard<sync::BackendMutex> check_lock(entry->check_mu);
    if (decision.remedy == core::RecoveryRemedy::kPoisonVictim) {
      entry->monitor->recovery_poison();
      {
        std::lock_guard<sync::BackendMutex> recovery_lock(recovery_mu_);
        active_poisons_[cycle.key()] = entry->id;
      }
      victims_poisoned_.fetch_add(1, std::memory_order_relaxed);
    } else {
      entry->monitor->deliver_recovery_fault(decision.victim.pid);
      recovery_faults_delivered_.fetch_add(1, std::memory_order_relaxed);
    }
    rebaseline_entry(*entry);
  }
  unpin_entry(entry);
  recovery_actions_.fetch_add(1, std::memory_order_relaxed);
  const util::TimeNs at = clock_->now_ns();
  log_recovery(core::make_recovery_record(decision, at));
  core::ReportSink* sink =
      recovery_.sink != nullptr ? recovery_.sink : waitfor_sink_;
  sink->report(core::make_recovery_report(decision, at));
}

void CheckerPool::act_on_order_cycle(
    const core::OrderCycle& cycle,
    const std::vector<core::OrderEdge>& edges) {
  if (!recovery_.policy->preempt_predicted() || recovery_.gate == nullptr) {
    return;
  }
  const core::OrderDecision decision = recovery_.policy->decide(cycle, edges);
  if (decision.imposed_order.empty()) return;
  recovery_.gate->impose(decision.imposed_order, decision.fenced);
  orders_imposed_.fetch_add(1, std::memory_order_relaxed);
  recovery_actions_.fetch_add(1, std::memory_order_relaxed);
  const util::TimeNs at = clock_->now_ns();
  log_recovery(core::make_recovery_record(decision, at));
  core::ReportSink* sink =
      recovery_.sink != nullptr ? recovery_.sink : lockorder_sink_;
  sink->report(core::make_recovery_report(decision, at));
}

void CheckerPool::complete_recoveries(
    const std::unordered_set<std::string>& confirmed_keys) {
  std::vector<std::pair<std::string, MonitorId>> completed;
  {
    std::lock_guard<sync::BackendMutex> recovery_lock(recovery_mu_);
    for (auto it = active_poisons_.begin(); it != active_poisons_.end();) {
      if (confirmed_keys.find(it->first) != confirmed_keys.end()) {
        ++it;
        continue;
      }
      completed.emplace_back(it->first, it->second);
      it = active_poisons_.erase(it);
    }
  }
  for (const auto& [key, id] : completed) {
    Entry* entry = pin_entry(id);
    if (entry == nullptr) continue;
    std::string name;
    {
      std::lock_guard<sync::BackendMutex> check_lock(entry->check_mu);
      entry->monitor->unpoison();
      // Detection was suspended for the poison window; restart it from
      // the restored-service state.
      rebaseline_entry(*entry);
      name = entry->monitor->spec().name;
    }
    unpin_entry(entry);
    monitors_unpoisoned_.fetch_add(1, std::memory_order_relaxed);
    trace::RecoveryRecord record;
    record.action = 'C';
    record.monitor = name;
    record.at = clock_->now_ns();
    record.detail = "recovery complete: cycle dissolved, normal service "
                    "restored; was " + key;
    log_recovery(std::move(record));
  }
}

void CheckerPool::log_recovery(trace::RecoveryRecord record) {
  std::lock_guard<sync::BackendMutex> lock(recovery_mu_);
  recovery_log_.push_back(std::move(record));
}

std::vector<trace::RecoveryRecord> CheckerPool::recovery_log() const {
  std::lock_guard<sync::BackendMutex> lock(recovery_mu_);
  return recovery_log_;
}

std::uint64_t CheckerPool::events_lost() const {
  std::lock_guard<sync::BackendMutex> lock(mu_);
  std::uint64_t lost = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->monitor != nullptr) lost += entry->monitor->events_lost();
  }
  return lost;
}

void CheckerPool::run_checkpoint_item_locked(
    std::unique_lock<sync::BackendMutex>& lock, MonitorId id) {
  heap_.pop();  // this worker owns the pass; re-pushed when done
  dispatches_.fetch_add(1, std::memory_order_relaxed);
  lock.unlock();
  const util::TimeNs pass_started = cpu_now();
  if (id == kCheckpointId) {
    run_waitfor_checkpoint();
  } else {
    run_lockorder_checkpoint();
  }
  if (budget_.enabled()) {
    // Checkpoint passes are detection spend too (graph SCC + live
    // validation can dwarf a per-monitor check); one clock pair per pass,
    // same as a dispatch batch.
    record_budget(cpu_now() - pass_started, wall_now());
  }
  lock.lock();
  const bool any_scheduled =
      std::any_of(entries_.begin(), entries_.end(), [](const auto& kv) {
        return kv.second->scheduled;
      });
  bool& armed =
      id == kCheckpointId ? checkpoint_scheduled_ : lockorder_scheduled_;
  if (!any_scheduled) {
    // Nothing is being checked, so nothing refreshes the graphs
    // (unschedule also withdrew the wait-for contributions); schedule()
    // re-arms on the next scheduling instead of waking a worker every
    // period for an idle pool.
    armed = false;
  } else {
    const util::TimeNs period =
        id == kCheckpointId ? waitfor_period_ : lockorder_period_;
    heap_.push({wall_now() + period, id, 0});
    work_cv_.notify_one();
  }
}

void CheckerPool::worker_loop() {
  std::unique_lock<sync::BackendMutex> lock(mu_);
  std::vector<BatchSlot> batch;
  while (!stop_) {
    if (heap_.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    const HeapItem top = heap_.top();
    util::TimeNs now = wall_now();
    if (top.due > now) {
      work_cv_.wait_for(lock, std::chrono::nanoseconds(top.due - now));
      continue;
    }
    if (top.id < kFirstMonitorId) {
      run_checkpoint_item_locked(lock, top.id);
      continue;
    }

    // --- Form a batch: every monitor due now, plus near-due monitors
    // within the batch window.  One dispatch amortizes the heap pops, the
    // condvar wake-up and the rule-clock read across the whole batch.
    // Batch size cap: an explicit max_batch wins; otherwise split the
    // backlog across the pool's workers (heap size / K, min 1) so one
    // worker never serializes a whole due wave while its K-1 peers idle.
    // On a single-worker pool the auto cap is the full wave.
    batch.clear();
    const std::size_t batch_cap =
        max_batch_ != 0
            ? max_batch_
            : std::max<std::size_t>(1, heap_.size() / configured_threads_);
    util::TimeNs window = batch_window_;
    while (!heap_.empty() && batch.size() < batch_cap) {
      const HeapItem item = heap_.top();
      if (item.id < kFirstMonitorId) break;  // checkpoints dispatch alone
      auto it = entries_.find(item.id);
      if (it == entries_.end() || it->second->generation != item.generation ||
          !it->second->scheduled) {
        heap_.pop();  // stale: unscheduled, rescheduled, or removed
        continue;
      }
      if (batch.empty()) {
        if (item.due > now) break;  // head raced away (stale pops)
        if (window < 0) window = it->second->period;  // auto: head quantum
      } else if (item.due > now + window) {
        break;
      }
      heap_.pop();
      ++it->second->busy;
      batch.push_back({it->second.get(), item, {}, false});
    }
    if (batch.empty()) continue;  // everything popped was stale
    dispatches_.fetch_add(1, std::memory_order_relaxed);
    // If due work remains beyond this batch's cap, wake a peer to serve it
    // concurrently.
    if (!heap_.empty() && heap_.top().due <= now) work_cv_.notify_one();
    lock.unlock();

    // One rule-clock read per batch, not per check.  Timer rules for later
    // batch members see a timestamp early by at most the batch runtime —
    // conservative: a threshold crossed mid-batch is simply caught at that
    // monitor's next check.  The budget measurement reuses the same
    // structure: one thread-CPU clock pair brackets the whole batch (the
    // spend it charges is the worker's CPU time, relocks and cadence
    // updates included — exactly the cost the batch imposed, and immune to
    // preemption charging the scheduler's slice to the budget).
    const util::TimeNs batch_started = cpu_now();
    const util::TimeNs rule_now = clock_->now_ns();
    for (BatchSlot& slot : batch) {
      Entry& entry = *slot.entry;
      // Slots run sequentially, so an unschedule()/remove() issued after
      // batch formation may have landed before this slot's turn: re-check
      // under mu_ and skip the now-pointless check (dropping the pin
      // immediately) instead of making the caller wait on it.
      {
        std::lock_guard<sync::BackendMutex> relock(mu_);
        if (!entry.scheduled || entry.generation != slot.item.generation) {
          --entry.busy;
          slot.entry = nullptr;
        }
      }
      if (slot.entry == nullptr) {
        idle_cv_.notify_all();
        continue;
      }
      {
        std::lock_guard<sync::BackendMutex> check_lock(entry.check_mu);
        slot.stats = run_check(entry, rule_now, &slot.occupied);
      }
      batched_checks_.fetch_add(1, std::memory_order_relaxed);
      // Retire the slot as soon as its check completes — cadence update,
      // reschedule, busy release — so a waiting unschedule()/remove() of
      // this monitor (e.g. a RobustMonitor destructor) resumes after this
      // check instead of after the whole batch.  The entry pointer is only
      // safe before the busy drop: remove() may free it right after.
      {
        std::lock_guard<sync::BackendMutex> relock(mu_);
        // Deadlines restart from the item's original due time, so checks
        // the window pulled forward keep their cadence grid; the backlog
        // policy bounds what happens when a check outlasts its period.
        if (entry.scheduled && entry.generation == slot.item.generation) {
          update_cadence_locked(entry, slot.stats, slot.occupied);
          heap_.push({next_due_locked(entry, slot.item.due, wall_now()),
                      slot.item.id, slot.item.generation});
          work_cv_.notify_one();
        }
        --entry.busy;
      }
      idle_cv_.notify_all();
    }
    if (budget_.enabled()) {
      record_budget(cpu_now() - batch_started, wall_now());
    }
    lock.lock();
  }
}

}  // namespace robmon::rt
