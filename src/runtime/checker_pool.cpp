#include "runtime/checker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

namespace robmon::rt {

namespace {

/// Floor for the checking cadence: a zero/negative check_period would turn
/// a worker into a hot spin loop.
constexpr util::TimeNs kMinPeriodNs = 100'000;  // 100us

/// Deadlines and durations are wall-clock: Options::clock only feeds the
/// detection rules, so a frozen ManualClock must not stall the cadence.
util::TimeNs wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t clamp_threads(std::size_t requested) {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (requested == 0) return hardware;
  return std::min(requested, hardware);
}

}  // namespace

CheckerPool::CheckerPool(Options options)
    : clock_(options.clock),
      configured_threads_(clamp_threads(options.threads)),
      waitfor_period_(options.waitfor_checkpoint_period > 0
                          ? std::max(options.waitfor_checkpoint_period,
                                     kMinPeriodNs)
                          : 0),
      waitfor_sink_(options.waitfor_sink) {
  if (waitfor_period_ > 0 && waitfor_sink_ == nullptr) {
    throw std::invalid_argument(
        "CheckerPool: waitfor_checkpoint_period set without a waitfor_sink");
  }
}

CheckerPool::~CheckerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

CheckerPool::MonitorId CheckerPool::add(HoareMonitor& monitor,
                                        core::Detector& detector) {
  return add(monitor, detector, MonitorOptions{});
}

CheckerPool::MonitorId CheckerPool::add(HoareMonitor& monitor,
                                        core::Detector& detector,
                                        MonitorOptions options) {
  auto entry = std::make_unique<Entry>();
  entry->monitor = &monitor;
  entry->detector = &detector;
  entry->options = std::move(options);
  entry->period = std::max(detector.spec().check_period, kMinPeriodNs);

  std::lock_guard<std::mutex> lock(mu_);
  const MonitorId id = next_id_++;
  entry->id = id;
  entries_.emplace(id, std::move(entry));
  return id;
}

void CheckerPool::ensure_workers_locked() {
  if (!workers_.empty() || stop_) return;
  workers_.reserve(configured_threads_);
  for (std::size_t i = 0; i < configured_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void CheckerPool::schedule(MonitorId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument("CheckerPool::schedule: unknown monitor id");
  }
  Entry& entry = *it->second;
  if (entry.scheduled) return;
  entry.scheduled = true;
  ++entry.generation;
  heap_.push({wall_now() + entry.period, id, entry.generation});
  if (waitfor_enabled() && !checkpoint_scheduled_) {
    heap_.push({wall_now() + waitfor_period_, kCheckpointId, 0});
    checkpoint_scheduled_ = true;
  }
  ensure_workers_locked();
  work_cv_.notify_all();
}

void CheckerPool::unschedule(MonitorId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;  // invalidates every heap item for this monitor
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  // Withdraw the wait-for contribution: it would never be refreshed again
  // and every checkpoint would re-derive (and re-validate) candidates from
  // it.  A later check_now()/schedule() re-contributes.
  std::lock_guard<std::mutex> graph_lock(graph_mu_);
  graph_.erase(id);
}

void CheckerPool::remove(MonitorId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  entries_.erase(it);  // stale heap items are discarded by the workers
  // No check of this monitor is in flight or can start (busy drained above),
  // so nothing can re-contribute this id's edges after the erase.
  std::lock_guard<std::mutex> graph_lock(graph_mu_);
  graph_.erase(id);
}

core::Detector::CheckStats CheckerPool::check_now(MonitorId id) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw std::invalid_argument(
          "CheckerPool::check_now: unknown monitor id");
    }
    entry = it->second.get();
    ++entry->busy;  // pins the entry: remove() waits for busy == 0
  }
  // The busy pin must drop even if the check throws (e.g. a user
  // on_checkpoint callback), or unschedule()/remove() would block forever.
  struct BusyRelease {
    CheckerPool* pool;
    Entry* entry;
    ~BusyRelease() {
      {
        std::lock_guard<std::mutex> lock(pool->mu_);
        --entry->busy;
      }
      pool->idle_cv_.notify_all();
    }
  } release{this, entry};
  std::lock_guard<std::mutex> check_lock(entry->check_mu);
  return run_check(*entry);
}

std::size_t CheckerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::size_t CheckerPool::monitor_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t CheckerPool::scheduled_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->scheduled) ++count;
  }
  return count;
}

core::Detector::CheckStats CheckerPool::run_check(Entry& entry) {
  const util::TimeNs started = wall_now();
  std::vector<trace::EventRecord> segment;
  std::optional<trace::SchedulingState> state;
  core::Detector::CheckStats stats;
  util::TimeNs gate_released = started;
  if (entry.options.hold_gate_during_check) {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->log().drain();
      state = entry.monitor->snapshot();
      stats = entry.detector->check(segment, *state, clock_->now_ns());
    }
    gate_released = wall_now();  // paper mode: suspended through the check
  } else {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->log().drain();
      state = entry.monitor->snapshot();
    }
    gate_released = wall_now();
    stats = entry.detector->check(segment, *state, clock_->now_ns());
  }
  const util::TimeNs finished = wall_now();
  checks_executed_.fetch_add(1, std::memory_order_relaxed);
  total_quiesce_ns_.fetch_add(
      static_cast<std::uint64_t>(gate_released - started),
      std::memory_order_relaxed);
  total_check_ns_.fetch_add(static_cast<std::uint64_t>(finished - started),
                            std::memory_order_relaxed);
  if (waitfor_enabled() && entry.options.contribute_wait_edges) {
    contribute_wait_edges(entry, *state);
  }
  if (entry.options.on_checkpoint) entry.options.on_checkpoint(*state);
  return stats;
}

void CheckerPool::contribute_wait_edges(const Entry& entry,
                                        const trace::SchedulingState& state) {
  // Resolve names and copy queues outside the graph lock; only the swap-in
  // (and the epoch stamp) happens under it.
  core::WaitContribution contribution = core::make_wait_contribution(
      entry.id, entry.monitor->spec().name, 0, state,
      entry.monitor->symbols());
  std::lock_guard<std::mutex> lock(graph_mu_);
  contribution.epoch = graph_epoch_;
  graph_.update(std::move(contribution));
}

bool CheckerPool::validate_cycle(const core::DeadlockCycle& cycle) {
  // Pin every participating monitor so remove() cannot free an entry while
  // we re-snapshot it.  A monitor that already unregistered voids the cycle.
  std::vector<Entry*> pinned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& link : cycle.links) {
      auto it = entries_.find(link.monitor);
      if (it == entries_.end()) {
        for (Entry* entry : pinned) --entry->busy;
        if (!pinned.empty()) idle_cv_.notify_all();
        return false;
      }
      Entry* entry = it->second.get();
      // A cycle may traverse one monitor more than once; pin per link so
      // the unpin below is symmetric.
      ++entry->busy;
      pinned.push_back(entry);
    }
  }
  // Two sequential live passes, each re-snapshotting every participating
  // monitor.  One pass is not enough for exactness: its snapshots are taken
  // at different instants, so link A could be confirmed at t1, dissolve,
  // and link B (formed only after A dissolved) be confirmed at t2 — a
  // "cycle" that never coexisted.  With two passes, a link confirmed in
  // both with the SAME blocking episode (same enqueue timestamp) and the
  // same hold start was continuously blocked/held across the boundary
  // between the passes — a parked thread cannot release anything, and a
  // re-formed wait or hold carries a fresh monotonic timestamp.  So every
  // edge of the cycle exists simultaneously at the instant pass 1 ended,
  // and the deadlock is real; a cycle that resolved before the checkpoint
  // fails here and is never reported.
  //
  // Precondition: the monitor clock yields distinct timestamps for
  // distinct blocking episodes (any monotonic clock does).  Under a frozen
  // ManualClock episodes alias, and the guarantee degrades to "every link
  // was individually present at both passes" — re-formed waits become
  // indistinguishable from continuous ones.  Per-episode tickets in the
  // snapshot would close this (see ROADMAP).
  bool confirmed = true;
  for (int pass = 0; pass < 2 && confirmed; ++pass) {
    for (std::size_t i = 0; i < cycle.links.size() && confirmed; ++i) {
      const auto& link = cycle.links[i];
      const trace::SchedulingState state = pinned[i]->monitor->snapshot();
      confirmed =
          core::link_holds_in(link, state, pinned[i]->monitor->symbols());
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Entry* entry : pinned) --entry->busy;
  }
  idle_cv_.notify_all();
  return confirmed;
}

std::size_t CheckerPool::run_waitfor_checkpoint() {
  if (!waitfor_enabled()) return 0;
  std::lock_guard<std::mutex> pass_lock(checkpoint_pass_mu_);
  std::vector<core::DeadlockCycle> candidates;
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    ++graph_epoch_;
    candidates = graph_.find_cycles();
  }
  waitfor_checkpoints_.fetch_add(1, std::memory_order_relaxed);

  std::size_t confirmed_count = 0;
  std::unordered_set<std::string> confirmed_keys;
  for (const core::DeadlockCycle& cycle : candidates) {
    if (!validate_cycle(cycle)) continue;
    ++confirmed_count;
    const std::string key = cycle.key();
    confirmed_keys.insert(key);
    bool already_reported;
    {
      std::lock_guard<std::mutex> lock(graph_mu_);
      already_reported = !reported_cycles_.insert(key).second;
    }
    if (already_reported) continue;
    deadlocks_reported_.fetch_add(1, std::memory_order_relaxed);
    waitfor_sink_->report(core::make_cycle_report(cycle, clock_->now_ns()));
  }

  // Forget cycles that no longer hold, so a deadlock that dissolves (e.g.
  // poisoned monitors) and later re-forms is reported again.
  {
    std::lock_guard<std::mutex> lock(graph_mu_);
    std::erase_if(reported_cycles_, [&](const std::string& key) {
      return confirmed_keys.find(key) == confirmed_keys.end();
    });
  }
  return confirmed_count;
}

std::uint64_t CheckerPool::waitfor_epoch() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return graph_epoch_;
}

std::size_t CheckerPool::waitfor_graph_monitors() const {
  std::lock_guard<std::mutex> lock(graph_mu_);
  return graph_.monitor_count();
}

void CheckerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (heap_.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    const HeapItem top = heap_.top();
    if (top.id == kCheckpointId) {
      const util::TimeNs now = wall_now();
      if (top.due > now) {
        work_cv_.wait_for(lock, std::chrono::nanoseconds(top.due - now));
        continue;
      }
      heap_.pop();  // this worker owns the pass; re-pushed when done
      lock.unlock();
      run_waitfor_checkpoint();
      lock.lock();
      const bool any_scheduled =
          std::any_of(entries_.begin(), entries_.end(), [](const auto& kv) {
            return kv.second->scheduled;
          });
      if (!any_scheduled) {
        // Nothing is being checked, so nothing refreshes the graph
        // (unschedule also withdrew the contributions); schedule() re-arms
        // on the next scheduling instead of waking a worker every period
        // for an empty graph.
        checkpoint_scheduled_ = false;
      } else {
        heap_.push({wall_now() + waitfor_period_, kCheckpointId, 0});
        work_cv_.notify_one();
      }
      continue;
    }
    auto it = entries_.find(top.id);
    if (it == entries_.end() || it->second->generation != top.generation ||
        !it->second->scheduled) {
      heap_.pop();  // stale: unscheduled, rescheduled, or removed
      continue;
    }
    const util::TimeNs now = wall_now();
    if (top.due > now) {
      work_cv_.wait_for(lock, std::chrono::nanoseconds(top.due - now));
      continue;
    }
    heap_.pop();
    Entry& entry = *it->second;
    ++entry.busy;
    lock.unlock();
    {
      std::lock_guard<std::mutex> check_lock(entry.check_mu);
      run_check(entry);
    }
    lock.lock();
    --entry.busy;
    idle_cv_.notify_all();
    // Deadlines restart after the check completes, so a monitor whose check
    // outlasts its period degrades to back-to-back checks instead of
    // accumulating a backlog of due items.
    if (entry.scheduled && entry.generation == top.generation) {
      heap_.push({wall_now() + entry.period, top.id, top.generation});
      work_cv_.notify_one();
    }
  }
}

}  // namespace robmon::rt
