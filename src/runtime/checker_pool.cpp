#include "runtime/checker_pool.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>

namespace robmon::rt {

namespace {

/// Floor for the checking cadence: a zero/negative check_period would turn
/// a worker into a hot spin loop.
constexpr util::TimeNs kMinPeriodNs = 100'000;  // 100us

/// Deadlines and durations are wall-clock: Options::clock only feeds the
/// detection rules, so a frozen ManualClock must not stall the cadence.
util::TimeNs wall_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t clamp_threads(std::size_t requested) {
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (requested == 0) return hardware;
  return std::min(requested, hardware);
}

}  // namespace

CheckerPool::CheckerPool(Options options)
    : clock_(options.clock),
      configured_threads_(clamp_threads(options.threads)) {}

CheckerPool::~CheckerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

CheckerPool::MonitorId CheckerPool::add(HoareMonitor& monitor,
                                        core::Detector& detector) {
  return add(monitor, detector, MonitorOptions{});
}

CheckerPool::MonitorId CheckerPool::add(HoareMonitor& monitor,
                                        core::Detector& detector,
                                        MonitorOptions options) {
  auto entry = std::make_unique<Entry>();
  entry->monitor = &monitor;
  entry->detector = &detector;
  entry->options = std::move(options);
  entry->period = std::max(detector.spec().check_period, kMinPeriodNs);

  std::lock_guard<std::mutex> lock(mu_);
  const MonitorId id = next_id_++;
  entries_.emplace(id, std::move(entry));
  return id;
}

void CheckerPool::ensure_workers_locked() {
  if (!workers_.empty() || stop_) return;
  workers_.reserve(configured_threads_);
  for (std::size_t i = 0; i < configured_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void CheckerPool::schedule(MonitorId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    throw std::invalid_argument("CheckerPool::schedule: unknown monitor id");
  }
  Entry& entry = *it->second;
  if (entry.scheduled) return;
  entry.scheduled = true;
  ++entry.generation;
  heap_.push({wall_now() + entry.period, id, entry.generation});
  ensure_workers_locked();
  work_cv_.notify_all();
}

void CheckerPool::unschedule(MonitorId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;  // invalidates every heap item for this monitor
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
}

void CheckerPool::remove(MonitorId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  entry.scheduled = false;
  ++entry.generation;
  idle_cv_.wait(lock, [&entry] { return entry.busy == 0; });
  entries_.erase(it);  // stale heap items are discarded by the workers
}

core::Detector::CheckStats CheckerPool::check_now(MonitorId id) {
  Entry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) {
      throw std::invalid_argument(
          "CheckerPool::check_now: unknown monitor id");
    }
    entry = it->second.get();
    ++entry->busy;  // pins the entry: remove() waits for busy == 0
  }
  // The busy pin must drop even if the check throws (e.g. a user
  // on_checkpoint callback), or unschedule()/remove() would block forever.
  struct BusyRelease {
    CheckerPool* pool;
    Entry* entry;
    ~BusyRelease() {
      {
        std::lock_guard<std::mutex> lock(pool->mu_);
        --entry->busy;
      }
      pool->idle_cv_.notify_all();
    }
  } release{this, entry};
  std::lock_guard<std::mutex> check_lock(entry->check_mu);
  return run_check(*entry);
}

std::size_t CheckerPool::thread_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

std::size_t CheckerPool::monitor_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t CheckerPool::scheduled_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t count = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry->scheduled) ++count;
  }
  return count;
}

core::Detector::CheckStats CheckerPool::run_check(Entry& entry) {
  const util::TimeNs started = wall_now();
  std::vector<trace::EventRecord> segment;
  std::optional<trace::SchedulingState> state;
  core::Detector::CheckStats stats;
  util::TimeNs gate_released = started;
  if (entry.options.hold_gate_during_check) {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->log().drain();
      state = entry.monitor->snapshot();
      stats = entry.detector->check(segment, *state, clock_->now_ns());
    }
    gate_released = wall_now();  // paper mode: suspended through the check
  } else {
    {
      sync::CheckerGate::ExclusiveScope quiesce(entry.monitor->gate());
      segment = entry.monitor->log().drain();
      state = entry.monitor->snapshot();
    }
    gate_released = wall_now();
    stats = entry.detector->check(segment, *state, clock_->now_ns());
  }
  const util::TimeNs finished = wall_now();
  checks_executed_.fetch_add(1, std::memory_order_relaxed);
  total_quiesce_ns_.fetch_add(
      static_cast<std::uint64_t>(gate_released - started),
      std::memory_order_relaxed);
  total_check_ns_.fetch_add(static_cast<std::uint64_t>(finished - started),
                            std::memory_order_relaxed);
  if (entry.options.on_checkpoint) entry.options.on_checkpoint(*state);
  return stats;
}

void CheckerPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (heap_.empty()) {
      work_cv_.wait(lock);
      continue;
    }
    const HeapItem top = heap_.top();
    auto it = entries_.find(top.id);
    if (it == entries_.end() || it->second->generation != top.generation ||
        !it->second->scheduled) {
      heap_.pop();  // stale: unscheduled, rescheduled, or removed
      continue;
    }
    const util::TimeNs now = wall_now();
    if (top.due > now) {
      work_cv_.wait_for(lock, std::chrono::nanoseconds(top.due - now));
      continue;
    }
    heap_.pop();
    Entry& entry = *it->second;
    ++entry.busy;
    lock.unlock();
    {
      std::lock_guard<std::mutex> check_lock(entry.check_mu);
      run_check(entry);
    }
    lock.lock();
    --entry.busy;
    idle_cv_.notify_all();
    // Deadlines restart after the check completes, so a monitor whose check
    // outlasts its period degrades to back-to-back checks instead of
    // accumulating a backlog of due items.
    if (entry.scheduled && entry.generation == top.generation) {
      heap_.push({wall_now() + entry.period, top.id, top.generation});
      work_cv_.notify_one();
    }
  }
}

}  // namespace robmon::rt
