#include "runtime/robust_monitor.hpp"

namespace robmon::rt {

RobustMonitor::RobustMonitor(core::MonitorSpec spec, core::ReportSink& sink)
    : RobustMonitor(std::move(spec), sink, Options{}) {}

RobustMonitor::RobustMonitor(core::MonitorSpec spec, core::ReportSink& sink,
                             Options options)
    : sink_(&sink),
      options_(options),
      monitor_(std::move(spec), *options.clock, *options.injection,
               options.instrumentation, options.semantics),
      detector_(monitor_.spec(), monitor_.symbols(), sink) {
  // One source of truth for the per-monitor checking policy; the two
  // engine paths only differ in who owns the scheduling thread(s).
  CheckerPool::MonitorOptions policy;
  policy.hold_gate_during_check = options_.hold_gate_during_check;
  policy.contribute_wait_edges = options_.contribute_wait_edges;
  policy.contribute_lock_order = options_.contribute_lock_order;
  policy.max_stretch = options_.cadence_max_stretch;
  if (options_.retain_trace) {
    policy.on_checkpoint = [this](const trace::SchedulingState& s) {
      std::lock_guard<std::mutex> lock(checkpoints_mu_);
      checkpoints_.push_back(s);
    };
  }
  if (options_.checker_pool != nullptr) {
    policy.instrumentation = options_.check_instrumentation;
    pool_ = options_.checker_pool;
    pool_id_ = pool_->add(monitor_, detector_, std::move(policy));
    inline_mode_ = options_.check_instrumentation ==
                   CheckerPool::CheckInstrumentation::kInline;
  } else {
    PeriodicChecker::Options checker_options;
    checker_options.hold_gate_during_check = policy.hold_gate_during_check;
    checker_options.max_stretch = policy.max_stretch;
    checker_options.on_checkpoint = std::move(policy.on_checkpoint);
    checker_ = std::make_unique<PeriodicChecker>(
        monitor_, detector_, *options_.clock, std::move(checker_options));
  }
  if (options_.retain_trace) monitor_.log().set_retention(true);
  const std::string expression = monitor_.spec().effective_path_expression();
  if (!expression.empty()) order_spec_.emplace(expression);

  const trace::SchedulingState initial = monitor_.snapshot();
  detector_.initialize(initial);
  if (options_.retain_trace) {
    std::lock_guard<std::mutex> lock(checkpoints_mu_);
    checkpoints_.push_back(initial);
  }
}

RobustMonitor::~RobustMonitor() {
  if (pool_ != nullptr) {
    pool_->remove(pool_id_);
  } else {
    checker_->stop();
  }
}

void RobustMonitor::advance_order_matcher(trace::Pid pid,
                                          const std::string& procedure) {
  if (!order_spec_) return;
  pathexpr::MatchResult result;
  {
    std::lock_guard<std::mutex> lock(matchers_mu_);
    auto [it, inserted] = matchers_.try_emplace(pid, order_spec_->matcher());
    result = it->second.advance(procedure);
    if (result == pathexpr::MatchResult::kViolation) it->second.reset();
  }
  if (result != pathexpr::MatchResult::kViolation) return;

  core::FaultReport report;
  report.rule = core::RuleId::kRealTimeOrder;
  report.pid = pid;
  report.proc = monitor_.symbols().find(procedure);
  report.detected_at = options_.clock->now_ns();
  if (procedure == spec().release_procedure) {
    report.suspected = core::FaultKind::kReleaseBeforeAcquire;
  } else if (procedure == spec().acquire_procedure) {
    report.suspected = core::FaultKind::kDoubleAcquireDeadlock;
  }
  report.message = "call to '" + procedure +
                   "' violates the declared order " +
                   order_spec_->expression();
  sink_->report(report);
}

Status RobustMonitor::enter(trace::Pid pid, const std::string& procedure) {
  // Real-time phase: check the declared partial order before admission
  // (Section 3.3: "real-time checking of calling orders").
  advance_order_matcher(pid, procedure);
  const Status status = monitor_.enter(pid, procedure);
  // A recovery eviction/rejection aborts the caller's protocol sequence
  // mid-call: the matcher advanced for a procedure that never completed,
  // and the caller is told to retry from scratch — so the matcher must
  // restart too, or the retry's Acquire reads as a declared-order
  // violation (a recovery-induced false positive).
  if (status == Status::kRecoveryFault) reset_order_matcher(pid);
  return status;
}

Status RobustMonitor::wait(trace::Pid pid, const std::string& cond) {
  const Status status = monitor_.wait(pid, cond);
  if (status == Status::kRecoveryFault) reset_order_matcher(pid);
  return status;
}

void RobustMonitor::reset_order_matcher(trace::Pid pid) {
  if (!order_spec_) return;
  std::lock_guard<std::mutex> lock(matchers_mu_);
  const auto it = matchers_.find(pid);
  if (it != matchers_.end()) it->second.reset();
}

void RobustMonitor::signal_exit(trace::Pid pid, const std::string& cond) {
  monitor_.signal_exit(pid, cond);
  poll_inline_check();
}

void RobustMonitor::signal_exit(trace::Pid pid, const std::string& cond,
                                std::int64_t resource_delta) {
  monitor_.signal_exit(pid, cond, resource_delta);
  poll_inline_check();
}

void RobustMonitor::exit(trace::Pid pid) {
  monitor_.exit(pid);
  poll_inline_check();
}

void RobustMonitor::poll_inline_check() {
  if (!inline_mode_ || !inline_active_.load(std::memory_order_relaxed)) {
    return;
  }
  const util::TimeNs now = sync::backend_now();
  util::TimeNs due = next_inline_check_.load(std::memory_order_relaxed);
  if (now < due) return;  // the steady-state exit: one clock read + compare
  if (pool_->inline_offloaded()) return;  // pressure: the pool owns us now
  // One caller wins the due slot and runs the check; losers see the
  // advanced deadline.  The next due time uses the pool's effective period,
  // so budget widening and adaptive stretch govern inline cadence too.
  const util::TimeNs next = now + pool_->effective_period(pool_id_);
  if (!next_inline_check_.compare_exchange_strong(due, next,
                                                  std::memory_order_relaxed)) {
    return;
  }
  pool_->check_inline(pool_id_);
}

void RobustMonitor::start_checking() {
  if (pool_ != nullptr) {
    pool_->schedule(pool_id_);
    if (inline_mode_) {
      next_inline_check_.store(
          sync::backend_now() + pool_->period(pool_id_),
          std::memory_order_relaxed);
      inline_active_.store(true, std::memory_order_relaxed);
    }
  } else {
    checker_->start();
  }
}

void RobustMonitor::stop_checking() {
  if (pool_ != nullptr) {
    inline_active_.store(false, std::memory_order_relaxed);
    pool_->unschedule(pool_id_);
  } else {
    checker_->stop();
  }
}

core::Detector::CheckStats RobustMonitor::check_now() {
  if (pool_ != nullptr) return pool_->check_now(pool_id_);
  return checker_->check_now();
}

trace::TraceFile RobustMonitor::export_trace() const {
  std::lock_guard<std::mutex> lock(checkpoints_mu_);
  return trace::make_trace_file(
      spec().name, std::string(core::to_string(spec().type)), spec().rmax,
      monitor_.symbols(), monitor_.log().history(), checkpoints_,
      monitor_.log().events_lost());
}

}  // namespace robmon::rt
