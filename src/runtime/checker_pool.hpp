// CheckerPool — the sharded, deadline-scheduled detection engine.
//
// The paper's fault-detection routine (Fig. 1) is specified per monitor, and
// the first runtime mirrored that: one PeriodicChecker thread per
// RobustMonitor.  A process with M monitors then pays M mostly-idle threads.
// The pool inverts the structure: K worker threads (K bounded by hardware
// concurrency, configurable) share a min-heap of registered monitors ordered
// by next check deadline (spec.check_period cadence).  When a monitor comes
// due, one worker quiesces it through *its own* checker gate, drains its
// event segment, snapshots its scheduling state and runs its Detector — no
// global stop-the-world across monitors, and the suspend-vs-concurrent
// choice (hold_gate_during_check) is a per-monitor policy, not a property of
// the engine.
//
// Lifecycle: add() registers a monitor (idle); schedule() begins periodic
// checking; unschedule() stops it and blocks until any in-flight check of
// that monitor completes; remove() unregisters.  check_now() runs one
// synchronous check from the caller's thread and needs no workers, so a
// never-scheduled pool is free.  Worker threads spawn lazily on the first
// schedule() and are joined by the destructor.
//
// Cross-monitor deadlock detection (Options::waitfor_checkpoint_period):
// every check additionally folds the monitor's snapshot into a shared
// epoch-versioned core::WaitForGraph; a pool-level checkpoint item on the
// same deadline heap periodically runs cycle detection over the graph.
// Candidate cycles may rest on snapshots taken at different times, so each
// one is confirmed against *live* re-snapshots of the participating
// monitors (same blocking episode, same hold start) before a GlobalDeadlock
// fault naming the full thread/monitor cycle goes to the waitfor sink — a
// cycle that resolved before the checkpoint is never reported.  (Episodes
// are identified by their enqueue timestamps, so the zero-false-positive
// guarantee assumes a clock with distinct ticks per episode; a frozen
// ManualClock weakens it to per-link validation.)  A confirmed cycle is
// reported once and re-armed if it ever dissolves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/detector.hpp"
#include "core/waitfor.hpp"
#include "runtime/hoare_monitor.hpp"

namespace robmon::rt {

class CheckerPool {
 public:
  struct Options {
    /// Worker threads K; 0 means "hardware concurrency".  Always clamped to
    /// [1, hardware concurrency].
    std::size_t threads = 0;
    /// Supplies the timestamps the detection rules evaluate against (Tmax,
    /// Tio, Tlimit).  The check *cadence* is always wall-clock, like the
    /// original PeriodicChecker loop, so a frozen ManualClock cannot stall
    /// periodic checking.
    const util::Clock* clock = &util::SteadyClock::instance();
    /// Cadence of the pool-level wait-for checkpoint (wall-clock, like the
    /// check cadence).  0 disables cross-monitor deadlock detection.
    util::TimeNs waitfor_checkpoint_period = 0;
    /// Destination for GlobalDeadlock faults; required when the checkpoint
    /// is enabled.
    core::ReportSink* waitfor_sink = nullptr;
  };

  /// Per-monitor policy — the knobs PeriodicChecker::Options exposed.
  struct MonitorOptions {
    /// Keep monitor traffic suspended while the algorithms run (paper
    /// behaviour).  false = release the gate right after the snapshot.
    bool hold_gate_during_check = true;
    /// Fold this monitor's snapshots into the pool-level wait-for graph
    /// (no-op unless Options::waitfor_checkpoint_period is set).
    bool contribute_wait_edges = true;
    /// Invoked with every checkpoint state (replayable-trace support).
    std::function<void(const trace::SchedulingState&)> on_checkpoint;
  };

  using MonitorId = std::uint64_t;

  CheckerPool() : CheckerPool(Options{}) {}
  explicit CheckerPool(Options options);
  ~CheckerPool();

  CheckerPool(const CheckerPool&) = delete;
  CheckerPool& operator=(const CheckerPool&) = delete;

  /// Register a monitor/detector pair.  The pair must outlive its
  /// registration (until remove() or pool destruction).  The check cadence
  /// is detector.spec().check_period.  Registered monitors start idle.
  MonitorId add(HoareMonitor& monitor, core::Detector& detector);
  MonitorId add(HoareMonitor& monitor, core::Detector& detector,
                MonitorOptions options);

  /// Begin periodic checking of `id` (first check one period from now).
  /// Spawns the worker threads on first use.  No-op if already scheduled.
  void schedule(MonitorId id);

  /// Stop periodic checking of `id`; on return no check of this monitor is
  /// in flight and none will start.  No-op if not scheduled.
  void unschedule(MonitorId id);

  /// Unschedule and unregister `id`.
  void remove(MonitorId id);

  /// One synchronous checking-routine invocation on the caller's thread;
  /// serialized against any worker checking the same monitor.
  core::Detector::CheckStats check_now(MonitorId id);

  /// One synchronous wait-for checkpoint pass on the caller's thread:
  /// cycle detection over the contributed graph, live validation of every
  /// candidate, reporting of confirmed cycles.  Returns the number of
  /// cycles confirmed in this pass (reported ones plus already-known ones).
  /// No-op returning 0 when the checkpoint is disabled.
  std::size_t run_waitfor_checkpoint();

  // --- Introspection (bench/pool_scaling, tests). ---------------------------

  /// Worker threads currently running (0 until the first schedule()).
  std::size_t thread_count() const;
  /// Worker threads the pool will run once started (the clamped K).
  std::size_t configured_threads() const { return configured_threads_; }
  std::size_t monitor_count() const;
  std::size_t scheduled_count() const;

  /// Checks executed through this pool (periodic + check_now).
  std::uint64_t checks_executed() const {
    return checks_executed_.load(std::memory_order_relaxed);
  }
  /// Cumulative wall time the checker gate was held exclusively (in hold-
  /// gate mode that spans the whole detector run; otherwise just drain +
  /// snapshot), and wall time of the full checking routine, in nanoseconds.
  std::uint64_t total_quiesce_ns() const {
    return total_quiesce_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_check_ns() const {
    return total_check_ns_.load(std::memory_order_relaxed);
  }

  /// Wait-for checkpoint passes executed (periodic + run_waitfor_checkpoint).
  std::uint64_t waitfor_checkpoints() const {
    return waitfor_checkpoints_.load(std::memory_order_relaxed);
  }
  /// GlobalDeadlock faults delivered to the waitfor sink.
  std::uint64_t deadlocks_reported() const {
    return deadlocks_reported_.load(std::memory_order_relaxed);
  }
  /// Current checkpoint epoch (bumped at the start of every pass).
  std::uint64_t waitfor_epoch() const;
  /// Monitors currently contributing edges to the wait-for graph.
  std::size_t waitfor_graph_monitors() const;

 private:
  /// Reserved heap id for the pool-level wait-for checkpoint item.
  static constexpr MonitorId kCheckpointId = 0;

  struct Entry {
    MonitorId id = 0;
    HoareMonitor* monitor = nullptr;
    core::Detector* detector = nullptr;
    MonitorOptions options;
    util::TimeNs period = 0;
    /// Bumped by schedule()/unschedule(); stale heap items are discarded.
    std::uint64_t generation = 0;
    bool scheduled = false;
    /// Checks currently executing against this entry (worker or check_now).
    int busy = 0;
    /// Serializes the actual checking routine per monitor.
    std::mutex check_mu;
  };

  struct HeapItem {
    util::TimeNs due = 0;
    MonitorId id = 0;
    std::uint64_t generation = 0;
    bool operator>(const HeapItem& other) const { return due > other.due; }
  };

  void worker_loop();
  void ensure_workers_locked();
  core::Detector::CheckStats run_check(Entry& entry);

  bool waitfor_enabled() const {
    return waitfor_period_ > 0 && waitfor_sink_ != nullptr;
  }
  /// Fold `state` into the wait-for graph as `entry`'s current edge set.
  void contribute_wait_edges(const Entry& entry,
                             const trace::SchedulingState& state);
  /// Live validation: re-snapshot the cycle's monitors and require every
  /// link to still hold (same blocking episode, same hold start).
  bool validate_cycle(const core::DeadlockCycle& cycle);

  const util::Clock* clock_;
  std::size_t configured_threads_;
  util::TimeNs waitfor_period_ = 0;
  core::ReportSink* waitfor_sink_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Heap / stop changes.
  std::condition_variable idle_cv_;   ///< Entry busy-count drops.
  std::unordered_map<MonitorId, std::unique_ptr<Entry>> entries_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<std::thread> workers_;
  MonitorId next_id_ = 1;  ///< 0 is kCheckpointId; real monitors start at 1.
  bool stop_ = false;
  bool checkpoint_scheduled_ = false;  ///< Checkpoint item lives on the heap.

  /// Wait-for state.  Lock order: checkpoint_pass_mu_ before mu_ before
  /// graph_mu_, never the reverse.
  /// Serializes whole checkpoint passes: a periodic worker pass racing a
  /// synchronous run_waitfor_checkpoint() could otherwise erase the other
  /// pass's reported_cycles_ entry and double-report a persisting cycle.
  std::mutex checkpoint_pass_mu_;
  mutable std::mutex graph_mu_;
  core::WaitForGraph graph_;
  /// Bumped per checkpoint pass and stamped into contributions — the
  /// version telemetry behind waitfor_epoch()/WaitContribution::epoch.
  /// Exactness comes from live validation, not epoch gating: filtering
  /// candidates by epoch would lose monitors whose check cadence is slower
  /// than the checkpoint cadence.
  std::uint64_t graph_epoch_ = 0;
  /// Keys of cycles confirmed at the previous pass (suppresses duplicate
  /// reports while a deadlock persists; cleared when the cycle dissolves).
  std::unordered_set<std::string> reported_cycles_;

  std::atomic<std::uint64_t> checks_executed_{0};
  std::atomic<std::uint64_t> total_quiesce_ns_{0};
  std::atomic<std::uint64_t> total_check_ns_{0};
  std::atomic<std::uint64_t> waitfor_checkpoints_{0};
  std::atomic<std::uint64_t> deadlocks_reported_{0};
};

}  // namespace robmon::rt
