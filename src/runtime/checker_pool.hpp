// CheckerPool — the sharded, deadline-scheduled, batch-draining detection
// engine.
//
// The paper's fault-detection routine (Fig. 1) is specified per monitor, and
// the first runtime mirrored that: one PeriodicChecker thread per
// RobustMonitor.  A process with M monitors then pays M mostly-idle threads.
// The pool inverts the structure: K worker threads (K bounded by hardware
// concurrency, configurable) share a min-heap of registered monitors ordered
// by next check deadline (spec.check_period cadence).  When a monitor comes
// due, one worker quiesces it through *its own* checker gate, drains its
// event segment, snapshots its scheduling state and runs its Detector — no
// global stop-the-world across monitors, and the suspend-vs-concurrent
// choice (hold_gate_during_check) is a per-monitor policy, not a property of
// the engine.
//
// Batched dispatch: a dispatching worker pops not just the due head but
// every monitor due within Options::batch_window of now (default: one
// check-period quantum of the head monitor), then runs the batch's checks
// back-to-back outside the scheduler lock.  This amortizes heap operations,
// condvar wake-ups, lock acquisitions and rule-clock reads (one
// Clock::now_ns() per batch, not per check) across the batch — at M=256
// monitors on one cadence, the per-item loop paid one dispatch per check.
// Options::max_batch = 1 reproduces the per-item engine (the bench
// baseline).  Checks pulled forward by the window are rescheduled from
// their *original* deadline, so the cadence grid is preserved.
//
// Backlog policy: when a check outlasts its (effective) period, the next
// deadline is already in the past.  kCoalesce (default) slips the grid —
// the missed slots are absorbed by the next check (the drained segment
// covers them) and counted in checks_coalesced().  kRunAll catches up with
// back-to-back checks, bounded by Options::max_backlog; slots beyond the
// bound are coalesced.  Neither policy lets a slow monitor starve the rest
// of the pool: catch-up items re-enter the shared heap like any other.
//
// Adaptive cadence: MonitorOptions::max_stretch > 1 lets an *idle* monitor
// be checked lazily — its effective period stretches geometrically from
// check_period up to check_period × max_stretch while consecutive checks
// drain nothing, and snaps back to check_period on the first check that
// sees events, violations, or occupancy.  The paper's Section 3.3
// Tmax < T relation holds throughout (stretching only grows T), and the
// timer rules keep a hard latency bound: a monitor observed occupied is
// always checked at base cadence, and for an episode that *begins* inside
// a stretched interval the effective period is additionally clamped to
// the smallest timer threshold (min(Tmax, Tio, Tlimit), never below the
// base period) — so the first post-onset check, which both evaluates the
// timer rules and snaps the cadence back, runs within one threshold of
// onset.
//
// Lifecycle: add() registers a monitor (idle); schedule() begins periodic
// checking; unschedule() stops it and blocks until any in-flight check of
// that monitor completes; remove() unregisters.  check_now() runs one
// synchronous check from the caller's thread and needs no workers, so a
// never-scheduled pool is free.  Worker threads spawn lazily on the first
// schedule() and are joined by the destructor.
//
// Cross-monitor deadlock detection (Options::waitfor_checkpoint_period):
// every check additionally folds the monitor's snapshot into a shared
// epoch-versioned core::WaitForGraph; a pool-level checkpoint item on the
// same deadline heap periodically runs cycle detection over the graph.
// Candidate cycles may rest on snapshots taken at different times, so each
// one is confirmed against *live* re-snapshots of the participating
// monitors (same blocking episode, same hold episode) before a
// GlobalDeadlock fault naming the full thread/monitor cycle goes to the
// waitfor sink — a cycle that resolved before the checkpoint is never
// reported.  Episodes are identified by per-monitor monotonic tickets
// (HoareMonitor::next_ticket_), so the zero-false-positive guarantee is
// clock-independent — it holds even under a frozen ManualClock.  A
// confirmed cycle is reported once and re-armed if it ever dissolves.
//
// Lock-order prediction (Options::lockorder_checkpoint_period): a second
// epoch-versioned pool-level checkpoint, on its own reserved heap item,
// accumulates the (monitor -> monitor) acquisition-order relation — fed
// from the same per-check snapshots (SchedulingState.holders plus each
// thread's queued acquisitions) via core::LockOrderGraph — and runs SCC
// cycle detection over the *order* graph.  A cycle there means monitors
// are taken in inconsistent orders even though no real wait cycle ever
// closed; it is reported once as a kPotentialDeadlock warning naming the
// exact monitor cycle and the witnessing thread/episode-ticket pairs.
// Unlike wait-for candidates, order cycles are historical facts, so there
// is no live-validation pass; soundness comes from the certified-interval
// join (see core/lockorder.hpp).  Unscheduling keeps a monitor's recorded
// order edges (the warning stays valid); unregistering erases them.
//
// Recovery (Options::recovery): with a core::RecoveryPolicy attached, both
// pool-level checkpoints turn their verdicts into actions.  When a
// confirmed cycle is first reported, the policy scores the blocked
// participants and the pool actuates the chosen remedy — recovery-poisons
// the monitor the victim waits on (waiters wake with Status::kRecoveryFault
// instead of blocking forever; sticky until the cycle dissolves, at which
// point the next wait-for checkpoint unpoisons it) or delivers a designated
// RecoveryFault to the victim thread alone.  When a predicted order cycle
// is first warned about, the policy acts pre-emptively: the witness counts
// name the dominant acquisition order, and the pool engages
// Options::recovery.gate with that order plus the minority-edge witnesses,
// so cooperating call sites re-order (or fence) before the cycle can ever
// close.  Exactly one action fires per reported cycle.  After a poison or
// delivery the affected monitor's Detector is re-baselined
// (Detector::rebaseline) under its checker gate — recovery transitions are
// out-of-band and must not surface as ST-Rule false positives.  Every
// action (and every unpoison) is appended to recovery_log() as a trace
// codec v4 `rcov` record and reported to Options::recovery.sink (rule RC).
//
// Overhead budget (Options::budget): a pool-wide BudgetController bounds
// total detection spend as a fraction of wall-clock time.  Measurement
// reuses the batch-drain structure — one wall-clock pair per dispatch batch
// (and per checkpoint pass) feeds a windowed spend EWMA — and when the EWMA
// exceeds the budget the pool degrades one step per decision window, in a
// fixed order: idle cadence stretches harder (and inline monitors flip to
// the offloaded path), then lock-order *prediction* is shed (checkpoint
// passes and per-check folds skipped, resumable), then every effective
// check period widens toward the smallest timer threshold.  Confirmed-cycle
// (wait-for) detection and active recovery are never shed.  Recovery is
// symmetric with hysteresis, and every transition lands in budget_log() as
// a codec v6 `bdgt` record.  See runtime/budget.hpp for the controller and
// docs/overhead-budget.md for the contract the bench gates.
//
// Instrumentation choice (MonitorOptions::instrumentation): kOffloaded
// monitors are deadline-scheduled on the pool's workers (asynchronous, the
// default); kInline monitors are checked synchronously on the calling
// thread — the call site polls check_inline() at monitor-exit points, the
// pool keeps them off the worker heap, and the per-operation cost is one
// atomic due-time comparison until a check falls due.  Inline monitors are
// offload-*eligible*: at budget level ≥ stretch the pool temporarily flips
// them onto the worker heap (the caller's poll sees inline_offloaded() and
// stands down), and flips them back when the controller recovers.
//
// Lifecycle contract (unschedule vs remove): unschedule(id) stops checking
// and withdraws the monitor's live wait-for contribution, but keeps its
// recorded order edges, every reported-cycle key and all introspection
// counters — a re-schedule resumes exactly where it left off, and nothing
// is re-reported.  remove(id) additionally erases the monitor's edges from
// BOTH pool-level graphs and re-arms every reported cycle (wait-for and
// order alike) that named the monitor: a cycle through an unregistered
// monitor no longer exists, and an equivalent one after a re-register must
// be reported (and recovered from) again.  Cumulative counters
// (checks_executed, deadlocks_reported, recovery_actions, ...) are
// lifetime totals and are never reset by schedule/unschedule/remove.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/detector.hpp"
#include "core/lockorder.hpp"
#include "core/recovery.hpp"
#include "core/waitfor.hpp"
#include "runtime/budget.hpp"
#include "sync/backend.hpp"
#include "runtime/event_sink.hpp"
#include "trace/codec.hpp"

namespace robmon::rt {

class CheckerPool {
 public:
  /// What to do with the deadlines a monitor missed because its check
  /// outlasted its (effective) period.
  enum class BacklogPolicy {
    kCoalesce,  ///< Slip the grid; the next check absorbs the backlog.
    kRunAll,    ///< Catch up back-to-back, at most max_backlog deep.
  };

  struct Options {
    /// Worker threads K; 0 means "hardware concurrency".  Always clamped to
    /// [1, hardware concurrency].
    std::size_t threads = 0;
    /// Supplies the timestamps the detection rules evaluate against (Tmax,
    /// Tio, Tlimit).  The check *cadence* is always the backend wall clock,
    /// like the original PeriodicChecker loop, so a frozen ManualClock
    /// cannot stall periodic checking.  Defaults to the sync backend's
    /// clock: real steady_clock normally, the SimScheduler's virtual clock
    /// under ROBMON_SYNC_BACKEND_SIM — rules and cadence then share one
    /// deterministic timeline.
    const util::Clock* clock = sync::backend_clock();
    /// Batch window W: a dispatching worker also drains monitors due within
    /// W of now, amortizing wake-ups across near-simultaneous deadlines.
    /// -1 = auto (the dispatch head's own check period — one quantum);
    /// 0 = only monitors already due.
    util::TimeNs batch_window = -1;
    /// Cap on checks per dispatch; 0 = unbounded.  1 reproduces the
    /// per-item engine (one dispatch per check) — the bench baseline.
    std::size_t max_batch = 0;
    /// Missed-deadline handling for checks that outlast their period.
    BacklogPolicy backlog_policy = BacklogPolicy::kCoalesce;
    /// kRunAll only: deepest allowed catch-up backlog (checks); missed
    /// slots beyond it are coalesced.
    std::size_t max_backlog = 4;
    /// Cadence of the pool-level wait-for checkpoint (wall-clock, like the
    /// check cadence).  0 disables cross-monitor deadlock detection.
    util::TimeNs waitfor_checkpoint_period = 0;
    /// Destination for GlobalDeadlock faults; required when the checkpoint
    /// is enabled.
    core::ReportSink* waitfor_sink = nullptr;
    /// Cadence of the pool-level lock-order prediction checkpoint
    /// (wall-clock).  0 disables lock-order prediction.
    util::TimeNs lockorder_checkpoint_period = 0;
    /// Destination for PotentialDeadlock warnings; required when the
    /// prediction checkpoint is enabled.
    core::ReportSink* lockorder_sink = nullptr;
    /// Recovery hook, invoked from both checkpoints (see file comment).
    struct Recovery {
      /// Decision logic; null disables recovery.  Must outlive the pool.
      core::RecoveryPolicy* policy = nullptr;
      /// Impose-order actuator for predicted cycles; without it the
      /// pre-emptive half of the policy is skipped (decisions on confirmed
      /// cycles still actuate).
      sync::Gate* gate = nullptr;
      /// Destination for ext.RC action reports; when null, confirmed-cycle
      /// actions go to waitfor_sink and order impositions to
      /// lockorder_sink.
      core::ReportSink* sink = nullptr;
    };
    Recovery recovery = {};
    /// Global detection-overhead budget (see the file comment and
    /// runtime/budget.hpp).  fraction ≤ 0 (the default) disables the
    /// controller: no measurement, no degradation, every knob neutral.
    BudgetOptions budget = {};
  };

  /// Where a monitor's checking routine runs (see the file comment).
  enum class CheckInstrumentation {
    kOffloaded,  ///< Pool worker threads — asynchronous (default).
    kInline,     ///< Calling thread, polled at monitor-exit points.
  };

  /// Per-monitor policy — the knobs PeriodicChecker::Options exposed.
  struct MonitorOptions {
    /// Keep monitor traffic suspended while the algorithms run (paper
    /// behaviour).  false = release the gate right after the snapshot.
    bool hold_gate_during_check = true;
    /// Fold this monitor's snapshots into the pool-level wait-for graph
    /// (no-op unless Options::waitfor_checkpoint_period is set).
    bool contribute_wait_edges = true;
    /// Fold this monitor's snapshots into the pool-level acquisition-order
    /// relation (no-op unless Options::lockorder_checkpoint_period is set).
    bool contribute_lock_order = true;
    /// Adaptive cadence ceiling: while the monitor is idle (no drained
    /// events, nobody running or queued), its effective check period
    /// stretches up to check_period × max_stretch.  1.0 = fixed cadence.
    /// Must be ≥ 1.
    double max_stretch = 1.0;
    /// EWMA weight of the newest segment size in the idle estimate.
    double ewma_alpha = 0.25;
    /// Synchronous in-path checking vs the offloaded pool path.  kInline
    /// monitors stay off the worker heap while nominal; the call site is
    /// responsible for polling check_inline() (RobustMonitor does this at
    /// its exit points).  The budget controller may temporarily offload
    /// them under pressure.
    CheckInstrumentation instrumentation = CheckInstrumentation::kOffloaded;
    /// Invoked with every checkpoint state (replayable-trace support).
    std::function<void(const trace::SchedulingState&)> on_checkpoint;
  };

  using MonitorId = std::uint64_t;

  CheckerPool() : CheckerPool(Options{}) {}
  explicit CheckerPool(Options options);
  ~CheckerPool();

  CheckerPool(const CheckerPool&) = delete;
  CheckerPool& operator=(const CheckerPool&) = delete;

  /// Register a source/detector pair.  The pair must outlive its
  /// registration (until remove() or pool destruction).  The check cadence
  /// is detector.spec().check_period, clamped to a 100 µs floor: the pool
  /// has no per-event mode, so a zero period (the paper's "T = 1" request)
  /// would otherwise hot-spin the heap.  A negative period is rejected
  /// (std::invalid_argument).  Registered monitors start idle.  Any
  /// EventSink registers; HoareMonitor implements the interface, so native
  /// monitors pass through unchanged.
  MonitorId add(EventSink& source, core::Detector& detector);
  MonitorId add(EventSink& source, core::Detector& detector,
                MonitorOptions options);

  /// Detector-less registration — the ingestion path for sources whose
  /// event stream is not a faithful Hoare-monitor history (the LD_PRELOAD
  /// interposition adapter's synthetic monitors): Algorithms 1-3 would
  /// fabricate ST violations over a synthetic stream, so the per-check
  /// work reduces to drain + snapshot + the pool-level wait-for and
  /// lock-order contributions, which are exactly the analyses that fire
  /// through the shim.  Cadence and the timer clamp come from
  /// source.spec(); every lifecycle and checkpoint behaviour is identical.
  MonitorId add(EventSink& source);
  MonitorId add(EventSink& source, MonitorOptions options);

  /// Begin periodic checking of `id` (first check one period from now).
  /// Spawns the worker threads on first use.  No-op if already scheduled.
  void schedule(MonitorId id);

  /// Stop periodic checking of `id`; on return no check of this monitor is
  /// in flight and none will start.  No-op if not scheduled.  Withdraws the
  /// live wait-for contribution but keeps recorded order edges, reported-
  /// cycle keys and counters (see the lifecycle contract above).
  void unschedule(MonitorId id);

  /// Unschedule and unregister `id`: erases the monitor's edges from both
  /// pool-level graphs and re-arms every reported cycle naming it, on both
  /// the wait-for and the order side (see the lifecycle contract above).
  void remove(MonitorId id);

  /// One synchronous checking-routine invocation on the caller's thread;
  /// serialized against any worker checking the same monitor.  Feeds the
  /// adaptive-cadence controller like a periodic check.  An unknown or
  /// just-removed id returns an empty CheckStats deterministically (the
  /// schedule explorer calls this mid-churn, where an id can vanish between
  /// the caller's lookup and the call).
  core::Detector::CheckStats check_now(MonitorId id);

  /// check_now() for an inline-instrumented call site: same synchronous
  /// check, additionally accounted as inline work and measured into the
  /// overhead budget.  RobustMonitor's exit-point poll is the intended
  /// caller; it polls only when the monitor's effective period has elapsed.
  core::Detector::CheckStats check_inline(MonitorId id);

  /// Whether budget pressure currently routes kInline monitors through the
  /// worker heap (call sites' polls stand down while true).
  bool inline_offloaded() const {
    return inline_offloaded_.load(std::memory_order_relaxed);
  }

  /// One synchronous wait-for checkpoint pass on the caller's thread:
  /// cycle detection over the contributed graph, live validation of every
  /// candidate, reporting of confirmed cycles.  Returns the number of
  /// cycles confirmed in this pass (reported ones plus already-known ones).
  /// No-op returning 0 when the checkpoint is disabled.
  std::size_t run_waitfor_checkpoint();

  /// One synchronous lock-order prediction pass on the caller's thread:
  /// SCC cycle detection over the accumulated order relation, reporting of
  /// newly seen cycles as kPotentialDeadlock.  Returns the number of
  /// plausible cycles present (reported plus already-reported).  No-op
  /// returning 0 when prediction is disabled.
  std::size_t run_lockorder_checkpoint();

  // --- Introspection (bench/check_overhead, bench/pool_scaling, tests). -----

  /// Worker threads currently running (0 until the first schedule()).
  std::size_t thread_count() const;
  /// Worker threads the pool will run once started (the clamped K).
  std::size_t configured_threads() const { return configured_threads_; }
  std::size_t monitor_count() const;
  std::size_t scheduled_count() const;

  /// Clamped base check period of `id` (the floor applied by add()).
  util::TimeNs period(MonitorId id) const;
  /// Current effective period = period × stretch (adaptive cadence).
  util::TimeNs effective_period(MonitorId id) const;
  /// Current stretch factor in [1, max_stretch].
  double stretch(MonitorId id) const;

  /// Checks executed through this pool (periodic + check_now).
  std::uint64_t checks_executed() const {
    return checks_executed_.load(std::memory_order_relaxed);
  }
  /// Worker dispatches: scheduler-lock acquire → run transitions (one per
  /// batch, plus one per checkpoint pass).  The per-item engine pays one
  /// per check; dispatches()/checks_executed() is the amortization factor.
  std::uint64_t dispatches() const {
    return dispatches_.load(std::memory_order_relaxed);
  }
  /// Checks executed by periodic batch dispatch (excludes check_now).
  std::uint64_t batched_checks() const {
    return batched_checks_.load(std::memory_order_relaxed);
  }
  /// Missed deadlines absorbed by the backlog policy.
  std::uint64_t checks_coalesced() const {
    return checks_coalesced_.load(std::memory_order_relaxed);
  }
  /// Cumulative wall time the checker gate was held exclusively (in hold-
  /// gate mode that spans the whole detector run; otherwise just drain +
  /// snapshot), and wall time of the full checking routine, in nanoseconds.
  std::uint64_t total_quiesce_ns() const {
    return total_quiesce_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_check_ns() const {
    return total_check_ns_.load(std::memory_order_relaxed);
  }
  /// Events dropped by the registered monitors' EventLogs under the
  /// ring-overflow contract (sum of EventLog::events_lost() over every
  /// currently registered monitor).  A healthy pool keeps this at 0: the
  /// periodic drain empties each ring well inside its capacity.  Non-zero
  /// means ingestion outran checking and the loss accounting — not silent
  /// gaps — absorbed the difference.
  std::uint64_t events_lost() const;

  /// Wait-for checkpoint passes executed (periodic + run_waitfor_checkpoint).
  std::uint64_t waitfor_checkpoints() const {
    return waitfor_checkpoints_.load(std::memory_order_relaxed);
  }
  /// GlobalDeadlock faults delivered to the waitfor sink.
  std::uint64_t deadlocks_reported() const {
    return deadlocks_reported_.load(std::memory_order_relaxed);
  }
  /// Current checkpoint epoch (bumped at the start of every pass).
  std::uint64_t waitfor_epoch() const;
  /// Monitors currently contributing edges to the wait-for graph.
  std::size_t waitfor_graph_monitors() const;

  /// Lock-order prediction passes executed (periodic + synchronous).
  std::uint64_t lockorder_checkpoints() const {
    return lockorder_checkpoints_.load(std::memory_order_relaxed);
  }
  /// PotentialDeadlock warnings delivered to the lockorder sink.
  std::uint64_t potential_deadlocks_reported() const {
    return potential_deadlocks_reported_.load(std::memory_order_relaxed);
  }
  /// Current prediction epoch (bumped at the start of every pass).
  std::uint64_t lockorder_epoch() const;
  /// Distinct (from, to) pairs in the accumulated order relation.
  std::size_t lockorder_edge_count() const;
  /// Flattened copy of the order relation (trace export, diagnostics).
  std::vector<core::OrderEdge> lockorder_edges() const;

  /// Recovery actions applied (poisons + deliveries + order impositions;
  /// excludes unpoison completions).
  std::uint64_t recovery_actions() const {
    return recovery_actions_.load(std::memory_order_relaxed);
  }
  std::uint64_t victims_poisoned() const {
    return victims_poisoned_.load(std::memory_order_relaxed);
  }
  std::uint64_t recovery_faults_delivered() const {
    return recovery_faults_delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t orders_imposed() const {
    return orders_imposed_.load(std::memory_order_relaxed);
  }
  /// Recovery completions: sticky poisons cleared after their cycle
  /// dissolved.
  std::uint64_t monitors_unpoisoned() const {
    return monitors_unpoisoned_.load(std::memory_order_relaxed);
  }
  /// Copy of the action log, in order — the codec v4 `rcov` records a
  /// trace export attaches (examples/gate_crossing --trace).
  std::vector<trace::RecoveryRecord> recovery_log() const;

  /// Current overhead-budget degradation level (kNominal when disabled).
  BudgetLevel budget_level() const { return budget_.level(); }
  /// Spend EWMA: fraction of wall-clock time the pool spends checking.
  double budget_spend() const { return budget_.spend_ewma(); }
  std::uint64_t budget_transitions() const { return budget_.transitions(); }
  /// Copy of the transition log, in order — the codec v6 `bdgt` records a
  /// trace export attaches.
  std::vector<trace::BudgetRecord> budget_log() const {
    return budget_.log();
  }
  /// Lock-order prediction checkpoint passes skipped under budget pressure.
  std::uint64_t prediction_sheds() const {
    return prediction_sheds_.load(std::memory_order_relaxed);
  }
  /// Checks driven through check_inline() (synchronous in-path checking).
  std::uint64_t inline_checks() const {
    return inline_checks_.load(std::memory_order_relaxed);
  }
  /// Per-monitor inline↔offloaded flips applied by budget transitions.
  std::uint64_t inline_flips() const {
    return inline_flips_.load(std::memory_order_relaxed);
  }

 private:
  /// Reserved heap ids for the pool-level checkpoint items; real monitors
  /// start at kFirstMonitorId.
  static constexpr MonitorId kCheckpointId = 0;
  static constexpr MonitorId kLockOrderId = 1;
  static constexpr MonitorId kFirstMonitorId = 2;

  struct Entry {
    MonitorId id = 0;
    EventSink* monitor = nullptr;
    /// Null for detector-less registrations (see add(EventSink&, ...)).
    core::Detector* detector = nullptr;
    MonitorOptions options;
    util::TimeNs period = 0;            ///< Clamped base period.
    util::TimeNs effective_period = 0;  ///< period × stretch (mu_).
    double stretch = 1.0;               ///< Cadence controller state (mu_).
    double ewma_events = 0.0;           ///< EWMA of drained segment sizes.
    /// Bumped by schedule()/unschedule(); stale heap items are discarded.
    std::uint64_t generation = 0;
    bool scheduled = false;
    /// Checks currently executing against this entry (worker or check_now).
    int busy = 0;
    /// Serializes the actual checking routine per monitor.  Backend mutex:
    /// held across the gate quiesce, which blocks.
    sync::BackendMutex check_mu;
  };

  struct HeapItem {
    util::TimeNs due = 0;
    MonitorId id = 0;
    std::uint64_t generation = 0;
    bool operator>(const HeapItem& other) const { return due > other.due; }
  };

  /// One batch slot: the pinned entry plus the heap item it came from and
  /// the check's outcome (for cadence/reschedule under the relock).
  struct BatchSlot {
    Entry* entry = nullptr;
    HeapItem item;
    core::Detector::CheckStats stats;
    bool occupied = false;  ///< Snapshot showed running/queued processes.
  };

  /// Shared registration body; `detector` may be null (detector-less add).
  MonitorId add_impl(EventSink& source, core::Detector* detector,
                     MonitorOptions options);
  void worker_loop();
  void ensure_workers_locked();
  /// Run one check; `rule_now` is the rule-clock timestamp shared by the
  /// whole batch.  `occupied_out` reports whether the snapshot showed any
  /// running or queued process (cadence controller input).
  core::Detector::CheckStats run_check(Entry& entry, util::TimeNs rule_now,
                                       bool* occupied_out);
  /// Cadence controller: update the entry's EWMA/stretch from one check's
  /// outcome.  mu_ held.
  void update_cadence_locked(Entry& entry,
                             const core::Detector::CheckStats& stats,
                             bool occupied);
  /// Next deadline after a check scheduled at `due` finished at `finished`,
  /// applying the backlog policy.  mu_ held.
  util::TimeNs next_due_locked(Entry& entry, util::TimeNs due,
                               util::TimeNs finished);
  /// Handle a due pool-level checkpoint heap item (`id` names which of the
  /// two).  Lock held on entry and exit; released around the pass itself.
  void run_checkpoint_item_locked(std::unique_lock<sync::BackendMutex>& lock,
                                  MonitorId id);

  bool waitfor_enabled() const {
    return waitfor_period_ > 0 && waitfor_sink_ != nullptr;
  }
  bool lockorder_enabled() const {
    return lockorder_period_ > 0 && lockorder_sink_ != nullptr;
  }
  /// Fold `state` into the wait-for graph as `entry`'s current edge set.
  void contribute_wait_edges(const Entry& entry,
                             const trace::SchedulingState& state);
  /// Fold `state` into the acquisition-order relation.
  void contribute_lock_order(const Entry& entry,
                             const trace::SchedulingState& state);
  /// Live validation: re-snapshot the cycle's monitors and require every
  /// link to still hold (same blocking episode, same hold episode).
  bool validate_cycle(const core::DeadlockCycle& cycle);

  bool recovery_enabled() const { return recovery_.policy != nullptr; }
  /// Pin `id`'s entry (remove() waits on the busy count) for an actuation;
  /// nullptr when the monitor already unregistered.  Callers must
  /// unpin_entry() the result.
  Entry* pin_entry(MonitorId id);
  void unpin_entry(Entry* entry);
  /// Drain the monitor's segment and re-baseline its detector under the
  /// checker gate — recovery transitions are out-of-band and must not
  /// surface as ST-Rule violations.
  void rebaseline_entry(Entry& entry);
  /// Actuate the policy's decision for a newly reported confirmed cycle.
  void act_on_confirmed_cycle(const core::DeadlockCycle& cycle);
  /// Actuate the pre-emptive decision for a newly warned order cycle;
  /// `edges` is the relation snapshot the decision scores witnesses from.
  void act_on_order_cycle(const core::OrderCycle& cycle,
                          const std::vector<core::OrderEdge>& edges);
  /// Clear sticky poisons whose cycle is no longer confirmed.
  void complete_recoveries(
      const std::unordered_set<std::string>& confirmed_keys);
  void log_recovery(trace::RecoveryRecord record);

  /// Fold one measured spend sample (a dispatch batch, a checkpoint pass,
  /// or an inline check) into the budget controller and apply any resulting
  /// transition's side effects.  Must not be called with mu_ held.
  void record_budget(util::TimeNs check_ns, util::TimeNs now);
  void apply_budget_transition(const trace::BudgetRecord& transition);
  /// Flip every scheduled kInline monitor onto (or back off) the worker
  /// heap — the budget controller's offload lever.
  void set_inline_offloaded(bool offload);

  const util::Clock* clock_;
  std::size_t configured_threads_;
  util::TimeNs batch_window_ = -1;
  std::size_t max_batch_ = 0;
  BacklogPolicy backlog_policy_ = BacklogPolicy::kCoalesce;
  std::size_t max_backlog_ = 4;
  util::TimeNs waitfor_period_ = 0;
  core::ReportSink* waitfor_sink_ = nullptr;
  util::TimeNs lockorder_period_ = 0;
  core::ReportSink* lockorder_sink_ = nullptr;
  Options::Recovery recovery_;
  /// Pool-wide overhead governor (Options::budget; no-op when disabled).
  BudgetController budget_;

  mutable sync::BackendMutex mu_;
  sync::BackendCondVar work_cv_;   ///< Heap / stop changes.
  sync::BackendCondVar idle_cv_;   ///< Entry busy-count drops.
  std::unordered_map<MonitorId, std::unique_ptr<Entry>> entries_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<sync::BackendThread> workers_;
  MonitorId next_id_ = kFirstMonitorId;  ///< 0/1 are reserved checkpoints.
  bool stop_ = false;
  bool checkpoint_scheduled_ = false;  ///< WF checkpoint item on the heap.
  bool lockorder_scheduled_ = false;   ///< LO checkpoint item on the heap.

  /// Wait-for state.  Lock order: checkpoint_pass_mu_ before mu_ before
  /// graph_mu_, never the reverse.
  /// Serializes whole checkpoint passes: a periodic worker pass racing a
  /// synchronous run_waitfor_checkpoint() could otherwise erase the other
  /// pass's reported_cycles_ entry and double-report a persisting cycle.
  sync::BackendMutex checkpoint_pass_mu_;
  mutable sync::BackendMutex graph_mu_;
  core::WaitForGraph graph_;
  /// Bumped per checkpoint pass and stamped into contributions — the
  /// version telemetry behind waitfor_epoch()/WaitContribution::epoch.
  /// Exactness comes from live validation, not epoch gating: filtering
  /// candidates by epoch would lose monitors whose check cadence is slower
  /// than the checkpoint cadence.
  std::uint64_t graph_epoch_ = 0;
  /// Cycles confirmed at the previous pass, keyed by canonical cycle key
  /// and remembering the participating monitors (suppresses duplicate
  /// reports while a deadlock persists; cleared when the cycle dissolves,
  /// and re-armed by remove() of any participant — same shape as the
  /// order-side set below, per the lifecycle contract).
  std::unordered_map<std::string, std::vector<MonitorId>> reported_cycles_;

  /// Lock-order prediction state.  Lock order: mu_ before lockorder_mu_,
  /// never the reverse (remove() erases a monitor's edges under mu_).
  mutable sync::BackendMutex lockorder_mu_;
  core::LockOrderGraph order_graph_;
  std::uint64_t lockorder_epoch_ = 0;
  /// Order cycles already warned about, keyed by canonical cycle key and
  /// remembering the participating monitors: the order relation never
  /// dissolves on its own, so a warning fires once — until a participant
  /// unregisters, which erases its edges and re-arms cycles through it.
  std::unordered_map<std::string, std::vector<core::OrderMonitorId>>
      reported_order_cycles_;

  /// Recovery state.  recovery_mu_ only guards the log and the active
  /// poison set; actuations never run under mu_/graph_mu_/lockorder_mu_.
  /// Wait-for actuations are additionally serialized by
  /// checkpoint_pass_mu_; order-side actuations are not — they rely on
  /// the Gate's and the counters' own synchronization, so any new shared
  /// state touched from act_on_order_cycle needs its own guard.
  mutable sync::BackendMutex recovery_mu_;
  std::vector<trace::RecoveryRecord> recovery_log_;
  /// Sticky poisons by cycle key: cleared (and the monitor unpoisoned) by
  /// the first wait-for pass that no longer confirms the cycle.
  std::unordered_map<std::string, MonitorId> active_poisons_;

  std::atomic<std::uint64_t> checks_executed_{0};
  std::atomic<std::uint64_t> dispatches_{0};
  std::atomic<std::uint64_t> batched_checks_{0};
  std::atomic<std::uint64_t> checks_coalesced_{0};
  std::atomic<std::uint64_t> total_quiesce_ns_{0};
  std::atomic<std::uint64_t> total_check_ns_{0};
  std::atomic<std::uint64_t> waitfor_checkpoints_{0};
  std::atomic<std::uint64_t> deadlocks_reported_{0};
  std::atomic<std::uint64_t> lockorder_checkpoints_{0};
  std::atomic<std::uint64_t> potential_deadlocks_reported_{0};
  std::atomic<std::uint64_t> recovery_actions_{0};
  std::atomic<std::uint64_t> victims_poisoned_{0};
  std::atomic<std::uint64_t> recovery_faults_delivered_{0};
  std::atomic<std::uint64_t> orders_imposed_{0};
  std::atomic<std::uint64_t> monitors_unpoisoned_{0};
  std::atomic<std::uint64_t> prediction_sheds_{0};
  std::atomic<std::uint64_t> inline_checks_{0};
  std::atomic<std::uint64_t> inline_flips_{0};
  /// Budget pressure has kInline monitors on the worker heap (see the
  /// instrumentation paragraph in the file comment).
  std::atomic<bool> inline_offloaded_{false};
};

}  // namespace robmon::rt
