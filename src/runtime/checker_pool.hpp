// CheckerPool — the sharded, deadline-scheduled detection engine.
//
// The paper's fault-detection routine (Fig. 1) is specified per monitor, and
// the first runtime mirrored that: one PeriodicChecker thread per
// RobustMonitor.  A process with M monitors then pays M mostly-idle threads.
// The pool inverts the structure: K worker threads (K bounded by hardware
// concurrency, configurable) share a min-heap of registered monitors ordered
// by next check deadline (spec.check_period cadence).  When a monitor comes
// due, one worker quiesces it through *its own* checker gate, drains its
// event segment, snapshots its scheduling state and runs its Detector — no
// global stop-the-world across monitors, and the suspend-vs-concurrent
// choice (hold_gate_during_check) is a per-monitor policy, not a property of
// the engine.
//
// Lifecycle: add() registers a monitor (idle); schedule() begins periodic
// checking; unschedule() stops it and blocks until any in-flight check of
// that monitor completes; remove() unregisters.  check_now() runs one
// synchronous check from the caller's thread and needs no workers, so a
// never-scheduled pool is free.  Worker threads spawn lazily on the first
// schedule() and are joined by the destructor.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/detector.hpp"
#include "runtime/hoare_monitor.hpp"

namespace robmon::rt {

class CheckerPool {
 public:
  struct Options {
    /// Worker threads K; 0 means "hardware concurrency".  Always clamped to
    /// [1, hardware concurrency].
    std::size_t threads = 0;
    /// Supplies the timestamps the detection rules evaluate against (Tmax,
    /// Tio, Tlimit).  The check *cadence* is always wall-clock, like the
    /// original PeriodicChecker loop, so a frozen ManualClock cannot stall
    /// periodic checking.
    const util::Clock* clock = &util::SteadyClock::instance();
  };

  /// Per-monitor policy — the knobs PeriodicChecker::Options exposed.
  struct MonitorOptions {
    /// Keep monitor traffic suspended while the algorithms run (paper
    /// behaviour).  false = release the gate right after the snapshot.
    bool hold_gate_during_check = true;
    /// Invoked with every checkpoint state (replayable-trace support).
    std::function<void(const trace::SchedulingState&)> on_checkpoint;
  };

  using MonitorId = std::uint64_t;

  CheckerPool() : CheckerPool(Options{}) {}
  explicit CheckerPool(Options options);
  ~CheckerPool();

  CheckerPool(const CheckerPool&) = delete;
  CheckerPool& operator=(const CheckerPool&) = delete;

  /// Register a monitor/detector pair.  The pair must outlive its
  /// registration (until remove() or pool destruction).  The check cadence
  /// is detector.spec().check_period.  Registered monitors start idle.
  MonitorId add(HoareMonitor& monitor, core::Detector& detector);
  MonitorId add(HoareMonitor& monitor, core::Detector& detector,
                MonitorOptions options);

  /// Begin periodic checking of `id` (first check one period from now).
  /// Spawns the worker threads on first use.  No-op if already scheduled.
  void schedule(MonitorId id);

  /// Stop periodic checking of `id`; on return no check of this monitor is
  /// in flight and none will start.  No-op if not scheduled.
  void unschedule(MonitorId id);

  /// Unschedule and unregister `id`.
  void remove(MonitorId id);

  /// One synchronous checking-routine invocation on the caller's thread;
  /// serialized against any worker checking the same monitor.
  core::Detector::CheckStats check_now(MonitorId id);

  // --- Introspection (bench/pool_scaling, tests). ---------------------------

  /// Worker threads currently running (0 until the first schedule()).
  std::size_t thread_count() const;
  /// Worker threads the pool will run once started (the clamped K).
  std::size_t configured_threads() const { return configured_threads_; }
  std::size_t monitor_count() const;
  std::size_t scheduled_count() const;

  /// Checks executed through this pool (periodic + check_now).
  std::uint64_t checks_executed() const {
    return checks_executed_.load(std::memory_order_relaxed);
  }
  /// Cumulative wall time the checker gate was held exclusively (in hold-
  /// gate mode that spans the whole detector run; otherwise just drain +
  /// snapshot), and wall time of the full checking routine, in nanoseconds.
  std::uint64_t total_quiesce_ns() const {
    return total_quiesce_ns_.load(std::memory_order_relaxed);
  }
  std::uint64_t total_check_ns() const {
    return total_check_ns_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    HoareMonitor* monitor = nullptr;
    core::Detector* detector = nullptr;
    MonitorOptions options;
    util::TimeNs period = 0;
    /// Bumped by schedule()/unschedule(); stale heap items are discarded.
    std::uint64_t generation = 0;
    bool scheduled = false;
    /// Checks currently executing against this entry (worker or check_now).
    int busy = 0;
    /// Serializes the actual checking routine per monitor.
    std::mutex check_mu;
  };

  struct HeapItem {
    util::TimeNs due = 0;
    MonitorId id = 0;
    std::uint64_t generation = 0;
    bool operator>(const HeapItem& other) const { return due > other.due; }
  };

  void worker_loop();
  void ensure_workers_locked();
  core::Detector::CheckStats run_check(Entry& entry);

  const util::Clock* clock_;
  std::size_t configured_threads_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< Heap / stop changes.
  std::condition_variable idle_cv_;   ///< Entry busy-count drops.
  std::unordered_map<MonitorId, std::unique_ptr<Entry>> entries_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::vector<std::thread> workers_;
  MonitorId next_id_ = 1;
  bool stop_ = false;

  std::atomic<std::uint64_t> checks_executed_{0};
  std::atomic<std::uint64_t> total_quiesce_ns_{0};
  std::atomic<std::uint64_t> total_check_ns_{0};
};

}  // namespace robmon::rt
