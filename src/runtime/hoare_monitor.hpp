// Real-thread Hoare monitor with combined Signal-Exit, built from the
// sync substrate (spinlock + per-waiter binary semaphores), with explicit
// entry / condition queues, data-gathering instrumentation (Fig. 1),
// fault-injection hooks, and a checker gate implementing the paper's
// "suspend all processes while checking".
//
// Blocking protocol: a process that must block allocates a Waiter on its own
// stack, enqueues it under the internal lock, releases the lock (and the
// checker gate), then parks on the Waiter's semaphore.  The process that
// wakes it transfers monitor ownership *before* releasing the semaphore
// (Hoare hand-off), so there is never a moment when the monitor is free but
// claimed.  poison() releases every parked waiter with kPoisoned so that
// fault-injection tests can unwind cleanly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/monitor_spec.hpp"
#include "inject/injection.hpp"
#include "runtime/event_sink.hpp"
#include "sync/gate.hpp"
#include "sync/semaphore.hpp"
#include "sync/spinlock.hpp"
#include "trace/event.hpp"
#include "trace/event_log.hpp"
#include "trace/snapshot.hpp"
#include "util/clock.hpp"

namespace robmon::rt {

/// Result of a potentially blocking primitive.
enum class Status {
  kOk,             ///< Completed normally.
  kPoisoned,       ///< Monitor poisoned while blocked (teardown).
  kRecoveryFault,  ///< Woken (or rejected) by a recovery action: the
                   ///  monitor is recovery-poisoned, or a designated fault
                   ///  was delivered to this thread to break a deadlock.
                   ///  The caller holds nothing here and should release
                   ///  resources held elsewhere and retry or unwind.
};

/// What the augmented construct adds on top of the bare monitor; kOff gives
/// the paper's "monitor operations without the extension" baseline.
enum class Instrumentation {
  kFull,  ///< Gathering + checker gate (detection-ready).
  kOff,   ///< Bare monitor; no events, no gate.
};

/// Signalling discipline.  The paper's model is Hoare with combined
/// Signal-Exit (ownership hands off to the resumed waiter).  The Mesa
/// variant (signal-and-continue: the signalled waiter merely re-contends
/// via the entry queue) exists as an *ablation*: the FD/ST rules encode the
/// Hoare hand-off, so a perfectly correct Mesa execution is flagged —
/// demonstrating that the detection model is semantics-specific
/// (bench/ablation_semantics).
enum class Semantics {
  kHoareSignalExit,
  kMesaSignalContinue,
};

class HoareMonitor : public EventSink {
 public:
  HoareMonitor(core::MonitorSpec spec, const util::Clock& clock,
               inject::InjectionController& injection =
                   inject::NullInjection::instance(),
               Instrumentation instrumentation = Instrumentation::kFull,
               Semantics semantics = Semantics::kHoareSignalExit);

  HoareMonitor(const HoareMonitor&) = delete;
  HoareMonitor& operator=(const HoareMonitor&) = delete;

  // --- Primitives.  `pid` identifies the calling user process. -------------

  Status enter(trace::Pid pid, const std::string& procedure);
  Status wait(trace::Pid pid, const std::string& cond);
  void signal_exit(trace::Pid pid, const std::string& cond);
  /// Signal-exit that also adjusts the monitor-tracked resource count R#
  /// *atomically with the event recording* (e.g. a completing Send passes
  /// -1: one fewer free slot).  Requires track_resources().
  void signal_exit(trace::Pid pid, const std::string& cond,
                   std::int64_t resource_delta);
  void exit(trace::Pid pid);

  /// Pre-interned fast paths (benchmark hot loop).
  Status enter(trace::Pid pid, trace::SymbolId procedure);
  Status wait(trace::Pid pid, trace::SymbolId cond);
  void signal_exit(trace::Pid pid, trace::SymbolId cond);
  void signal_exit(trace::Pid pid, trace::SymbolId cond,
                   std::int64_t resource_delta);

  /// Enable internal R# accounting (coordinator monitors).  The paper's
  /// scheduling state owns R#; updating it inside the primitive keeps the
  /// recorded events and the snapshots consistent, which an external gauge
  /// sampled at snapshot time cannot guarantee under real threads.
  void track_resources(std::int64_t initial);
  std::int64_t resources() const;

  /// Hold registry: the workload wrapper records that `pid` was granted /
  /// returned one resource unit.  Holds appear in snapshot().holders and
  /// feed the pool-level wait-for graph's monitor→thread edges.  note_hold
  /// must be called while `pid` is still inside the monitor (before the
  /// exit that completes the grant) so a checkpoint can never observe the
  /// thread blocked elsewhere without the hold edge being visible.
  void note_hold(trace::Pid pid);
  void note_release(trace::Pid pid);

  // --- Observation / control. ----------------------------------------------

  trace::SchedulingState snapshot() const override;
  trace::EventLog& log() { return log_; }
  const trace::EventLog& log() const { return log_; }
  trace::SymbolTable& symbols() { return symbols_; }
  const trace::SymbolTable& symbols() const override { return symbols_; }
  const core::MonitorSpec& spec() const override { return spec_; }
  sync::CheckerGate& gate() override { return gate_; }
  /// EventSink ingestion surface: the monitor's single-shard log keeps the
  /// total append order Algorithm-1's segment replay depends on.
  std::vector<trace::EventRecord> drain_segment() override {
    return log_.drain();
  }
  std::uint64_t events_lost() const override { return log_.events_lost(); }
  Instrumentation instrumentation() const { return instrumentation_; }
  Semantics semantics() const { return semantics_; }

  /// R# source for coordinator monitors (e.g. free buffer slots).
  void set_resource_gauge(std::function<std::int64_t()> gauge);

  /// Release every parked waiter with kPoisoned (teardown after injected
  /// faults left threads blocked).
  void poison();
  bool poisoned() const;

  // --- Recovery plumbing (rt::CheckerPool's recovery hook). -----------------
  //
  // Unlike teardown poison, recovery poison is *survivable*: the monitor
  // keeps operating and can be restored.  The detector does not see these
  // transitions as events; the pool re-baselines the monitor's Detector
  // right after acting (Detector::rebaseline), keeping the ST-Rules'
  // zero-false-positive contract intact.

  /// Recovery-poison: every parked waiter wakes with kRecoveryFault, and —
  /// sticky, until unpoison() — every enter()/wait() that WOULD BLOCK
  /// returns kRecoveryFault instead of parking.  Non-blocking traffic
  /// still flows: an enter of a free monitor (e.g. a Release returning a
  /// unit) proceeds normally, so a poisoned monitor drains back toward
  /// service instead of wedging its holders.  Used to break a confirmed
  /// deadlock by evicting the victim monitor's waiters.
  void recovery_poison() override;

  /// Clear the sticky recovery-poison state: normal service resumes for
  /// new arrivals (recovery-complete, e.g. the wait-for cycle dissolved).
  void unpoison() override;
  bool recovery_poisoned() const override;

  /// Deliver a designated RecoveryFault to one parked thread: `pid` is
  /// removed from whichever queue it waits on and wakes with
  /// kRecoveryFault; every other waiter is untouched and the monitor is
  /// not poisoned.  Returns false when `pid` is not parked here.
  bool deliver_recovery_fault(trace::Pid pid) override;

 private:
  struct Waiter {
    trace::Pid pid;
    trace::SymbolId proc;
    util::TimeNs since;
    /// Episode ticket assigned at each park (see next_ticket_).
    std::uint64_t ticket = 0;
    /// Set (under mu_, before the release) when a recovery action wakes
    /// this waiter: the parked thread reports kRecoveryFault instead of
    /// kOk.  Read by its own thread only after the semaphore hand-off.
    bool recovery = false;
    sync::BinarySemaphore sem;
  };

  /// Entry-queue slot.  Value type so that an injected notify-too-many bug
  /// can leave a *zombie* slot behind (waiter resumed, entry leaked) with
  /// no dangling pointer once the resumed thread's stack frame unwinds.
  struct EqEntry {
    trace::Pid pid;
    trace::SymbolId proc;
    util::TimeNs since;
    std::uint64_t ticket = 0;
    Waiter* waiter = nullptr;  ///< Null once resumed (zombie).
    bool zombie = false;
  };

  /// One pid's outstanding resource holds (note_hold registry).
  struct Hold {
    std::int64_t units = 0;
    util::TimeNs since = 0;       ///< Start of the oldest outstanding hold.
    std::uint64_t ticket = 0;     ///< Episode ticket of that oldest hold.
  };

  util::TimeNs now() const { return clock_->now_ns(); }
  trace::SymbolId proc_of(trace::Pid pid) const;  // callers hold mu_
  void record(const trace::EventRecord& event);
  /// Pop the first admittable entry waiter; nullptr when none.  mu_ held.
  Waiter* pop_admittable();
  /// Injected notify-too-many: resume the first admittable entry waiter
  /// but leave its (zombie) slot on the queue.  mu_ held.
  Waiter* resume_ghost_from_entry_queue();
  /// Admit the entry-queue head as owner (+ optional ghost).  mu_ held;
  /// the returned waiters' semaphores must be released after unlocking.
  void admit_from_entry_queue(bool extra, Waiter** admitted, Waiter** ghost);
  void signal_exit_impl(trace::Pid pid, trace::SymbolId cond,
                        std::int64_t resource_delta);

  core::MonitorSpec spec_;
  const util::Clock* clock_;
  inject::InjectionController* injection_;
  Instrumentation instrumentation_;
  Semantics semantics_;

  trace::SymbolTable symbols_;
  /// Single shard: every append happens under mu_, so sharding buys nothing
  /// here, and one shard preserves the total append order that Algorithm-1's
  /// segment replay depends on (see EventLog's ordering contract).
  trace::EventLog log_{/*retain_history=*/false, /*shards=*/1};
  sync::CheckerGate gate_;

  mutable sync::SpinLock mu_;
  std::optional<trace::Pid> owner_;
  trace::SymbolId owner_proc_ = trace::kNoSymbol;
  util::TimeNs owner_since_ = 0;
  std::uint64_t owner_ticket_ = 0;  ///< Episode ticket of this ownership.
  std::deque<EqEntry> entry_queue_;
  std::map<trace::SymbolId, std::deque<Waiter*>> cond_queues_;
  std::map<trace::Pid, trace::SymbolId> inside_proc_;
  std::vector<Waiter*> lost_waiters_;  ///< Parked forever by injection.
  std::map<trace::Pid, Hold> holds_;
  /// Monotonic episode counter: bumped once per blocking episode (a park on
  /// EQ or a CQ), per ownership hand-off, and per first resource hold.  It
  /// makes episode identity clock-independent — snapshots taken under a
  /// frozen ManualClock still distinguish a re-formed wait from a
  /// continuous one (wait-for cycle validation).
  std::uint64_t next_ticket_ = 0;
  std::function<std::int64_t()> resource_gauge_;
  bool track_resources_ = false;
  std::int64_t resources_ = -1;
  bool poisoned_ = false;
  /// Sticky recovery-poison state (recovery_poison()/unpoison()).
  bool recovery_poisoned_ = false;
};

}  // namespace robmon::rt
