// The periodic fault-detection routine of Fig. 1 for a single monitor.
//
// Every check_period the monitor is quiesced through the checker gate (the
// paper's "all other running processes are suspended"), the event segment
// drained, the scheduling state snapshotted, and the Detector run.  With
// hold_gate_during_check=false the gate is released right after the
// snapshot and the algorithms run concurrently with monitor traffic — an
// ablation of the paper's suspension design measured by
// bench/ablation_interval.
//
// Since the CheckerPool refactor this class is a thin compatibility wrapper
// over a private single-monitor pool: start()/stop() schedule/unschedule the
// monitor on one worker thread, preserving the original one-thread-per-
// monitor behaviour for existing call sites.  New multi-monitor code should
// share one rt::CheckerPool instead (RobustMonitor::Options::checker_pool).
#pragma once

#include <cstdint>
#include <functional>

#include "core/detector.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/hoare_monitor.hpp"

namespace robmon::rt {

class PeriodicChecker {
 public:
  struct Options {
    /// Keep monitor traffic suspended while the algorithms run (paper
    /// behaviour).  false = release after snapshot.
    bool hold_gate_during_check = true;
    /// Adaptive cadence ceiling (CheckerPool::MonitorOptions::max_stretch):
    /// idle checks stretch the effective period up to check_period × this.
    /// 1.0 = fixed cadence.
    double max_stretch = 1.0;
    /// Invoked with every checkpoint state (used to build replayable
    /// traces; see RobustMonitor::export_trace).
    std::function<void(const trace::SchedulingState&)> on_checkpoint;
  };

  PeriodicChecker(HoareMonitor& monitor, core::Detector& detector,
                  const util::Clock& clock);
  PeriodicChecker(HoareMonitor& monitor, core::Detector& detector,
                  const util::Clock& clock, Options options);
  ~PeriodicChecker();

  PeriodicChecker(const PeriodicChecker&) = delete;
  PeriodicChecker& operator=(const PeriodicChecker&) = delete;

  /// Start periodic checking (no-op if already running).  The detector
  /// must already be initialize()d.
  void start();

  /// Stop periodic checking; on return no check is in flight (no-op if not
  /// running).
  void stop();

  /// Run one checking-routine invocation synchronously on the caller's
  /// thread (usable without start(); also used for final checks in tests).
  core::Detector::CheckStats check_now();

  std::uint64_t checks_run() const;

  /// The underlying single-monitor pool (introspection / bench counters).
  const CheckerPool& pool() const { return pool_; }

 private:
  core::Detector* detector_;
  CheckerPool pool_;
  CheckerPool::MonitorId id_;
};

}  // namespace robmon::rt
