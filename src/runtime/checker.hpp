// The periodic fault-detection routine of Fig. 1 as a background thread.
//
// Every check_period it quiesces the monitor through the checker gate (the
// paper's "all other running processes are suspended"), drains the event
// segment, snapshots the scheduling state, and runs the Detector.  With
// hold_gate_during_check=false the gate is released right after the
// snapshot and the algorithms run concurrently with monitor traffic — an
// ablation of the paper's suspension design measured by
// bench/ablation_interval.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "core/detector.hpp"
#include "runtime/hoare_monitor.hpp"

namespace robmon::rt {

class PeriodicChecker {
 public:
  struct Options {
    /// Keep monitor traffic suspended while the algorithms run (paper
    /// behaviour).  false = release after snapshot.
    bool hold_gate_during_check = true;
    /// Invoked with every checkpoint state (used to build replayable
    /// traces; see RobustMonitor::export_trace).
    std::function<void(const trace::SchedulingState&)> on_checkpoint;
  };

  PeriodicChecker(HoareMonitor& monitor, core::Detector& detector,
                  const util::Clock& clock);
  PeriodicChecker(HoareMonitor& monitor, core::Detector& detector,
                  const util::Clock& clock, Options options);
  ~PeriodicChecker();

  PeriodicChecker(const PeriodicChecker&) = delete;
  PeriodicChecker& operator=(const PeriodicChecker&) = delete;

  /// Start the background thread (no-op if already running).  The detector
  /// must already be initialize()d.
  void start();

  /// Stop and join the background thread (no-op if not running).
  void stop();

  /// Run one checking-routine invocation synchronously on the caller's
  /// thread (usable without start(); also used for final checks in tests).
  core::Detector::CheckStats check_now();

  std::uint64_t checks_run() const;

 private:
  void loop();

  HoareMonitor* monitor_;
  core::Detector* detector_;
  const util::Clock* clock_;
  Options options_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;
  /// Serializes check_now() against the background loop.
  std::mutex check_mu_;
};

}  // namespace robmon::rt
