// RobustMonitor — the augmented monitor construct (Section 4): the public
// API of the library.  Bundles
//   * the monitor itself (HoareMonitor: Enter / Wait / Signal-Exit),
//   * the data-gathering routines (event log + state snapshots),
//   * the fault-detection routine (Detector + PeriodicChecker thread),
//   * the real-time calling-order phase (compiled path expression,
//     advanced at every Enter of a constrained procedure),
// and reports every detected concurrency-control fault to the caller's
// ReportSink.
//
// Typical use:
//   core::CollectingSink sink;
//   rt::RobustMonitor monitor(core::MonitorSpec::coordinator("buf", 8), sink);
//   monitor.start_checking();
//   ... threads call monitor.enter(pid, "Send") / wait / signal_exit ...
//   monitor.stop_checking();
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/detector.hpp"
#include "core/fault.hpp"
#include "core/monitor_spec.hpp"
#include "pathexpr/matcher.hpp"
#include "runtime/checker.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/hoare_monitor.hpp"
#include "trace/codec.hpp"

namespace robmon::rt {

class RobustMonitor {
 public:
  struct Options {
    /// Backend clock: real steady_clock normally, the SimScheduler's
    /// virtual clock under ROBMON_SYNC_BACKEND_SIM.
    const util::Clock* clock = sync::backend_clock();
    inject::InjectionController* injection =
        &inject::NullInjection::instance();
    Instrumentation instrumentation = Instrumentation::kFull;
    /// Signalling discipline; Mesa exists for bench/ablation_semantics.
    Semantics semantics = Semantics::kHoareSignalExit;
    /// Keep monitor traffic suspended for the whole check (paper mode).
    bool hold_gate_during_check = true;
    /// Adaptive check cadence: while this monitor is idle its effective
    /// check period stretches up to check_period × cadence_max_stretch
    /// (see CheckerPool::MonitorOptions::max_stretch).  1.0 = fixed.
    double cadence_max_stretch = 1.0;
    /// Retain the full event history and checkpoint states so that
    /// export_trace() can produce a replayable trace.
    bool retain_trace = false;
    /// Shared detection engine.  When set, this monitor registers with the
    /// pool (deadline-scheduled across K worker threads) instead of
    /// spawning a private PeriodicChecker thread; the pool must outlive the
    /// monitor.  hold_gate_during_check stays a per-monitor policy either
    /// way.
    CheckerPool* checker_pool = nullptr;
    /// Contribute this monitor's snapshots to the pool's cross-monitor
    /// wait-for graph (only meaningful when the pool has its wait-for
    /// checkpoint enabled).
    bool contribute_wait_edges = true;
    /// Contribute this monitor's snapshots to the pool's lock-order
    /// prediction relation (only meaningful when the pool has its
    /// prediction checkpoint enabled).
    bool contribute_lock_order = true;
    /// Where the checking routine runs when checker_pool is set.
    /// kOffloaded (default): the pool's worker threads, asynchronously.
    /// kInline: synchronously on the calling thread — exit() and
    /// signal_exit() poll the pool once the monitor's effective period has
    /// elapsed (the detectEr-style synchronous instrumentation choice; the
    /// steady per-operation cost is one clock read and one atomic compare).
    /// The pool's budget controller may temporarily offload an inline
    /// monitor under pressure; polling resumes when it recovers.  Ignored
    /// without a checker_pool (the private PeriodicChecker is always
    /// offloaded).
    CheckerPool::CheckInstrumentation check_instrumentation =
        CheckerPool::CheckInstrumentation::kOffloaded;
  };

  RobustMonitor(core::MonitorSpec spec, core::ReportSink& sink);
  RobustMonitor(core::MonitorSpec spec, core::ReportSink& sink,
                Options options);
  ~RobustMonitor();

  RobustMonitor(const RobustMonitor&) = delete;
  RobustMonitor& operator=(const RobustMonitor&) = delete;

  // --- Monitor primitives. --------------------------------------------------

  Status enter(trace::Pid pid, const std::string& procedure);
  Status wait(trace::Pid pid, const std::string& cond);
  void signal_exit(trace::Pid pid, const std::string& cond);
  /// Signal-exit adjusting the monitor-tracked R# atomically with the event
  /// (see HoareMonitor::track_resources).
  void signal_exit(trace::Pid pid, const std::string& cond,
                   std::int64_t resource_delta);
  void exit(trace::Pid pid);

  /// Enable monitor-owned R# accounting (coordinator monitors).
  void track_resources(std::int64_t initial) {
    monitor_.track_resources(initial);
  }

  /// Hold registry passthrough: record that `pid` was granted / returned a
  /// resource unit (wait-for graph monitor→thread edges).
  void note_hold(trace::Pid pid) { monitor_.note_hold(pid); }
  void note_release(trace::Pid pid) { monitor_.note_release(pid); }

  // --- Detection control. ---------------------------------------------------

  /// Start the periodic checking thread (spec.check_period cadence).
  void start_checking();
  void stop_checking();
  /// One synchronous checking-routine invocation.
  core::Detector::CheckStats check_now();

  // --- Observation / management. --------------------------------------------

  const core::MonitorSpec& spec() const { return monitor_.spec(); }
  trace::SchedulingState snapshot() const { return monitor_.snapshot(); }
  void set_resource_gauge(std::function<std::int64_t()> gauge) {
    monitor_.set_resource_gauge(std::move(gauge));
  }
  /// Release all blocked processes with kPoisoned (teardown).
  void poison() { monitor_.poison(); }

  /// Recovery passthroughs (survivable poison + restore; usually driven by
  /// the pool's recovery hook, exposed for direct policies and tests).
  void recovery_poison() { monitor_.recovery_poison(); }
  void unpoison() { monitor_.unpoison(); }
  bool recovery_poisoned() const { return monitor_.recovery_poisoned(); }
  bool deliver_recovery_fault(trace::Pid pid) {
    return monitor_.deliver_recovery_fault(pid);
  }

  HoareMonitor& monitor() { return monitor_; }
  core::Detector& detector() { return detector_; }
  trace::SymbolTable& symbols() { return monitor_.symbols(); }

  /// Replayable trace of everything recorded so far (requires
  /// Options::retain_trace).
  trace::TraceFile export_trace() const;

 private:
  /// Inline instrumentation: run the checking routine on this (calling)
  /// thread if the effective check period has elapsed.  Called at the two
  /// points where the caller has just left the monitor (exit, signal_exit)
  /// — never from inside it, where the caller's own presence would deadlock
  /// the checker-gate quiesce.
  void poll_inline_check();

  void advance_order_matcher(trace::Pid pid, const std::string& procedure);
  /// Restart `pid`'s calling-order matcher after a recovery fault aborted
  /// its in-flight procedure (the caller retries the protocol from
  /// scratch, so the declared order restarts with it).
  void reset_order_matcher(trace::Pid pid);

  core::ReportSink* sink_;
  Options options_;
  HoareMonitor monitor_;
  core::Detector detector_;
  /// Shared-pool registration (Options::checker_pool) ...
  CheckerPool* pool_ = nullptr;
  CheckerPool::MonitorId pool_id_ = 0;
  /// ... or the private single-thread compat checker.
  std::unique_ptr<PeriodicChecker> checker_;

  /// Inline-instrumentation poll state (pool path with kInline only).
  bool inline_mode_ = false;
  std::atomic<bool> inline_active_{false};       ///< start/stop_checking.
  std::atomic<util::TimeNs> next_inline_check_{0};

  /// Real-time phase state (allocator monitors / any declared order).
  std::optional<pathexpr::CallOrderSpec> order_spec_;
  std::mutex matchers_mu_;
  std::map<trace::Pid, pathexpr::Matcher> matchers_;

  mutable std::mutex checkpoints_mu_;
  std::vector<trace::SchedulingState> checkpoints_;
};

}  // namespace robmon::rt
