#include "runtime/budget.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace robmon::rt {

namespace {

/// What each transition sheds (upward) or restores (downward) — the
/// free-text tail of the codec v6 `bdgt` line.
std::string transition_detail(int from, int to) {
  if (to > from) {
    switch (static_cast<BudgetLevel>(to)) {
      case BudgetLevel::kStretch:
        return "stretch: idle-cadence ceiling boosted, inline monitors "
               "offloaded";
      case BudgetLevel::kShedPrediction:
        return "shed: lock-order prediction suspended";
      case BudgetLevel::kWiden:
        return "widen: detection periods widened toward the timer bound";
      case BudgetLevel::kNominal:
        break;
    }
    return "degrade";
  }
  switch (static_cast<BudgetLevel>(to)) {
    case BudgetLevel::kShedPrediction:
      return "recover: detection periods restored to base cadence";
    case BudgetLevel::kStretch:
      return "recover: lock-order prediction resumed";
    case BudgetLevel::kNominal:
      return "recover: nominal, full detection and prediction restored";
    case BudgetLevel::kWiden:
      break;
  }
  return "recover";
}

std::uint64_t to_ppm(double fraction) {
  if (fraction <= 0.0) return 0;
  return static_cast<std::uint64_t>(std::llround(fraction * 1e6));
}

}  // namespace

BudgetController::BudgetController(BudgetOptions options)
    : options_(options) {
  if (!enabled()) return;  // disabled controllers carry no constraints
  if (options_.fraction > 1.0) {
    throw std::invalid_argument(
        "BudgetController: fraction must be in (0, 1]");
  }
  if (options_.ewma_alpha <= 0.0 || options_.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "BudgetController: ewma_alpha must be in (0, 1]");
  }
  if (options_.recover_margin <= 0.0 || options_.recover_margin >= 1.0) {
    throw std::invalid_argument(
        "BudgetController: recover_margin must be in (0, 1)");
  }
  if (options_.decision_window < 0) {
    throw std::invalid_argument(
        "BudgetController: decision_window must be >= 0");
  }
  if (options_.stretch_boost < 1.0 || options_.widen_factor < 1.0) {
    throw std::invalid_argument(
        "BudgetController: stretch_boost and widen_factor must be >= 1");
  }
}

std::optional<trace::BudgetRecord> BudgetController::record_batch(
    util::TimeNs check_ns, util::TimeNs now) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (window_start_ < 0) {
    // First batch: it opens the window but has no wall-time denominator of
    // its own, so it only seeds the accumulator.
    window_start_ = now;
    window_spend_ = check_ns > 0 ? check_ns : 0;
    return std::nullopt;
  }
  if (check_ns > 0) window_spend_ += check_ns;
  const util::TimeNs elapsed = now - window_start_;
  if (elapsed < options_.decision_window) return std::nullopt;
  // Window closed: fold its spend ratio into the EWMA and re-open.  A
  // non-advancing wall clock (decision_window = 0 under a driven test)
  // still yields a finite ratio: the spend is charged against at least one
  // nanosecond.
  const double ratio = static_cast<double>(window_spend_) /
                       static_cast<double>(std::max<util::TimeNs>(1, elapsed));
  ewma_ = ewma_seeded_
              ? options_.ewma_alpha * ratio +
                    (1.0 - options_.ewma_alpha) * ewma_
              : ratio;
  ewma_seeded_ = true;
  window_start_ = now;
  window_spend_ = 0;

  const int current = level_.load(std::memory_order_relaxed);
  int next = current;
  if (ewma_ > options_.fraction &&
      current < static_cast<int>(BudgetLevel::kWiden)) {
    // One step per window: the ladder order (stretch, then shed prediction,
    // then widen) is how "prediction before detection" is enforced — the
    // controller cannot reach kWiden without having passed kShedPrediction.
    next = current + 1;
  } else if (ewma_ < options_.fraction * options_.recover_margin &&
             current > static_cast<int>(BudgetLevel::kNominal)) {
    next = current - 1;
  }
  if (next == current) return std::nullopt;

  level_.store(next, std::memory_order_relaxed);
  transitions_.fetch_add(1, std::memory_order_relaxed);
  trace::BudgetRecord record;
  record.from = current;
  record.to = next;
  record.spend_ppm = to_ppm(ewma_);
  record.budget_ppm = to_ppm(options_.fraction);
  record.at = now;
  record.detail = transition_detail(current, next);
  log_.push_back(record);
  return record;
}

double BudgetController::spend_ewma() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_;
}

std::vector<trace::BudgetRecord> BudgetController::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

}  // namespace robmon::rt
