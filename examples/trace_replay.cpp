// Record a monitor execution to a trace file, then replay the detection
// algorithms over it offline — the history-information database of Fig. 1
// made durable.
//
//   ./trace_replay --mode=record --file=/tmp/run.trace
//   ./trace_replay --mode=replay --file=/tmp/run.trace
//
// Record mode runs a producer/consumer workload with full trace retention
// (optionally with an injected fault) and writes the trace file; replay mode
// re-runs Algorithms 1-3 over every recorded checkpoint and — when the
// document carries them — re-derives lock-order prediction warnings from the
// persisted order relation, re-states recovery actions, and re-states the
// overhead-budget controller's shed/recover transitions.
#include <cstdio>
#include <fstream>
#include <thread>

#include "robmon.hpp"

using namespace robmon;

namespace {

int record(const std::string& path, bool inject_fault) {
  core::CollectingSink sink;
  core::MonitorSpec spec = core::MonitorSpec::coordinator("recorded", 4);
  spec.check_period = 20 * util::kMillisecond;

  inject::ScriptedInjection injection(
      {core::FaultKind::kSendExceedsCapacity, trace::kNoPid, 1, false});
  rt::RobustMonitor::Options options;
  options.retain_trace = true;
  if (inject_fault) options.injection = &injection;

  rt::RobustMonitor monitor(spec, sink, options);
  wl::BoundedBuffer buffer(monitor, 4,
                           inject_fault
                               ? static_cast<inject::InjectionController&>(
                                     injection)
                               : inject::NullInjection::instance());
  monitor.start_checking();
  std::thread producer([&] {
    for (std::int64_t i = 0; i < 300; ++i) buffer.send(1, i);
  });
  std::thread consumer([&] {
    std::int64_t item = 0;
    for (std::int64_t i = 0; i < 300; ++i) buffer.receive(2, &item);
  });
  producer.join();
  consumer.join();
  monitor.stop_checking();
  monitor.check_now();

  const trace::TraceFile file = monitor.export_trace();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  trace::write_trace(out, file);
  std::printf("recorded %zu events, %zu checkpoints -> %s\n",
              file.events.size(), file.checkpoints.size(), path.c_str());
  std::printf("live fault reports during recording: %zu\n", sink.count());
  return 0;
}

int replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  const trace::TraceFile file = trace::read_trace(in);
  std::printf("monitor '%s' (%s, Rmax=%lld): %zu events, %zu checkpoints\n",
              file.monitor_name.c_str(), file.monitor_type.c_str(),
              static_cast<long long>(file.rmax), file.events.size(),
              file.checkpoints.size());

  trace::SymbolTable symbols;
  for (const auto& name : file.symbols) symbols.intern(name);

  // Pool-scoped documents (e.g. example_gate_crossing --trace) may carry
  // only the order relation; Algorithms 1-3 need a recorded history.
  if (!file.events.empty() || !file.checkpoints.empty()) {
    const core::ReplayResult result = core::replay_trace(file);
    std::printf("replayed %zu checking points over %zu events (%zu after "
                "the final checkpoint, unchecked)\n",
                result.checkpoints_processed, result.events_processed,
                result.events_unchecked);
    std::printf("fault reports: %zu\n", result.reports.size());
    for (const auto& report : result.reports) {
      std::printf("  %s\n", core::describe(report, symbols).c_str());
    }
  }

  // v4 documents may carry the pool's recovery-action log: re-state what
  // the policy did and why (the `detail` field is the rationale — victim
  // scoring or imposed order plus the triggering cycle).
  if (!file.recovery.empty()) {
    std::printf("recovery actions: %zu\n", file.recovery.size());
    for (const auto& record : file.recovery) {
      const char* verb = "?";
      switch (record.action) {
        case 'P':
          verb = "poisoned victim monitor";
          break;
        case 'F':
          verb = "delivered recovery fault";
          break;
        case 'O':
          verb = "imposed acquisition order";
          break;
        case 'C':
          verb = "recovery complete (unpoisoned)";
          break;
      }
      std::printf("  [%c] %s %s (victim p%d, t#%llu): %s\n", record.action,
                  verb, record.monitor.empty() ? "-" : record.monitor.c_str(),
                  record.victim,
                  static_cast<unsigned long long>(record.ticket),
                  record.detail.c_str());
    }
  }

  // v6 documents may carry the overhead-budget controller's transition log:
  // re-state the shed ladder so a reader can see what detection coverage was
  // active at any point in the recording (the `detail` field says what each
  // step shed or restored).
  if (!file.budget.empty()) {
    std::printf("budget transitions: %zu\n", file.budget.size());
    for (const auto& record : file.budget) {
      std::printf("  [%d -> %d] at %lld, spend %.3f%% of a %.3f%% budget: %s\n",
                  record.from, record.to,
                  static_cast<long long>(record.at),
                  static_cast<double>(record.spend_ppm) / 10000.0,
                  static_cast<double>(record.budget_ppm) / 10000.0,
                  record.detail.c_str());
    }
  }

  // v3 documents may carry the pool's acquisition-order relation; re-derive
  // the lock-order prediction warnings from the persisted witnesses.
  if (!file.lock_order.empty()) {
    core::LockOrderGraph graph;
    graph.restore(core::order_edges_from_records(file.lock_order));
    const auto cycles = graph.find_cycles();
    std::printf("lock-order relation: %zu witnesses, %zu edges, "
                "%zu predicted deadlock(s)\n",
                file.lock_order.size(), graph.edge_count(), cycles.size());
    for (const auto& cycle : cycles) {
      const core::FaultReport report = core::make_order_report(cycle, 0);
      std::printf("  %s\n", core::describe(report, symbols).c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("mode", "record", "record | replay");
  flags.define("file", "/tmp/robmon.trace", "trace file path");
  flags.define("inject", "false", "record mode: inject an overfill fault");
  if (!flags.parse(argc, argv)) return 2;

  if (flags.str("mode") == "record") {
    return record(flags.str("file"), flags.boolean("inject"));
  }
  if (flags.str("mode") == "replay") {
    return replay(flags.str("file"));
  }
  std::fprintf(stderr, "unknown --mode\n");
  return 2;
}
