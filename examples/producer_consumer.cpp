// Producer/consumer throughput demo over the augmented monitor construct.
//
// Runs a closed-loop bounded-buffer workload on any of the three monitor
// types and reports throughput, recorded events, checking-routine activity
// and fault reports.  Toggle --instrumented=false for the bare monitor (the
// paper's "without the extension" baseline) to see the overhead the robust
// construct adds.
//
//   ./producer_consumer --type=coordinator --workers=4 --ops=5000
//   ./producer_consumer --instrumented=false
#include <cstdio>

#include "robmon.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("type", "coordinator",
               "monitor type: coordinator | allocator | manager");
  flags.define("workers", "4", "worker threads");
  flags.define("ops", "5000", "operations per worker");
  flags.define("capacity", "8", "buffer slots / allocator units");
  flags.define("interval-ms", "100", "checking interval T (milliseconds)");
  flags.define("instrumented", "true",
               "false = bare monitor, no gathering or checking");
  flags.define("hold-gate", "true",
               "suspend monitor traffic for the whole check (paper mode)");
  if (!flags.parse(argc, argv)) return 2;

  wl::LoadOptions options;
  options.type = core::monitor_type_from_string(flags.str("type"));
  options.workers = static_cast<int>(flags.i64("workers"));
  options.ops_per_worker = flags.i64("ops");
  options.capacity = static_cast<std::size_t>(flags.i64("capacity"));
  options.check_period = flags.i64("interval-ms") * util::kMillisecond;
  options.instrumentation = flags.boolean("instrumented")
                                ? rt::Instrumentation::kFull
                                : rt::Instrumentation::kOff;
  options.periodic_checking = flags.boolean("instrumented");
  options.hold_gate_during_check = flags.boolean("hold-gate");

  const wl::LoadResult result = wl::run_load(options);

  std::printf("type:            %s\n",
              std::string(core::to_string(options.type)).c_str());
  std::printf("instrumented:    %s\n",
              flags.boolean("instrumented") ? "yes" : "no (baseline)");
  std::printf("operations:      %llu\n",
              static_cast<unsigned long long>(result.operations));
  std::printf("elapsed:         %.3f s\n", result.seconds);
  std::printf("throughput:      %.0f ops/s\n", result.ops_per_second);
  std::printf("events recorded: %llu\n",
              static_cast<unsigned long long>(result.events_recorded));
  std::printf("checks run:      %llu\n",
              static_cast<unsigned long long>(result.checks_run));
  std::printf("fault reports:   %zu\n", result.faults_reported);
  return result.faults_reported == 0 ? 0 : 1;
}
