// Lock-order prediction demo: monitors acquired in inconsistent orders
// under a gate that prevents the real deadlock.  The run must end with at
// least one kPotentialDeadlock warning naming the exact monitor order-cycle
// and zero kGlobalDeadlock reports; with --consistent=true every thread
// takes the same global order and the run must end with zero warnings.
// The exit status is the contract (CI smoke): a missed warning, a warning
// in the consistent control, or any global-deadlock false positive fails.
//
// With --recovery=true an impose-order RecoveryPolicy rides the prediction
// checkpoint: the rotated run must additionally impose the dominant
// acquisition order (>= 1 recovery action, recorded as codec v4 `rcov`
// lines in --trace exports), and the consistent control must draw ZERO
// recovery actions.
//
//   ./example_gate_crossing
//   ./example_gate_crossing --consistent=true
//   ./example_gate_crossing --recovery=true
//   ./example_gate_crossing --trace=/tmp/gate.trace   # robmon-trace v4
#include <cstdio>
#include <fstream>

#include "robmon.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("lanes", "3", "monitors crossed by every thread");
  flags.define("threads", "3", "gate-crossing threads");
  flags.define("rounds", "4", "crossings per thread");
  flags.define("consistent", "false",
               "all threads use one global order (no warning expected)");
  flags.define("dwell-ms", "4", "full-hold window per crossing");
  flags.define("timeout-ms", "30000", "give up after this long");
  flags.define("recovery", "false",
               "attach the impose-order recovery policy to the pool");
  flags.define("trace", "",
               "export the acquisition-order relation (and any recovery "
               "actions) as a robmon-trace v4 file (replayable with "
               "example_trace_replay)");
  if (!flags.parse(argc, argv)) return 2;

  wl::GateCrossingOptions options;
  options.lanes = static_cast<std::size_t>(flags.i64("lanes"));
  options.threads = static_cast<int>(flags.i64("threads"));
  options.rounds = static_cast<int>(flags.i64("rounds"));
  options.consistent_order = flags.boolean("consistent");
  options.recovery = flags.boolean("recovery");
  options.dwell_ns = flags.i64("dwell-ms") * util::kMillisecond;
  options.run_timeout = flags.i64("timeout-ms") * util::kMillisecond;

  std::printf("gate-crossing: %zu lanes, %d threads, %d rounds, %s order\n",
              options.lanes, options.threads, options.rounds,
              options.consistent_order ? "consistent" : "rotated");
  const wl::GateCrossingResult result = wl::run_gate_crossing(options);

  std::printf("completed: %s\n", result.completed ? "yes" : "NO");
  std::printf("order edges recorded: %zu (prediction checkpoints: %llu)\n",
              result.order_edges,
              static_cast<unsigned long long>(result.lockorder_checkpoints));
  std::printf("potential-deadlock warnings: %zu\n",
              result.potential_deadlocks);
  for (const auto& cycle : result.cycles) {
    std::printf("  %s\n", cycle.c_str());
  }
  std::printf("global-deadlock reports: %zu\n", result.global_deadlocks);
  if (options.recovery) {
    std::printf("recovery actions: %llu (orders imposed: %llu)\n",
                static_cast<unsigned long long>(result.recovery_actions),
                static_cast<unsigned long long>(result.orders_imposed));
    if (!result.imposed_order.empty()) {
      std::printf("imposed order:");
      for (const auto& name : result.imposed_order) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
    }
  }

  const std::string trace_path = flags.str("trace");
  if (!trace_path.empty()) {
    trace::TraceFile file;
    file.monitor_name = "gate-crossing";
    file.monitor_type = "pool";
    file.lock_order = core::to_order_records(result.edges);
    file.recovery = result.recovery_log;
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n",
                   trace_path.c_str());
      return 1;
    }
    trace::write_trace(out, file);
    std::printf("order relation (%zu witnesses, %zu recovery actions) -> "
                "%s\n",
                file.lock_order.size(), file.recovery.size(),
                trace_path.c_str());
  }

  if (!result.completed) {
    std::printf("FAIL: workload did not complete\n");
    return 1;
  }
  if (result.global_deadlocks > 0) {
    std::printf("FAIL: the gate prevents every real cycle; any "
                "global-deadlock report is a false positive\n");
    return 1;
  }
  // The workload is fault-free by construction, so beyond the expected
  // prediction warnings (and their recovery-action records) *no* report of
  // any kind may appear — a spurious per-monitor ST verdict on a clean
  // lane is a false positive too.
  const std::size_t other_reports =
      result.fault_reports - result.potential_deadlocks -
      result.global_deadlocks -
      static_cast<std::size_t>(result.recovery_actions);
  if (other_reports > 0) {
    std::printf("FAIL: %zu unexpected per-monitor report(s) on clean "
                "lanes\n",
                other_reports);
    return 1;
  }
  if (options.consistent_order) {
    if (result.potential_deadlocks > 0) {
      std::printf("FAIL: consistent order must not be warned about\n");
      return 1;
    }
    if (result.recovery_actions > 0) {
      std::printf("FAIL: consistent order must draw zero recovery "
                  "actions\n");
      return 1;
    }
    std::printf("OK: consistent order, no warnings%s\n",
                options.recovery ? ", no recovery actions" : "");
  } else {
    if (result.potential_deadlocks == 0) {
      std::printf("FAIL: the rotated order cycle was not predicted\n");
      return 1;
    }
    if (options.recovery && result.orders_imposed == 0) {
      std::printf("FAIL: prediction fired but no order was imposed\n");
      return 1;
    }
    std::printf("OK: latent deadlock predicted before it ever happened%s\n",
                options.recovery ? "; dominant order imposed" : "");
  }
  return 0;
}
