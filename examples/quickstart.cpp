// Quickstart: the augmented monitor construct in ~60 lines.
//
// Builds a communication-coordinator monitor (a 4-slot bounded buffer),
// starts the periodic fault-detection routine, runs a producer and a
// consumer, and then injects one Level-II fault — a Send that overfills
// instead of waiting — to show a detection report.
//
//   ./quickstart
#include <cstdio>
#include <thread>

#include "robmon.hpp"

using namespace robmon;

int main() {
  // A sink collecting every fault report the detection routines produce.
  core::CollectingSink sink;

  // Declare the monitor (Section 4 of the paper): name, type, Rmax, and
  // the detection-model timing parameters.
  core::MonitorSpec spec = core::MonitorSpec::coordinator("demo-buffer", 4);
  spec.check_period = 50 * util::kMillisecond;  // T: checking interval

  // Inject exactly one "send exceeds capacity" fault (taxonomy II.d).
  inject::ScriptedInjection injection(
      {core::FaultKind::kSendExceedsCapacity, trace::kNoPid, 1, false});
  rt::RobustMonitor::Options options;
  options.injection = &injection;

  rt::RobustMonitor monitor(spec, sink, options);
  wl::BoundedBuffer buffer(monitor, 4, injection);
  monitor.start_checking();

  // A producer that outruns its consumer: the buffer will fill, and the
  // injected fault will make one Send push anyway instead of waiting.
  std::thread producer([&] {
    for (std::int64_t i = 0; i < 200; ++i) buffer.send(/*pid=*/1, i);
  });
  std::thread consumer([&] {
    std::int64_t item = 0;
    for (std::int64_t i = 0; i < 200; ++i) buffer.receive(/*pid=*/2, &item);
  });
  producer.join();
  consumer.join();

  monitor.stop_checking();
  monitor.check_now();  // final checking-routine invocation

  std::printf("operations completed: 400 (200 sends, 200 receives)\n");
  std::printf("events recorded:      %llu\n",
              static_cast<unsigned long long>(
                  monitor.monitor().log().total_appended()));
  std::printf("fault injected:       %s\n",
              injection.fired() ? "yes (II.d send-exceeds-capacity)" : "no");
  std::printf("fault reports:        %zu\n", sink.count());
  for (const auto& report : sink.reports()) {
    std::printf("  %s\n", core::describe(report, monitor.symbols()).c_str());
  }
  return sink.count() > 0 ? 0 : 1;  // we expect the injection to be caught
}
