// Dining philosophers: run-time deadlock detection in action.
//
// Each fork is a one-unit resource-allocator monitor with its own periodic
// checker.  The symmetric grab order deadlocks; the detection model reports
// it through ST-8c (fork held past Tlimit), ST-5 (condition wait past Tmax)
// and ST-6 — no global deadlock detector involved, each monitor reaches the
// verdict from its own history, exactly as the paper's per-monitor model
// prescribes.
//
//   ./dining_philosophers                 # symmetric: deadlocks, detected
//   ./dining_philosophers --symmetric=false  # asymmetric control: clean
#include <cstdio>

#include "util/flags.hpp"
#include "workloads/dining.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("philosophers", "5", "number of philosophers/forks");
  flags.define("rounds", "200", "eat/think rounds per philosopher");
  flags.define("symmetric", "true",
               "true = everyone grabs left first (deadlock-prone)");
  flags.define("timeout-ms", "2000", "wall-clock budget before giving up");
  if (!flags.parse(argc, argv)) return 2;

  wl::DiningOptions options;
  options.philosophers = static_cast<int>(flags.i64("philosophers"));
  options.rounds = static_cast<int>(flags.i64("rounds"));
  options.symmetric_order = flags.boolean("symmetric");
  options.grab_gap_ns = options.symmetric_order ? 2 * util::kMillisecond : 0;
  options.t_limit = 80 * util::kMillisecond;
  options.t_max = 80 * util::kMillisecond;
  options.t_io = 160 * util::kMillisecond;
  options.check_period = 40 * util::kMillisecond;
  options.run_timeout = flags.i64("timeout-ms") * util::kMillisecond;

  std::printf("%d philosophers, %s grab order...\n", options.philosophers,
              options.symmetric_order ? "symmetric" : "asymmetric");
  const wl::DiningResult result = wl::run_dining(options);

  std::printf("completed:         %s\n", result.completed ? "yes" : "no");
  std::printf("deadlock reported: %s\n",
              result.deadlock_reported ? "yes" : "no");
  std::printf("fault reports:     %zu", result.fault_reports);
  std::size_t shown = 0;
  std::printf("\n");
  for (const auto& report : result.reports) {
    if (++shown > 8) {
      std::printf("  ... (%zu more)\n", result.fault_reports - 8);
      break;
    }
    std::printf("  [%s] pid=p%d: %s\n",
                std::string(core::to_string(report.rule)).c_str(), report.pid,
                report.message.c_str());
  }
  const bool expected = options.symmetric_order
                            ? result.deadlock_reported
                            : result.completed && result.fault_reports == 0;
  return expected ? 0 : 1;
}
