// Dining philosophers: run-time deadlock detection in action.
//
// Each fork is a one-unit resource-allocator monitor registered with one
// shared CheckerPool.  The symmetric grab order deadlocks; the pool-level
// wait-for checkpoint assembles the cross-monitor graph and reports a
// structural GlobalDeadlock fault naming the exact thread/monitor cycle —
// something the paper's per-monitor Algorithms 1-3 cannot see (they only
// flag the same run indirectly, through the ST-5/6/8c timeout rules).
// The asymmetric variant is the deadlock-free control and must stay silent.
//
// With --recovery the detection becomes an intervention: a deterministic
// hold-and-wait ring is injected and the pool's RecoveryPolicy must get it
// to COMPLETE — poison (victim monitor poisoned, waiters evicted with
// RecoveryFault, unpoisoned once the cycle dissolves), fault (designated
// RecoveryFault to the victim alone), or order (predicted cycle pre-empted
// by imposing the dominant acquisition order, so it never closes).  The
// exit contract: liveness, exactly one recovery action, zero reports
// against the clean control ring.
//
//   ./dining_philosophers                    # symmetric: cycle detected
//   ./dining_philosophers --symmetric=false  # asymmetric control: clean
//   ./dining_philosophers --recovery=poison  # break the deadlock, complete
#include <cstdio>
#include <string>

#include "robmon.hpp"

using namespace robmon;

namespace {

int run_recovery(const std::string& mode, int philosophers,
                 util::TimeNs timeout) {
  wl::DiningLoadOptions options;
  options.rings = 2;  // ring 0 deadlocks; ring 1 is the clean control
  options.philosophers = philosophers;
  options.deadlock_rings = 1;
  options.rounds = 5;
  options.run_timeout = timeout;
  if (mode == "poison") {
    options.recovery = wl::DiningRecovery::kPoisonVictim;
  } else if (mode == "fault") {
    options.recovery = wl::DiningRecovery::kDeliverFault;
  } else if (mode == "order") {
    options.recovery = wl::DiningRecovery::kImposeOrder;
  } else {
    std::fprintf(stderr, "unknown --recovery mode '%s' "
                         "(off | poison | fault | order)\n",
                 mode.c_str());
    return 2;
  }

  std::printf("%d philosophers, injected deadlock ring + clean control, "
              "recovery=%s...\n",
              philosophers, mode.c_str());
  const wl::DiningLoadResult result = wl::run_dining_load(options);

  std::printf("deadlocked ring completed: %s\n",
              result.recovered_rings_completed ? "yes" : "NO");
  std::printf("clean ring completed:      %s\n",
              result.clean_rings_completed ? "yes" : "NO");
  std::printf("recovery actions:          %llu (poisoned %llu, faults %llu, "
              "orders %llu, unpoisoned %llu)\n",
              static_cast<unsigned long long>(result.recovery_actions),
              static_cast<unsigned long long>(result.victims_poisoned),
              static_cast<unsigned long long>(result.faults_delivered),
              static_cast<unsigned long long>(result.orders_imposed),
              static_cast<unsigned long long>(result.monitors_unpoisoned));
  if (result.recovery_latency_ns > 0) {
    std::printf("recovery latency:          %.2f ms\n",
                static_cast<double>(result.recovery_latency_ns) / 1e6);
  }
  for (const auto& record : result.recovery_log) {
    std::printf("  rcov %c %s\n", record.action, record.detail.c_str());
  }

  const bool ok = result.recovered_rings_completed &&
                  result.clean_rings_completed &&
                  result.recovery_actions == 1 &&
                  result.false_positive_rings == 0 &&
                  result.missed_detections == 0;
  std::printf("%s\n", ok ? "OK: deadlock broken, everything completed"
                         : "FAIL: recovery contract violated");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("philosophers", "5", "number of philosophers/forks");
  flags.define("rounds", "200", "eat/think rounds per philosopher");
  flags.define("symmetric", "true",
               "true = everyone grabs left first (deadlock-prone)");
  flags.define("recovery", "off",
               "off | poison | fault | order — act on the detection instead "
               "of only reporting it (runs the multi-ring workload)");
  flags.define("timeout-ms", "2000", "wall-clock budget before giving up");
  flags.define("timer-ms", "80",
               "Tlimit/Tmax base in ms; raise under sanitizers so slowdown "
               "cannot trip timeout rules in the clean control");
  if (!flags.parse(argc, argv)) return 2;

  if (flags.str("recovery") != "off") {
    return run_recovery(flags.str("recovery"),
                        static_cast<int>(flags.i64("philosophers")),
                        // recovery needs headroom beyond the default 2 s
                        10 * flags.i64("timeout-ms") * util::kMillisecond);
  }

  wl::DiningOptions options;
  options.philosophers = static_cast<int>(flags.i64("philosophers"));
  options.rounds = static_cast<int>(flags.i64("rounds"));
  options.symmetric_order = flags.boolean("symmetric");
  options.grab_gap_ns = options.symmetric_order ? 2 * util::kMillisecond : 0;
  const util::TimeNs timer = flags.i64("timer-ms") * util::kMillisecond;
  options.t_limit = timer;
  options.t_max = timer;
  options.t_io = 2 * timer;
  options.check_period = 20 * util::kMillisecond;
  options.checkpoint_period = 10 * util::kMillisecond;
  options.run_timeout = flags.i64("timeout-ms") * util::kMillisecond;

  std::printf("%d philosophers, %s grab order...\n", options.philosophers,
              options.symmetric_order ? "symmetric" : "asymmetric");
  const wl::DiningResult result = wl::run_dining(options);

  std::printf("completed:          %s\n", result.completed ? "yes" : "no");
  std::printf("global deadlock:    %s\n",
              result.global_deadlock_reported ? "yes (structural)" : "no");
  for (const auto& cycle : result.cycles) {
    std::printf("  %s\n", cycle.c_str());
  }
  std::printf("timeout verdicts:   %s\n",
              result.deadlock_reported ? "yes" : "no");
  std::printf("fault reports:      %zu\n", result.fault_reports);
  std::size_t shown = 0;
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kWfCycleDetected) continue;
    if (++shown > 8) {
      std::printf("  ... (more)\n");
      break;
    }
    std::printf("  [%s] pid=p%d: %s\n",
                std::string(core::to_string(report.rule)).c_str(), report.pid,
                report.message.c_str());
  }

  // Exit status doubles as the CI smoke contract: the symmetric run must
  // detect the cycle structurally; the asymmetric control must complete
  // with zero reports of any kind (no false positives).
  const bool expected = options.symmetric_order
                            ? result.global_deadlock_reported
                            : result.completed && result.fault_reports == 0;
  return expected ? 0 : 1;
}
