// Dining philosophers: run-time deadlock detection in action.
//
// Each fork is a one-unit resource-allocator monitor registered with one
// shared CheckerPool.  The symmetric grab order deadlocks; the pool-level
// wait-for checkpoint assembles the cross-monitor graph and reports a
// structural GlobalDeadlock fault naming the exact thread/monitor cycle —
// something the paper's per-monitor Algorithms 1-3 cannot see (they only
// flag the same run indirectly, through the ST-5/6/8c timeout rules).
// The asymmetric variant is the deadlock-free control and must stay silent.
//
//   ./dining_philosophers                    # symmetric: cycle detected
//   ./dining_philosophers --symmetric=false  # asymmetric control: clean
#include <cstdio>

#include "util/flags.hpp"
#include "workloads/dining.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("philosophers", "5", "number of philosophers/forks");
  flags.define("rounds", "200", "eat/think rounds per philosopher");
  flags.define("symmetric", "true",
               "true = everyone grabs left first (deadlock-prone)");
  flags.define("timeout-ms", "2000", "wall-clock budget before giving up");
  flags.define("timer-ms", "80",
               "Tlimit/Tmax base in ms; raise under sanitizers so slowdown "
               "cannot trip timeout rules in the clean control");
  if (!flags.parse(argc, argv)) return 2;

  wl::DiningOptions options;
  options.philosophers = static_cast<int>(flags.i64("philosophers"));
  options.rounds = static_cast<int>(flags.i64("rounds"));
  options.symmetric_order = flags.boolean("symmetric");
  options.grab_gap_ns = options.symmetric_order ? 2 * util::kMillisecond : 0;
  const util::TimeNs timer = flags.i64("timer-ms") * util::kMillisecond;
  options.t_limit = timer;
  options.t_max = timer;
  options.t_io = 2 * timer;
  options.check_period = 20 * util::kMillisecond;
  options.checkpoint_period = 10 * util::kMillisecond;
  options.run_timeout = flags.i64("timeout-ms") * util::kMillisecond;

  std::printf("%d philosophers, %s grab order...\n", options.philosophers,
              options.symmetric_order ? "symmetric" : "asymmetric");
  const wl::DiningResult result = wl::run_dining(options);

  std::printf("completed:          %s\n", result.completed ? "yes" : "no");
  std::printf("global deadlock:    %s\n",
              result.global_deadlock_reported ? "yes (structural)" : "no");
  for (const auto& cycle : result.cycles) {
    std::printf("  %s\n", cycle.c_str());
  }
  std::printf("timeout verdicts:   %s\n",
              result.deadlock_reported ? "yes" : "no");
  std::printf("fault reports:      %zu\n", result.fault_reports);
  std::size_t shown = 0;
  for (const auto& report : result.reports) {
    if (report.rule == core::RuleId::kWfCycleDetected) continue;
    if (++shown > 8) {
      std::printf("  ... (more)\n");
      break;
    }
    std::printf("  [%s] pid=p%d: %s\n",
                std::string(core::to_string(report.rule)).c_str(), report.pid,
                report.message.c_str());
  }

  // Exit status doubles as the CI smoke contract: the symmetric run must
  // detect the cycle structurally; the asymmetric control must complete
  // with zero reports of any kind (no false positives).
  const bool expected = options.symmetric_order
                            ? result.global_deadlock_reported
                            : result.completed && result.fault_reports == 0;
  return expected ? 0 : 1;
}
