// Vanilla dining philosophers — plain pthreads, ZERO robmon includes.
//
// This binary is the interposition backend's acceptance contract: it knows
// nothing about robmon, links nothing of robmon, and is run unmodified
// under the shim:
//
//   LD_PRELOAD=./librobmon_preload.so ./example_vanilla_dining deadlock
//     → all five philosophers grab their left fork in lockstep (a barrier
//       forces the simultaneous grab), then block on the right fork: a
//       guaranteed 5-cycle.  The process hangs (it really is deadlocked);
//       the shim names the exact thread/fork cycle on stderr, and CI runs
//       it under `timeout`, expecting the kill plus the cycle report.
//
//   LD_PRELOAD=./librobmon_preload.so ./example_vanilla_dining clean
//     → the classic asymmetry fix (the last philosopher reaches right
//       first), plus a condition-variable start gate so the cond path is
//       exercised too.  Exits 0; the shim must report zero faults.
//
// Modes: argv[1] = "clean" (default) | "deadlock"; argv[2] = rounds per
// philosopher in clean mode (default 200).  Parsed by hand — this file
// must not touch robmon's util::Flags either.
#include <pthread.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace {

constexpr int kPhilosophers = 5;

pthread_mutex_t g_forks[kPhilosophers];
pthread_barrier_t g_barrier;

// Start gate: philosophers wait for the main thread's broadcast.
pthread_mutex_t g_start_mu = PTHREAD_MUTEX_INITIALIZER;
pthread_cond_t g_start_cv = PTHREAD_COND_INITIALIZER;
bool g_started = false;

struct Seat {
  int index = 0;
  bool deadlock = false;
  int rounds = 0;
};

void await_start() {
  pthread_mutex_lock(&g_start_mu);
  while (!g_started) pthread_cond_wait(&g_start_cv, &g_start_mu);
  pthread_mutex_unlock(&g_start_mu);
}

void* philosopher(void* raw) {
  const Seat& seat = *static_cast<const Seat*>(raw);
  const int left = seat.index;
  const int right = (seat.index + 1) % kPhilosophers;
  await_start();
  if (seat.deadlock) {
    // Lockstep symmetric grab: everyone holds their left fork before
    // anyone reaches for the right one — the cycle always closes.
    pthread_barrier_wait(&g_barrier);
    pthread_mutex_lock(&g_forks[left]);
    pthread_barrier_wait(&g_barrier);
    pthread_mutex_lock(&g_forks[right]);  // Blocks forever.
    pthread_mutex_unlock(&g_forks[right]);
    pthread_mutex_unlock(&g_forks[left]);
    return nullptr;
  }
  // Clean mode: the last philosopher reverses the grab order, which
  // breaks the symmetry and makes the system deadlock-free.
  const int first = seat.index == kPhilosophers - 1 ? right : left;
  const int second = seat.index == kPhilosophers - 1 ? left : right;
  for (int round = 0; round < seat.rounds; ++round) {
    pthread_mutex_lock(&g_forks[first]);
    pthread_mutex_lock(&g_forks[second]);
    pthread_mutex_unlock(&g_forks[second]);
    pthread_mutex_unlock(&g_forks[first]);
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  bool deadlock = false;
  int rounds = 200;
  if (argc > 1) {
    if (std::strcmp(argv[1], "deadlock") == 0) {
      deadlock = true;
    } else if (std::strcmp(argv[1], "clean") != 0) {
      std::fprintf(stderr, "usage: %s [clean|deadlock] [rounds]\n", argv[0]);
      return 2;
    }
  }
  if (argc > 2) rounds = std::atoi(argv[2]);

  for (auto& fork : g_forks) pthread_mutex_init(&fork, nullptr);
  pthread_barrier_init(&g_barrier, nullptr, kPhilosophers);

  pthread_t threads[kPhilosophers];
  Seat seats[kPhilosophers];
  for (int i = 0; i < kPhilosophers; ++i) {
    seats[i] = Seat{i, deadlock, rounds};
    if (pthread_create(&threads[i], nullptr, philosopher, &seats[i]) != 0) {
      std::fprintf(stderr, "pthread_create failed\n");
      return 1;
    }
  }

  std::printf("philosophers seated (%s)\n", deadlock ? "deadlock" : "clean");
  std::fflush(stdout);
  pthread_mutex_lock(&g_start_mu);
  g_started = true;
  pthread_cond_broadcast(&g_start_cv);
  pthread_mutex_unlock(&g_start_mu);

  for (pthread_t& thread : threads) pthread_join(thread, nullptr);

  pthread_barrier_destroy(&g_barrier);
  for (auto& fork : g_forks) pthread_mutex_destroy(&fork);
  std::printf("all philosophers finished\n");
  return 0;
}
