// Resource-access-right allocator with the real-time calling-order phase.
//
// Clients acquire and release units of a shared pool; the monitor declares
// the partial order (Acquire ; Release)* as a path expression, checked in
// real time at every Enter, and Algorithm-3 re-validates the Request-List
// at every checking point.  Use --fault to watch each Level-III (user
// process) fault class being caught.
//
//   ./resource_allocator --clients=4 --fault=release-first
//   ./resource_allocator --fault=never-release
//   ./resource_allocator --fault=double-acquire
#include <cstdio>
#include <thread>
#include <vector>

#include "robmon.hpp"

using namespace robmon;

int main(int argc, char** argv) {
  util::Flags flags;
  flags.define("clients", "4", "client threads");
  flags.define("units", "2", "units in the shared pool");
  flags.define("iterations", "20", "acquire/release cycles per client");
  flags.define("fault", "none",
               "none | release-first | never-release | double-acquire");
  flags.define("tlimit-ms", "150", "Tlimit: max resource-holding time");
  if (!flags.parse(argc, argv)) return 2;

  core::MonitorSpec spec = core::MonitorSpec::allocator("pool");
  spec.t_limit = flags.i64("tlimit-ms") * util::kMillisecond;
  spec.check_period = 50 * util::kMillisecond;
  std::printf("declared call order: path %s end\n",
              spec.effective_path_expression().c_str());

  const std::string fault = flags.str("fault");
  std::unique_ptr<inject::ScriptedInjection> scripted;
  if (fault == "release-first") {
    scripted = std::make_unique<inject::ScriptedInjection>(
        inject::ScriptedInjection::Plan{
            core::FaultKind::kReleaseBeforeAcquire, trace::kNoPid, 1, false});
  } else if (fault == "never-release") {
    scripted = std::make_unique<inject::ScriptedInjection>(
        inject::ScriptedInjection::Plan{
            core::FaultKind::kResourceNeverReleased, trace::kNoPid, 1,
            false});
  } else if (fault == "double-acquire") {
    scripted = std::make_unique<inject::ScriptedInjection>(
        inject::ScriptedInjection::Plan{
            core::FaultKind::kDoubleAcquireDeadlock, trace::kNoPid, 1,
            false});
  } else if (fault != "none") {
    std::fprintf(stderr, "unknown --fault value: %s\n", fault.c_str());
    return 2;
  }
  inject::InjectionController& injection =
      scripted ? static_cast<inject::InjectionController&>(*scripted)
               : inject::NullInjection::instance();

  core::CollectingSink sink;
  rt::RobustMonitor monitor(spec, sink);
  // Enough units that an injected double-acquire does not hang the demo.
  wl::ResourceAllocator allocator(
      monitor, std::max<std::int64_t>(flags.i64("units"), 2));
  monitor.start_checking();

  std::vector<std::thread> clients;
  for (int c = 0; c < flags.i64("clients"); ++c) {
    clients.emplace_back([&, c] {
      wl::ClientOptions options;
      options.iterations = static_cast<int>(flags.i64("iterations"));
      options.hold_ns = 500'000;   // 0.5 ms holding the unit
      options.think_ns = 200'000;  // 0.2 ms between cycles
      wl::run_allocator_client(allocator, c, injection, options);
    });
  }
  for (auto& client : clients) client.join();

  // Let Tlimit elapse so a leaked unit is flagged, then do a final check.
  std::this_thread::sleep_for(
      std::chrono::nanoseconds(spec.t_limit + spec.check_period));
  monitor.stop_checking();
  monitor.check_now();

  std::printf("injected fault:  %s%s\n", fault.c_str(),
              scripted && scripted->fired() ? " (struck)" : "");
  std::printf("units available: %lld\n",
              static_cast<long long>(allocator.available()));
  std::printf("fault reports:   %zu\n", sink.count());
  for (const auto& report : sink.reports()) {
    std::printf("  %s\n", core::describe(report, monitor.symbols()).c_str());
  }
  const bool expected = fault == "none" ? sink.count() == 0 : sink.count() > 0;
  return expected ? 0 : 1;
}
