// Integration tests for the real-thread backend: the Hoare monitor under
// contention, the periodic checker, the RobustMonitor real-time phase,
// Level II/III fault injection on real workloads, dining philosophers, and
// trace export/replay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/replay.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/allocator.hpp"
#include "workloads/account.hpp"
#include "workloads/bounded_buffer.hpp"
#include "workloads/dining.hpp"
#include "workloads/loadgen.hpp"

namespace robmon::rt {
namespace {

using core::CollectingSink;
using core::FaultKind;
using core::MonitorSpec;
using core::RuleId;
using util::kMillisecond;

MonitorSpec relaxed_timers(MonitorSpec spec) {
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.t_limit = 5 * util::kSecond;
  spec.check_period = 20 * kMillisecond;
  return spec;
}

TEST(HoareMonitorTest, MutualExclusionUnderContention) {
  CollectingSink sink;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::manager("mx")), sink);
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  constexpr int kThreads = 4;
  constexpr int kOps = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        ASSERT_EQ(monitor.enter(t, "Op"), Status::kOk);
        if (inside.fetch_add(1) != 0) violation.store(true);
        inside.fetch_sub(1);
        monitor.exit(t);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(HoareMonitorTest, PoisonUnblocksParkedThreads) {
  CollectingSink sink;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::manager("p")), sink);
  ASSERT_EQ(monitor.enter(0, "Hold"), Status::kOk);
  std::atomic<int> poisoned{0};
  std::vector<std::thread> blocked;
  for (int t = 1; t <= 3; ++t) {
    blocked.emplace_back([&, t] {
      if (monitor.enter(t, "Op") == Status::kPoisoned) poisoned.fetch_add(1);
    });
  }
  // Wait for all three to park on the entry queue.
  for (int spin = 0; spin < 200; ++spin) {
    if (monitor.snapshot().entry_queue.size() == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(monitor.snapshot().entry_queue.size(), 3u);
  monitor.poison();
  for (auto& thread : blocked) thread.join();
  EXPECT_EQ(poisoned.load(), 3);
}

TEST(HoareMonitorTest, SnapshotSeesBlockedWaiters) {
  CollectingSink sink;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::manager("s")), sink);
  ASSERT_EQ(monitor.enter(0, "Hold"), Status::kOk);
  std::thread blocked([&] { monitor.enter(1, "Op"); });
  for (int spin = 0; spin < 200; ++spin) {
    if (monitor.snapshot().entry_queue.size() == 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto state = monitor.snapshot();
  EXPECT_EQ(state.running, 0);
  ASSERT_EQ(state.entry_queue.size(), 1u);
  EXPECT_EQ(state.entry_queue[0].pid, 1);
  monitor.exit(0);  // hands off to p1
  blocked.join();
  monitor.exit(1);
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(BoundedBufferTest, FaultFreeSoakWithPeriodicChecking) {
  CollectingSink sink;
  MonitorSpec spec = relaxed_timers(MonitorSpec::coordinator("buf", 4));
  spec.check_period = 10 * kMillisecond;
  RobustMonitor monitor(spec, sink);
  wl::BoundedBuffer buffer(monitor, 4);
  monitor.start_checking();

  constexpr std::int64_t kItems = 3000;
  std::atomic<std::int64_t> received_sum{0};
  std::thread producer([&] {
    for (std::int64_t i = 1; i <= kItems; ++i) {
      ASSERT_EQ(buffer.send(1, i), Status::kOk);
    }
  });
  std::thread consumer([&] {
    std::int64_t item = 0;
    for (std::int64_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(buffer.receive(2, &item), Status::kOk);
      received_sum.fetch_add(item);
    }
  });
  producer.join();
  consumer.join();
  monitor.stop_checking();
  monitor.check_now();
  EXPECT_EQ(received_sum.load(), kItems * (kItems + 1) / 2);
  EXPECT_EQ(sink.count(), 0u) << core::describe(sink.reports()[0],
                                                monitor.symbols());
  EXPECT_GT(monitor.detector().events_processed(), 0u);
}

TEST(BoundedBufferTest, FifoOrderPreserved) {
  CollectingSink sink;
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::coordinator("fifo", 2)), sink);
  wl::BoundedBuffer buffer(monitor, 2);
  std::thread producer([&] {
    for (std::int64_t i = 0; i < 500; ++i) {
      ASSERT_EQ(buffer.send(1, i), Status::kOk);
    }
  });
  std::int64_t previous = -1;
  for (std::int64_t i = 0; i < 500; ++i) {
    std::int64_t item = 0;
    ASSERT_EQ(buffer.receive(2, &item), Status::kOk);
    EXPECT_EQ(item, previous + 1);
    previous = item;
  }
  producer.join();
}

TEST(LevelTwoInjectionTest, OverfillDetectedByAlgorithm2) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kSendExceedsCapacity, trace::kNoPid, 1, false});
  RobustMonitor::Options options;
  options.injection = &injection;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::coordinator("of", 2)),
                        sink, options);
  wl::BoundedBuffer buffer(monitor, 2, injection);
  // Fill to capacity, then the injected third send skips the wait.
  ASSERT_EQ(buffer.send(1, 10), Status::kOk);
  ASSERT_EQ(buffer.send(1, 11), Status::kOk);
  ASSERT_EQ(buffer.send(1, 12), Status::kOk);  // would block if correct
  EXPECT_TRUE(injection.fired());
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt7aSendExceedsCapacity));
}

TEST(LevelTwoInjectionTest, PhantomReceiveDetectedByAlgorithm2) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kReceiveExceedsSend, trace::kNoPid, 1, false});
  RobustMonitor::Options options;
  options.injection = &injection;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::coordinator("pr", 2)),
                        sink, options);
  wl::BoundedBuffer buffer(monitor, 2, injection);
  std::int64_t item = 0;
  ASSERT_EQ(buffer.receive(1, &item), Status::kOk);  // fabricates from empty
  EXPECT_TRUE(injection.fired());
  EXPECT_EQ(item, -1);
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt7aReceiveExceedsSend));
}

TEST(LevelTwoInjectionTest, WrongSendDelayDetectedByAlgorithm2) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kSendDelayWrong, trace::kNoPid, 1, false});
  RobustMonitor::Options options;
  options.injection = &injection;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::coordinator("sd", 2)),
                        sink, options);
  wl::BoundedBuffer buffer(monitor, 2, injection);
  std::thread sender([&] {
    buffer.send(1, 42);  // wrongly delayed on "full"; buffer is empty
  });
  for (int spin = 0; spin < 300; ++spin) {
    if (monitor.monitor().log().pending() >= 2) break;  // Enter + Wait
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt7cSendDelayedWhenNotFull));
  monitor.poison();  // unblock the wrongly-delayed sender
  sender.join();
}

TEST(LevelThreeInjectionTest, ReleaseBeforeAcquireCaughtTwice) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kReleaseBeforeAcquire, trace::kNoPid, 1, false});
  RobustMonitor monitor(relaxed_timers(MonitorSpec::allocator("a")), sink);
  wl::ResourceAllocator allocator(monitor, 2);
  wl::ClientOptions client;
  client.iterations = 3;
  ASSERT_EQ(
      wl::run_allocator_client(allocator, 7, injection, client),
      Status::kOk);
  EXPECT_TRUE(injection.fired());
  // Real-time phase catches it immediately...
  EXPECT_TRUE(sink.any_with_rule(RuleId::kRealTimeOrder));
  // ...and Algorithm-3 confirms from history at the checking point.
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt8bReleaseWithoutAcquire));
}

TEST(LevelThreeInjectionTest, DoubleAcquireCaughtTwice) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kDoubleAcquireDeadlock, trace::kNoPid, 1, false});
  RobustMonitor monitor(relaxed_timers(MonitorSpec::allocator("d")), sink);
  wl::ResourceAllocator allocator(monitor, 4);  // enough units: no blocking
  wl::ClientOptions client;
  client.iterations = 2;
  ASSERT_EQ(
      wl::run_allocator_client(allocator, 3, injection, client),
      Status::kOk);
  EXPECT_TRUE(injection.fired());
  EXPECT_TRUE(sink.any_with_rule(RuleId::kRealTimeOrder));
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt8aDuplicateAcquire));
}

TEST(LevelThreeInjectionTest, NeverReleasedCaughtAtTlimit) {
  CollectingSink sink;
  MonitorSpec spec = MonitorSpec::allocator("n");
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.t_limit = 30 * kMillisecond;
  RobustMonitor monitor(spec, sink);
  wl::ResourceAllocator allocator(monitor, 2);
  inject::ScriptedInjection injection(
      {FaultKind::kResourceNeverReleased, trace::kNoPid, 1, false});
  wl::ClientOptions client;
  client.iterations = 1;
  ASSERT_EQ(
      wl::run_allocator_client(allocator, 5, injection, client),
      Status::kOk);
  monitor.check_now();  // within Tlimit: nothing yet
  EXPECT_FALSE(sink.any_with_rule(RuleId::kSt8cHoldExceedsTlimit));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt8cHoldExceedsTlimit));
}

TEST(RealTimeOrderTest, CleanClientsPassSilently) {
  CollectingSink sink;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::allocator("ok")), sink);
  wl::ResourceAllocator allocator(monitor, 2);
  wl::ClientOptions client;
  client.iterations = 5;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      wl::run_allocator_client(allocator, t,
                               inject::NullInjection::instance(), client);
    });
  }
  for (auto& thread : threads) thread.join();
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(AccountManagerTest, WithdrawWaitsForFunds) {
  CollectingSink sink;
  RobustMonitor monitor(relaxed_timers(MonitorSpec::manager("acct")), sink);
  wl::AccountManager account(monitor, 0);
  std::thread withdrawer([&] {
    ASSERT_EQ(account.withdraw(1, 5), Status::kOk);
  });
  // The withdrawer must block until deposits cover the request.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(account.balance(), 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(account.deposit(2, 1), Status::kOk);
  }
  withdrawer.join();
  EXPECT_EQ(account.balance(), 0);
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(DiningTest, SymmetricOrderDeadlockIsDetected) {
  wl::DiningOptions options;
  options.philosophers = 4;
  options.rounds = 10000;  // effectively "until deadlock"
  options.eat_ns = 100'000;
  options.think_ns = 0;
  options.grab_gap_ns = 2 * kMillisecond;  // force the circular wait
  options.symmetric_order = true;
  options.t_limit = 60 * kMillisecond;
  options.t_max = 60 * kMillisecond;
  options.t_io = 120 * kMillisecond;
  options.check_period = 30 * kMillisecond;
  options.run_timeout = 1500 * kMillisecond;
  const wl::DiningResult result = wl::run_dining(options);
  EXPECT_FALSE(result.completed);
  // The pool-level checkpoint names the cycle structurally, well before any
  // of the ST-5/6/8c timeout rules can reach the same verdict.
  EXPECT_TRUE(result.global_deadlock_reported);
  ASSERT_FALSE(result.cycles.empty());
  EXPECT_NE(result.cycles[0].find("waits on"), std::string::npos);
}

TEST(DiningTest, TimeoutRulesStillDetectWithCheckpointDisabled) {
  // The pre-pool behaviour: with the wait-for checkpoint off, the deadlock
  // is still caught indirectly through the per-monitor timeout rules.
  wl::DiningOptions options;
  options.philosophers = 4;
  options.rounds = 10000;
  options.eat_ns = 100'000;
  options.think_ns = 0;
  options.grab_gap_ns = 2 * kMillisecond;
  options.symmetric_order = true;
  options.t_limit = 60 * kMillisecond;
  options.t_max = 60 * kMillisecond;
  options.t_io = 120 * kMillisecond;
  options.check_period = 30 * kMillisecond;
  options.checkpoint_period = 0;  // structural detection disabled
  options.run_timeout = 1500 * kMillisecond;
  const wl::DiningResult result = wl::run_dining(options);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.global_deadlock_reported);
  EXPECT_TRUE(result.deadlock_reported);
}

TEST(DiningTest, AsymmetricOrderRunsClean) {
  wl::DiningOptions options;
  options.philosophers = 4;
  options.rounds = 30;
  options.eat_ns = 50'000;
  options.think_ns = 20'000;
  options.symmetric_order = false;
  options.run_timeout = 5 * util::kSecond;
  const wl::DiningResult result = wl::run_dining(options);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.deadlock_reported);
  EXPECT_EQ(result.fault_reports, 0u);
}

TEST(TraceExportTest, ExportedTraceReplaysClean) {
  CollectingSink sink;
  RobustMonitor::Options options;
  options.retain_trace = true;
  MonitorSpec spec = relaxed_timers(MonitorSpec::coordinator("tr", 3));
  RobustMonitor monitor(spec, sink, options);
  wl::BoundedBuffer buffer(monitor, 3);
  std::thread producer([&] {
    for (std::int64_t i = 0; i < 50; ++i) {
      ASSERT_EQ(buffer.send(1, i), Status::kOk);
    }
  });
  std::int64_t item = 0;
  for (std::int64_t i = 0; i < 50; ++i) {
    ASSERT_EQ(buffer.receive(2, &item), Status::kOk);
  }
  producer.join();
  monitor.check_now();

  const trace::TraceFile exported = monitor.export_trace();
  EXPECT_GE(exported.checkpoints.size(), 2u);  // initial + >=1 check
  // 50*2 operations, two events each, plus one Wait per blocked call.
  EXPECT_GE(exported.events.size(), 200u);

  // Round-trip through the codec, then replay offline.
  const trace::TraceFile parsed =
      trace::read_trace_string(trace::write_trace_string(exported));
  const core::ReplayResult replayed = core::replay_trace(parsed, spec);
  EXPECT_TRUE(replayed.reports.empty());
  EXPECT_EQ(replayed.events_processed + replayed.events_unchecked,
            exported.events.size());
}

TEST(LoadGenTest, AllThreeTypesRunClean) {
  for (const core::MonitorType type :
       {core::MonitorType::kCommunicationCoordinator,
        core::MonitorType::kResourceAllocator,
        core::MonitorType::kOperationManager}) {
    wl::LoadOptions options;
    options.type = type;
    options.workers = 4;
    options.ops_per_worker = 300;
    const wl::LoadResult result = wl::run_load(options);
    EXPECT_EQ(result.faults_reported, 0u) << core::to_string(type);
    EXPECT_GT(result.operations, 0u);
    EXPECT_GT(result.events_recorded, 0u);
  }
}

TEST(LoadGenTest, InstrumentationOffRecordsNothing) {
  wl::LoadOptions options;
  options.workers = 2;
  options.ops_per_worker = 200;
  options.instrumentation = Instrumentation::kOff;
  options.periodic_checking = false;
  const wl::LoadResult result = wl::run_load(options);
  EXPECT_EQ(result.events_recorded, 0u);
  EXPECT_EQ(result.checks_run, 0u);
  EXPECT_EQ(result.faults_reported, 0u);
}

}  // namespace
}  // namespace robmon::rt
