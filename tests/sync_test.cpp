#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/gate.hpp"
#include "sync/semaphore.hpp"
#include "sync/spinlock.hpp"

namespace robmon::sync {
namespace {

TEST(SemaphoreTest, InitialPermits) {
  Semaphore sem(2);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(SemaphoreTest, ReleaseWakesAcquirer) {
  Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    EXPECT_EQ(sem.acquire(), AcquireResult::kAcquired);
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  sem.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(SemaphoreTest, TimedAcquireTimesOut) {
  Semaphore sem(0);
  EXPECT_EQ(sem.timed_acquire(1'000'000), AcquireResult::kTimeout);
}

TEST(SemaphoreTest, TimedAcquireSucceedsWithPermit) {
  Semaphore sem(1);
  EXPECT_EQ(sem.timed_acquire(1'000'000), AcquireResult::kAcquired);
}

TEST(SemaphoreTest, PoisonReleasesWaiters) {
  Semaphore sem(0);
  std::vector<std::thread> waiters;
  std::atomic<int> poisoned{0};
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&] {
      if (sem.acquire() == AcquireResult::kPoisoned) poisoned.fetch_add(1);
    });
  }
  sem.poison();
  for (auto& t : waiters) t.join();
  EXPECT_EQ(poisoned.load(), 4);
  // Future acquires also fail fast.
  EXPECT_EQ(sem.acquire(), AcquireResult::kPoisoned);
  EXPECT_TRUE(sem.poisoned());
}

TEST(SemaphoreTest, MultiPermitRelease) {
  Semaphore sem(0);
  sem.release(3);
  EXPECT_EQ(sem.available(), 3);
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_TRUE(sem.try_acquire());
  EXPECT_FALSE(sem.try_acquire());
}

TEST(BinarySemaphoreTest, HandoffProtocol) {
  BinarySemaphore sem;
  std::thread receiver([&] {
    EXPECT_EQ(sem.acquire(), AcquireResult::kAcquired);
  });
  sem.release();
  receiver.join();
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock lock;
  std::int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIterations = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIterations);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(CheckerGateTest, SharedHoldersCoexist) {
  CheckerGate gate;
  gate.enter_shared();
  gate.enter_shared();
  gate.exit_shared();
  gate.exit_shared();
}

TEST(CheckerGateTest, ExclusiveWaitsForShared) {
  CheckerGate gate;
  gate.enter_shared();
  std::atomic<bool> exclusive_held{false};
  std::thread checker([&] {
    gate.enter_exclusive();
    exclusive_held.store(true);
    gate.exit_exclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(exclusive_held.load());
  gate.exit_shared();
  checker.join();
  EXPECT_TRUE(exclusive_held.load());
}

TEST(CheckerGateTest, WriterPriorityBlocksNewReaders) {
  CheckerGate gate;
  gate.enter_shared();
  std::atomic<bool> exclusive_done{false};
  std::atomic<bool> second_reader_in{false};
  std::thread checker([&] {
    gate.enter_exclusive();
    exclusive_done.store(true);
    gate.exit_exclusive();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread reader([&] {
    gate.enter_shared();
    second_reader_in.store(true);
    gate.exit_shared();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // The checker is waiting, so the new reader must queue behind it.
  EXPECT_FALSE(second_reader_in.load());
  EXPECT_FALSE(exclusive_done.load());
  gate.exit_shared();
  checker.join();
  reader.join();
  EXPECT_TRUE(exclusive_done.load());
  EXPECT_TRUE(second_reader_in.load());
}

TEST(CheckerGateTest, StressMixedTraffic) {
  CheckerGate gate;
  std::atomic<int> inside_shared{0};
  std::atomic<int> inside_exclusive{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        CheckerGate::SharedScope scope(gate);
        inside_shared.fetch_add(1);
        if (inside_exclusive.load() != 0) violation.store(true);
        inside_shared.fetch_sub(1);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 100; ++i) {
      CheckerGate::ExclusiveScope scope(gate);
      inside_exclusive.fetch_add(1);
      if (inside_shared.load() != 0) violation.store(true);
      inside_exclusive.fetch_sub(1);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace robmon::sync
