// CheckerPool engine tests: synchronous checks without workers, deadline
// ordering across monitors with different cadences, concurrent
// register/unregister while traffic flows, per-monitor gate policies
// coexisting in one pool, and regression parity between the PeriodicChecker
// compat wrapper and the shared-pool path on injected faults.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/checker_pool.hpp"
#include "runtime/hoare_monitor.hpp"
#include "util/clock.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/allocator.hpp"
#include "workloads/bounded_buffer.hpp"
#include "workloads/loadgen.hpp"

namespace robmon::rt {
namespace {

using core::CollectingSink;
using core::FaultKind;
using core::MonitorSpec;
using core::RuleId;
using util::kMillisecond;

MonitorSpec relaxed_timers(MonitorSpec spec, util::TimeNs check_period) {
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.t_limit = 5 * util::kSecond;
  spec.check_period = check_period;
  return spec;
}

TEST(CheckerPoolTest, CheckNowNeedsNoWorkerThreads) {
  CheckerPool pool;
  CollectingSink sink;
  RobustMonitor::Options options;
  options.checker_pool = &pool;
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("sync"), 20 * kMillisecond), sink,
      options);
  ASSERT_EQ(monitor.enter(1, "Op"), Status::kOk);
  monitor.exit(1);
  const auto stats = monitor.check_now();
  EXPECT_GT(stats.events, 0u);
  EXPECT_EQ(sink.count(), 0u);
  EXPECT_EQ(pool.thread_count(), 0u);  // never scheduled: no workers spawned
  EXPECT_EQ(pool.checks_executed(), 1u);
  // Ring-ingestion loss introspection: a drained, uncontended monitor log
  // lost nothing.
  EXPECT_EQ(pool.events_lost(), 0u);
}

// Regression: check_now() on an unregistered or just-removed MonitorId must
// return an empty CheckStats deterministically, never throw.  The schedule
// explorer (and any caller racing remove() against a checkpoint) probes ids
// that can vanish between its lookup and the call.
TEST(CheckerPoolTest, CheckNowOnRemovedOrUnknownIdReturnsEmpty) {
  CheckerPool pool;
  util::ManualClock clock(1000);
  HoareMonitor source(
      relaxed_timers(MonitorSpec::manager("stale"), 20 * kMillisecond), clock);
  const CheckerPool::MonitorId id = pool.add(source);
  ASSERT_EQ(source.enter(1, "Op"), Status::kOk);
  source.exit(1);
  EXPECT_GT(pool.check_now(id).events, 0u);  // live id: a real check
  pool.remove(id);
  const auto stale = pool.check_now(id);
  EXPECT_EQ(stale.events, 0u);
  EXPECT_EQ(stale.violations, 0u);
  const auto unknown =
      pool.check_now(static_cast<CheckerPool::MonitorId>(~0ull));
  EXPECT_EQ(unknown.events, 0u);
  EXPECT_EQ(unknown.violations, 0u);
}

TEST(CheckerPoolTest, DeadlineOrderingFollowsPerMonitorPeriods) {
  CheckerPool::Options pool_options;
  pool_options.threads = 1;  // one worker: ordering is fully observable
  CheckerPool pool(pool_options);
  CollectingSink fast_sink, slow_sink;
  RobustMonitor::Options options;
  options.checker_pool = &pool;
  RobustMonitor fast(
      relaxed_timers(MonitorSpec::manager("fast"), 5 * kMillisecond),
      fast_sink, options);
  RobustMonitor slow(
      relaxed_timers(MonitorSpec::manager("slow"), 25 * kMillisecond),
      slow_sink, options);
  EXPECT_EQ(pool.monitor_count(), 2u);

  fast.start_checking();
  slow.start_checking();
  EXPECT_EQ(pool.scheduled_count(), 2u);
  EXPECT_EQ(pool.thread_count(), 1u);
  // Bounded poll, not a fixed settle sleep: once the 25ms cadence has been
  // served twice, the 5ms cadence has had ~10 slots and the strict ordering
  // below is decided.  (True virtual-time scheduling lives in the sim
  // backend — see tests/schedule_explorer.cpp.)
  for (int spin = 0; spin < 2000; ++spin) {
    if (slow.detector().checks_run() >= 2 &&
        fast.detector().checks_run() > slow.detector().checks_run()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fast.stop_checking();
  slow.stop_checking();

  EXPECT_GE(fast.detector().checks_run(), 1u);
  EXPECT_GE(slow.detector().checks_run(), 1u);
  // 5ms cadence must be served strictly more often than 25ms cadence.
  EXPECT_GT(fast.detector().checks_run(), slow.detector().checks_run());
  EXPECT_EQ(fast_sink.count(), 0u);
  EXPECT_EQ(slow_sink.count(), 0u);
}

TEST(CheckerPoolTest, ConcurrentRegisterUnregisterWhileTrafficFlows) {
  CheckerPool pool;
  CollectingSink steady_sink;
  RobustMonitor::Options options;
  options.checker_pool = &pool;
  RobustMonitor steady(
      relaxed_timers(MonitorSpec::coordinator("steady", 4), 2 * kMillisecond),
      steady_sink, options);
  wl::BoundedBuffer buffer(steady, 4);
  steady.start_checking();

  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      const trace::Pid pid = 10 + t;
      std::int64_t item = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (buffer.send(pid, 1) != Status::kOk) return;
        if (buffer.receive(pid, &item) != Status::kOk) return;
      }
    });
  }

  // Churn: monitors join and leave the live pool while traffic flows.
  for (int round = 0; round < 40; ++round) {
    CollectingSink churn_sink;
    RobustMonitor churn(
        relaxed_timers(MonitorSpec::allocator("churn"), 1 * kMillisecond),
        churn_sink, options);
    wl::ResourceAllocator allocator(churn, 2);
    churn.start_checking();
    wl::ClientOptions client;
    client.iterations = 5;
    ASSERT_EQ(wl::run_allocator_client(allocator, 7,
                                       inject::NullInjection::instance(),
                                       client),
              Status::kOk);
    churn.check_now();
    churn.stop_checking();
    EXPECT_EQ(churn_sink.count(), 0u);
  }

  stop.store(true);
  for (auto& thread : traffic) thread.join();
  steady.stop_checking();
  steady.check_now();
  EXPECT_EQ(steady_sink.count(), 0u);
  EXPECT_GE(steady.detector().checks_run(), 1u);
  EXPECT_EQ(pool.monitor_count(), 1u);  // churn monitors all unregistered
}

TEST(CheckerPoolTest, MixedHoldGatePoliciesCoexist) {
  CheckerPool pool;
  CollectingSink hold_sink, concurrent_sink;
  RobustMonitor::Options hold_options;
  hold_options.checker_pool = &pool;
  hold_options.hold_gate_during_check = true;
  RobustMonitor holder(
      relaxed_timers(MonitorSpec::coordinator("hold", 4), 2 * kMillisecond),
      hold_sink, hold_options);
  RobustMonitor::Options concurrent_options;
  concurrent_options.checker_pool = &pool;
  concurrent_options.hold_gate_during_check = false;
  RobustMonitor concurrent(
      relaxed_timers(MonitorSpec::coordinator("conc", 4), 2 * kMillisecond),
      concurrent_sink, concurrent_options);

  wl::BoundedBuffer hold_buffer(holder, 4);
  wl::BoundedBuffer concurrent_buffer(concurrent, 4);
  holder.start_checking();
  concurrent.start_checking();

  std::vector<std::thread> threads;
  for (wl::BoundedBuffer* buffer : {&hold_buffer, &concurrent_buffer}) {
    threads.emplace_back([buffer] {
      std::int64_t item = 0;
      for (int k = 0; k < 2000; ++k) {
        if (buffer->send(1, k) != Status::kOk) return;
        if (buffer->receive(1, &item) != Status::kOk) return;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  holder.stop_checking();
  concurrent.stop_checking();
  holder.check_now();
  concurrent.check_now();

  EXPECT_EQ(hold_sink.count(), 0u);
  EXPECT_EQ(concurrent_sink.count(), 0u);
  EXPECT_GE(holder.detector().checks_run(), 1u);
  EXPECT_GE(concurrent.detector().checks_run(), 1u);
}

// Regression: the PeriodicChecker compat wrapper (default RobustMonitor
// path) must detect the same injected fault as before the CheckerPool
// refactor, from its *periodic* thread, not only from check_now().
TEST(CheckerPoolTest, CompatWrapperStillDetectsInjectedFaultPeriodically) {
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kSendExceedsCapacity, trace::kNoPid, 1, false});
  RobustMonitor::Options options;
  options.injection = &injection;
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::coordinator("of", 2), 5 * kMillisecond),
      sink, options);
  wl::BoundedBuffer buffer(monitor, 2, injection);
  monitor.start_checking();
  ASSERT_EQ(buffer.send(1, 10), Status::kOk);
  ASSERT_EQ(buffer.send(1, 11), Status::kOk);
  ASSERT_EQ(buffer.send(1, 12), Status::kOk);  // injected overfill
  EXPECT_TRUE(injection.fired());
  for (int spin = 0; spin < 400; ++spin) {
    if (sink.any_with_rule(RuleId::kSt7aSendExceedsCapacity)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.stop_checking();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt7aSendExceedsCapacity));
}

// The same injected fault through the shared-pool path.
TEST(CheckerPoolTest, SharedPoolDetectsInjectedFaultPeriodically) {
  CheckerPool pool;
  CollectingSink sink;
  inject::ScriptedInjection injection(
      {FaultKind::kSendExceedsCapacity, trace::kNoPid, 1, false});
  RobustMonitor::Options options;
  options.injection = &injection;
  options.checker_pool = &pool;
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::coordinator("of", 2), 5 * kMillisecond),
      sink, options);
  wl::BoundedBuffer buffer(monitor, 2, injection);
  monitor.start_checking();
  ASSERT_EQ(buffer.send(1, 10), Status::kOk);
  ASSERT_EQ(buffer.send(1, 11), Status::kOk);
  ASSERT_EQ(buffer.send(1, 12), Status::kOk);  // injected overfill
  EXPECT_TRUE(injection.fired());
  for (int spin = 0; spin < 400; ++spin) {
    if (sink.any_with_rule(RuleId::kSt7aSendExceedsCapacity)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.stop_checking();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kSt7aSendExceedsCapacity));
}

TEST(CheckerPoolTest, FrozenManualClockDoesNotStallPeriodicChecking) {
  // The check cadence is wall-clock; Options::clock only timestamps the
  // detection rules.  A frozen ManualClock must not starve the scheduler.
  util::ManualClock clock(1000);
  CheckerPool pool;
  CollectingSink sink;
  RobustMonitor::Options options;
  options.checker_pool = &pool;
  options.clock = &clock;
  RobustMonitor monitor(
      relaxed_timers(MonitorSpec::manager("frozen"), 5 * kMillisecond), sink,
      options);
  monitor.start_checking();
  for (int spin = 0; spin < 400; ++spin) {
    if (monitor.detector().checks_run() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  monitor.stop_checking();
  EXPECT_GE(monitor.detector().checks_run(), 2u);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(MultiLoadTest, BothCheckerModesMissNothing) {
  for (const wl::CheckerMode mode :
       {wl::CheckerMode::kThreadPerMonitor, wl::CheckerMode::kSharedPool}) {
    wl::MultiLoadOptions options;
    options.monitors = 6;
    options.threads_per_monitor = 2;
    options.ops_per_thread = 100;
    options.faulty_monitors = 2;
    options.mode = mode;
    options.check_period = 2 * kMillisecond;
    options.mix_gate_policies = true;
    const wl::MultiLoadResult result = wl::run_multi_load(options);
    EXPECT_EQ(result.missed_detections, 0u);
    EXPECT_EQ(result.faulty_detected, 2u);
    EXPECT_EQ(result.false_positive_monitors, 0u);
    EXPECT_GT(result.checks_run, 0u);
    if (mode == wl::CheckerMode::kThreadPerMonitor) {
      EXPECT_EQ(result.checker_threads, 6u);
    } else {
      EXPECT_LE(result.checker_threads,
                std::max(1u, std::thread::hardware_concurrency()));
    }
  }
}

}  // namespace
}  // namespace robmon::rt
