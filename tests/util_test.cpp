#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/clock.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace robmon::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() != b.next()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(StatsTest, RunningBasics) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.variance(), 5.0 / 3.0, 1e-12);
}

TEST(StatsTest, MergeMatchesCombined) {
  RunningStats left;
  RunningStats right;
  RunningStats combined;
  for (int i = 0; i < 10; ++i) {
    left.add(i);
    combined.add(i);
  }
  for (int i = 10; i < 25; ++i) {
    right.add(i * 1.5);
    combined.add(i * 1.5);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), combined.count());
  EXPECT_NEAR(left.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), combined.min());
  EXPECT_DOUBLE_EQ(left.max(), combined.max());
}

TEST(StatsTest, MergeWithEmpty) {
  RunningStats stats;
  stats.add(5.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 1u);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
}

TEST(StatsTest, SamplesPercentiles) {
  Samples samples;
  for (int i = 1; i <= 100; ++i) samples.add(i);
  EXPECT_DOUBLE_EQ(samples.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 100.0);
  EXPECT_NEAR(samples.percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(samples.mean(), 50.5, 1e-9);
}

TEST(StatsTest, EmptySamplesSafe) {
  Samples samples;
  EXPECT_DOUBLE_EQ(samples.mean(), 0.0);
  EXPECT_DOUBLE_EQ(samples.percentile(50), 0.0);
  EXPECT_TRUE(samples.empty());
}

TEST(StatsTest, HistogramBuckets) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) hist.add(i + 0.5);
  hist.add(-1.0);  // underflow
  hist.add(42.0);  // overflow
  EXPECT_EQ(hist.total(), 12u);
  const std::string rendered = hist.render();
  EXPECT_NE(rendered.find("underflow: 1"), std::string::npos);
  EXPECT_NE(rendered.find("overflow: 1"), std::string::npos);
}

TEST(FlagsTest, ParsesTypedValues) {
  Flags flags;
  flags.define("name", "default", "a string");
  flags.define("count", "3", "an int");
  flags.define("ratio", "0.5", "a double");
  flags.define("verbose", "false", "a bool");
  const char* argv[] = {"prog", "--name=hello", "--count=42",
                        "--ratio=2.25", "--verbose"};
  ASSERT_TRUE(flags.parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.str("name"), "hello");
  EXPECT_EQ(flags.i64("count"), 42);
  EXPECT_DOUBLE_EQ(flags.f64("ratio"), 2.25);
  EXPECT_TRUE(flags.boolean("verbose"));
}

TEST(FlagsTest, DefaultsSurviveWhenUnset) {
  Flags flags;
  flags.define("x", "7", "");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(flags.i64("x"), 7);
}

TEST(FlagsTest, UnknownFlagRejected) {
  Flags flags;
  flags.define("x", "7", "");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, PositionalCollected) {
  Flags flags;
  flags.define("x", "7", "");
  const char* argv[] = {"prog", "file1", "--x=2", "file2"};
  ASSERT_TRUE(flags.parse(4, const_cast<char**>(argv)));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "file1");
  EXPECT_EQ(flags.positional()[1], "file2");
}

TEST(ClockTest, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now_ns(), 100);
  EXPECT_EQ(clock.advance(50), 150);
  EXPECT_EQ(clock.now_ns(), 150);
  clock.set(1000);
  EXPECT_EQ(clock.now_ns(), 1000);
}

TEST(ClockTest, SteadyClockMonotone) {
  SteadyClock& clock = SteadyClock::instance();
  const TimeNs a = clock.now_ns();
  const TimeNs b = clock.now_ns();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace robmon::util
