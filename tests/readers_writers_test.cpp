// Readers-writers over the augmented monitor: shared readers may overlap,
// writers are exclusive, writer priority holds, and the detector stays
// silent over fault-free runs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "workloads/readers_writers.hpp"

namespace robmon::wl {
namespace {

using core::CollectingSink;
using core::MonitorSpec;

MonitorSpec rw_spec() {
  MonitorSpec spec = MonitorSpec::manager("rw");
  spec.t_max = 5 * util::kSecond;
  spec.t_io = 5 * util::kSecond;
  spec.check_period = 20 * util::kMillisecond;
  return spec;
}

TEST(ReadersWritersTest, WritersAreExclusive) {
  CollectingSink sink;
  rt::RobustMonitor monitor(rw_spec(), sink);
  ReadersWriters rw(monitor);
  std::atomic<int> writers_inside{0};
  std::atomic<int> readers_inside{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 60; ++i) {
        rw.write(w, [&] {
          if (writers_inside.fetch_add(1) != 0) violation.store(true);
          if (readers_inside.load() != 0) violation.store(true);
          writers_inside.fetch_sub(1);
        });
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 60; ++i) {
        rw.read(100 + r, [&] {
          readers_inside.fetch_add(1);
          if (writers_inside.load() != 0) violation.store(true);
          readers_inside.fetch_sub(1);
        });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(rw.active_readers(), 0);
  EXPECT_FALSE(rw.writer_active());
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ReadersWritersTest, ReadersOverlap) {
  CollectingSink sink;
  rt::RobustMonitor monitor(rw_spec(), sink);
  ReadersWriters rw(monitor);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      rw.read(r, [&] {
        const int now = concurrent.fetch_add(1) + 1;
        int expected = peak.load();
        while (now > expected &&
               !peak.compare_exchange_weak(expected, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        concurrent.fetch_sub(1);
      });
    });
  }
  for (auto& thread : readers) thread.join();
  EXPECT_GE(peak.load(), 2) << "shared readers never overlapped";
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ReadersWritersTest, WriterPriorityBlocksNewReaders) {
  CollectingSink sink;
  rt::RobustMonitor monitor(rw_spec(), sink);
  ReadersWriters rw(monitor);

  std::atomic<bool> reader_in_body{false};
  std::atomic<bool> release_reader{false};
  std::thread first_reader([&] {
    rw.read(1, [&] {
      reader_in_body.store(true);
      while (!release_reader.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  });
  while (!reader_in_body.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    rw.write(2, [&] {});
    writer_done.store(true);
  });
  // Give the writer time to enqueue on okToWrite.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(writer_done.load());

  std::atomic<bool> second_reader_done{false};
  std::thread second_reader([&] {
    rw.read(3, [&] {});
    second_reader_done.store(true);
  });
  // The second reader must defer to the waiting writer.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_reader_done.load());

  release_reader.store(true);
  first_reader.join();
  writer.join();
  second_reader.join();
  EXPECT_TRUE(writer_done.load());
  EXPECT_TRUE(second_reader_done.load());
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);
}

TEST(ReadersWritersTest, MixedSoakStaysClean) {
  CollectingSink sink;
  rt::RobustMonitor monitor(rw_spec(), sink);
  ReadersWriters rw(monitor);
  monitor.start_checking();
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> read_errors{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < 200; ++i) {
        rw.write(w, [&] {
          // Non-atomic-looking update; exclusivity makes it safe.
          const std::int64_t v = value.load(std::memory_order_relaxed);
          value.store(v + 1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 200; ++i) {
        rw.read(100 + r, [&] {
          if (value.load(std::memory_order_relaxed) < 0) {
            read_errors.fetch_add(1);
          }
        });
      }
    });
  }
  for (auto& thread : threads) thread.join();
  monitor.stop_checking();
  monitor.check_now();
  EXPECT_EQ(value.load(), 400);
  EXPECT_EQ(read_errors.load(), 0);
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace robmon::wl
