#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pathexpr/automaton.hpp"
#include "pathexpr/matcher.hpp"
#include "pathexpr/parser.hpp"

namespace robmon::pathexpr {
namespace {

bool accepts(const Dfa& dfa, const std::vector<std::string>& word) {
  StateId state = dfa.start;
  for (const auto& symbol : word) {
    const auto index = dfa.symbol_index(symbol);
    if (index < 0) return false;
    state = dfa.next(state, index);
    if (state == kDeadState) return false;
  }
  return dfa.accepting[static_cast<std::size_t>(state)];
}

TEST(ParserTest, SingleName) {
  const auto ast = parse("Acquire");
  EXPECT_EQ(to_string(*ast), "Acquire");
}

TEST(ParserTest, SequenceAndSelection) {
  const auto ast = parse("A ; B , C");
  // ',' binds looser than ';'.
  EXPECT_EQ(to_string(*ast), "((A ; B) , C)");
}

TEST(ParserTest, PostfixOperators) {
  EXPECT_EQ(to_string(*parse("A*")), "A*");
  EXPECT_EQ(to_string(*parse("A+")), "A+");
  EXPECT_EQ(to_string(*parse("A?")), "A?");
  EXPECT_EQ(to_string(*parse("(A ; B)*")), "(A ; B)*");
}

TEST(ParserTest, PathEndBrackets) {
  const auto ast = parse("path (Acquire ; Release)* end");
  EXPECT_EQ(to_string(*ast), "(Acquire ; Release)*");
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("A ;"), ParseError);
  EXPECT_THROW(parse("(A"), ParseError);
  EXPECT_THROW(parse("A )"), ParseError);
  EXPECT_THROW(parse("path A"), ParseError);   // missing end
  EXPECT_THROW(parse("*A"), ParseError);
  EXPECT_THROW(parse("A B"), ParseError);      // juxtaposition not allowed
  EXPECT_THROW(parse("A @ B"), ParseError);    // bad character
}

TEST(ParserTest, ErrorCarriesOffset) {
  try {
    parse("A ; @");
    FAIL() << "expected ParseError";
  } catch (const ParseError& error) {
    EXPECT_EQ(error.offset(), 4u);
  }
}

TEST(AstTest, AlphabetFirstSeenOrder) {
  const auto ast = parse("B ; A ; B ; C");
  const auto names = alphabet(*ast);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "B");
  EXPECT_EQ(names[1], "A");
  EXPECT_EQ(names[2], "C");
}

TEST(AutomatonTest, AcquireReleaseStar) {
  const Dfa dfa = compile("(Acquire ; Release)*");
  EXPECT_TRUE(accepts(dfa, {}));
  EXPECT_TRUE(accepts(dfa, {"Acquire", "Release"}));
  EXPECT_TRUE(accepts(dfa, {"Acquire", "Release", "Acquire", "Release"}));
  EXPECT_FALSE(accepts(dfa, {"Release"}));
  EXPECT_FALSE(accepts(dfa, {"Acquire", "Acquire"}));
  EXPECT_FALSE(accepts(dfa, {"Acquire"}));  // incomplete (not accepting)
}

TEST(AutomatonTest, Selection) {
  const Dfa dfa = compile("A , B");
  EXPECT_TRUE(accepts(dfa, {"A"}));
  EXPECT_TRUE(accepts(dfa, {"B"}));
  EXPECT_FALSE(accepts(dfa, {"A", "B"}));
  EXPECT_FALSE(accepts(dfa, {}));
}

TEST(AutomatonTest, PlusRequiresOne) {
  const Dfa dfa = compile("A+");
  EXPECT_FALSE(accepts(dfa, {}));
  EXPECT_TRUE(accepts(dfa, {"A"}));
  EXPECT_TRUE(accepts(dfa, {"A", "A", "A"}));
}

TEST(AutomatonTest, Optional) {
  const Dfa dfa = compile("A? ; B");
  EXPECT_TRUE(accepts(dfa, {"B"}));
  EXPECT_TRUE(accepts(dfa, {"A", "B"}));
  EXPECT_FALSE(accepts(dfa, {"A"}));
  EXPECT_FALSE(accepts(dfa, {"A", "A", "B"}));
}

TEST(AutomatonTest, NestedExpression) {
  const Dfa dfa = compile("(A ; (B , C))* ; D");
  EXPECT_TRUE(accepts(dfa, {"D"}));
  EXPECT_TRUE(accepts(dfa, {"A", "B", "D"}));
  EXPECT_TRUE(accepts(dfa, {"A", "C", "A", "B", "D"}));
  EXPECT_FALSE(accepts(dfa, {"A", "D"}));
}

TEST(AutomatonTest, MinimizationPreservesLanguage) {
  for (const std::string expression :
       {"(Acquire ; Release)*", "A , (B ; C)", "(A ; B)+ , C?",
        "((A , B) ; C)*", "A? ; B? ; C?"}) {
    const NodePtr ast = parse(expression);
    const Dfa raw = determinize(build_nfa(*ast));
    const Dfa minimal = minimize(raw);
    EXPECT_LE(minimal.state_count, raw.state_count) << expression;
    EXPECT_TRUE(equivalent_up_to(raw, minimal, 8)) << expression;
  }
}

TEST(AutomatonTest, MinimizedAcquireReleaseHasTwoStates) {
  const Dfa dfa = compile("(Acquire ; Release)*");
  EXPECT_EQ(dfa.state_count, 2);
}

TEST(MatcherTest, EnforcesAllocatorProtocol) {
  const CallOrderSpec spec("(Acquire ; Release)*");
  Matcher matcher = spec.matcher();
  EXPECT_TRUE(matcher.at_accepting());  // empty history is complete
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kOk);
  EXPECT_FALSE(matcher.at_accepting());
  EXPECT_EQ(matcher.advance("Release"), MatchResult::kOk);
  EXPECT_TRUE(matcher.at_accepting());
}

TEST(MatcherTest, ReleaseFirstIsViolation) {
  const CallOrderSpec spec("(Acquire ; Release)*");
  Matcher matcher = spec.matcher();
  EXPECT_EQ(matcher.advance("Release"), MatchResult::kViolation);
}

TEST(MatcherTest, DoubleAcquireIsViolation) {
  const CallOrderSpec spec("(Acquire ; Release)*");
  Matcher matcher = spec.matcher();
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kOk);
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kViolation);
}

TEST(MatcherTest, FreezesAfterViolationUntilReset) {
  const CallOrderSpec spec("(Acquire ; Release)*");
  Matcher matcher = spec.matcher();
  EXPECT_EQ(matcher.advance("Release"), MatchResult::kViolation);
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kViolation);
  EXPECT_FALSE(matcher.viable());
  matcher.reset();
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kOk);
}

TEST(MatcherTest, UnconstrainedNamesPassThrough) {
  const CallOrderSpec spec("(Acquire ; Release)*");
  Matcher matcher = spec.matcher();
  EXPECT_EQ(matcher.advance("Status"), MatchResult::kUnconstrained);
  EXPECT_EQ(matcher.advance("Acquire"), MatchResult::kOk);
  EXPECT_EQ(matcher.advance("Status"), MatchResult::kUnconstrained);
  EXPECT_EQ(matcher.advance("Release"), MatchResult::kOk);
}

TEST(MatcherTest, DefaultMatcherUnconstrained) {
  Matcher matcher;
  EXPECT_EQ(matcher.advance("anything"), MatchResult::kUnconstrained);
  EXPECT_FALSE(matcher.at_accepting());
}

TEST(MatcherTest, ThrowsOnBadExpression) {
  EXPECT_THROW(CallOrderSpec("(((("), ParseError);
}

}  // namespace
}  // namespace robmon::pathexpr
