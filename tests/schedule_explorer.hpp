// Schedule-exploration harness support: the pinned regression corpus row
// format and the seed-replay plumbing shared by the explorer tests and the
// CI sweep (see docs/deterministic-testing.md).
//
// Replay contract: every failure message printed by the explorer contains a
// ready-to-paste command of the form
//
//   ROBMON_REPLAY_SCENARIO=<name> ROBMON_REPLAY_SEED=<seed>
//       ./schedule_explorer --gtest_filter='ScheduleExplorerTest.Replay'
//
// which re-runs exactly that interleaving (same schedule digest, byte-
// identical v6 trace) and dumps the full scenario result.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "workloads/schedule_scenarios.hpp"

namespace robmon::testing {

/// One pinned interleaving: scenario + seed identify the schedule, the
/// digest asserts the scheduler still takes it, and the scorecard asserts
/// detection/recovery behaved identically on it.  Regenerate with
/// `ROBMON_PRINT_CORPUS=1 ./schedule_explorer
///  --gtest_filter='ScheduleExplorerTest.PrintCorpus'` after any change
/// that legitimately moves the interleavings (see the corpus policy in
/// docs/deterministic-testing.md).
struct CorpusRow {
  wl::ScheduleScenario scenario;
  std::uint64_t seed;
  std::uint64_t digest;
  const char* scorecard;
};

inline std::string replay_command(wl::ScheduleScenario scenario,
                                  std::uint64_t seed) {
  return "ROBMON_REPLAY_SCENARIO=" + std::string(wl::to_string(scenario)) +
         " ROBMON_REPLAY_SEED=" + std::to_string(seed) +
         " ./schedule_explorer --gtest_filter='ScheduleExplorerTest.Replay'";
}

/// Env-var integer with default (0 or unset/garbage -> fallback).
inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value) return fallback;
  return parsed;
}

}  // namespace robmon::testing
