// Tests for the Section-5 extension: predefined and user-supplied
// assertions evaluated at every checking point.
#include <gtest/gtest.h>

#include "core/assertions.hpp"
#include "core/detector.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/bounded_buffer.hpp"

namespace robmon::core {
namespace {

using trace::SchedulingState;

SchedulingState state_with(std::int64_t resources, std::size_t eq,
                           std::size_t cq) {
  SchedulingState state;
  state.resources = resources;
  for (std::size_t i = 0; i < eq; ++i) {
    state.entry_queue.push_back({static_cast<trace::Pid>(i), 0, 0});
  }
  if (cq > 0) {
    trace::CondQueueState queue;
    queue.cond = 0;
    for (std::size_t i = 0; i < cq; ++i) {
      queue.entries.push_back({static_cast<trace::Pid>(100 + i), 0, 0});
    }
    state.cond_queues.push_back(queue);
  }
  return state;
}

TEST(PredefinedAssertionTest, ResourcesWithin) {
  const MonitorAssertion assertion = resources_within(0, 8);
  EXPECT_TRUE(assertion.predicate(state_with(0, 0, 0)));
  EXPECT_TRUE(assertion.predicate(state_with(8, 0, 0)));
  EXPECT_FALSE(assertion.predicate(state_with(-1, 0, 0)));
  EXPECT_FALSE(assertion.predicate(state_with(9, 0, 0)));
}

TEST(PredefinedAssertionTest, EntryQueueAtMost) {
  const MonitorAssertion assertion = entry_queue_at_most(2);
  EXPECT_TRUE(assertion.predicate(state_with(0, 2, 5)));
  EXPECT_FALSE(assertion.predicate(state_with(0, 3, 0)));
}

TEST(PredefinedAssertionTest, BlockedAtMost) {
  const MonitorAssertion assertion = blocked_at_most(3);
  EXPECT_TRUE(assertion.predicate(state_with(0, 1, 2)));
  EXPECT_FALSE(assertion.predicate(state_with(0, 2, 2)));
}

TEST(PredefinedAssertionTest, MonitorIdle) {
  const MonitorAssertion assertion = monitor_idle();
  EXPECT_TRUE(assertion.predicate(state_with(4, 0, 0)));
  EXPECT_FALSE(assertion.predicate(state_with(4, 1, 0)));
  SchedulingState busy = state_with(4, 0, 0);
  busy.running = 7;
  EXPECT_FALSE(assertion.predicate(busy));
}

TEST(DetectorAssertionTest, FailingAssertionReported) {
  trace::SymbolTable symbols;
  CollectingSink sink;
  Detector detector(MonitorSpec::manager("m"), symbols, sink);
  detector.initialize({});
  detector.add_assertion(
      {"always fails", [](const SchedulingState&) { return false; }});
  EXPECT_EQ(detector.assertion_count(), 1u);
  const auto stats = detector.check({}, {}, 1000);
  EXPECT_EQ(stats.violations, 1u);
  ASSERT_TRUE(sink.any_with_rule(RuleId::kUserAssertion));
  EXPECT_NE(sink.reports()[0].message.find("always fails"),
            std::string::npos);
}

TEST(DetectorAssertionTest, PassingAssertionSilent) {
  trace::SymbolTable symbols;
  CollectingSink sink;
  Detector detector(MonitorSpec::manager("m"), symbols, sink);
  detector.initialize({});
  detector.add_assertion(
      {"always holds", [](const SchedulingState&) { return true; }});
  detector.check({}, {}, 1000);
  EXPECT_EQ(sink.count(), 0u);
}

TEST(DetectorAssertionTest, EvaluatedAtEveryCheck) {
  trace::SymbolTable symbols;
  CollectingSink sink;
  Detector detector(MonitorSpec::manager("m"), symbols, sink);
  detector.initialize({});
  int evaluations = 0;
  detector.add_assertion({"counting", [&](const SchedulingState&) {
                            ++evaluations;
                            return true;
                          }});
  detector.check({}, {}, 1000);
  detector.check({}, {}, 2000);
  detector.check({}, {}, 3000);
  EXPECT_EQ(evaluations, 3);
}

TEST(RobustMonitorAssertionTest, UserInvariantOverLiveWorkload) {
  CollectingSink sink;
  MonitorSpec spec = MonitorSpec::coordinator("buf", 4);
  spec.t_max = spec.t_io = spec.t_limit = 5 * util::kSecond;
  rt::RobustMonitor monitor(spec, sink);
  wl::BoundedBuffer buffer(monitor, 4);
  // The coordinator envelope as a user assertion.
  monitor.detector().add_assertion(resources_within(0, 4));
  monitor.detector().add_assertion(monitor_idle());  // holds at our checks

  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(buffer.send(1, i), rt::Status::kOk);
  }
  std::int64_t item = 0;
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(buffer.receive(2, &item), rt::Status::kOk);
  }
  monitor.check_now();
  EXPECT_EQ(sink.count(), 0u);

  // Now violate the user invariant: one unmatched send leaves the monitor
  // non-idle-with-items; monitor_idle still holds (nobody blocked), but a
  // tighter custom predicate can see application state.
  monitor.detector().add_assertion(
      {"buffer drained at checkpoints", [&buffer](const SchedulingState&) {
         return buffer.size() == 0;
       }});
  ASSERT_EQ(buffer.send(1, 99), rt::Status::kOk);
  monitor.check_now();
  EXPECT_TRUE(sink.any_with_rule(RuleId::kUserAssertion));
}

}  // namespace
}  // namespace robmon::core
