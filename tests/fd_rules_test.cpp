// Tests for the declarative FD-Rule validator (Section 3.2) and the paper's
// equivalence claim between the FD-Rules and the ST-Rule-based interval
// checking: on T=1 histories (state recorded after every event),
//   * fault-free runs satisfy every FD-Rule;
//   * injected faults violate at least one FD-Rule whenever the interval
//     checking detects them.
#include <gtest/gtest.h>

#include "core/fd_rules.hpp"
#include "core/monitor_spec.hpp"
#include "workloads/sim_scenarios.hpp"

namespace robmon::wl {
namespace {

using core::FaultKind;
using core::MonitorSpec;
using core::RuleId;
using trace::EventRecord;
using trace::SchedulingState;

// --- Direct unit tests over hand-crafted histories. -------------------------

class FdRulesFixture : public ::testing::Test {
 protected:
  FdRulesFixture() {
    spec_ = MonitorSpec::manager("m");
    spec_.t_max = 50 * util::kMillisecond;
    spec_.t_io = 100 * util::kMillisecond;
    op_ = symbols_.intern("Op");
    cond_ = symbols_.intern("cond");
  }

  std::vector<core::FaultReport> validate(
      const std::vector<EventRecord>& events,
      const std::vector<SchedulingState>& states,
      util::TimeNs final_time = 10 * util::kMillisecond) {
    return core::validate_fd_rules(spec_, symbols_, events, states,
                                   final_time);
  }

  static bool has_rule(const std::vector<core::FaultReport>& reports,
                       RuleId rule) {
    for (const auto& report : reports) {
      if (report.rule == rule) return true;
    }
    return false;
  }

  MonitorSpec spec_;
  trace::SymbolTable symbols_;
  trace::SymbolId op_;
  trace::SymbolId cond_;
};

TEST_F(FdRulesFixture, RejectsMisalignedStates) {
  EXPECT_THROW(validate({EventRecord::enter(1, op_, true, 100)}, {}),
               std::invalid_argument);
}

TEST_F(FdRulesFixture, CleanEnterExit) {
  SchedulingState empty;
  SchedulingState running;
  running.running = 1;
  running.running_proc = op_;
  running.running_since = 100;
  const auto reports =
      validate({EventRecord::enter(1, op_, true, 100),
                EventRecord::signal_exit(1, op_, trace::kNoSymbol, false,
                                         200)},
               {empty, running, empty});
  EXPECT_TRUE(reports.empty());
}

TEST_F(FdRulesFixture, Fd1aEnterWhileOccupied) {
  SchedulingState occupied;
  occupied.running = 1;
  occupied.running_proc = op_;
  SchedulingState both = occupied;  // impl only tracks one owner
  const auto reports = validate({EventRecord::enter(2, op_, true, 100)},
                                {occupied, both});
  EXPECT_TRUE(has_rule(reports, RuleId::kFd1aMutualExclusion));
}

TEST_F(FdRulesFixture, Fd1dOperationWithoutEnter) {
  SchedulingState empty;
  SchedulingState after;
  after.cond_queues = {{cond_, {{2, op_, 100}}}};
  const auto reports =
      validate({EventRecord::wait(2, op_, cond_, 100)}, {empty, after});
  EXPECT_TRUE(has_rule(reports, RuleId::kFd1dOperateWithoutEnter));
}

TEST_F(FdRulesFixture, Fd3DelayedWhileFree) {
  SchedulingState empty;
  SchedulingState queued;
  queued.entry_queue = {{2, op_, 100}};
  const auto reports =
      validate({EventRecord::enter(2, op_, false, 100)}, {empty, queued});
  EXPECT_TRUE(has_rule(reports, RuleId::kFd3UnfairResponse));
}

TEST_F(FdRulesFixture, Fd4LostEntryRequest) {
  SchedulingState running;
  running.running = 1;
  running.running_proc = op_;
  // p2 blocks (flag=0) but the entry queue does not grow: lost.
  const auto reports =
      validate({EventRecord::enter(2, op_, false, 100)}, {running, running});
  EXPECT_TRUE(has_rule(reports, RuleId::kFd4StarvationOrLoss));
}

TEST_F(FdRulesFixture, Fd4StarvationAtHorizon) {
  SchedulingState state;
  state.running = 1;
  state.running_proc = op_;
  state.running_since = 190 * util::kMillisecond;
  state.entry_queue = {{2, op_, 0}};
  // p2 enqueued at t=0; history closes past Tio with p2 still queued.
  const auto reports =
      validate({}, {state}, /*final_time=*/200 * util::kMillisecond);
  EXPECT_TRUE(has_rule(reports, RuleId::kFd4StarvationOrLoss));
}

TEST_F(FdRulesFixture, Fd5aCondWaiterVanishes) {
  SchedulingState with_waiter;
  with_waiter.running = 1;
  with_waiter.running_proc = op_;
  with_waiter.cond_queues = {{cond_, {{3, op_, 50}}}};
  SchedulingState without = with_waiter;
  without.cond_queues[0].entries.clear();
  // p1 exits without signalling, yet p3 left the condition queue.
  const auto reports = validate(
      {EventRecord::signal_exit(1, op_, trace::kNoSymbol, false, 100)},
      {with_waiter, without});
  EXPECT_TRUE(has_rule(reports, RuleId::kFd5aWrongWaitResume));
}

TEST_F(FdRulesFixture, Fd2ResidenceBeyondTmax) {
  SchedulingState state;
  state.running = 1;
  state.running_proc = op_;
  state.running_since = 0;
  const auto reports =
      validate({}, {state}, /*final_time=*/60 * util::kMillisecond);
  EXPECT_TRUE(has_rule(reports, RuleId::kFd2NonTermination));
}

// --- Property tests over simulated histories (T=1 recording). ---------------

class FdSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FdSoundnessTest, FaultFreeHistorySatisfiesAllRules) {
  const FdTrialResult result = run_fd_trial(std::nullopt, GetParam());
  EXPECT_GT(result.event_count, 0u);
  EXPECT_TRUE(result.st_reports.empty());
  EXPECT_TRUE(result.fd_reports.empty())
      << "first FD violation: "
      << (result.fd_reports.empty()
              ? ""
              : std::string(core::to_string(result.fd_reports[0].rule)) +
                    ": " + result.fd_reports[0].message);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FdSoundnessTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

using AgreementParam = std::tuple<core::FaultKind, std::uint64_t>;

class FdAgreementTest : public ::testing::TestWithParam<AgreementParam> {};

// The paper argues FD-Rule violations and ST-Rule violations coincide.  We
// test the direction that is well-defined on recorded histories: whenever
// the interval checking reported something, the full-history FD validation
// must also report something (FD sees strictly more information).
TEST_P(FdAgreementTest, StDetectionImpliesFdDetection) {
  const auto [kind, seed] = GetParam();
  const FdTrialResult result = run_fd_trial(kind, seed);
  if (!result.st_reports.empty()) {
    EXPECT_FALSE(result.fd_reports.empty())
        << "interval checking flagged " << core::to_string(kind)
        << " but FD validation saw nothing";
  }
}

std::vector<AgreementParam> agreement_params() {
  std::vector<AgreementParam> params;
  for (const core::FaultKind kind : core::all_fault_kinds()) {
    params.emplace_back(kind, 1);
    params.emplace_back(kind, 2);
  }
  return params;
}

std::string agreement_param_name(
    const ::testing::TestParamInfo<AgreementParam>& info) {
  const auto [kind, seed] = info.param;
  std::string name(core::to_string(kind));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_seed" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FdAgreementTest,
                         ::testing::ValuesIn(agreement_params()),
                         agreement_param_name);

}  // namespace
}  // namespace robmon::wl
