// Wait-for graph edge lifecycle: pure-graph cycle enumeration, the offline
// WF-Rule validator, and the CheckerPool checkpoint end-to-end — cycles
// across 2 and 5 monitors, a cycle that resolves before the checkpoint (the
// stale-contribution shape must produce zero faults), register/unregister
// churn while checkpoints run, and detection under a frozen ManualClock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/fd_rules.hpp"
#include "core/waitfor.hpp"
#include "runtime/checker_pool.hpp"
#include "runtime/robust_monitor.hpp"
#include "workloads/allocator.hpp"
#include "workloads/dining.hpp"

namespace robmon {
namespace {

using core::DeadlockCycle;
using core::RuleId;
using core::WaitContribution;
using core::WaitForGraph;
using rt::CheckerPool;
using rt::RobustMonitor;
using util::kMillisecond;

core::MonitorSpec fork_spec(const std::string& name) {
  core::MonitorSpec spec = core::MonitorSpec::allocator(name);
  spec.t_max = 30 * util::kSecond;
  spec.t_io = 30 * util::kSecond;
  spec.t_limit = 30 * util::kSecond;
  spec.check_period = 2 * kMillisecond;
  return spec;
}

WaitContribution contribution(core::WaitMonitorId id, const std::string& name,
                              std::vector<WaitContribution::Wait> waits,
                              std::vector<WaitContribution::Hold> holds) {
  WaitContribution c;
  c.monitor = id;
  c.name = name;
  c.waits = std::move(waits);
  c.holds = std::move(holds);
  return c;
}

// --- Pure graph. -------------------------------------------------------------

TEST(WaitForGraphTest, TwoMonitorCycle) {
  WaitForGraph graph;
  // p1 holds m1, waits on m2's resource; p2 holds m2, waits on m1's.
  graph.update(contribution(1, "m1", {{2, "available", 20}},
                            {{1, false, 10}}));
  graph.update(contribution(2, "m2", {{1, "available", 21}},
                            {{2, false, 11}}));
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].links.size(), 2u);
  // Canonical rotation: smallest pid first.
  EXPECT_EQ(cycles[0].links[0].pid, 1);
  EXPECT_EQ(cycles[0].links[0].monitor, 2u);
  EXPECT_EQ(cycles[0].links[0].holder, 2);
  EXPECT_EQ(cycles[0].links[1].pid, 2);
  EXPECT_EQ(cycles[0].links[1].monitor, 1u);
  EXPECT_EQ(cycles[0].links[1].holder, 1);
  const std::string text = core::describe(cycles[0]);
  EXPECT_NE(text.find("p1 waits on m2[available] held by p2"),
            std::string::npos)
      << text;
}

TEST(WaitForGraphTest, FiveMonitorRing) {
  WaitForGraph graph;
  for (int i = 0; i < 5; ++i) {
    const int next = (i + 1) % 5;
    // p_i holds m_i and waits on m_{i+1} (held by p_{i+1}).
    graph.update(contribution(
        static_cast<core::WaitMonitorId>(i + 1), "m" + std::to_string(i),
        {{next, "available", 20 + i}}, {{i, false, 10 + i}}));
  }
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].links.size(), 5u);
  EXPECT_EQ(cycles[0].links[0].pid, 0);
}

TEST(WaitForGraphTest, NoCycleWhenHolderIsNotBlocked) {
  WaitForGraph graph;
  graph.update(contribution(1, "m1", {{2, "available", 20}},
                            {{1, false, 10}}));
  graph.update(contribution(2, "m2", {}, {{2, false, 11}}));
  EXPECT_TRUE(graph.find_cycles().empty());
}

TEST(WaitForGraphTest, SelfLoopIsAOneLinkCycle) {
  WaitForGraph graph;
  // p1 re-acquires a monitor whose only unit it already holds (III.c).
  graph.update(contribution(1, "m1", {{1, "available", 20}},
                            {{1, false, 10}}));
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].links.size(), 1u);
  EXPECT_EQ(cycles[0].links[0].pid, 1);
  EXPECT_EQ(cycles[0].links[0].holder, 1);
}

TEST(WaitForGraphTest, EntryWaitersBlockBehindMutexHolderOnly) {
  WaitForGraph graph;
  // p2 waits on m1's entry queue; p1 runs inside m1 (mutex holder) while
  // p3 merely holds a resource unit: only the p2→p1 edge may exist.
  graph.update(contribution(1, "m1", {{2, "", 20}},
                            {{1, true, 10}, {3, false, 5}}));
  graph.update(contribution(2, "m2", {{1, "available", 21}},
                            {{2, false, 11}}));
  const auto cycles = graph.find_cycles();
  ASSERT_EQ(cycles.size(), 1u);
  ASSERT_EQ(cycles[0].links.size(), 2u);
  EXPECT_EQ(cycles[0].links[0].pid, 1);   // p1 waits on m2's resource
  EXPECT_EQ(cycles[0].links[1].pid, 2);   // p2 waits on m1's mutex
  EXPECT_TRUE(cycles[0].links[1].cond.empty());
}

TEST(WaitForGraphTest, MultipleDistinctHoldersEmitNoResourceEdges) {
  WaitForGraph graph;
  // m1 has two units held by p1 and p3: p2's wait is an OR (either holder
  // releasing unblocks it), so no cycle may be built through it even
  // though p1 is blocked behind p2 elsewhere.
  graph.update(contribution(1, "m1", {{2, "available", 20}},
                            {{1, false, 10}, {3, false, 12}}));
  graph.update(contribution(2, "m2", {{1, "available", 21}},
                            {{2, false, 11}}));
  EXPECT_TRUE(graph.find_cycles().empty());
}

TEST(WaitForGraphTest, EraseRemovesAMonitorsEdges) {
  WaitForGraph graph;
  graph.update(contribution(1, "m1", {{2, "available", 20}},
                            {{1, false, 10}}));
  graph.update(contribution(2, "m2", {{1, "available", 21}},
                            {{2, false, 11}}));
  ASSERT_EQ(graph.find_cycles().size(), 1u);
  graph.erase(2);
  EXPECT_TRUE(graph.find_cycles().empty());
  EXPECT_EQ(graph.monitor_count(), 1u);
}

// The stale shape of the resolved-cycle end-to-end test below: the graph
// alone (no live validation) does present a candidate cycle, which is
// exactly what the CheckerPool's validation pass must then reject.
TEST(WaitForGraphTest, StaleContributionsCanFormACandidateCycle) {
  WaitForGraph graph;
  graph.update(contribution(1, "f0", {{2, "available", 20}},
                            {{1, false, 10}}));  // stale by now
  graph.update(contribution(2, "f1", {{1, "available", 50}},
                            {{2, false, 40}}));  // fresh
  EXPECT_EQ(graph.find_cycles().size(), 1u);
}

// --- Offline WF-Rule validator (fd_rules integration). -----------------------

TEST(ValidateWaitForTest, ReportsCycleAcrossRecordedStates) {
  trace::SymbolTable symbols0, symbols1;
  const trace::SymbolId avail0 = symbols0.intern("available");
  const trace::SymbolId avail1 = symbols1.intern("available");

  trace::SchedulingState s0;  // p2 waits on f0[available]; p1 holds f0
  s0.cond_queues.push_back({avail0, {{2, trace::kNoSymbol, 20}}});
  s0.holders.push_back({1, 1, 10});
  trace::SchedulingState s1;  // p1 waits on f1[available]; p2 holds f1
  s1.cond_queues.push_back({avail1, {{1, trace::kNoSymbol, 21}}});
  s1.holders.push_back({2, 1, 11});

  const auto reports = core::validate_wait_for(
      {{"f0", &s0, &symbols0}, {"f1", &s1, &symbols1}}, 99);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].rule, RuleId::kWfCycleDetected);
  ASSERT_TRUE(reports[0].suspected.has_value());
  EXPECT_EQ(*reports[0].suspected, core::FaultKind::kGlobalDeadlock);
  EXPECT_EQ(reports[0].detected_at, 99);
  EXPECT_NE(reports[0].message.find("f0"), std::string::npos);
  EXPECT_NE(reports[0].message.find("f1"), std::string::npos);
}

TEST(ValidateWaitForTest, CleanStatesReportNothing) {
  trace::SymbolTable symbols;
  trace::SchedulingState s0;
  s0.holders.push_back({1, 1, 10});
  trace::SchedulingState s1;
  const auto reports =
      core::validate_wait_for({{"f0", &s0, &symbols}, {"f1", &s1, &symbols}}, 5);
  EXPECT_TRUE(reports.empty());
}

// --- End-to-end through the CheckerPool. -------------------------------------

struct TwoForkFixture {
  core::CollectingSink sink;
  CheckerPool pool;
  RobustMonitor m0, m1;
  wl::ResourceAllocator f0, f1;

  explicit TwoForkFixture(CheckerPool::Options pool_options)
      : pool([&] {
          pool_options.waitfor_sink = &sink;
          return pool_options;
        }()),
        m0(fork_spec("f0"), sink, with_pool()),
        m1(fork_spec("f1"), sink, with_pool()),
        f0(m0, 1),
        f1(m1, 1) {}

  RobustMonitor::Options with_pool() {
    RobustMonitor::Options options;
    options.checker_pool = &pool;
    return options;
  }

  void wait_blocked(const RobustMonitor& monitor, std::size_t count) {
    for (int spin = 0; spin < 4000; ++spin) {
      if (monitor.snapshot().blocked_count() >= count) return;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
    FAIL() << "thread never blocked";
  }

  std::size_t wf_reports() const {
    std::size_t n = 0;
    for (const auto& report : sink.reports()) {
      if (report.rule == RuleId::kWfCycleDetected) ++n;
    }
    return n;
  }
};

TEST(PoolWaitForTest, TwoMonitorDeadlockConfirmedAndReportedOnce) {
  CheckerPool::Options options;
  options.waitfor_checkpoint_period = 1 * kMillisecond;
  TwoForkFixture fx(options);

  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);  // p1 holds f0
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);  // p2 holds f1
  std::thread t1([&] { (void)fx.f1.acquire(1); });  // p1 blocks on f1
  std::thread t2([&] { (void)fx.f0.acquire(2); });  // p2 blocks on f0
  fx.wait_blocked(fx.m0, 1);
  fx.wait_blocked(fx.m1, 1);

  // Deterministic: contribute both snapshots, then run one checkpoint.
  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.waitfor_graph_monitors(), 2u);
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);
  ASSERT_EQ(fx.wf_reports(), 1u);
  EXPECT_EQ(fx.pool.deadlocks_reported(), 1u);

  std::string message;
  for (const auto& report : fx.sink.reports()) {
    if (report.rule == RuleId::kWfCycleDetected) message = report.message;
  }
  EXPECT_NE(message.find("p1 waits on f1[available] held by p2"),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("p2 waits on f0[available] held by p1"),
            std::string::npos)
      << message;

  // A persisting deadlock is not re-reported at the next checkpoint.
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);
  EXPECT_EQ(fx.wf_reports(), 1u);

  fx.m0.poison();
  fx.m1.poison();
  t1.join();
  t2.join();

  // Dissolved: the next checkpoint confirms nothing and re-arms the cycle.
  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 0u);
}

TEST(PoolWaitForTest, UnscheduleKeepsReportedCycleStateAcrossReschedule) {
  // The lifecycle contract (checker_pool.hpp): unschedule() withdraws the
  // live wait-for contribution but keeps reported-cycle keys and all
  // counters, so a re-scheduled monitor resumes exactly where it left off
  // and a persisting deadlock is NOT re-reported.  (remove() is the one
  // that re-arms; its order-side twin is covered in lockorder_test.)
  // The periodic cadence is parked far in the future: a periodic pass
  // racing the unschedule window would observe the withdrawn contribution
  // as a dissolved cycle and legitimately re-arm it — only the
  // synchronous passes below may run.
  CheckerPool::Options options;
  options.waitfor_checkpoint_period = 3600 * util::kSecond;
  TwoForkFixture fx(options);
  fx.m0.start_checking();
  fx.m1.start_checking();

  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  std::thread t1([&] { (void)fx.f1.acquire(1); });
  std::thread t2([&] { (void)fx.f0.acquire(2); });
  fx.wait_blocked(fx.m0, 1);
  fx.wait_blocked(fx.m1, 1);

  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);
  EXPECT_EQ(fx.wf_reports(), 1u);
  const std::uint64_t reported_before = fx.pool.deadlocks_reported();

  fx.m0.stop_checking();   // unschedule: contribution withdrawn ...
  fx.m0.start_checking();  // ... reported-cycle keys and counters kept
  fx.m0.check_now();
  fx.m1.check_now();
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 1u);  // still confirmed
  EXPECT_EQ(fx.wf_reports(), 1u);                   // but not re-reported
  EXPECT_EQ(fx.pool.deadlocks_reported(), reported_before);

  fx.m0.poison();
  fx.m1.poison();
  t1.join();
  t2.join();
  fx.m0.stop_checking();
  fx.m1.stop_checking();
}

TEST(PoolWaitForTest, FiveMonitorRingDetectedUnderLoad) {
  wl::DiningLoadOptions options;
  options.rings = 1;
  options.philosophers = 5;
  options.deadlock_rings = 1;
  const wl::DiningLoadResult result = wl::run_dining_load(options);
  EXPECT_EQ(result.missed_detections, 0u);
  EXPECT_EQ(result.deadlocked_rings_detected, 1u);
  EXPECT_EQ(result.false_positive_rings, 0u);
  ASSERT_FALSE(result.cycles.empty());
  EXPECT_NE(result.cycles[0].find("(5 links)"), std::string::npos)
      << result.cycles[0];
  EXPECT_GT(result.checkpoints_run, 0u);
}

TEST(PoolWaitForTest, MixedCleanAndDeadlockedRings) {
  wl::DiningLoadOptions options;
  options.rings = 3;
  options.philosophers = 4;
  options.deadlock_rings = 2;
  options.rounds = 10;
  const wl::DiningLoadResult result = wl::run_dining_load(options);
  EXPECT_EQ(result.deadlocks_expected, 2u);
  EXPECT_EQ(result.missed_detections, 0u);
  EXPECT_EQ(result.false_positive_rings, 0u);
  EXPECT_TRUE(result.clean_rings_completed);
}

// A cycle shape assembled from one stale and one fresh contribution must be
// rejected by the live validation pass: the "cycle" resolved before the
// checkpoint ever ran, so reporting it would be a false positive.
TEST(PoolWaitForTest, ResolvedCycleBeforeCheckpointReportsNothing) {
  CheckerPool::Options options;
  options.waitfor_checkpoint_period = 50 * util::kSecond;  // manual only
  TwoForkFixture fx(options);

  // Phase 1: p1 holds f0, p2 blocks on f0.  Contribute f0's snapshot.
  ASSERT_EQ(fx.f0.acquire(1), rt::Status::kOk);
  std::thread t2([&] {
    ASSERT_EQ(fx.f0.acquire(2), rt::Status::kOk);  // resumes in phase 2
    ASSERT_EQ(fx.f0.release(2), rt::Status::kOk);
  });
  fx.wait_blocked(fx.m0, 1);
  fx.m0.check_now();  // graph: p2 → f0 held by p1 (about to go stale)

  // Phase 2: the wait resolves completely.
  ASSERT_EQ(fx.f0.release(1), rt::Status::kOk);
  t2.join();

  // Phase 3: the mirror-image wait forms: p2 holds f1, p1 blocks on f1.
  ASSERT_EQ(fx.f1.acquire(2), rt::Status::kOk);
  std::thread t1([&] { (void)fx.f1.acquire(1); });
  fx.wait_blocked(fx.m1, 1);
  fx.m1.check_now();  // graph: p1 → f1 held by p2 (fresh)

  // The graph alone would now show the two-link candidate cycle (see
  // WaitForGraphTest.StaleContributionsCanFormACandidateCycle); live
  // validation must reject it because f0's edges no longer hold.
  EXPECT_EQ(fx.pool.run_waitfor_checkpoint(), 0u);
  EXPECT_EQ(fx.wf_reports(), 0u);
  EXPECT_EQ(fx.pool.deadlocks_reported(), 0u);

  fx.m1.poison();
  t1.join();
}

TEST(PoolWaitForTest, RegisterUnregisterChurnDuringCheckpoints) {
  core::CollectingSink sink;
  CheckerPool::Options options;
  options.waitfor_checkpoint_period = 1 * kMillisecond;
  options.waitfor_sink = &sink;
  CheckerPool pool(options);

  RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;

  // Steady traffic on two long-lived forks (no deadlock: fixed order).
  RobustMonitor steady0(fork_spec("steady0"), sink, monitor_options);
  RobustMonitor steady1(fork_spec("steady1"), sink, monitor_options);
  wl::ResourceAllocator fork0(steady0, 1), fork1(steady1, 1);
  steady0.start_checking();
  steady1.start_checking();
  std::atomic<bool> stop{false};
  std::vector<std::thread> traffic;
  for (int t = 0; t < 2; ++t) {
    traffic.emplace_back([&, t] {
      const trace::Pid pid = 10 + t;
      while (!stop.load(std::memory_order_relaxed)) {
        if (fork0.acquire(pid) != rt::Status::kOk) return;
        if (fork1.acquire(pid) != rt::Status::kOk) return;
        fork1.release(pid);
        fork0.release(pid);
      }
    });
  }

  // Churn: monitors register, contribute, and unregister while periodic
  // checkpoints run; unregistration must drop their edges atomically.
  // Keep churning until several checkpoint passes have raced against it.
  for (int round = 0; round < 400; ++round) {
    RobustMonitor churn(fork_spec("churn"), sink, monitor_options);
    wl::ResourceAllocator fork(churn, 1);
    churn.start_checking();
    ASSERT_EQ(fork.acquire(99), rt::Status::kOk);
    churn.check_now();  // contributes a hold edge, then unregisters below
    ASSERT_EQ(fork.release(99), rt::Status::kOk);
    if (round >= 30 && pool.waitfor_checkpoints() >= 5) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  stop.store(true);
  for (auto& thread : traffic) thread.join();
  EXPECT_GT(pool.waitfor_checkpoints(), 0u);
  EXPECT_EQ(pool.deadlocks_reported(), 0u);
  for (const auto& report : sink.reports()) {
    EXPECT_NE(report.rule, RuleId::kWfCycleDetected) << report.message;
  }
}

TEST(PoolWaitForTest, FrozenManualClockStillDetectsDeadlock) {
  // The checkpoint cadence is wall-clock; a frozen rule clock must neither
  // stall the checkpoint nor break episode matching in the validator.
  util::ManualClock clock(1000);
  CheckerPool::Options options;
  options.clock = &clock;
  options.waitfor_checkpoint_period = 1 * kMillisecond;
  core::CollectingSink sink;
  options.waitfor_sink = &sink;
  CheckerPool pool(options);

  RobustMonitor::Options monitor_options;
  monitor_options.checker_pool = &pool;
  monitor_options.clock = &clock;
  RobustMonitor m0(fork_spec("f0"), sink, monitor_options);
  RobustMonitor m1(fork_spec("f1"), sink, monitor_options);
  wl::ResourceAllocator f0(m0, 1), f1(m1, 1);
  m0.start_checking();
  m1.start_checking();

  ASSERT_EQ(f0.acquire(1), rt::Status::kOk);
  ASSERT_EQ(f1.acquire(2), rt::Status::kOk);
  std::thread t1([&] { (void)f1.acquire(1); });
  std::thread t2([&] { (void)f0.acquire(2); });

  bool detected = false;
  for (int spin = 0; spin < 4000 && !detected; ++spin) {
    detected = sink.any_with_rule(RuleId::kWfCycleDetected);
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  EXPECT_TRUE(detected);
  EXPECT_GE(pool.deadlocks_reported(), 1u);

  m0.poison();
  m1.poison();
  t1.join();
  t2.join();
  m0.stop_checking();
  m1.stop_checking();
}

// --- Episode tickets (clock-independent episode identity). -------------------

TEST(EpisodeTicketTest, LinkValidationMatchesByTicketNotTimestamp) {
  trace::SymbolTable symbols;
  // A fresh snapshot where p1 waits on the entry queue (ticket 7) behind
  // running p2 (ticket 9); the timestamps alias a frozen clock (all 100).
  trace::SchedulingState state;
  state.entry_queue = {{1, trace::kNoSymbol, 100, 7}};
  state.running = 2;
  state.running_since = 100;
  state.running_ticket = 9;

  DeadlockCycle::Link link;
  link.pid = 1;
  link.monitor = 1;
  link.blocked_since = 100;
  link.holder = 2;
  link.held_since = 100;
  link.blocked_ticket = 7;
  link.holder_ticket = 9;
  EXPECT_TRUE(core::link_holds_in(link, state, symbols));

  // Same timestamps, different episode: the wait re-formed (new ticket).
  link.blocked_ticket = 6;
  EXPECT_FALSE(core::link_holds_in(link, state, symbols))
      << "timestamp aliasing must not confirm a re-formed wait";
  link.blocked_ticket = 7;
  link.holder_ticket = 8;  // ownership changed hands and came back
  EXPECT_FALSE(core::link_holds_in(link, state, symbols));

  // Pre-ticket links (0) fall back to timestamp matching.
  link.blocked_ticket = 0;
  link.holder_ticket = 0;
  EXPECT_TRUE(core::link_holds_in(link, state, symbols));
}

TEST(EpisodeTicketTest, FrozenClockSnapshotsDistinguishEpisodes) {
  // Two blocking episodes of the same thread under a frozen ManualClock:
  // identical enqueue timestamps, distinct tickets — the property the
  // checkpoint validator relies on for exactness.
  util::ManualClock clock(1000);
  rt::HoareMonitor monitor(fork_spec("frozen"), clock);

  ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);  // occupies
  std::thread blocked([&] { (void)monitor.enter(2, "Acquire"); });
  trace::SchedulingState first;
  for (int spin = 0; spin < 4000; ++spin) {
    first = monitor.snapshot();
    if (!first.entry_queue.empty()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_EQ(first.entry_queue.size(), 1u);
  const std::uint64_t first_ticket = first.entry_queue[0].ticket;
  const std::uint64_t first_owner_ticket = first.running_ticket;
  EXPECT_NE(first_ticket, 0u);
  EXPECT_NE(first_owner_ticket, 0u);

  monitor.exit(1);  // admits p2, which exits; episode one over
  blocked.join();
  monitor.exit(2);

  ASSERT_EQ(monitor.enter(1, "Acquire"), rt::Status::kOk);
  std::thread blocked_again([&] { (void)monitor.enter(2, "Acquire"); });
  trace::SchedulingState second;
  for (int spin = 0; spin < 4000; ++spin) {
    second = monitor.snapshot();
    if (!second.entry_queue.empty()) break;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ASSERT_EQ(second.entry_queue.size(), 1u);

  // Frozen clock: timestamps alias; tickets do not.
  EXPECT_EQ(second.entry_queue[0].enqueued_at,
            first.entry_queue[0].enqueued_at);
  EXPECT_NE(second.entry_queue[0].ticket, first_ticket);
  EXPECT_NE(second.running_ticket, first_owner_ticket);

  monitor.exit(1);
  blocked_again.join();
  monitor.exit(2);
}

}  // namespace
}  // namespace robmon
